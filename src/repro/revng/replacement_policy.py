"""Figure 8b: which replacement policy does the history table use?

32 IPs on 32 page frames.  The first 24 are trained (filling the table),
the caches are flushed, the first 8 IPs are re-trained (making them
recently used), then 8 *new* IPs (25–32) are trained, evicting 8 entries.
After a final cache flush, all 32 IPs run once more and a random line's
``+stride`` neighbour is timed.

FIFO would have evicted IPs 1–8 despite their refresh; the observed
evictions are the *contiguous* run 9–16, ruling out FIFO and tree-PLRU and
pointing at a Bit-PLRU variant (paper §4.5).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cpu.machine import Machine
from repro.params import PAGE_SIZE, MachineParams


@dataclass(frozen=True)
class ReplacementSample:
    """One x-position of Figure 8b."""

    input_index: int  # 1-based
    access_time: int
    triggered: bool


class ReplacementPolicyExperiment:
    """The paper's Figure 8b experiment."""

    IP_BASE = 0x0042_0000
    N_IPS = 32
    N_REFRESHED = 8

    def __init__(self, params: MachineParams, seed: int = 0) -> None:
        self.params = params.quiet()
        self.seed = seed

    def ip_of(self, input_index: int) -> int:
        return self.IP_BASE + 0x101 * (input_index - 1)

    def run(self, stride_lines: int = 7, probe_line: int = 29) -> list[ReplacementSample]:
        machine = Machine(self.params, seed=self.seed)
        ctx = machine.new_thread("microbench")
        machine.context_switch(ctx)
        array = machine.new_buffer(
            ctx.space, self.N_IPS * PAGE_SIZE, locked=True, name="array"
        )
        machine.warm_buffer_tlb(ctx, array)
        table_size = machine.params.prefetcher.n_entries

        def train(index: int) -> None:
            ip = self.ip_of(index)
            for i in range(5):
                machine.load(ctx, ip, array.page_line_addr(index - 1, i * stride_lines))

        # Fill the whole table with IPs 1..24.
        for index in range(1, table_size + 1):
            train(index)
        machine.hierarchy.flush_all()
        # Refresh IPs 1..8 to a more-recently-used position.
        for index in range(1, self.N_REFRESHED + 1):
            train(index)
        # Train 8 new IPs (25..32), evicting 8 entries.
        for index in range(table_size + 1, self.N_IPS + 1):
            train(index)
        machine.hierarchy.flush_all()

        samples = []
        for index in range(1, self.N_IPS + 1):
            ip = self.ip_of(index)
            vaddr = array.page_line_addr(index - 1, probe_line)
            target = array.page_line_addr(index - 1, probe_line + stride_lines)
            machine.clflush(ctx, target)
            machine.load(ctx, ip, vaddr)
            access_time = machine.load(ctx, ip + 0x4000, target, fenced=True)
            samples.append(
                ReplacementSample(
                    input_index=index,
                    access_time=access_time,
                    triggered=access_time < machine.hit_threshold(),
                )
            )
        return samples

    @staticmethod
    def evicted_inputs(samples: list[ReplacementSample]) -> list[int]:
        return [s.input_index for s in samples if not s.triggered]
