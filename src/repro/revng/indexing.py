"""Listing 2 → Figure 6: how is the history table indexed?

Train IP_1 with a constant multi-line stride, then issue a single load at
IP_2, whose address agrees with IP_1 in exactly the ``n`` least significant
bits.  If the prefetcher fetches ``array[r + stride]``, IP_2 mapped to
IP_1's entry.  The paper's result: any IP sharing the low 8 bits triggers —
and larger matches add nothing, so there is *no tag* over the upper bits.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cpu.machine import Machine
from repro.params import PAGE_SIZE, MachineParams


@dataclass(frozen=True)
class IndexingSample:
    """One bar of Figure 6."""

    matched_bits: int
    access_time: int
    prefetched: bool


class IndexingExperiment:
    """Sweep the number of matched low IP bits (Figure 6's x-axis)."""

    IP_1 = 0x0040_1337  # arbitrary; microbenchmark IPs are attacker-chosen
    TRAIN_ITERATIONS = 5

    def __init__(self, params: MachineParams, stride_lines: int = 7, seed: int = 0) -> None:
        self.params = params.quiet()
        self.stride_lines = stride_lines
        self.seed = seed

    def run(self, max_bits: int = 16, probe_line: int = 40) -> list[IndexingSample]:
        """One sample per matched-bit count, each on a fresh machine."""
        samples = []
        for matched_bits in range(max_bits + 1):
            samples.append(self._one(matched_bits, probe_line))
        return samples

    def _one(self, matched_bits: int, probe_line: int) -> IndexingSample:
        machine = Machine(self.params, seed=self.seed + matched_bits)
        ctx = machine.new_thread("microbench")
        machine.context_switch(ctx)
        array = machine.new_buffer(ctx.space, PAGE_SIZE, name="array")
        machine.warm_buffer_tlb(ctx, array)

        ip_1 = self.IP_1
        for i in range(self.TRAIN_ITERATIONS):
            machine.load(ctx, ip_1, array.line_addr(i * self.stride_lines))

        ip_2 = self._ip_matching(ip_1, matched_bits)
        target = array.line_addr(probe_line + self.stride_lines)
        machine.clflush(ctx, target)
        machine.load(ctx, ip_2, array.line_addr(probe_line))
        access_time = machine.load(ctx, ip_2 + 0x40, target, fenced=True)
        return IndexingSample(
            matched_bits=matched_bits,
            access_time=access_time,
            prefetched=access_time < machine.hit_threshold(),
        )

    @staticmethod
    def _ip_matching(ip_1: int, n_bits: int) -> int:
        """An IP agreeing with ``ip_1`` in exactly the low ``n_bits``.

        Bits [0, n) are copied; bit n is flipped; a fixed displacement keeps
        the instruction elsewhere in the text section.
        """
        base = ip_1 + 0x20_0000  # elsewhere in the binary
        mask = (1 << n_bits) - 1
        candidate = (base & ~mask) | (ip_1 & mask)
        # Force a mismatch at bit n so exactly n low bits match.
        if n_bits < 63 and (candidate >> n_bits) & 1 == (ip_1 >> n_bits) & 1:
            candidate ^= 1 << n_bits
        return candidate
