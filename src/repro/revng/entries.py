"""Listing 5 → Figure 8a: how many entries does the history table have?

``N`` load IPs (distinct low-8 indexes) are trained one after another, each
on its own page frame (to avoid false positives).  Re-accessing each IP and
timing ``page_i[offset + stride]`` shows which entries survived: with
N = 26 the first two no longer trigger, with N = 30 the first six — the
table holds **24** entries.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cpu.machine import Machine
from repro.params import PAGE_SIZE, MachineParams


@dataclass(frozen=True)
class EntrySample:
    """One x-position of Figure 8a."""

    input_index: int  # 1-based, as in the figure
    access_time: int
    triggered: bool


class EntryCountExperiment:
    """The paper's ``num_entry`` microbenchmark (Listing 5)."""

    IP_BASE = 0x0041_0000

    def __init__(self, params: MachineParams, seed: int = 0) -> None:
        self.params = params.quiet()
        self.seed = seed

    def ip_of(self, input_index: int) -> int:
        """IP of load ``input_index`` (1-based); distinct low-8 indexes."""
        return self.IP_BASE + 0x101 * (input_index - 1)

    def run(self, n_inputs: int, stride_lines: int = 7, offset_line: int = 33) -> list[EntrySample]:
        """Train ``n_inputs`` IPs, then re-access and probe each."""
        machine = Machine(self.params, seed=self.seed + n_inputs)
        ctx = machine.new_thread("microbench")
        machine.context_switch(ctx)
        array = machine.new_buffer(
            ctx.space, n_inputs * PAGE_SIZE, locked=True, name="array"
        )
        machine.warm_buffer_tlb(ctx, array)

        # Train each IP on its own page frame, one IP at a time.
        for index in range(1, n_inputs + 1):
            ip = self.ip_of(index)
            for i in range(5):
                machine.load(ctx, ip, array.page_line_addr(index - 1, i * stride_lines))

        # Re-access every IP once, then time its would-be prefetch target.
        samples = []
        for index in range(1, n_inputs + 1):
            ip = self.ip_of(index)
            probe_vaddr = array.page_line_addr(index - 1, offset_line)
            target = array.page_line_addr(index - 1, offset_line + stride_lines)
            machine.clflush(ctx, target)
            machine.load(ctx, ip, probe_vaddr)
            access_time = machine.load(ctx, ip + 0x2000, target, fenced=True)
            samples.append(
                EntrySample(
                    input_index=index,
                    access_time=access_time,
                    triggered=access_time < machine.hit_threshold(),
                )
            )
        return samples

    @staticmethod
    def evicted_inputs(samples: list[EntrySample]) -> list[int]:
        """Input indexes that could no longer trigger the prefetcher."""
        return [s.input_index for s in samples if not s.triggered]
