"""Reverse-engineering microbenchmarks (paper §4).

Each module re-implements one of the paper's Listings 2–5 against the
simulated machine and regenerates the corresponding figure/table data:

* :mod:`repro.revng.indexing` — Listing 2 → Figure 6 (8-bit IP indexing,
  no tag).
* :mod:`repro.revng.stride_policy` — Listing 3 → Figure 7a/7b (confidence
  and stride update policy, unconditional trigger).
* :mod:`repro.revng.page_boundary` — Listing 4 → Table 1 (physical-frame
  page-boundary rule, next-page prefetcher, zero-page sharing).
* :mod:`repro.revng.entries` — Listing 5 → Figure 8a (24 entries).
* :mod:`repro.revng.replacement_policy` — Figure 8b (Bit-PLRU).
* :mod:`repro.revng.sgx_interplay` — §4.6 (prefetched lines survive
  enclave exit).

All run on a ``quiet()`` machine: the paper's microbenchmarks pin cores and
average repeated measurements, which a noise-free model is equivalent to.
"""

from repro.revng.entries import EntryCountExperiment
from repro.revng.indexing import IndexingExperiment
from repro.revng.page_boundary import PageBoundaryExperiment, PageBoundaryRow
from repro.revng.replacement_policy import ReplacementPolicyExperiment
from repro.revng.sgx_interplay import SGXInterplayExperiment
from repro.revng.stride_policy import StrideUpdateExperiment

__all__ = [
    "IndexingExperiment",
    "StrideUpdateExperiment",
    "PageBoundaryExperiment",
    "PageBoundaryRow",
    "EntryCountExperiment",
    "ReplacementPolicyExperiment",
    "SGXInterplayExperiment",
]
