"""Listing 4 → Table 1: page-boundary behaviour of the IP-stride prefetcher.

Two pools are trained side by side:

* ``recl_array`` — untouched anonymous memory: the OS backs every page with
  the shared zero frame, so virtual page boundaries do not cross a
  *physical* frame at all;
* ``lock_array`` — ``MAP_LOCKED``: each page pinned to its own frame.

After training on page 0, a single access lands ``offset`` pages away and
``array[offset + stride]`` is timed.  Expected (Table 1): every recl row is
"prefetchable" (all in one physical frame), lock offset 1 is prefetchable
only thanks to the next-page prefetcher, lock offsets 2–4 are not.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cpu.machine import Machine
from repro.mmu.page_table import PhysicalMemory
from repro.params import PAGE_SIZE, MachineParams


@dataclass(frozen=True)
class PageBoundaryRow:
    """One row of Table 1 for one pool."""

    pool: str  # "recl" or "lock"
    virtual_page_offset: int
    shares_physical_page: bool
    prefetchable: bool
    access_time: int


class PageBoundaryExperiment:
    """The paper's ``page_policy`` microbenchmark (Listing 4)."""

    IP_1 = 0x0040_3100
    IP_2 = 0x0040_31C8

    def __init__(self, params: MachineParams, seed: int = 0) -> None:
        self.params = params.quiet()
        self.seed = seed

    def run(self, stride_lines: int = 7, max_offset: int = 4) -> list[PageBoundaryRow]:
        """Both pools, offsets 1..max_offset — the full Table 1."""
        rows = []
        for offset in range(1, max_offset + 1):
            rows.extend(self._one(offset, stride_lines))
        return rows

    def _one(self, offset: int, stride_lines: int) -> list[PageBoundaryRow]:
        machine = Machine(self.params, seed=self.seed + offset)
        ctx = machine.new_thread("microbench")
        machine.context_switch(ctx)
        n_pages = offset + 2
        recl = machine.new_buffer(
            ctx.space, n_pages * PAGE_SIZE, populate=False, name="recl_array"
        )
        lock = machine.new_buffer(ctx.space, n_pages * PAGE_SIZE, locked=True, name="lock_array")
        # Only the *training* page is TLB-resident; the pages the test
        # accesses land on have never been touched (the §4.3 mechanism).
        machine.warm_tlb(ctx, recl.base)
        machine.warm_tlb(ctx, lock.base)

        # do not cross page: 4 training iterations inside page 0
        for i in range(4):
            machine.load(ctx, self.IP_1, recl.line_addr(i * stride_lines))
            machine.load(ctx, self.IP_2, lock.line_addr(i * stride_lines))

        rows = []
        for pool_name, buffer, ip in (("recl", recl, self.IP_1), ("lock", lock, self.IP_2)):
            test_vaddr = buffer.addr(offset * PAGE_SIZE)
            machine.load(ctx, ip, test_vaddr)
            target = test_vaddr + stride_lines * machine.params.l1d.line_size
            access_time = machine.load(ctx, ip + 0x33, target, fenced=True)
            train_frame = ctx.space.translate(buffer.base) // PAGE_SIZE
            test_frame = ctx.space.translate(test_vaddr) // PAGE_SIZE
            rows.append(
                PageBoundaryRow(
                    pool=pool_name,
                    virtual_page_offset=offset,
                    shares_physical_page=test_frame == train_frame
                    and test_frame == PhysicalMemory.ZERO_FRAME,
                    prefetchable=access_time < machine.hit_threshold(),
                    access_time=access_time,
                )
            )
        return rows

    def second_access_activates(self, stride_lines: int = 7) -> bool:
        """§4.3's narrative check: after a TLB-missing first touch of a new
        (locked) page, the *second* access directly activates the prefetcher."""
        machine = Machine(self.params, seed=self.seed + 99)
        ctx = machine.new_thread("microbench")
        machine.context_switch(ctx)
        lock = machine.new_buffer(ctx.space, 4 * PAGE_SIZE, locked=True, name="lock_array")
        machine.warm_tlb(ctx, lock.base)
        for i in range(4):
            machine.load(ctx, self.IP_2, lock.line_addr(i * stride_lines))
        # First access on page 2: TLB miss, invisible to the prefetcher.
        first = lock.addr(2 * PAGE_SIZE)
        machine.load(ctx, self.IP_2, first)
        # Second access on page 2: TLB now hits; the unconditional trigger
        # fires a prefetch of current + stride.
        second = first + 2 * stride_lines * machine.params.l1d.line_size
        target = second + stride_lines * machine.params.l1d.line_size
        machine.clflush(ctx, target)
        machine.load(ctx, self.IP_2, second)
        latency = machine.load(ctx, self.IP_2 + 7, target, fenced=True)
        return latency < machine.hit_threshold()
