"""Listing 3 → Figure 7 + Algorithm 1: confidence and stride update policy.

Phase 1 trains the entry with stride ``st_1``; phase 2 retrains with
``st_2``.  After each phase-2 access, both candidate prefetch targets are
checked.  The paper's findings, which this experiment regenerates:

* phase-2 access #1 still triggers a prefetch at **st_1** — the trigger is
  unconditional once the confidence reached the threshold (Figure 7a/b);
* with a random inter-phase offset, accesses #2 triggers nothing (the
  stride was rewritten, confidence reset to 1) and #3 finally triggers at
  **st_2** (Figure 7a);
* starting phase 2 exactly ``st_2`` after phase 1 saves a step: access #2
  already triggers at st_2 (Figure 7b).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cpu.machine import Machine
from repro.params import PAGE_SIZE, MachineParams


@dataclass(frozen=True)
class StrideUpdateSample:
    """Observation after one phase-2 training access."""

    iteration: int  # 1-based within phase 2
    st1_triggered: bool
    st2_triggered: bool


class StrideUpdateExperiment:
    """The paper's ``policy_cs`` microbenchmark (Listing 3)."""

    IP_1 = 0x0040_2040

    def __init__(self, params: MachineParams, seed: int = 0) -> None:
        self.params = params.quiet()
        self.seed = seed

    def run(
        self,
        st_1: int = 7,
        st_2: int = 5,
        tr_1: int = 4,
        tr_2: int = 4,
        offset_lines: int | None = None,
    ) -> list[StrideUpdateSample]:
        """Figure 7a uses a random offset (default 3 lines here, i.e. not a
        multiple of either stride); pass ``offset_lines=st_2`` for 7b."""
        if offset_lines is None:
            offset_lines = 3
        machine = Machine(self.params, seed=self.seed)
        ctx = machine.new_thread("microbench")
        machine.context_switch(ctx)
        array = machine.new_buffer(ctx.space, PAGE_SIZE, name="array")
        machine.warm_buffer_tlb(ctx, array)

        line = 0
        for _ in range(tr_1):
            machine.load(ctx, self.IP_1, array.line_addr(line))
            line += st_1
        # flush(array): phase 1's demand/prefetch lines must not shadow
        # phase 2's checks.
        for i in range(array.n_lines):
            machine.clflush(ctx, array.line_addr(i))

        samples = []
        line = line - st_1 + offset_lines
        for iteration in range(1, tr_2 + 1):
            st1_target = array.line_addr(line + st_1)
            st2_target = array.line_addr(line + st_2)
            machine.clflush(ctx, st1_target)
            machine.clflush(ctx, st2_target)
            machine.load(ctx, self.IP_1, array.line_addr(line))
            t1 = machine.load(ctx, self.IP_1 + 5, st1_target, fenced=True)
            t2 = machine.load(ctx, self.IP_1 + 6, st2_target, fenced=True)
            samples.append(
                StrideUpdateSample(
                    iteration=iteration,
                    st1_triggered=t1 < machine.hit_threshold(),
                    st2_triggered=t2 < machine.hit_threshold(),
                )
            )
            line += st_2
        return samples
