"""§4.6: prefetches triggered inside SGX survive the enclave exit.

An in-enclave thread walks a shared buffer with a constant stride; back in
the untrusted zone, the prefetched line is timed.  The paper "always gets a
cache hit for the prefetched cache line", proving that enclave-triggered
prefetches are not invalidated on EEXIT.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cpu.machine import Machine
from repro.params import PAGE_SIZE, MachineParams
from repro.sgx.enclave import Enclave


@dataclass(frozen=True)
class SGXInterplayResult:
    prefetched_line_latency: int
    untouched_line_latency: int
    prefetched_survives_exit: bool


class SGXInterplayExperiment:
    """Strided in-enclave loads; timed from the untrusted zone."""

    def __init__(self, params: MachineParams, seed: int = 0) -> None:
        self.params = params.quiet()
        self.seed = seed

    def run(self, stride_lines: int = 7, n_loads: int = 6) -> SGXInterplayResult:
        machine = Machine(self.params, seed=self.seed)
        untrusted = machine.new_thread("untrusted")
        machine.context_switch(untrusted)
        buffer = machine.new_buffer(untrusted.space, PAGE_SIZE, name="shared")
        machine.warm_buffer_tlb(untrusted, buffer)

        enclave = Enclave(machine, name="probe-enclave")
        view = enclave.map_untrusted(buffer)
        load_ip = enclave.text.place("strided_load", 0x600)

        def strided_walk() -> None:
            machine.warm_buffer_tlb(enclave.ctx, view)
            for i in range(n_loads):
                machine.load(enclave.ctx, load_ip, view.line_addr(i * stride_lines))

        enclave.register_ecall("walk", strided_walk)
        for line in range(buffer.n_lines):
            machine.clflush(untrusted, buffer.line_addr(line))
        enclave.ecall(untrusted, "walk")
        machine.warm_buffer_tlb(untrusted, buffer)

        prefetched_line = n_loads * stride_lines  # one stride past the walk
        untouched_line = prefetched_line + 1
        probe_ip = 0x0074_0000
        t_prefetched = machine.load(
            untrusted, probe_ip, buffer.line_addr(prefetched_line), fenced=True
        )
        t_untouched = machine.load(
            untrusted, probe_ip + 8, buffer.line_addr(untouched_line), fenced=True
        )
        return SGXInterplayResult(
            prefetched_line_latency=t_prefetched,
            untouched_line_latency=t_untouched,
            prefetched_survives_exit=t_prefetched < machine.hit_threshold()
            <= t_untouched,
        )
