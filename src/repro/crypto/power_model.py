"""Cycle-level power-trace model for the Figure 16 t-test experiment.

The paper collects cycle-accurate power traces of AES on a Rocket Chip
(RISC-V) via PrimePower; we substitute the standard first-order CMOS
leakage model the TVLA literature assumes: at the cycle where the
first-round S-box outputs are written back, the instantaneous power is
proportional to their total Hamming weight, riding on Gaussian measurement
noise plus unrelated switching activity.

AfterImage's contribution to the power attack is *when to sample* (paper
§6.3): an attacker who knows the S-box cycle extracts the leaking sample;
one who guesses randomly mostly samples noise.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.crypto.aes import AES128, hamming_weight


@dataclass(frozen=True)
class PowerTraceParams:
    """Shape and noise of one simulated power trace."""

    n_samples: int = 400
    sbox_cycle: int = 57
    #: Power units contributed per Hamming-weight bit at the leak cycle.
    hw_scale: float = 1.0
    #: Std-dev of Gaussian measurement noise per sample.
    noise_sigma: float = 24.0
    #: Std-dev of unrelated switching activity (data-independent).
    activity_sigma: float = 6.0
    #: Baseline (static) power level.
    baseline: float = 50.0

    def __post_init__(self) -> None:
        if not 0 <= self.sbox_cycle < self.n_samples:
            raise ValueError("sbox_cycle must fall inside the trace")


class PowerModel:
    """Generate power traces of AES-128 encryptions."""

    def __init__(self, aes: AES128, params: PowerTraceParams, rng: np.random.Generator) -> None:
        self.aes = aes
        self.params = params
        self._rng = rng

    def trace(self, plaintext: bytes) -> np.ndarray:
        """One power trace for encrypting ``plaintext``."""
        p = self.params
        trace = p.baseline + self._rng.normal(0.0, p.noise_sigma, size=p.n_samples)
        trace += np.abs(self._rng.normal(0.0, p.activity_sigma, size=p.n_samples))
        leak = sum(hamming_weight(b) for b in self.aes.first_round_sbox_outputs(plaintext))
        trace[p.sbox_cycle] += p.hw_scale * leak
        return trace

    def traces(self, plaintexts: list[bytes]) -> np.ndarray:
        """Stack of traces, one row per plaintext."""
        if not plaintexts:
            raise ValueError("need at least one plaintext")
        return np.vstack([self.trace(pt) for pt in plaintexts])

    def random_plaintext(self) -> bytes:
        return bytes(int(b) for b in self._rng.integers(0, 256, size=16))

    def low_weight_plaintext(self, search_rounds: int = 4096) -> bytes:
        """A fixed plaintext whose first-round S-box outputs have *low* total
        Hamming weight, so the fixed-vs-random t statistic comes out
        negative, matching the sign convention of the paper's Figure 16
        (leakage ≈ −18.8 against a −4.5 threshold)."""
        best: bytes | None = None
        best_weight = 10**9
        for _ in range(search_rounds):
            candidate = self.random_plaintext()
            weight = sum(
                hamming_weight(b) for b in self.aes.first_round_sbox_outputs(candidate)
            )
            if weight < best_weight:
                best, best_weight = candidate, weight
        assert best is not None
        return best
