"""Cryptographic victim applications.

Real RSA and AES implementations whose *load-instruction structure* mirrors
the code the paper attacks: the Montgomery-ladder / timing-constant RSA
engines of MbedTLS (paper Figures 3–4) and a table-based AES whose first
round S-box lookups drive the power-analysis t-test (Figure 16).
"""

from repro.crypto.aes import AES128
from repro.crypto.power_model import PowerModel, PowerTraceParams
from repro.crypto.primes import generate_keypair, generate_prime, is_probable_prime, RSAKey
from repro.crypto.rsa import (
    MontgomeryLadderVictim,
    SquareAndMultiplyVictim,
    TimingConstantLadderVictim,
    montgomery_ladder_modexp,
)
from repro.crypto.ttable import TTableAESVictim, ttable_offsets

__all__ = [
    "AES128",
    "PowerModel",
    "PowerTraceParams",
    "RSAKey",
    "generate_keypair",
    "generate_prime",
    "is_probable_prime",
    "montgomery_ladder_modexp",
    "MontgomeryLadderVictim",
    "TimingConstantLadderVictim",
    "SquareAndMultiplyVictim",
    "TTableAESVictim",
    "ttable_offsets",
]
