"""Prime generation and RSA key material (pure Python, no external crypto)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.rng import make_rng

#: Small primes for fast trial division before Miller-Rabin.
_SMALL_PRIMES = (
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67,
    71, 73, 79, 83, 89, 97, 101, 103, 107, 109, 113, 127, 131, 137, 139, 149,
)


def is_probable_prime(n: int, rng: np.random.Generator, rounds: int = 40) -> bool:
    """Miller-Rabin primality test with ``rounds`` random witnesses."""
    if n < 2:
        return False
    for p in _SMALL_PRIMES:
        if n == p:
            return True
        if n % p == 0:
            return False
    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for _ in range(rounds):
        a = 2 + int(rng.integers(0, min(n - 4, 2**62)))
        x = pow(a, d, n)
        if x in (1, n - 1):
            continue
        for _ in range(r - 1):
            x = x * x % n
            if x == n - 1:
                break
        else:
            return False
    return True


def generate_prime(bits: int, rng: np.random.Generator) -> int:
    """Generate a random prime of exactly ``bits`` bits."""
    if bits < 8:
        raise ValueError(f"need at least 8 bits, got {bits}")
    while True:
        chunks = [int(rng.integers(0, 2**32)) for _ in range((bits + 31) // 32)]
        candidate = 0
        for chunk in chunks:
            candidate = (candidate << 32) | chunk
        candidate &= (1 << bits) - 1
        candidate |= (1 << (bits - 1)) | 1  # exact bit length, odd
        if is_probable_prime(candidate, rng):
            return candidate


@dataclass(frozen=True)
class RSAKey:
    """An RSA keypair.  ``d`` is the private exponent AfterImage recovers."""

    n: int
    e: int
    d: int
    p: int
    q: int

    @property
    def modulus_bits(self) -> int:
        return self.n.bit_length()

    @property
    def private_exponent_bits(self) -> int:
        return self.d.bit_length()

    def encrypt(self, message: int) -> int:
        if not 0 <= message < self.n:
            raise ValueError("message out of range for modulus")
        return pow(message, self.e, self.n)

    def decrypt(self, ciphertext: int) -> int:
        if not 0 <= ciphertext < self.n:
            raise ValueError("ciphertext out of range for modulus")
        return pow(ciphertext, self.d, self.n)


def generate_keypair(bits: int = 512, rng: np.random.Generator | None = None) -> RSAKey:
    """Generate an RSA keypair with a ``bits``-bit modulus.

    512-bit keys keep the simulated end-to-end attack fast; the paper's
    1024-bit figure is reproduced by projection (DESIGN.md §5).
    """
    if rng is None:
        rng = make_rng(2023)
    if bits < 32 or bits % 2:
        raise ValueError(f"modulus bits must be even and >= 32, got {bits}")
    e = 65537
    while True:
        p = generate_prime(bits // 2, rng)
        q = generate_prime(bits // 2, rng)
        if p == q:
            continue
        phi = (p - 1) * (q - 1)
        if phi % e == 0:
            continue
        d = pow(e, -1, phi)
        return RSAKey(n=p * q, e=e, d=d, p=p, q=q)
