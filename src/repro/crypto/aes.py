"""Table-based AES-128 (FIPS-197).

A complete, tested implementation: the power-analysis experiment (paper
Figure 16) needs the real first-round S-box outputs ``SBOX[pt[i] ^ k[i]]``,
because those are the values whose Hamming weight leaks on the power rail.
Encryption and decryption are both provided; tests check the FIPS-197 and
NIST-SP800-38A vectors.
"""

from __future__ import annotations


def _build_sbox() -> tuple[list[int], list[int]]:
    """Compute the AES S-box and its inverse from GF(2^8) arithmetic."""
    # Multiplicative inverse table via exp/log over generator 3.
    exp = [0] * 512
    log = [0] * 256
    x = 1
    for i in range(255):
        exp[i] = x
        log[x] = i
        x ^= (x << 1) ^ (0x11B if x & 0x80 else 0)
        x &= 0xFF
    for i in range(255, 512):
        exp[i] = exp[i - 255]

    def inverse(a: int) -> int:
        return 0 if a == 0 else exp[255 - log[a]]

    sbox = [0] * 256
    inv_sbox = [0] * 256
    for value in range(256):
        b = inverse(value)
        transformed = 0x63
        for shift in (0, 1, 2, 3, 4):
            transformed ^= ((b << shift) | (b >> (8 - shift))) & 0xFF
        transformed &= 0xFF
        sbox[value] = transformed
        inv_sbox[transformed] = value
    return sbox, inv_sbox


SBOX, INV_SBOX = _build_sbox()

_RCON = (0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1B, 0x36)


def _xtime(a: int) -> int:
    a <<= 1
    if a & 0x100:
        a ^= 0x11B
    return a & 0xFF


def _gmul(a: int, b: int) -> int:
    """GF(2^8) multiplication."""
    result = 0
    while b:
        if b & 1:
            result ^= a
        a = _xtime(a)
        b >>= 1
    return result


def hamming_weight(value: int) -> int:
    """Number of set bits — the standard first-order power-leakage model."""
    return bin(value).count("1")


class AES128:
    """AES with a 128-bit key.  State is column-major, as in FIPS-197."""

    BLOCK_SIZE = 16
    N_ROUNDS = 10

    def __init__(self, key: bytes) -> None:
        if len(key) != 16:
            raise ValueError(f"AES-128 key must be 16 bytes, got {len(key)}")
        self.key = bytes(key)
        self._round_keys = self._expand_key(key)

    @staticmethod
    def _expand_key(key: bytes) -> list[list[int]]:
        """Expand to 11 round keys of 16 bytes each."""
        words = [list(key[4 * i : 4 * i + 4]) for i in range(4)]
        for i in range(4, 44):
            temp = list(words[i - 1])
            if i % 4 == 0:
                temp = temp[1:] + temp[:1]
                temp = [SBOX[b] for b in temp]
                temp[0] ^= _RCON[i // 4 - 1]
            words.append([a ^ b for a, b in zip(words[i - 4], temp)])
        round_keys = []
        for round_index in range(11):
            flat = []
            for word in words[4 * round_index : 4 * round_index + 4]:
                flat.extend(word)
            round_keys.append(flat)
        return round_keys

    def first_round_sbox_outputs(self, plaintext: bytes) -> list[int]:
        """``SBOX[pt[i] ^ key[i]]`` for each byte — the Figure 16 leak target."""
        self._check_block(plaintext)
        return [SBOX[p ^ k] for p, k in zip(plaintext, self._round_keys[0])]

    def encrypt_block(self, plaintext: bytes) -> bytes:
        self._check_block(plaintext)
        state = [p ^ k for p, k in zip(plaintext, self._round_keys[0])]
        for round_index in range(1, self.N_ROUNDS):
            state = [SBOX[b] for b in state]
            state = self._shift_rows(state)
            state = self._mix_columns(state)
            state = [b ^ k for b, k in zip(state, self._round_keys[round_index])]
        state = [SBOX[b] for b in state]
        state = self._shift_rows(state)
        state = [b ^ k for b, k in zip(state, self._round_keys[10])]
        return bytes(state)

    def decrypt_block(self, ciphertext: bytes) -> bytes:
        self._check_block(ciphertext)
        state = [c ^ k for c, k in zip(ciphertext, self._round_keys[10])]
        state = self._inv_shift_rows(state)
        state = [INV_SBOX[b] for b in state]
        for round_index in range(self.N_ROUNDS - 1, 0, -1):
            state = [b ^ k for b, k in zip(state, self._round_keys[round_index])]
            state = self._inv_mix_columns(state)
            state = self._inv_shift_rows(state)
            state = [INV_SBOX[b] for b in state]
        state = [b ^ k for b, k in zip(state, self._round_keys[0])]
        return bytes(state)

    @staticmethod
    def _check_block(block: bytes) -> None:
        if len(block) != AES128.BLOCK_SIZE:
            raise ValueError(f"block must be 16 bytes, got {len(block)}")

    @staticmethod
    def _shift_rows(state: list[int]) -> list[int]:
        out = list(state)
        for row in range(1, 4):
            cells = [state[row + 4 * col] for col in range(4)]
            cells = cells[row:] + cells[:row]
            for col in range(4):
                out[row + 4 * col] = cells[col]
        return out

    @staticmethod
    def _inv_shift_rows(state: list[int]) -> list[int]:
        out = list(state)
        for row in range(1, 4):
            cells = [state[row + 4 * col] for col in range(4)]
            cells = cells[-row:] + cells[:-row]
            for col in range(4):
                out[row + 4 * col] = cells[col]
        return out

    @staticmethod
    def _mix_columns(state: list[int]) -> list[int]:
        out = [0] * 16
        for col in range(4):
            a = state[4 * col : 4 * col + 4]
            out[4 * col + 0] = _gmul(a[0], 2) ^ _gmul(a[1], 3) ^ a[2] ^ a[3]
            out[4 * col + 1] = a[0] ^ _gmul(a[1], 2) ^ _gmul(a[2], 3) ^ a[3]
            out[4 * col + 2] = a[0] ^ a[1] ^ _gmul(a[2], 2) ^ _gmul(a[3], 3)
            out[4 * col + 3] = _gmul(a[0], 3) ^ a[1] ^ a[2] ^ _gmul(a[3], 2)
        return out

    @staticmethod
    def _inv_mix_columns(state: list[int]) -> list[int]:
        out = [0] * 16
        for col in range(4):
            a = state[4 * col : 4 * col + 4]
            out[4 * col + 0] = _gmul(a[0], 14) ^ _gmul(a[1], 11) ^ _gmul(a[2], 13) ^ _gmul(a[3], 9)
            out[4 * col + 1] = _gmul(a[0], 9) ^ _gmul(a[1], 14) ^ _gmul(a[2], 11) ^ _gmul(a[3], 13)
            out[4 * col + 2] = _gmul(a[0], 13) ^ _gmul(a[1], 9) ^ _gmul(a[2], 14) ^ _gmul(a[3], 11)
            out[4 * col + 3] = _gmul(a[0], 11) ^ _gmul(a[1], 13) ^ _gmul(a[2], 9) ^ _gmul(a[3], 14)
        return out
