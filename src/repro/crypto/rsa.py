"""RSA modular-exponentiation victims with the paper's load structure.

Three engines over real bignum arithmetic:

* :class:`SquareAndMultiplyVictim` — the classic leaky baseline (the
  multiply only happens for 1-bits; trivially timing-leaky).
* :class:`MontgomeryLadderVictim` — the MbedTLS Montgomery-Ladder engine of
  the paper's Figure 3: both branch directions call ``multiply_add`` so the
  *timing* is balanced, but the operand-preparation loads before the call
  sit at different IPs in the two directions.
* :class:`TimingConstantLadderVictim` — the ``X->s = s`` / ``X->s = -s``
  timing-constant pattern of Figure 4 layered on the ladder.

All three expose a *stepper* interface (one key bit per step) so attack
code can interleave with the victim exactly the way ``sched_yield()``-based
synchronization does in the paper's §6.2.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cpu.code import CodeRegion
from repro.cpu.context import ThreadContext
from repro.cpu.machine import Machine
from repro.mmu.buffer import Buffer

#: Cycles a ~512-bit modular multiply-add costs the victim (compute model).
MULTIPLY_ADD_CYCLES = 4_000


def montgomery_ladder_modexp(base: int, exponent: int, modulus: int) -> int:
    """Pure (victim-free) Montgomery-ladder ``base**exponent % modulus``.

    The reference the simulated victims are tested against.
    """
    if modulus <= 0:
        raise ValueError("modulus must be positive")
    r0, r1 = 1, base % modulus
    for i in range(exponent.bit_length() - 1, -1, -1):
        if (exponent >> i) & 1:
            r0 = r0 * r1 % modulus
            r1 = r1 * r1 % modulus
        else:
            r1 = r0 * r1 % modulus
            r0 = r0 * r0 % modulus
    return r0


@dataclass
class _LadderState:
    """In-flight exponentiation state, advanced one key bit per step."""

    base: int
    exponent: int
    modulus: int
    bit_index: int  # next bit to process (MSB first)
    r0: int = 1
    r1: int = 0

    @property
    def done(self) -> bool:
        return self.bit_index < 0

    def current_bit(self) -> int:
        return (self.exponent >> self.bit_index) & 1


class _RsaVictimBase:
    """Shared plumbing: code layout, operand buffer, stepper protocol."""

    #: Offsets of the branch-direction loads inside the victim image.  The
    #: concrete values are arbitrary; what matters is that the two loads
    #: have *different* low-8 IP bits (they are distinct instructions).
    IF_LOAD_OFFSET = 0x1528
    ELSE_LOAD_OFFSET = 0x15D4

    def __init__(
        self,
        machine: Machine,
        ctx: ThreadContext,
        code: CodeRegion,
        operands: Buffer,
        if_label: str = "rsa_if_load",
        else_label: str = "rsa_else_load",
    ) -> None:
        self.machine = machine
        self.ctx = ctx
        self.code = code
        self.operands = operands
        self.if_load_ip = code.place(if_label, self.IF_LOAD_OFFSET)
        self.else_load_ip = code.place(else_label, self.ELSE_LOAD_OFFSET)
        self._state: _LadderState | None = None
        self._steps = 0
        machine.warm_buffer_tlb(ctx, operands)

    # -- stepper protocol ------------------------------------------------ #

    def start(self, base: int, exponent: int, modulus: int) -> None:
        """Begin an exponentiation; bits are consumed MSB-first by step()."""
        if exponent <= 0:
            raise ValueError("exponent must be positive")
        self._state = _LadderState(
            base=base % modulus,
            exponent=exponent,
            modulus=modulus,
            bit_index=exponent.bit_length() - 1,
            r1=base % modulus,
        )

    @property
    def running(self) -> bool:
        return self._state is not None and not self._state.done

    def step(self) -> bool:
        """Process one key bit; returns False when the exponent is consumed."""
        state = self._state
        if state is None:
            raise RuntimeError("step() before start()")
        if state.done:
            return False
        self._consume_bit(state, state.current_bit())
        state.bit_index -= 1
        self._steps += 1
        return not state.done

    def result(self) -> int:
        """Final value once all bits are processed."""
        state = self._state
        if state is None or not state.done:
            raise RuntimeError("exponentiation not finished")
        return state.r0

    def run_to_completion(self) -> int:
        while self.step():
            pass
        return self.result()

    def modexp(self, base: int, exponent: int, modulus: int) -> int:
        """Convenience: full exponentiation with side effects."""
        self.start(base, exponent, modulus)
        return self.run_to_completion()

    # -- hooks ------------------------------------------------------------ #

    def _consume_bit(self, state: _LadderState, bit: int) -> None:
        raise NotImplementedError

    def _operand_load(self, ip: int) -> None:
        """One operand-preparation load at the branch direction's IP."""
        vaddr = self.operands.line_addr(self._steps % self.operands.n_lines)
        self.machine.warm_tlb(self.ctx, vaddr)
        self.machine.load(self.ctx, ip, vaddr)


class SquareAndMultiplyVictim(_RsaVictimBase):
    """Leaky baseline: the multiply (and its operand load) only runs for 1s."""

    def _consume_bit(self, state: _LadderState, bit: int) -> None:
        state.r0 = state.r0 * state.r0 % state.modulus
        self.machine.advance(MULTIPLY_ADD_CYCLES)
        if bit:
            self._operand_load(self.if_load_ip)
            state.r0 = state.r0 * state.base % state.modulus
            self.machine.advance(MULTIPLY_ADD_CYCLES)


class MontgomeryLadderVictim(_RsaVictimBase):
    """Figure 3: both directions multiply, each preceded by its own load."""

    def _consume_bit(self, state: _LadderState, bit: int) -> None:
        if bit:
            self._operand_load(self.if_load_ip)
            state.r0 = state.r0 * state.r1 % state.modulus
            state.r1 = state.r1 * state.r1 % state.modulus
        else:
            self._operand_load(self.else_load_ip)
            state.r1 = state.r0 * state.r1 % state.modulus
            state.r0 = state.r0 * state.r0 % state.modulus
        # Both paths: multiply_add(); clflush(); — identical timing.
        self.machine.advance(2 * MULTIPLY_ADD_CYCLES)


class TimingConstantLadderVictim(MontgomeryLadderVictim):
    """Figure 4's ``X->s = ±s`` conditional-negation pattern on the ladder.

    The sign fix-up adds one more direction-dependent load per bit, at IPs
    further down the function — the number of loads per direction stays
    equal (the engine remains timing-constant), but their IPs differ, which
    is all AfterImage needs (paper §2.1).
    """

    SIGN_IF_OFFSET = 0x1688
    SIGN_ELSE_OFFSET = 0x1730

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.sign_if_ip = self.code.place("rsa_sign_if_load", self.SIGN_IF_OFFSET)
        self.sign_else_ip = self.code.place("rsa_sign_else_load", self.SIGN_ELSE_OFFSET)

    def _consume_bit(self, state: _LadderState, bit: int) -> None:
        super()._consume_bit(state, bit)
        self._operand_load(self.sign_if_ip if bit else self.sign_else_ip)
