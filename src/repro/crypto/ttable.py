"""T-table AES first round as a machine victim.

OpenSSL-style table-based AES replaces the first-round S-box with lookups
into 1 KiB "T-tables" indexed by ``pt[i] ^ key[i]`` — a *data*-dependent
load address at a *fixed* IP.  That is the complementary shape to the
branch victims: the secret modulates the stride/last-address state of one
IP-stride entry instead of selecting which entry gets touched, which is
exactly what the leakcheck abstract domain tracks at byte granularity.

:func:`ttable_offsets` is the pure index computation (shared with
:mod:`repro.leakcheck.victims`); :class:`TTableAESVictim` executes the
same lookups on a :class:`~repro.cpu.Machine` for dynamic experiments.
"""

from __future__ import annotations

from repro.core.variant1 import VICTIM_TEXT_BASE
from repro.cpu.context import ThreadContext
from repro.cpu.machine import Machine
from repro.params import PAGE_SIZE

#: Offset of the (single) T-table load instruction in the victim image.
TTABLE_LOAD_OFFSET = 0x09C0

#: One table entry is a 32-bit word.
TTABLE_ENTRY_BYTES = 4


def ttable_offsets(key: bytes, plaintext: bytes) -> list[int]:
    """Byte offsets of the first-round T-table lookups, in access order."""
    if len(key) != len(plaintext):
        raise ValueError(
            f"key and plaintext lengths differ ({len(key)} vs {len(plaintext)})"
        )
    return [(p ^ k) * TTABLE_ENTRY_BYTES for p, k in zip(plaintext, key)]


class TTableAESVictim:
    """First-round T-table lookups, executed on the simulated machine."""

    def __init__(
        self,
        machine: Machine,
        ctx: ThreadContext,
        key: bytes,
        text_base: int = VICTIM_TEXT_BASE,
    ) -> None:
        if len(key) != 16:
            raise ValueError(f"AES-128 key must be 16 bytes, got {len(key)}")
        self.machine = machine
        self.ctx = ctx
        self.key = bytes(key)
        code = machine.code_region(text_base, name="aes-victim")
        self.lookup_ip = code.place("ttable_lookup", TTABLE_LOAD_OFFSET)
        # The 256 x 4-byte table fits comfortably in one page, so every
        # lookup shares one physical frame (no page-boundary effects).
        self.table = machine.new_buffer(ctx.space, PAGE_SIZE, name="aes-ttable")
        machine.warm_buffer_tlb(ctx, self.table)

    def first_round(self, plaintext: bytes) -> None:
        """Execute the 16 first-round lookups for one block."""
        for offset in ttable_offsets(self.key, plaintext):
            vaddr = self.table.addr(offset)
            self.machine.warm_tlb(self.ctx, vaddr)
            self.machine.load(self.ctx, self.lookup_ip, vaddr)
