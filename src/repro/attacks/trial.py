"""The unified result schema every registered attack emits.

The paper's evaluation treats its attacks as one family — train an
IP-stride entry, perturb it, measure — so their outcomes share one shape:
per round, a ground-truth outcome, the outcome the attacker inferred, and
whether they agree.  :class:`Trial` captures one such round (keeping the
attack's rich result dataclass as an opaque ``payload``);
:class:`TrialBatch` is one scenario execution — a machine, a seed, a list
of trials, the scored quality figure, and serializable machine snapshots
(span profile + metrics) so batches survive a ``multiprocessing`` hop
where the :class:`~repro.cpu.machine.Machine` itself cannot.

Batches from a trial matrix (attack × seed × machine) merge with
:meth:`TrialBatch.merge`, which recomputes the aggregate success rate from
the union of trials — the executor's fan-out therefore cannot change any
aggregate number, only the wall-clock it takes to produce it.

Batches also round-trip through plain dicts: ``TrialBatch.from_dict(
batch.as_dict())`` reconstructs every aggregate-bearing field, which is
what lets the :mod:`repro.campaign` trial store persist cells as JSONL and
serve them back on a resumed campaign.  The one deliberate loss is the
per-trial ``payload`` (the attack's rich result object): it is excluded
from :meth:`Trial.as_dict` and comes back as ``None``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any


@dataclass(frozen=True)
class Trial:
    """One observation round of one attack.

    ``true_outcome``/``inferred_outcome`` are small JSON-able values (a
    bit, an arm name, a symbol); ``payload`` carries the attack's original
    rich result object and is excluded from :meth:`as_dict`.  ``cycles``
    and ``spans`` attribute the round's simulated time; attacks whose
    rounds are not individually driven (e.g. a monolithic key recovery)
    report zero there and rely on the batch-level profile.
    """

    index: int
    true_outcome: Any
    inferred_outcome: Any
    success: bool
    cycles: int = 0
    spans: dict[str, int] = field(default_factory=dict)
    payload: Any = None

    def as_dict(self) -> dict[str, Any]:
        return {
            "index": self.index,
            "true_outcome": self.true_outcome,
            "inferred_outcome": self.inferred_outcome,
            "success": self.success,
            "cycles": self.cycles,
            "spans": dict(self.spans),
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "Trial":
        """Rebuild a trial from :meth:`as_dict` output (payload is lost)."""
        return cls(
            index=int(data["index"]),
            true_outcome=data["true_outcome"],
            inferred_outcome=data["inferred_outcome"],
            success=bool(data["success"]),
            cycles=int(data.get("cycles", 0)),
            spans={str(k): int(v) for k, v in (data.get("spans") or {}).items()},
            payload=None,
        )


@dataclass
class TrialBatch:
    """All trials of one scenario execution, plus machine snapshots."""

    attack: str
    seed: int
    machine: str
    rounds: int
    trials: list[Trial]
    quality: float
    detail: str
    simulated_cycles: int
    spans: dict[str, Any] = field(default_factory=dict)
    metrics: dict[str, Any] = field(default_factory=dict)
    notes: dict[str, Any] = field(default_factory=dict)

    @property
    def n_trials(self) -> int:
        return len(self.trials)

    @property
    def successes(self) -> int:
        return sum(1 for trial in self.trials if trial.success)

    @property
    def success_rate(self) -> float:
        if not self.trials:
            return 0.0
        return self.successes / len(self.trials)

    @property
    def wall_seconds(self) -> float:
        """Host seconds attributed to the ``total`` span (0.0 if absent)."""
        total = self.spans.get("total")
        return float(total["wall_seconds"]) if total else 0.0

    def as_dict(self) -> dict[str, Any]:
        return {
            "attack": self.attack,
            "seed": self.seed,
            "machine": self.machine,
            "rounds": self.rounds,
            "n_trials": self.n_trials,
            "successes": self.successes,
            "success_rate": self.success_rate,
            "quality": self.quality,
            "detail": self.detail,
            "simulated_cycles": self.simulated_cycles,
            "spans": self.spans,
            "metrics": self.metrics,
            "notes": self.notes,
            "trials": [trial.as_dict() for trial in self.trials],
        }

    def wall_clock_free_dict(self) -> dict[str, Any]:
        """:meth:`as_dict` with host wall-clock stripped from the spans.

        This is the canonical determinism view: every field left is
        derived from the seed, so two same-seed runs — serial, pooled,
        cached, retried, telemetry on or off — must serialize to
        byte-identical JSON.  Both the campaign aggregates and the
        telemetry benches compare exactly this.
        """
        data = self.as_dict()
        data["spans"] = {
            name: {k: v for k, v in stats.items() if k != "wall_seconds"}
            for name, stats in data["spans"].items()
        }
        return data

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "TrialBatch":
        """Rebuild a batch from :meth:`as_dict` output (the store read path).

        The derived aggregates (``n_trials``, ``successes``,
        ``success_rate``) are recomputed from the trial list; when the dict
        carries them they are cross-checked, so a record whose trial lines
        were truncated fails loudly here instead of serving wrong numbers.
        """
        trials = [Trial.from_dict(t) for t in data.get("trials", [])]
        if "n_trials" in data and int(data["n_trials"]) != len(trials):
            raise ValueError(
                f"corrupt batch record: n_trials={data['n_trials']} but "
                f"{len(trials)} trials present"
            )
        successes = sum(1 for trial in trials if trial.success)
        if "successes" in data and int(data["successes"]) != successes:
            raise ValueError(
                f"corrupt batch record: successes={data['successes']} but "
                f"trials contain {successes}"
            )
        return cls(
            attack=str(data["attack"]),
            seed=int(data["seed"]),
            machine=str(data["machine"]),
            rounds=int(data["rounds"]),
            trials=trials,
            quality=float(data["quality"]),
            detail=str(data["detail"]),
            simulated_cycles=int(data["simulated_cycles"]),
            spans=dict(data.get("spans") or {}),
            metrics=dict(data.get("metrics") or {}),
            notes=dict(data.get("notes") or {}),
        )

    @classmethod
    def merge(cls, batches: list["TrialBatch"]) -> "TrialBatch":
        """Aggregate same-attack batches (one matrix cell over many seeds).

        Trials are concatenated in batch order; the merged quality is the
        plain success rate over the union — every builtin scorer's quality
        coincides with it, so merging commutes with scoring.  Metrics
        counters are summed; non-numeric metric values are dropped.

        The merged batch's scalar ``seed``/``machine`` fields can only hold
        one value, so the full provenance — every constituent seed in batch
        order and the set of machines — is recorded in ``notes`` under
        ``merged_seeds``/``merged_machines``; a merged artifact written to
        disk stays reproducible without the raw batches.
        """
        if not batches:
            raise ValueError("cannot merge zero batches")
        names = {batch.attack for batch in batches}
        if len(names) != 1:
            raise ValueError(f"refusing to merge different attacks: {sorted(names)}")
        if len(batches) == 1:
            return batches[0]
        trials: list[Trial] = []
        for batch in batches:
            trials.extend(batch.trials)
        spans: dict[str, dict[str, Any]] = {}
        for batch in batches:
            for name, stats in batch.spans.items():
                agg = spans.setdefault(
                    name, {"count": 0, "cycles": 0, "wall_seconds": 0.0}
                )
                agg["count"] += stats["count"]
                agg["cycles"] += stats["cycles"]
                agg["wall_seconds"] += stats["wall_seconds"]
        metrics: dict[str, Any] = {}
        for batch in batches:
            for key, value in batch.metrics.items():
                if isinstance(value, bool) or not isinstance(value, (int, float)):
                    continue
                metrics[key] = metrics.get(key, 0) + value
        successes = sum(1 for trial in trials if trial.success)
        quality = successes / len(trials) if trials else 0.0
        return cls(
            attack=batches[0].attack,
            seed=batches[0].seed,
            machine=batches[0].machine,
            rounds=sum(batch.rounds for batch in batches),
            trials=trials,
            quality=quality,
            detail=(
                f"{successes}/{len(trials)} trials succeeded "
                f"across {len(batches)} batches"
            ),
            simulated_cycles=sum(batch.simulated_cycles for batch in batches),
            spans=spans,
            metrics=metrics,
            notes={
                "merged_batches": len(batches),
                "merged_seeds": [batch.seed for batch in batches],
                "merged_machines": sorted({batch.machine for batch in batches}),
            },
        )
