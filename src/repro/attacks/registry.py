"""The attack registry: one source of truth for every attack consumer.

Before this module existed the repo wired its eight attacks by hand in
four places (the CLI, the observability runner, the report generator and
the benchmark harness), each with its own dispatch table and result
handling; the ``sgx`` and ``switch-leak`` attacks were simply missing from
the tools whose tables nobody extended.  Here an attack registers exactly
once::

    @register_attack(
        "variant1", "cross-process Flush+Reload (Fig. 13c)",
        default_rounds=40, covers=("Variant1CrossProcess",),
    )
    def _variant1(machine, rng, **options):
        return _SomeScenario(machine, rng, **options)

and every consumer — ``afterimage run/trace/metrics``, the report, the
bench harness, the parallel :class:`~repro.attacks.executor.TrialExecutor`
— discovers it through :func:`attack_names`/:func:`get_attack`.

``covers`` names the :mod:`repro.core` classes the spec drives; lint rule
RL012 cross-checks it so a future attack class cannot bypass the registry.
``leakcheck_victim`` links the spec to the :mod:`repro.leakcheck` victim
modeling the same program, tying the dynamic and static registries
together.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Protocol, runtime_checkable

from repro.attacks.trial import Trial, TrialBatch
from repro.params import DEFAULT_MACHINE, MachineParams
from repro.utils.rng import make_rng

if TYPE_CHECKING:
    from repro.cpu.machine import Machine
    from repro.obs.tracer import Tracer


@runtime_checkable
class Attack(Protocol):
    """What a scenario factory must return: an object that runs trials.

    ``notes`` is optional scenario-level metadata (bandwidth, IP-search
    stats, ...) surfaced on the resulting :class:`TrialBatch`; scenarios
    without extras can omit the attribute entirely.
    """

    def run_trials(self, rounds: int) -> list[Trial]: ...


#: Scorer signature: (trials, notes) -> (scalar quality, human detail).
Scorer = Callable[[list[Trial], dict[str, Any]], tuple[float, str]]


def success_rate_score(trials: list[Trial], notes: dict[str, Any]) -> tuple[float, str]:
    """The default quality scorer: fraction of successful trials."""
    if not trials:
        return 0.0, "no trials ran"
    wins = sum(1 for trial in trials if trial.success)
    return wins / len(trials), f"{wins}/{len(trials)} trials succeeded"


@dataclass(frozen=True)
class AttackSpec:
    """One registered attack: identity, defaults, factory, scorer."""

    name: str
    description: str
    default_rounds: int
    scenario: Callable[..., Attack]
    score: Scorer = success_rate_score
    covers: tuple[str, ...] = ()
    leakcheck_victim: str | None = None


_REGISTRY: dict[str, AttackSpec] = {}


def register_attack(
    name: str,
    description: str,
    default_rounds: int,
    score: Scorer = success_rate_score,
    covers: tuple[str, ...] = (),
    leakcheck_victim: str | None = None,
) -> Callable[[Callable[..., Attack]], Callable[..., Attack]]:
    """Decorator registering a scenario factory as attack ``name``."""
    if default_rounds <= 0:
        raise ValueError(f"default_rounds must be positive, got {default_rounds}")

    def decorate(factory: Callable[..., Attack]) -> Callable[..., Attack]:
        if name in _REGISTRY:
            raise ValueError(f"attack {name!r} is already registered")
        _REGISTRY[name] = AttackSpec(
            name=name,
            description=description,
            default_rounds=default_rounds,
            scenario=factory,
            score=score,
            covers=covers,
            leakcheck_victim=leakcheck_victim,
        )
        return factory

    return decorate


def _ensure_builtin() -> None:
    # Importing the builtin module runs its @register_attack decorators.
    import repro.attacks.builtin  # noqa: F401


def attack_names() -> tuple[str, ...]:
    """Every registered attack name, in registration order."""
    _ensure_builtin()
    return tuple(_REGISTRY)


def get_attack(name: str) -> AttackSpec:
    _ensure_builtin()
    if name not in _REGISTRY:
        raise ValueError(
            f"unknown attack {name!r}; known: {', '.join(_REGISTRY)}"
        )
    return _REGISTRY[name]


def all_specs() -> tuple[AttackSpec, ...]:
    _ensure_builtin()
    return tuple(_REGISTRY.values())


def registered_covers() -> frozenset[str]:
    """Union of every spec's ``covers`` — the RL012 allow-list."""
    _ensure_builtin()
    return frozenset(
        class_name for spec in _REGISTRY.values() for class_name in spec.covers
    )


# --------------------------------------------------------------------- #
# Execution                                                              #
# --------------------------------------------------------------------- #


def run_on_machine(
    name: str,
    machine: "Machine",
    seed: int = 2023,
    rounds: int | None = None,
    options: dict[str, Any] | None = None,
) -> TrialBatch:
    """Run attack ``name`` on an existing machine; returns the scored batch.

    The scenario is constructed *inside* the ``total`` span so setup work
    (eviction-set building, IP search) is attributed like any other phase.
    The attack's round RNG is seeded independently of the machine, exactly
    as the pre-registry runner did.
    """
    spec = get_attack(name)
    if rounds is None:
        rounds = spec.default_rounds
    if rounds <= 0:
        raise ValueError(f"rounds must be positive, got {rounds}")
    rng = make_rng(seed)
    with machine.span("total"):
        scenario = spec.scenario(machine, rng, **(options or {}))
        trials = scenario.run_trials(rounds)
    notes = dict(getattr(scenario, "notes", None) or {})
    quality, detail = spec.score(trials, notes)
    return TrialBatch(
        attack=name,
        seed=seed,
        machine=machine.params.name,
        rounds=rounds,
        trials=trials,
        quality=quality,
        detail=detail,
        simulated_cycles=machine.cycles,
        spans=machine.profile.as_dict(),
        metrics=machine.metrics().as_dict(),
        notes=notes,
    )


def run_trials(
    name: str,
    params: MachineParams = DEFAULT_MACHINE,
    seed: int = 2023,
    rounds: int | None = None,
    trace: "Tracer | bool | None" = None,
    sanitize: bool | None = None,
    options: dict[str, Any] | None = None,
    configure: Callable[["Machine"], None] | None = None,
) -> TrialBatch:
    """Run attack ``name`` on a fresh machine built from ``params``.

    ``configure`` is called on the freshly built machine before the attack
    starts — the hook the :mod:`repro.campaign` defense axis uses to apply
    ``flush_prefetcher_on_switch`` / ``harden_machine`` /
    ``disable_ip_stride_prefetcher`` without every caller re-implementing
    machine construction.
    """
    from repro.cpu.machine import Machine

    machine = Machine(params, seed=seed, trace=trace, sanitize=sanitize)
    if configure is not None:
        configure(machine)
    return run_on_machine(name, machine, seed=seed, rounds=rounds, options=options)
