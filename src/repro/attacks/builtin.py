"""The paper's eight attacks, registered as :class:`AttackSpec`\\ s.

Each scenario adapts one of the :mod:`repro.core` attack classes to the
unified :class:`~repro.attacks.trial.Trial` schema: the original rich
result objects ride along as trial payloads, and per-round simulated
cycles / span deltas are recorded by diffing the machine's always-on
profiler around each round.

Importing this module populates the registry; consumers go through
:func:`repro.attacks.attack_names` / :func:`repro.attacks.get_attack` and
never import the scenarios directly.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.attacks.registry import register_attack
from repro.attacks.trial import Trial

if TYPE_CHECKING:
    from repro.cpu.machine import Machine

#: RSA key size for the quick registry runs (full-size keys belong to the
#: dedicated attack tests, not the observability smoke path).
DEFAULT_RSA_KEY_BITS = 48


def _span_cycles(machine: "Machine") -> dict[str, int]:
    return {name: stats.cycles for name, stats in machine.profile.spans.items()}


class _Scenario:
    """Round-driven scenario base: profiler diffing around each round.

    Scenarios expose the *stepping protocol* consumed by
    :class:`repro.cpu.kernel.MachineBatch`: :meth:`begin` declares the step
    count, :meth:`step` runs exactly one step, and :meth:`finish` returns
    the accumulated trials.  :meth:`run_trials` is the serial composition of
    the three, so batched (interleaved) and serial execution perform the
    identical sequence of machine operations per lane.
    """

    def __init__(self, machine: "Machine", rng: Any) -> None:
        self.machine = machine
        self.rng = rng
        self.notes: dict[str, Any] = {}
        self._trials: list[Trial] = []

    def begin(self, rounds: int) -> int:
        """Start a run; returns the number of :meth:`step` calls to make."""
        self._trials = []
        return rounds

    def step(self, index: int) -> None:
        """Run step ``index`` (one round) and record its trial."""
        cycles_before = self.machine.cycles
        spans_before = _span_cycles(self.machine)
        true, inferred, success, payload = self._round(index)
        spans = {}
        for name, cycles in _span_cycles(self.machine).items():
            delta = cycles - spans_before.get(name, 0)
            if delta:
                spans[name] = delta
        self._trials.append(
            Trial(
                index=index,
                true_outcome=true,
                inferred_outcome=inferred,
                success=success,
                cycles=self.machine.cycles - cycles_before,
                spans=spans,
                payload=payload,
            )
        )

    def finish(self) -> list[Trial]:
        """Close the run and return the accumulated trials."""
        return self._trials

    def run_trials(self, rounds: int) -> list[Trial]:
        for index in range(self.begin(rounds)):
            self.step(index)
        return self.finish()

    def _round(self, index: int) -> tuple[Any, Any, bool, Any]:
        raise NotImplementedError


# --------------------------------------------------------------------- #
# Variant 1 (§5.1, Figures 13a-c)                                        #
# --------------------------------------------------------------------- #


def _branch_score(trials: list[Trial], notes: dict[str, Any]) -> tuple[float, str]:
    wins = sum(1 for t in trials if t.success)
    return wins / len(trials) if trials else 0.0, (
        f"{wins}/{len(trials)} rounds leaked the branch bit"
    )


class _Variant1Scenario(_Scenario):
    def __init__(self, machine: "Machine", rng: Any, attack: Any) -> None:
        super().__init__(machine, rng)
        self.attack = attack

    def _round(self, index: int) -> tuple[Any, Any, bool, Any]:
        bit = int(self.rng.integers(0, 2))
        result = self.attack.run_round(bit)
        return bit, result.inferred_bit, result.success, result


@register_attack(
    "variant1",
    "Variant 1 cross-process: Flush+Reload over a shared page (Fig. 13c)",
    default_rounds=40,
    score=_branch_score,
    covers=("Variant1CrossProcess",),
    leakcheck_victim="branch-load",
)
def _variant1_process(machine: "Machine", rng: Any) -> _Variant1Scenario:
    from repro.core.variant1 import Variant1CrossProcess

    return _Variant1Scenario(machine, rng, Variant1CrossProcess(machine))


@register_attack(
    "variant1-thread",
    "Variant 1 cross-thread: Prime+Probe in a shared address space (Fig. 13a/b)",
    default_rounds=40,
    score=_branch_score,
    covers=("Variant1CrossThread",),
    leakcheck_victim="branch-load",
)
def _variant1_thread(machine: "Machine", rng: Any) -> _Variant1Scenario:
    from repro.core.variant1 import Variant1CrossThread

    return _Variant1Scenario(machine, rng, Variant1CrossThread(machine))


# --------------------------------------------------------------------- #
# Variant 2 (§5.2, Figure 14a)                                           #
# --------------------------------------------------------------------- #


def _kernel_score(trials: list[Trial], notes: dict[str, Any]) -> tuple[float, str]:
    wins = sum(1 for t in trials if t.success)
    return wins / len(trials) if trials else 0.0, (
        f"{wins}/{len(trials)} rounds leaked the kernel branch"
    )


class _Variant2Scenario(_Scenario):
    def __init__(self, machine: "Machine", rng: Any, search_attempts: int = 3) -> None:
        super().__init__(machine, rng)
        from repro.core.variant2 import Variant2UserKernel

        self.attack = Variant2UserKernel(
            machine, secret_source=lambda: int(rng.integers(0, 2))
        )
        # The §5.2 search can come up empty on unlucky seeds (the victim's
        # coin-flip branch plus eviction noise); re-run it a few times, and
        # if it still misses fall back to the white-box index so the
        # measurement rounds run regardless — the notes record the miss.
        truth = self.attack.true_target_index
        search = self.attack.find_target_index()
        attempts = 1
        while search.index != truth and attempts < search_attempts:
            search = self.attack.find_target_index()
            attempts += 1
        if search.index != truth:
            self.attack.use_target_index(truth)
        self.notes = {
            "search_index": search.index,
            "search_truth_index": truth,
            "search_syscalls": search.syscalls_used,
            "search_attempts": attempts,
            "search_found": search.index == truth,
        }

    def _round(self, index: int) -> tuple[Any, Any, bool, Any]:
        result = self.attack.run_round()
        return result.true_taken, result.inferred_taken, result.success, result


@register_attack(
    "variant2",
    "Variant 2 user→kernel: IP search + Flush+Reload on a syscall branch (Fig. 14a)",
    default_rounds=40,
    score=_kernel_score,
    covers=("Variant2UserKernel",),
)
def _variant2(machine: "Machine", rng: Any) -> _Variant2Scenario:
    return _Variant2Scenario(machine, rng)


# --------------------------------------------------------------------- #
# Covert channel (§5.3/§7.2, Figure 14b)                                 #
# --------------------------------------------------------------------- #


def _covert_score(trials: list[Trial], notes: dict[str, Any]) -> tuple[float, str]:
    error_rate = notes.get("error_rate", 1.0)
    bandwidth = notes.get("bandwidth_bps", 0.0)
    return 1.0 - error_rate, (
        f"{bandwidth:.0f} bps, {error_rate * 100:.1f}% symbol error"
    )


class _CovertScenario:
    def __init__(self, machine: "Machine", rng: Any, entries: int = 1) -> None:
        from repro.core.covert import CovertChannel

        self.machine = machine
        self.rng = rng
        self.entries = entries
        self.channel = CovertChannel(machine, n_entries=entries)
        self.notes: dict[str, Any] = {}
        self._trials: list[Trial] = []
        self._start_cycles = 0

    def begin(self, rounds: int) -> int:
        """Start a run; each step is one rendezvous of ``entries`` symbols."""
        # Symbols go out `entries` per rendezvous; round the count up so
        # the last rendezvous is full.
        n_symbols = -(-rounds // self.entries) * self.entries
        self._trials = []
        self._start_cycles = self.machine.cycles
        return n_symbols // self.entries

    def step(self, index: int) -> None:
        """Transmit one rendezvous worth of random symbols."""
        from repro.core.covert import MIN_CLEAN_STRIDE

        start = index * self.entries
        symbols = [
            int(x) for x in self.rng.integers(MIN_CLEAN_STRIDE, 32, self.entries)
        ]
        cycles_before = self.machine.cycles
        report = self.channel.transmit(symbols)
        batch_cycles = self.machine.cycles - cycles_before
        for offset, round_result in enumerate(report.rounds):
            self._trials.append(
                Trial(
                    index=start + offset,
                    true_outcome=round_result.sent_value,
                    inferred_outcome=round_result.received_value,
                    success=round_result.correct,
                    cycles=batch_cycles // len(report.rounds),
                    payload=round_result,
                )
            )

    def finish(self) -> list[Trial]:
        """Close the run: compute the bandwidth/error notes."""
        trials = self._trials
        cycles = self.machine.cycles - self._start_cycles
        seconds = cycles / self.machine.params.frequency_hz
        errors = sum(1 for t in trials if not t.success)
        self.notes = {
            "bandwidth_bps": (5 * len(trials) / seconds) if seconds else 0.0,
            "error_rate": errors / len(trials) if trials else 0.0,
            "n_symbols": len(trials),
            "entries": self.entries,
        }
        return trials

    def run_trials(self, rounds: int) -> list[Trial]:
        for index in range(self.begin(rounds)):
            self.step(index)
        return self.finish()


@register_attack(
    "covert",
    "Cross-process covert channel: the stride is the message (§7.2)",
    default_rounds=40,
    score=_covert_score,
    covers=("CovertChannel",),
)
def _covert(machine: "Machine", rng: Any, entries: int = 1) -> _CovertScenario:
    return _CovertScenario(machine, rng, entries=entries)


# --------------------------------------------------------------------- #
# SGX (§5.4, Figure 10)                                                  #
# --------------------------------------------------------------------- #


def _sgx_score(trials: list[Trial], notes: dict[str, Any]) -> tuple[float, str]:
    wins = sum(1 for t in trials if t.success)
    return wins / len(trials) if trials else 0.0, (
        f"{wins}/{len(trials)} ECALL rounds leaked the enclave secret"
    )


class _SGXScenario(_Scenario):
    def _round(self, index: int) -> tuple[Any, Any, bool, Any]:
        from repro.core.sgx_attack import SGXControlFlowAttack

        # Alternate the enclave secret so both directions are exercised
        # (the enclave is rebuilt per round, as in the SGX covert channel).
        secret = index % 2
        attack = SGXControlFlowAttack(self.machine, secret=secret)
        result = attack.run_round()
        return secret, result.inferred_secret, result.success, result


@register_attack(
    "sgx",
    "SGX control-flow extraction: stride-encoded enclave secret (Fig. 10)",
    default_rounds=8,
    score=_sgx_score,
    covers=("SGXControlFlowAttack", "SGXCovertChannel"),
)
def _sgx(machine: "Machine", rng: Any) -> _SGXScenario:
    return _SGXScenario(machine, rng)


# --------------------------------------------------------------------- #
# Switch leak (Figures 1-2 kernel patterns)                              #
# --------------------------------------------------------------------- #


def _switch_score(trials: list[Trial], notes: dict[str, Any]) -> tuple[float, str]:
    wins = sum(1 for t in trials if t.success)
    return wins / len(trials) if trials else 0.0, (
        f"{wins}/{len(trials)} rounds named the switch arm"
    )


class _SwitchLeakScenario(_Scenario):
    def __init__(
        self,
        machine: "Machine",
        rng: Any,
        pattern: str = "battery",
        attempts: int = 3,
    ) -> None:
        super().__init__(machine, rng)
        from repro.core.switch_leak import SwitchCaseLeak
        from repro.kernel.patterns import BatteryPropertySyscall, BluetoothTxSyscall
        from repro.kernel.syscalls import Kernel

        kernel = Kernel(machine)
        if pattern == "battery":
            self.syscall: Any = BatteryPropertySyscall(kernel)
            self.arms: tuple[str, ...] = BatteryPropertySyscall.PROPERTIES
            self._invoke = self.syscall.get_property
        elif pattern == "bluetooth":
            self.syscall = BluetoothTxSyscall(kernel)
            self.arms = BluetoothTxSyscall.PACKET_TYPES
            self._invoke = self.syscall.send_frame
        else:
            raise ValueError(f"unknown switch pattern {pattern!r}")
        self.attempts = attempts
        self.user_ctx = machine.new_thread("switch-user")
        self.spy_ctx = machine.new_thread("switch-spy")
        machine.context_switch(self.spy_ctx)
        self.leak = SwitchCaseLeak(machine, self.spy_ctx, self.syscall.case_ips)
        self.notes = {"pattern": pattern, "arms": len(self.arms)}

    def _round(self, index: int) -> tuple[Any, Any, bool, Any]:
        arm = self.arms[int(self.rng.integers(0, len(self.arms)))]

        def victim() -> str:
            self.machine.context_switch(self.user_ctx)
            self._invoke(self.user_ctx, arm)
            self.machine.context_switch(self.spy_ctx)
            return arm

        result = self.leak.run_with_retries(victim, attempts=self.attempts)
        return arm, result.inferred_arm, result.success, result


@register_attack(
    "switch-leak",
    "N-way switch-arm leak via PSC against the kernel patterns (Figs. 1-2)",
    default_rounds=12,
    score=_switch_score,
    covers=("SwitchCaseLeak",),
    leakcheck_victim="kernel-battery",
)
def _switch_leak(
    machine: "Machine", rng: Any, pattern: str = "battery", attempts: int = 3
) -> _SwitchLeakScenario:
    return _SwitchLeakScenario(machine, rng, pattern=pattern, attempts=attempts)


# --------------------------------------------------------------------- #
# TC-RSA key recovery (§6.2/§7.3, Figure 14c)                            #
# --------------------------------------------------------------------- #


def _rsa_score(trials: list[Trial], notes: dict[str, Any]) -> tuple[float, str]:
    wins = sum(1 for t in trials if t.success)
    passes = notes.get("passes", 0)
    return wins / len(trials) if trials else 0.0, (
        f"{wins}/{len(trials)} key bits recovered in {passes} passes"
    )


class _RSAScenario:
    """Monolithic recovery: one call leaks every bit, trials are per bit."""

    def __init__(
        self,
        machine: "Machine",
        rng: Any,
        bits: int = DEFAULT_RSA_KEY_BITS,
        all_bits: bool = False,
    ) -> None:
        from repro.core.tc_rsa_attack import TimingConstantRSAAttack
        from repro.crypto.primes import generate_keypair

        self.machine = machine
        self.key = generate_keypair(bits, rng)
        self.attack = TimingConstantRSAAttack(machine, self.key)
        self.all_bits = all_bits
        self.notes: dict[str, Any] = {}

    def run_trials(self, rounds: int) -> list[Trial]:
        key_bits = self.key.d.bit_length()
        n_bits = key_bits if self.all_bits else min(rounds, key_bits)
        recovery = self.attack.recover_key_bits(self.key.encrypt(0xBEEF), n_bits=n_bits)
        trials = [
            Trial(
                index=i,
                true_outcome=true,
                inferred_outcome=recovered,
                success=true == recovered,
                payload=observation,
            )
            for i, (true, recovered, observation) in enumerate(
                zip(recovery.true_bits, recovery.recovered_bits, recovery.observations)
            )
        ]
        usable = sum(len(o.votes) for o in recovery.observations)
        total = sum(o.attempts for o in recovery.observations)
        self.notes = {
            "n_bits": len(recovery.true_bits),
            "passes": recovery.passes,
            "psc_single_shot": usable / total if total else 0.0,
            "bit_errors": recovery.bit_errors,
            "exact": recovery.exact,
            "projected_minutes": recovery.projected_minutes_for_bits(),
        }
        return trials


@register_attack(
    "rsa",
    "TC-RSA key recovery: per-bit PSC on the timing-constant ladder (§7.3)",
    default_rounds=16,
    score=_rsa_score,
    covers=("TimingConstantRSAAttack",),
    leakcheck_victim="rsa-timing-constant",
)
def _rsa(
    machine: "Machine", rng: Any, bits: int = DEFAULT_RSA_KEY_BITS, all_bits: bool = False
) -> _RSAScenario:
    return _RSAScenario(machine, rng, bits=bits, all_bits=all_bits)


# --------------------------------------------------------------------- #
# Load-operation tracking (§6.3, Figure 15)                              #
# --------------------------------------------------------------------- #


def _tracker_score(trials: list[Trial], notes: dict[str, Any]) -> tuple[float, str]:
    wins = sum(1 for t in trials if t.success)
    target = notes.get("target", "key-load")
    return wins / len(trials) if trials else 0.0, (
        f"{target} slice localized in {wins}/{len(trials)} runs"
    )


class _TrackerScenario(_Scenario):
    def __init__(self, machine: "Machine", rng: Any, target: str = "key-load") -> None:
        super().__init__(machine, rng)
        from repro.core.load_tracker import VictimPhase

        self.target = target
        self.target_phase = (
            VictimPhase.KEY_LOAD if target == "key-load" else VictimPhase.DECRYPT
        )
        self.notes = {"target": target}

    def _round(self, index: int) -> tuple[Any, Any, bool, Any]:
        from repro.core.load_tracker import LoadTimingTracker, OpenSSLRSAVictim

        victim_ctx = self.machine.new_thread(f"rsa-victim-{index}")
        victim = OpenSSLRSAVictim(self.machine, victim_ctx)
        tracker = LoadTimingTracker(self.machine, victim, target=self.target)
        samples = tracker.track()
        target_polls = [s for s in samples if s.victim_phase is self.target_phase]
        detected = any(not s.prefetcher_triggered for s in target_polls)
        return self.target, self.target if detected else None, detected, samples


@register_attack(
    "tracker",
    "Load-operation tracking: PSC polling localizes the key load (Fig. 15)",
    default_rounds=3,
    score=_tracker_score,
    covers=("LoadTimingTracker",),
)
def _tracker(machine: "Machine", rng: Any, target: str = "key-load") -> _TrackerScenario:
    return _TrackerScenario(machine, rng, target=target)
