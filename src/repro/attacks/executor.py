"""Parallel trial executor: fan an attack matrix across worker processes.

A sweep — every attack, several seeds, maybe several machine presets — is
embarrassingly parallel because each cell builds its *own*
:class:`~repro.cpu.machine.Machine`; nothing is shared between cells.  The
executor therefore only has to get determinism right:

* every cell's seed is computed **before** dispatch with
  :func:`task_seed` (a :func:`~repro.utils.rng.stable_seed` mix of the
  base seed, attack name, machine name and repeat index), so worker
  scheduling cannot influence any stream;
* results come back through ``Pool.map``, which preserves task order, and
  :meth:`TrialBatch.merge` recomputes aggregates from the union of
  trials — so ``jobs=N`` produces byte-identical aggregate numbers to
  ``jobs=1``, just faster.

Workers are plain processes (``fork`` where the platform has it, else
``spawn``); each one reconstructs the machine from the pickled
:class:`~repro.params.MachineParams` and ships back a
:class:`~repro.attacks.trial.TrialBatch`, which carries serializable
snapshots instead of the machine itself.
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass, field
from time import perf_counter  # repro: noqa[RL003] — executor measures host wall-clock
from typing import Any, Iterable, Sequence

from repro.attacks.registry import run_trials
from repro.attacks.trial import TrialBatch
from repro.params import DEFAULT_MACHINE, MachineParams
from repro.utils.rng import stable_seed


@dataclass(frozen=True)
class TrialTask:
    """One cell of the trial matrix: attack × machine × derived seed."""

    attack: str
    params: MachineParams
    seed: int
    rounds: int | None = None
    options: dict[str, Any] = field(default_factory=dict)


def task_seed(base_seed: int, attack: str, machine: str, repeat: int) -> int:
    """Derive the seed for one matrix cell, independent of dispatch order.

    The mix is computed up front by the parent process, so two runs with
    different ``--jobs`` values hand every cell the same seed.
    """
    return (base_seed * 1_000_003 + stable_seed(f"{attack}:{machine}:{repeat}")) % 2**32


def build_matrix(
    attacks: Sequence[str],
    base_seed: int,
    repeats: int = 1,
    params: Iterable[MachineParams] = (DEFAULT_MACHINE,),
    rounds: int | None = None,
    options: dict[str, dict[str, Any]] | None = None,
) -> list[TrialTask]:
    """Expand attack × machine × repeat into concrete, seeded tasks.

    ``repeats`` re-runs each (attack, machine) cell with independent
    derived seeds — the cheap way to tighten a success-rate estimate.
    ``options`` maps attack name to extra scenario keyword arguments.
    """
    if repeats <= 0:
        raise ValueError(f"repeats must be positive, got {repeats}")
    tasks: list[TrialTask] = []
    for machine_params in params:
        for attack in attacks:
            for repeat in range(repeats):
                tasks.append(
                    TrialTask(
                        attack=attack,
                        params=machine_params,
                        seed=task_seed(base_seed, attack, machine_params.name, repeat),
                        rounds=rounds,
                        options=dict((options or {}).get(attack, {})),
                    )
                )
    return tasks


def run_task(task: TrialTask) -> TrialBatch:
    """Execute one cell on a freshly built machine (the worker entry point)."""
    return run_trials(
        task.attack,
        params=task.params,
        seed=task.seed,
        rounds=task.rounds,
        options=task.options,
    )


@dataclass
class ExecutionResult:
    """Everything a sweep produced: raw cells plus per-attack merges."""

    batches: list[TrialBatch]
    merged: dict[str, TrialBatch]
    jobs: int
    wall_seconds: float

    def as_dict(self) -> dict[str, Any]:
        return {
            "jobs": self.jobs,
            "wall_seconds": self.wall_seconds,
            "n_batches": len(self.batches),
            "merged": {
                name: batch.as_dict() for name, batch in self.merged.items()
            },
        }


def _merge_by_attack(batches: Sequence[TrialBatch]) -> dict[str, TrialBatch]:
    grouped: dict[str, list[TrialBatch]] = {}
    for batch in batches:
        grouped.setdefault(batch.attack, []).append(batch)
    return {name: TrialBatch.merge(group) for name, group in grouped.items()}


class TrialExecutor:
    """Run a task list serially or across a ``multiprocessing`` pool."""

    def __init__(self, jobs: int = 1) -> None:
        if jobs <= 0:
            raise ValueError(f"jobs must be positive, got {jobs}")
        self.jobs = jobs

    def run(self, tasks: Sequence[TrialTask]) -> ExecutionResult:
        if not tasks:
            raise ValueError("no tasks to run")
        start = perf_counter()
        if self.jobs == 1 or len(tasks) == 1:
            batches = [run_task(task) for task in tasks]
        else:
            batches = self._run_pool(tasks)
        wall = perf_counter() - start
        return ExecutionResult(
            batches=list(batches),
            merged=_merge_by_attack(batches),
            jobs=self.jobs,
            wall_seconds=wall,
        )

    def _run_pool(self, tasks: Sequence[TrialTask]) -> list[TrialBatch]:
        try:
            context = multiprocessing.get_context("fork")
        except ValueError:  # platform without fork (e.g. Windows)
            context = multiprocessing.get_context("spawn")
        n_workers = min(self.jobs, len(tasks))
        with context.Pool(processes=n_workers) as pool:
            return pool.map(run_task, tasks)
