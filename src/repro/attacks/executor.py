"""Parallel trial executor: fan an attack matrix across worker processes.

A sweep — every attack, several seeds, maybe several machine presets — is
embarrassingly parallel because each cell builds its *own*
:class:`~repro.cpu.machine.Machine`; nothing is shared between cells.  The
executor therefore only has to get determinism right:

* every cell's seed is computed **before** dispatch with
  :func:`task_seed` (a :func:`~repro.utils.rng.stable_seed` mix of the
  base seed, attack name, machine name and repeat index), so worker
  scheduling cannot influence any stream;
* results come back through ``Pool.map``, which preserves task order, and
  :meth:`TrialBatch.merge` recomputes aggregates from the union of
  trials — so ``jobs=N`` produces byte-identical aggregate numbers to
  ``jobs=1``, just faster.

Workers are plain processes (``fork`` where the platform has it, else
``spawn``); each one reconstructs the machine from the pickled
:class:`~repro.params.MachineParams` and ships back a
:class:`~repro.attacks.trial.TrialBatch`, which carries serializable
snapshots instead of the machine itself.

Failures are isolated per cell: :func:`run_task_safe` converts a raising
worker into a :class:`TaskError` carrying the task and its traceback, so
one bad cell can no longer abort ``pool.map`` and discard every completed
batch.  Errors surface on :attr:`ExecutionResult.errors`; the
:mod:`repro.campaign` runner builds its retry-with-backoff loop on the
same primitive.
"""

from __future__ import annotations

import multiprocessing
import traceback
from dataclasses import dataclass, field
from time import perf_counter  # repro: noqa[RL003] — executor measures host wall-clock
from typing import Any, Iterable, Sequence

from repro.attacks.registry import run_trials
from repro.attacks.trial import TrialBatch
from repro.obs.telemetry import (
    TelemetryCollector,
    TelemetryEnvelope,
    Timeline,
    capture_worker,
)
from repro.params import DEFAULT_MACHINE, MachineParams
from repro.utils.rng import stable_seed


@dataclass(frozen=True)
class TrialTask:
    """One cell of the trial matrix: attack × machine × derived seed."""

    attack: str
    params: MachineParams
    seed: int
    rounds: int | None = None
    options: dict[str, Any] = field(default_factory=dict)


def task_seed(base_seed: int, attack: str, machine: str, repeat: int) -> int:
    """Derive the seed for one matrix cell, independent of dispatch order.

    The mix is computed up front by the parent process, so two runs with
    different ``--jobs`` values hand every cell the same seed.
    """
    return (base_seed * 1_000_003 + stable_seed(f"{attack}:{machine}:{repeat}")) % 2**32


def build_matrix(
    attacks: Sequence[str],
    base_seed: int,
    repeats: int = 1,
    params: Iterable[MachineParams] = (DEFAULT_MACHINE,),
    rounds: int | None = None,
    options: dict[str, dict[str, Any]] | None = None,
) -> list[TrialTask]:
    """Expand attack × machine × repeat into concrete, seeded tasks.

    ``repeats`` re-runs each (attack, machine) cell with independent
    derived seeds — the cheap way to tighten a success-rate estimate.
    ``options`` maps attack name to extra scenario keyword arguments.
    """
    if repeats <= 0:
        raise ValueError(f"repeats must be positive, got {repeats}")
    tasks: list[TrialTask] = []
    for machine_params in params:
        for attack in attacks:
            for repeat in range(repeats):
                tasks.append(
                    TrialTask(
                        attack=attack,
                        params=machine_params,
                        seed=task_seed(base_seed, attack, machine_params.name, repeat),
                        rounds=rounds,
                        options=dict((options or {}).get(attack, {})),
                    )
                )
    return tasks


def run_task(task: TrialTask) -> TrialBatch:
    """Execute one cell on a freshly built machine (the worker entry point)."""
    return run_trials(
        task.attack,
        params=task.params,
        seed=task.seed,
        rounds=task.rounds,
        options=task.options,
    )


@dataclass(frozen=True)
class TaskError:
    """One failed matrix cell: the task that raised plus its traceback.

    Picklable (the task's params and plain strings), so it crosses the
    pool boundary exactly like a batch would.
    """

    task: TrialTask
    error: str

    @property
    def summary(self) -> str:
        """The exception line alone, without the traceback body."""
        lines = [line for line in self.error.strip().splitlines() if line.strip()]
        return lines[-1] if lines else "unknown error"

    def as_dict(self) -> dict[str, Any]:
        return {
            "attack": self.task.attack,
            "machine": self.task.params.name,
            "seed": self.task.seed,
            "error": self.summary,
        }


def run_task_safe(task: TrialTask) -> TrialBatch | TaskError:
    """Like :func:`run_task`, but a raising cell becomes a :class:`TaskError`.

    This is what the pool actually maps: one crashing worker used to
    propagate out of ``pool.map`` and lose every completed batch; now it
    comes back as data and only its own cell is affected.
    """
    try:
        return run_task(task)
    except Exception:
        return TaskError(task=task, error=traceback.format_exc())


def run_task_telemetry(task: TrialTask) -> TelemetryEnvelope:
    """The instrumented worker entry point: :func:`run_task_safe` plus a
    :class:`~repro.obs.telemetry.WorkerTelemetry` record, piggy-backed on
    the result.  The outcome inside the envelope is exactly what the
    uninstrumented path returns, so aggregates cannot change."""
    return capture_worker(run_task_safe, task)


@dataclass
class ExecutionResult:
    """Everything a sweep produced: raw cells plus per-attack merges.

    ``errors`` lists the cells whose workers raised; their attacks are
    absent from ``merged`` unless another repeat of the same attack
    succeeded.
    """

    batches: list[TrialBatch]
    merged: dict[str, TrialBatch]
    jobs: int
    wall_seconds: float
    errors: list[TaskError] = field(default_factory=list)
    telemetry: Timeline | None = None

    def as_dict(self) -> dict[str, Any]:
        data = {
            "jobs": self.jobs,
            "wall_seconds": self.wall_seconds,
            "n_batches": len(self.batches),
            "errors": [error.as_dict() for error in self.errors],
            "merged": {
                name: batch.as_dict() for name, batch in self.merged.items()
            },
        }
        if self.telemetry is not None:
            data["telemetry"] = self.telemetry.as_dict()
        return data


def _merge_by_attack(batches: Sequence[TrialBatch]) -> dict[str, TrialBatch]:
    grouped: dict[str, list[TrialBatch]] = {}
    for batch in batches:
        grouped.setdefault(batch.attack, []).append(batch)
    return {name: TrialBatch.merge(group) for name, group in grouped.items()}


class TrialExecutor:
    """Run a task list serially or across a ``multiprocessing`` pool.

    With ``telemetry=True`` every worker pickles back a
    :class:`~repro.obs.telemetry.WorkerTelemetry` record and the parent
    tracks dispatch/queue/serialize/merge timing; the resulting
    :class:`~repro.obs.telemetry.Timeline` lands on
    :attr:`ExecutionResult.telemetry`.  The default (off) path is
    byte-for-byte the pre-telemetry code: workers map the plain
    :func:`run_task_safe` and nothing extra crosses the pool.
    """

    def __init__(self, jobs: int = 1, telemetry: bool = False) -> None:
        if jobs <= 0:
            raise ValueError(f"jobs must be positive, got {jobs}")
        self.jobs = jobs
        self.telemetry = telemetry

    def run(self, tasks: Sequence[TrialTask]) -> ExecutionResult:
        if not tasks:
            raise ValueError("no tasks to run")
        if self.telemetry:
            return self._run_telemetry(tasks)
        start = perf_counter()
        if self.jobs == 1 or len(tasks) == 1:
            outcomes = [run_task_safe(task) for task in tasks]
        else:
            outcomes = self._run_pool(tasks)
        wall = perf_counter() - start
        batches = [item for item in outcomes if isinstance(item, TrialBatch)]
        errors = [item for item in outcomes if isinstance(item, TaskError)]
        return ExecutionResult(
            batches=batches,
            merged=_merge_by_attack(batches),
            jobs=self.jobs,
            wall_seconds=wall,
            errors=errors,
        )

    def _run_pool(self, tasks: Sequence[TrialTask]) -> list[TrialBatch | TaskError]:
        try:
            context = multiprocessing.get_context("fork")
        except ValueError:  # platform without fork (e.g. Windows)
            context = multiprocessing.get_context("spawn")
        n_workers = min(self.jobs, len(tasks))
        with context.Pool(processes=n_workers) as pool:
            return pool.map(run_task_safe, tasks)

    # -- instrumented path ---------------------------------------------- #

    def _run_telemetry(self, tasks: Sequence[TrialTask]) -> ExecutionResult:
        start = perf_counter()
        collector = TelemetryCollector(jobs=self.jobs)
        for index, task in enumerate(tasks):
            collector.add_request(index, task.attack, task)
        outcomes: list[TrialBatch | TaskError] = []
        if self.jobs == 1 or len(tasks) == 1:
            collector.window_begin()
            for index, task in enumerate(tasks):
                outcomes.append(collector.receive(index, run_task_telemetry(task)))
            collector.window_end()
        else:
            outcomes = self._run_pool_telemetry(tasks, collector)
        collector.measure_results(outcomes)
        batches = [item for item in outcomes if isinstance(item, TrialBatch)]
        errors = [item for item in outcomes if isinstance(item, TaskError)]
        with collector.merge_phase():
            merged = _merge_by_attack(batches)
        wall = perf_counter() - start
        return ExecutionResult(
            batches=batches,
            merged=merged,
            jobs=self.jobs,
            wall_seconds=wall,
            errors=errors,
            telemetry=collector.finish(wall_seconds=wall),
        )

    def _run_pool_telemetry(
        self, tasks: Sequence[TrialTask], collector: TelemetryCollector
    ) -> list[TrialBatch | TaskError]:
        try:
            context = multiprocessing.get_context("fork")
        except ValueError:  # platform without fork (e.g. Windows)
            context = multiprocessing.get_context("spawn")
        n_workers = min(self.jobs, len(tasks))
        outcomes: list[TrialBatch | TaskError] = []
        with context.Pool(processes=n_workers) as pool:
            collector.window_begin()
            # ``imap`` (order-preserving, yields as results land) gives a
            # true per-task receive timestamp; ``map`` would only give one
            # timestamp for the whole batch.
            for index, envelope in enumerate(pool.imap(run_task_telemetry, tasks)):
                outcomes.append(collector.receive(index, envelope))
            collector.window_end()
        return outcomes
