"""Unified attack registry, trial schema, and parallel executor.

See ``docs/ATTACKS.md``.  The eight attacks of the paper register
themselves in :mod:`repro.attacks.builtin`; consumers discover them via
:func:`attack_names`/:func:`get_attack` and run them with
:func:`run_trials` (fresh machine) or :func:`run_on_machine` (existing
machine), getting back a :class:`TrialBatch`.  Sweeps go through
:class:`TrialExecutor`.
"""

from repro.attacks.executor import (
    ExecutionResult,
    TaskError,
    TrialExecutor,
    TrialTask,
    build_matrix,
    run_task,
    run_task_safe,
    task_seed,
)
from repro.attacks.registry import (
    Attack,
    AttackSpec,
    Scorer,
    all_specs,
    attack_names,
    get_attack,
    register_attack,
    registered_covers,
    run_on_machine,
    run_trials,
    success_rate_score,
)
from repro.attacks.trial import Trial, TrialBatch

__all__ = [
    "Attack",
    "AttackSpec",
    "ExecutionResult",
    "Scorer",
    "TaskError",
    "Trial",
    "TrialBatch",
    "TrialExecutor",
    "TrialTask",
    "all_specs",
    "attack_names",
    "build_matrix",
    "get_attack",
    "register_attack",
    "registered_covers",
    "run_on_machine",
    "run_task",
    "run_task_safe",
    "run_trials",
    "success_rate_score",
]
