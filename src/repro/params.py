"""Machine configuration presets (paper Table 2) and tunable model parameters.

Two presets mirror the paper's evaluation machines:

* :data:`HASWELL_I7_4770` — Intel i7-4770, 4 cores, 8 MiB LLC.
* :data:`COFFEE_LAKE_I7_9700` — Intel i7-9700, 8 cores, 12 MiB LLC (SGX).

All latency and noise values are *model* parameters: the paper's attacks only
require that the cache-hit / DRAM-miss latency gap straddles the 120-cycle
LLC-hit threshold the paper uses (caption of its Figure 6), and that noise
grows across isolation boundaries (thread < process < kernel).  The defaults
below are calibrated once so the reproduced experiments land in the paper's
reported bands; see DESIGN.md §5.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field, replace

#: Bytes per cache line on every modeled machine.
CACHE_LINE_SIZE = 64

#: Bytes per (small) page on every modeled machine.
PAGE_SIZE = 4096

#: Cache lines per page — the unit of the paper's Figures 13/14 x-axes.
LINES_PER_PAGE = PAGE_SIZE // CACHE_LINE_SIZE


@dataclass(frozen=True)
class CacheGeometry:
    """Geometry and access latency of one cache level.

    ``sets`` is the number of sets *per slice* for the (sliced) LLC and the
    total number of sets for private levels.
    """

    name: str
    sets: int
    ways: int
    latency: int
    line_size: int = CACHE_LINE_SIZE

    def __post_init__(self) -> None:
        if self.sets <= 0 or self.sets & (self.sets - 1):
            raise ValueError(f"{self.name}: sets must be a power of two, got {self.sets}")
        if self.ways <= 0:
            raise ValueError(f"{self.name}: ways must be positive, got {self.ways}")
        if self.latency <= 0:
            raise ValueError(f"{self.name}: latency must be positive, got {self.latency}")

    @property
    def capacity_bytes(self) -> int:
        """Capacity of one slice (LLC) or of the whole cache (private levels)."""
        return self.sets * self.ways * self.line_size


@dataclass(frozen=True)
class IPStrideParams:
    """Parameters of the IP-stride prefetcher, as reverse-engineered in §4.

    * 24 history entries (Fig. 8a),
    * indexed by the low 8 bits of the load IP with **no tag** (Fig. 6),
    * 2-bit confidence, prefetch threshold 2 (§4.2),
    * (1+12)-bit stride, magnitude capped at 2 KiB (§4.2, footnote 5),
    * Bit-PLRU replacement (Fig. 8b).
    """

    n_entries: int = 24
    index_bits: int = 8
    confidence_bits: int = 2
    prefetch_threshold: int = 2
    stride_bits: int = 13
    max_stride_bytes: int = 2048
    replacement: str = "bit-plru"

    @property
    def confidence_max(self) -> int:
        return (1 << self.confidence_bits) - 1


@dataclass(frozen=True)
class NoiseParams:
    """Stochastic disturbance knobs.

    ``timing_sigma``/``timing_spike_*`` perturb measured latencies (system
    jitter, interrupts).  The ``switch_*`` knobs model the memory traffic of a
    context switch: the paper observes that switches pollute both the caches
    (over half of the minimal eviction sets are touched, §5.1) and the
    prefetcher table (covert-channel error >25 % when 24 entries are used,
    §7.2).

    Prefetcher pollution has two components.  The switch path itself is
    *fixed code*, so its loads hit the same prefetcher indexes every time
    (``switch_fixed_ips`` — they occupy slots but stop causing churn after
    warm-up).  On top of that, data-dependent kernel activity (which task
    struct, which mm, which IRQ handler ran) contributes loads at
    effectively *variable* IPs (``switch_variable_ips`` per cross-process
    switch, ``kernel_variable_ips`` per syscall) — each has a 1/256 chance
    of aliasing (and clobbering) a trained entry.
    """

    timing_sigma: float = 2.0
    timing_spike_prob: float = 0.002
    timing_spike_cycles: int = 180
    switch_cache_lines: int = 96
    switch_fixed_ips: int = 6
    switch_variable_ips: int = 1
    kernel_variable_ips: int = 32


@dataclass(frozen=True)
class MachineParams:
    """Full description of a simulated machine."""

    name: str
    microarchitecture: str
    cpu_cores: int
    frequency_hz: float
    l1d: CacheGeometry
    l2: CacheGeometry
    llc: CacheGeometry
    llc_slices: int
    dram_latency: int
    tlb_entries: int = 64
    page_walk_latency: int = 120
    llc_hit_threshold: int = 120
    prefetcher: IPStrideParams = field(default_factory=IPStrideParams)
    noise: NoiseParams = field(default_factory=NoiseParams)
    enable_dcu_prefetcher: bool = True
    enable_adjacent_prefetcher: bool = True
    enable_streamer_prefetcher: bool = True
    enable_next_page_prefetcher: bool = True
    aslr_enabled: bool = True
    sgx_supported: bool = False

    def __post_init__(self) -> None:
        if self.llc_slices <= 0:
            raise ValueError(f"llc_slices must be positive, got {self.llc_slices}")
        if self.dram_latency <= self.llc.latency:
            raise ValueError("DRAM latency must exceed LLC latency")
        if not self.llc.latency < self.llc_hit_threshold < self.dram_latency:
            raise ValueError(
                "llc_hit_threshold must separate LLC hits from DRAM misses: "
                f"{self.llc.latency} < {self.llc_hit_threshold} < {self.dram_latency} required"
            )

    @property
    def llc_capacity_bytes(self) -> int:
        """Total LLC capacity across slices."""
        return self.llc.capacity_bytes * self.llc_slices

    def with_noise(self, **updates: object) -> "MachineParams":
        """Return a copy with selected noise knobs replaced."""
        return replace(self, noise=replace(self.noise, **updates))

    def fingerprint(self) -> str:
        """SHA-256 over the full resolved machine description.

        Canonical-JSON of every field (sorted keys, no whitespace), so any
        model-parameter change — a latency, a prefetcher knob, a noise
        level — yields a new fingerprint.  :mod:`repro.campaign` builds its
        content-addressed cell keys on this: stale cached results can never
        be served for a reconfigured machine.
        """
        canonical = json.dumps(asdict(self), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode()).hexdigest()

    def quiet(self) -> "MachineParams":
        """Return a noise-free copy, used by the reverse-engineering benches.

        The paper's microbenchmarks (§4) pin the process, disable other
        prefetchers' interference by stride choice and average repeated runs;
        a zero-noise machine is the modelling equivalent.
        """
        return replace(
            self,
            noise=NoiseParams(
                timing_sigma=0.0,
                timing_spike_prob=0.0,
                timing_spike_cycles=0,
                switch_cache_lines=0,
                switch_fixed_ips=0,
                switch_variable_ips=0,
                kernel_variable_ips=0,
            ),
        )


#: Paper Table 2, first column: i7-4770 (Haswell), 4 cores, 8 MiB LLC.
HASWELL_I7_4770 = MachineParams(
    name="i7-4770",
    microarchitecture="Haswell",
    cpu_cores=4,
    frequency_hz=3.4e9,
    l1d=CacheGeometry(name="L1D", sets=64, ways=8, latency=4),
    l2=CacheGeometry(name="L2", sets=512, ways=8, latency=14),
    llc=CacheGeometry(name="LLC", sets=2048, ways=16, latency=42),
    llc_slices=4,
    dram_latency=250,
    sgx_supported=False,
)

#: Paper Table 2, second column: i7-9700 (Coffee Lake), 8 cores, 12 MiB LLC.
COFFEE_LAKE_I7_9700 = MachineParams(
    name="i7-9700",
    microarchitecture="Coffee Lake",
    cpu_cores=8,
    frequency_hz=3.0e9,
    l1d=CacheGeometry(name="L1D", sets=64, ways=8, latency=4),
    l2=CacheGeometry(name="L2", sets=512, ways=8, latency=14),
    llc=CacheGeometry(name="LLC", sets=2048, ways=12, latency=42),
    llc_slices=8,
    dram_latency=250,
    sgx_supported=True,
)

#: Default machine for examples and tests: the SGX-capable Coffee Lake part.
DEFAULT_MACHINE = COFFEE_LAKE_I7_9700

PRESETS: dict[str, MachineParams] = {
    "i7-4770": HASWELL_I7_4770,
    "haswell": HASWELL_I7_4770,
    "i7-9700": COFFEE_LAKE_I7_9700,
    "coffee-lake": COFFEE_LAKE_I7_9700,
}


def preset(name: str) -> MachineParams:
    """Look up a machine preset by model or microarchitecture name."""
    key = name.strip().lower()
    if key not in PRESETS:
        raise KeyError(f"unknown machine preset {name!r}; known: {sorted(PRESETS)}")
    return PRESETS[key]
