"""LRU response cache keyed on content hashes, with ETag revalidation.

Every response the fleet server builds is addressed by content: a cell
body by its SHA-256 store key, an aggregate/report by the hash of the
filled cell-key set it was computed from.  A change in any input changes
the address, so a cached entry can never be wrong — the cache needs no
TTLs, no invalidation protocol, and can honestly tell clients
``immutable``.  The LRU bound exists only to cap memory, not to bound
staleness.

The ETag *is* the cache key: a client that sends ``If-None-Match`` with
the entry's ETag gets a bodyless 304 from the same lookup that would have
served the body, which is the cheapest request the server can answer.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any


@dataclass(frozen=True)
class CacheEntry:
    """One cached response body plus its HTTP identity."""

    etag: str
    body: bytes
    content_type: str = "application/json"
    headers: tuple[tuple[str, str], ...] = ()


@dataclass
class CacheStats:
    """Counters the server's ``/metrics`` endpoint publishes."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    entries: int = 0
    body_bytes: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_ratio(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> dict[str, Any]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "entries": self.entries,
            "body_bytes": self.body_bytes,
            "hit_ratio": self.hit_ratio,
        }


@dataclass
class LruCache:
    """A bounded mapping ``key -> CacheEntry`` with LRU eviction."""

    capacity: int = 256
    stats: CacheStats = field(default_factory=CacheStats)

    def __post_init__(self) -> None:
        if self.capacity <= 0:
            raise ValueError(f"cache capacity must be positive, got {self.capacity}")
        self._entries: OrderedDict[str, CacheEntry] = OrderedDict()

    def get(self, key: str) -> CacheEntry | None:
        entry = self._entries.get(key)
        if entry is None:
            self.stats.misses += 1
            return None
        self._entries.move_to_end(key)
        self.stats.hits += 1
        return entry

    def put(self, key: str, entry: CacheEntry) -> None:
        if key in self._entries:
            old = self._entries.pop(key)
            self.stats.body_bytes -= len(old.body)
        self._entries[key] = entry
        self.stats.body_bytes += len(entry.body)
        while len(self._entries) > self.capacity:
            _evicted_key, evicted = self._entries.popitem(last=False)
            self.stats.evictions += 1
            self.stats.body_bytes -= len(evicted.body)
        self.stats.entries = len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def __len__(self) -> int:
        return len(self._entries)
