"""The fleet serving layer: a read-mostly asyncio HTTP daemon over a store.

``afterimage serve <store>`` turns a (possibly still-filling) TrialStore
into a long-lived service — the ROADMAP's "serve heavy traffic" shape —
without any dependency beyond the standard library: requests are parsed
and answered over raw ``asyncio`` streams (no ``http.server`` thread
pool, no aiohttp).

Endpoints::

    GET /healthz                liveness + store shape (never cached)
    GET /metrics                repro.obs MetricsRegistry snapshot (JSON/text)
    GET /cells                  every stored cell key
    GET /cell/<sha256>          one stored record (ETag = the key itself)
    GET /aggregate/<campaign>   merged wall-clock-free aggregates
    GET /report/<campaign>      the markdown report (complete campaigns only)

Why this is cheap to serve hot: every response body is addressed by
content.  A cell's ETag is its SHA-256 store key; an aggregate's ETag is
the hash of the exact filled cell-key set it was computed from.  Bodies
land in an :class:`~repro.fleet.cache.LruCache` keyed by that ETag, so a
warm ``/aggregate`` is a stat-check plus a cache lookup, and a client
revalidating with ``If-None-Match`` costs a bodyless 304.  Complete
aggregates are marked ``immutable`` — they can never change without
changing address.

Degradation is graceful by construction: the store is re-``refresh``\\ ed
per request (one ``stat`` per cached shard), and fills/merges replace
whole shard files atomically, so a reader mid-merge sees a consistent
mix of old and new shards.  A partially filled campaign serves its
aggregate with ``complete: false`` (and ``no-cache`` so clients keep
asking), while ``/report`` answers 503 with a ``filled/total`` count
until the campaign is whole.

Request handling is wired into :mod:`repro.obs`: the server keeps a
metrics registry shape (request/status/cache counters plus a
request-latency histogram) that ``/metrics`` renders exactly like
``afterimage metrics`` does for a machine.
"""

from __future__ import annotations

import asyncio
import hashlib
import threading
from pathlib import Path
from time import perf_counter  # repro: noqa[RL003] — serving layer measures host request latency
from typing import Any
from urllib.parse import unquote, urlsplit

from repro.campaign.runner import CampaignResult, CellOutcome
from repro.campaign.spec import CampaignSpec, canonical_json
from repro.campaign.store import TrialStore
from repro.fleet.cache import CacheEntry, LruCache
from repro.obs.metrics import Histogram, MetricsRegistry

#: Request-latency histogram bounds, in microseconds: the acceptance
#: contract is "warm aggregate < 10 ms", so the ladder straddles 10_000.
LATENCY_BOUNDS_US = [100, 250, 500, 1_000, 2_500, 5_000, 10_000, 50_000]

_MAX_REQUEST_LINE = 8192
_MAX_HEADERS = 64
_READ_TIMEOUT_SECONDS = 30.0

_STATUS_TEXT = {
    200: "OK",
    304: "Not Modified",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    503: "Service Unavailable",
    500: "Internal Server Error",
}


def canonical_body(document: Any) -> bytes:
    """Deterministic JSON bytes: what makes equal content equal bytes."""
    return (canonical_json(document) + "\n").encode()


class FleetServer:
    """Serve one TrialStore (and the campaigns defined over it) via HTTP."""

    def __init__(
        self,
        store_root: str | Path,
        campaigns: dict[str, CampaignSpec] | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
        cache_capacity: int = 256,
    ) -> None:
        root = Path(store_root)
        if not (root / "store.json").exists():
            raise ValueError(
                f"{root} is not a TrialStore (no store.json marker); "
                "fill or merge a store there first"
            )
        self.store = TrialStore(root)
        self.campaigns = dict(campaigns or {})
        self.host = host
        self.port = port
        self.cache = LruCache(capacity=cache_capacity)
        self._server: asyncio.AbstractServer | None = None
        self.requests_total = 0
        self.requests_by_endpoint: dict[str, int] = {}
        self.responses_by_status: dict[int, int] = {}
        self.not_modified_total = 0
        self.bytes_sent_total = 0
        self.errors_total = 0
        self.latency_us = Histogram(LATENCY_BOUNDS_US)

    # ----------------------------------------------------------------- #
    # Lifecycle                                                          #
    # ----------------------------------------------------------------- #

    async def start(self) -> None:
        """Bind and start accepting (resolves ``port=0`` to the real port)."""
        self._server = await asyncio.start_server(self._handle, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # ----------------------------------------------------------------- #
    # HTTP plumbing                                                      #
    # ----------------------------------------------------------------- #

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        start = perf_counter()
        try:
            request = await asyncio.wait_for(
                reader.readline(), timeout=_READ_TIMEOUT_SECONDS
            )
            if not request or len(request) > _MAX_REQUEST_LINE:
                return
            parts = request.decode("latin-1").split()
            if len(parts) != 3:
                await self._respond(writer, 400, self._error_body("bad request line"))
                return
            method, target, _version = parts
            headers = await self._read_headers(reader)
            if headers is None:
                await self._respond(writer, 400, self._error_body("bad headers"))
                return
            if method not in ("GET", "HEAD"):
                await self._respond(
                    writer,
                    405,
                    self._error_body(f"method {method} not allowed"),
                    extra=(("Allow", "GET, HEAD"),),
                )
                return
            self.requests_total += 1
            status, entry, cache_control = self._route(target)
            etag_match = _etag_matches(headers.get("if-none-match"), entry.etag)
            if status == 200 and etag_match:
                self.not_modified_total += 1
                await self._respond(
                    writer,
                    304,
                    b"",
                    content_type=entry.content_type,
                    etag=entry.etag,
                    cache_control=cache_control,
                )
                return
            await self._respond(
                writer,
                status,
                b"" if method == "HEAD" else entry.body,
                content_type=entry.content_type,
                etag=entry.etag,
                cache_control=cache_control,
                extra=entry.headers,
                body_length=len(entry.body),
            )
        except (asyncio.TimeoutError, ConnectionError):
            self.errors_total += 1
        except Exception:
            self.errors_total += 1
            try:
                await self._respond(
                    writer, 500, self._error_body("internal server error")
                )
            except ConnectionError:
                pass
        finally:
            self.latency_us.observe(int((perf_counter() - start) * 1e6))
            try:
                writer.close()
                await writer.wait_closed()
            except ConnectionError:
                pass

    async def _read_headers(
        self, reader: asyncio.StreamReader
    ) -> dict[str, str] | None:
        headers: dict[str, str] = {}
        for _ in range(_MAX_HEADERS):
            line = await asyncio.wait_for(
                reader.readline(), timeout=_READ_TIMEOUT_SECONDS
            )
            if line in (b"\r\n", b"\n", b""):
                return headers
            name, sep, value = line.decode("latin-1").partition(":")
            if not sep:
                return None
            headers[name.strip().lower()] = value.strip()
        return None

    async def _respond(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        body: bytes,
        content_type: str = "application/json",
        etag: str | None = None,
        cache_control: str | None = None,
        extra: tuple[tuple[str, str], ...] = (),
        body_length: int | None = None,
    ) -> None:
        self.responses_by_status[status] = self.responses_by_status.get(status, 0) + 1
        length = len(body) if body_length is None else body_length
        lines = [
            f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Unknown')}",
            f"Content-Type: {content_type}",
            f"Content-Length: {length}",
            "Connection: close",
        ]
        if etag:
            lines.append(f'ETag: "{etag}"')
        if cache_control:
            lines.append(f"Cache-Control: {cache_control}")
        lines += [f"{name}: {value}" for name, value in extra]
        writer.write(("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + body)
        self.bytes_sent_total += length
        await writer.drain()

    @staticmethod
    def _error_body(message: str, **fields: Any) -> bytes:
        return canonical_body({"error": message, **fields})

    # ----------------------------------------------------------------- #
    # Routing                                                            #
    # ----------------------------------------------------------------- #

    def _route(self, target: str) -> tuple[int, CacheEntry, str | None]:
        """(status, entry, cache-control) for one request target."""
        split = urlsplit(target)
        segments = [unquote(part) for part in split.path.split("/") if part]
        query = split.query
        endpoint = segments[0] if segments else "/"
        self.requests_by_endpoint[endpoint] = (
            self.requests_by_endpoint.get(endpoint, 0) + 1
        )
        if not segments:
            return 200, self._index_entry(), "no-cache"
        if segments == ["healthz"]:
            return 200, self._healthz_entry(), "no-cache"
        if segments == ["metrics"]:
            return 200, self._metrics_entry(query), "no-cache"
        if segments == ["cells"]:
            return 200, self._cells_entry(), "no-cache"
        if len(segments) == 2 and segments[0] == "cell":
            return self._cell_entry(segments[1])
        if len(segments) == 2 and segments[0] == "aggregate":
            return self._aggregate_entry(segments[1])
        if len(segments) == 2 and segments[0] == "report":
            return self._report_entry(segments[1])
        return 404, CacheEntry(etag="", body=self._error_body("no such route")), None

    def _index_entry(self) -> CacheEntry:
        document = {
            "service": "repro.fleet",
            "campaigns": sorted(self.campaigns),
            "endpoints": [
                "/healthz",
                "/metrics",
                "/cells",
                "/cell/<key>",
                "/aggregate/<campaign>",
                "/report/<campaign>",
            ],
        }
        return CacheEntry(etag="", body=canonical_body(document))

    def _healthz_entry(self) -> CacheEntry:
        self.store.refresh()
        shard_files = sum(1 for _ in self.store.shards_dir.glob("*.jsonl"))
        document = {
            "status": "ok",
            "store": str(self.store.root),
            "shard_files": shard_files,
            "campaigns": sorted(self.campaigns),
            "requests": self.requests_total,
        }
        return CacheEntry(etag="", body=canonical_body(document))

    def _metrics_entry(self, query: str) -> CacheEntry:
        registry = self.metrics_registry()
        if "format=text" in query:
            return CacheEntry(
                etag="",
                body=(registry.render_text() + "\n").encode(),
                content_type="text/plain; charset=utf-8",
            )
        return CacheEntry(etag="", body=canonical_body(registry.as_dict()))

    def _cells_entry(self) -> CacheEntry:
        self.store.refresh()
        keys = list(self.store.keys())
        document = {"count": len(keys), "keys": keys}
        return CacheEntry(etag="", body=canonical_body(document))

    def _cell_entry(self, key: str) -> tuple[int, CacheEntry, str | None]:
        if len(key) != 64 or any(c not in "0123456789abcdef" for c in key):
            return (
                400,
                CacheEntry(
                    etag="", body=self._error_body("cell keys are 64 hex chars")
                ),
                None,
            )
        cached = self.cache.get(key)
        if cached is not None:
            return 200, cached, "public, max-age=31536000, immutable"
        self.store.refresh()
        record = None
        if key in self.store:
            batch = self.store.get(key)
            if batch is not None:
                record = batch.as_dict()
        if record is None:
            return (
                404,
                CacheEntry(etag="", body=self._error_body("no such cell", key=key)),
                None,
            )
        entry = CacheEntry(etag=key, body=canonical_body({"key": key, "batch": record}))
        self.cache.put(key, entry)
        return 200, entry, "public, max-age=31536000, immutable"

    # ----------------------------------------------------------------- #
    # Campaign views                                                     #
    # ----------------------------------------------------------------- #

    def _campaign_view(
        self, name: str
    ) -> tuple[CampaignSpec, list[CellOutcome], int, str] | None:
        """(spec, filled outcomes, total cells, etag) — None for unknown names."""
        spec = self.campaigns.get(name)
        if spec is None:
            return None
        self.store.refresh()
        cells = spec.cells()
        outcomes = []
        for cell in cells:
            batch = self.store.get(cell.key)
            if batch is not None:
                outcomes.append(CellOutcome(cell=cell, batch=batch, cached=True))
        material = f"{name}:" + ",".join(
            sorted(outcome.cell.key for outcome in outcomes)
        )
        etag = hashlib.sha256(material.encode()).hexdigest()
        return spec, outcomes, len(cells), etag

    def _result_for(
        self, spec: CampaignSpec, outcomes: list[CellOutcome]
    ) -> CampaignResult:
        return CampaignResult(spec=spec, outcomes=outcomes, wall_seconds=0.0, jobs=0)

    def _unknown_campaign(self, name: str) -> tuple[int, CacheEntry, str | None]:
        return (
            404,
            CacheEntry(
                etag="",
                body=self._error_body(
                    "no such campaign", campaign=name, known=sorted(self.campaigns)
                ),
            ),
            None,
        )

    def _aggregate_entry(self, name: str) -> tuple[int, CacheEntry, str | None]:
        view = self._campaign_view(name)
        if view is None:
            return self._unknown_campaign(name)
        spec, outcomes, total, etag = view
        complete = len(outcomes) == total
        cache_control = (
            "public, max-age=31536000, immutable" if complete else "no-cache"
        )
        cache_key = f"aggregate:{etag}"
        cached = self.cache.get(cache_key)
        if cached is not None:
            return 200, cached, cache_control
        result = self._result_for(spec, outcomes)
        document = {
            "campaign": name,
            "total": total,
            "filled": len(outcomes),
            "complete": complete,
            "etag": etag,
            "aggregates": result.aggregates(),
        }
        entry = CacheEntry(etag=etag, body=canonical_body(document))
        self.cache.put(cache_key, entry)
        return 200, entry, cache_control

    def _report_entry(self, name: str) -> tuple[int, CacheEntry, str | None]:
        from repro.campaign.render import render_markdown

        view = self._campaign_view(name)
        if view is None:
            return self._unknown_campaign(name)
        spec, outcomes, total, etag = view
        if len(outcomes) < total:
            return (
                503,
                CacheEntry(
                    etag="",
                    body=self._error_body(
                        "campaign incomplete",
                        campaign=name,
                        filled=len(outcomes),
                        total=total,
                    ),
                    headers=(("Retry-After", "5"),),
                ),
                "no-store",
            )
        cache_key = f"report:{etag}"
        cached = self.cache.get(cache_key)
        if cached is not None:
            return 200, cached, "public, max-age=31536000, immutable"
        markdown = render_markdown(self._result_for(spec, outcomes))
        entry = CacheEntry(
            etag=etag,
            body=(markdown + "\n").encode(),
            content_type="text/markdown; charset=utf-8",
        )
        self.cache.put(cache_key, entry)
        return 200, entry, "public, max-age=31536000, immutable"

    # ----------------------------------------------------------------- #
    # Metrics                                                            #
    # ----------------------------------------------------------------- #

    def metrics_registry(self) -> MetricsRegistry:
        """The server's counters in the same registry shape machines use."""
        registry = MetricsRegistry()
        registry.set("server.requests", self.requests_total)
        for endpoint in sorted(self.requests_by_endpoint):
            registry.set(
                f"server.requests.{endpoint}", self.requests_by_endpoint[endpoint]
            )
        for status in sorted(self.responses_by_status):
            registry.set(
                f"server.responses.{status}", self.responses_by_status[status]
            )
        registry.set("server.not_modified", self.not_modified_total)
        registry.set("server.bytes_sent", self.bytes_sent_total)
        registry.set("server.errors", self.errors_total)
        for name, value in self.cache.stats.as_dict().items():
            registry.set(f"cache.{name}", value)
        registry.set("store.corrupt_lines", self.store.corrupt_lines)
        if self.latency_us.total:
            registry.set("server.latency_us", self.latency_us)
        return registry


def _etag_matches(header: str | None, etag: str) -> bool:
    if header is None or not etag:
        return False
    if header.strip() == "*":
        return True
    candidates = {
        candidate.strip().strip('"') for candidate in header.split(",")
    }
    return etag in candidates


# --------------------------------------------------------------------- #
# Thread harness (tests, benchmarks, and anything embedding the daemon)  #
# --------------------------------------------------------------------- #


class ServerHandle:
    """A running server on a background event loop; ``stop()`` tears down."""

    def __init__(
        self, server: FleetServer, loop: asyncio.AbstractEventLoop, thread: threading.Thread
    ) -> None:
        self.server = server
        self._loop = loop
        self._thread = thread

    @property
    def base_url(self) -> str:
        return f"http://{self.server.host}:{self.server.port}"

    def stop(self) -> None:
        asyncio.run_coroutine_threadsafe(self.server.stop(), self._loop).result(
            timeout=10
        )
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=10)
        self._loop.close()

    def __enter__(self) -> "ServerHandle":
        return self

    def __exit__(self, *_exc: Any) -> None:
        self.stop()


def start_in_thread(server: FleetServer) -> ServerHandle:
    """Run ``server`` on a dedicated event-loop thread; returns when bound."""
    loop = asyncio.new_event_loop()
    bound = threading.Event()

    def run() -> None:
        asyncio.set_event_loop(loop)
        loop.run_until_complete(server.start())
        bound.set()
        loop.run_forever()

    thread = threading.Thread(target=run, name="fleet-server", daemon=True)
    thread.start()
    if not bound.wait(timeout=10):
        raise RuntimeError("fleet server failed to bind within 10s")
    return ServerHandle(server, loop, thread)
