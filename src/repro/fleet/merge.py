"""Union content-addressed TrialStores, with conflict detection.

``afterimage campaign merge <storeA> <storeB> [...] --store <dest>`` is
the second half of fleet fill: each worker filled a disjoint shard of a
campaign into its own store, and this module unions those stores into one
aggregate.  Because a record's key is the SHA-256 content hash of
everything that determines its batch, the merge is trivially correct —
records either agree or something is deeply wrong:

* **Identical duplicates collapse.**  Two stores holding the same key
  with byte-identical canonical records (the common case when shards
  overlap, e.g. a worker re-run) merge to one record, counted but
  harmless.
* **Conflicts are hard errors.**  The same key with *differing* payloads
  means nondeterminism — the one failure the whole campaign substrate is
  built to make impossible — so the merge refuses loudly, listing every
  conflicting key with both source provenances (store paths plus the
  batches' recorded campaign-cell coordinates) instead of silently
  picking a side.
* **Byte-identical aggregates.**  The destination store writes shards
  sorted by key with canonical JSON, so the merged store — and every
  aggregate computed from it — is byte-identical regardless of which
  worker filled which cell, how many stores fed the merge, or the order
  they were named in (the CI ``fleet-smoke`` job diffs a two-worker merge
  against a single-writer run).
* **Crash-healed.**  Writes go shard-by-shard through the store's atomic
  tmp + ``os.replace`` discipline; a merge killed halfway leaves every
  destination shard either old or new, never torn, and re-running the
  merge converges to the same bytes.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.campaign.store import TrialStore


def _canonical(record: dict[str, Any]) -> str:
    return json.dumps(record, sort_keys=True, separators=(",", ":"))


def _provenance(source: str, record: dict[str, Any]) -> str:
    """Human-facing origin of one record: store path + cell coordinates."""
    cell = (record.get("batch") or {}).get("notes", {}).get("campaign_cell")
    if isinstance(cell, dict):
        coords = ", ".join(f"{k}={cell[k]!r}" for k in sorted(cell) if k != "key")
        return f"{source} ({coords})" if coords else source
    return source


@dataclass(frozen=True)
class MergeConflict:
    """One key stored with differing payloads in two sources."""

    key: str
    first_provenance: str
    second_provenance: str

    def __str__(self) -> str:
        return (
            f"cell {self.key}: {self.first_provenance} != {self.second_provenance}"
        )


class MergeConflictError(Exception):
    """Same content hash, different payload — refused, nothing written."""

    def __init__(self, conflicts: list[MergeConflict]) -> None:
        self.conflicts = conflicts
        lines = [
            f"{len(conflicts)} conflicting cell(s); identical keys must carry "
            "identical batches (a differing payload means nondeterminism):"
        ]
        lines += [f"  {conflict}" for conflict in conflicts]
        super().__init__("\n".join(lines))


@dataclass
class MergeReport:
    """What one merge did (or would do, for ``dry_run``)."""

    dest: str
    sources: list[str]
    merged: int = 0
    already_present: int = 0
    identical_duplicates: int = 0
    corrupt_skipped: dict[str, int] = field(default_factory=dict)
    dest_cells: int = 0

    def as_dict(self) -> dict[str, Any]:
        return {
            "dest": self.dest,
            "sources": list(self.sources),
            "merged": self.merged,
            "already_present": self.already_present,
            "identical_duplicates": self.identical_duplicates,
            "corrupt_skipped": dict(self.corrupt_skipped),
            "dest_cells": self.dest_cells,
        }

    def render_text(self) -> str:
        lines = [
            f"merged {self.merged} new cell(s) from {len(self.sources)} store(s) "
            f"into {self.dest} ({self.dest_cells} cells total)"
        ]
        if self.already_present:
            lines.append(f"  {self.already_present} already in the destination")
        if self.identical_duplicates:
            lines.append(
                f"  {self.identical_duplicates} identical duplicate(s) collapsed"
            )
        for source, count in self.corrupt_skipped.items():
            if count:
                lines.append(f"  {source}: {count} corrupt line(s) skipped")
        return "\n".join(lines)


def merge_stores(
    dest: str | Path, sources: list[str | Path], dry_run: bool = False
) -> MergeReport:
    """Union ``sources`` into the store at ``dest``.

    The destination participates in conflict detection like any source —
    merging into a store that already holds a differing payload for some
    key is refused the same way.  All conflicts across all sources are
    collected before raising, so one failed merge names every bad cell at
    once.  On conflict nothing is written.
    """
    dest = Path(dest)
    resolved_sources = [Path(source) for source in sources]
    if not resolved_sources:
        raise ValueError("merge needs at least one source store")
    for source in resolved_sources:
        if source.resolve() == dest.resolve():
            raise ValueError(
                f"source store {source} is the destination; merging a store "
                "into itself is a no-op at best"
            )
        if not (source / "store.json").exists():
            raise ValueError(f"{source} is not a TrialStore (no store.json marker)")

    dest_store = TrialStore(dest)
    report = MergeReport(dest=str(dest), sources=[str(s) for s in resolved_sources])

    # key -> (provenance, canonical record text, raw record)
    combined: dict[str, tuple[str, str, dict[str, Any]]] = {}
    for key, record in dest_store.records():
        combined[key] = (_provenance(str(dest), record), _canonical(record), record)
        report.already_present += 1

    conflicts: list[MergeConflict] = []
    for source in resolved_sources:
        source_store = TrialStore(source)
        for key, record in source_store.records():
            provenance = _provenance(str(source), record)
            canonical = _canonical(record)
            known = combined.get(key)
            if known is None:
                combined[key] = (provenance, canonical, record)
                report.merged += 1
            elif known[1] == canonical:
                report.identical_duplicates += 1
            else:
                conflicts.append(MergeConflict(key, known[0], provenance))
        report.corrupt_skipped[str(source)] = source_store.corrupt_lines

    if conflicts:
        raise MergeConflictError(conflicts)

    report.dest_cells = len(combined)
    if not dry_run:
        fresh = {
            key: record
            for key, (_prov, _canon, record) in combined.items()
            if key not in dest_store
        }
        dest_store.write_records(fresh)
    return report
