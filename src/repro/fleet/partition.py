"""Deterministic cell partitioning: ``--shard i/n`` for fleet fill.

A campaign cell's identity is its SHA-256 content hash
(:attr:`repro.campaign.spec.CampaignCell.key`), so the hash itself is the
partition function: shard ``i`` of ``n`` owns every cell whose key,
read as an integer, is ``i`` modulo ``n``.  Consequences worth having:

* **Disjoint and covering by construction.**  For any worker count ``n``,
  the ``n`` shards partition the cell set exactly — no cell is run twice,
  none is skipped (``tests/test_fleet.py`` proves both properties over
  arbitrary counts).
* **Stable.**  Ownership depends only on the cell's content hash and the
  shard count — never on spec order, dispatch order, or which other cells
  exist — so two invocations of ``--shard 1/4`` always agree, and adding
  cells to a campaign never reassigns the old ones within a fixed ``n``.
* **Uniform.**  SHA-256 output is uniform, so shards are balanced to
  within sampling noise without any coordination between workers.

Each worker fills its own store; :mod:`repro.fleet.merge` unions the
stores afterwards.  (Workers *may* share one store directory — writes are
atomic whole-shard replaces, so lines never interleave — but concurrent
read-modify-write cycles can drop each other's fresh cells, which the
next ``run`` simply re-executes.  Separate stores + merge is the
lossless, recommended shape.)
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterable, TypeVar

_SHARD_RE = re.compile(r"^(\d+)/(\d+)$")

#: Anything with a ``key`` content-hash attribute partitions; in practice
#: that is :class:`repro.campaign.spec.CampaignCell`.
_Cell = TypeVar("_Cell")


@dataclass(frozen=True)
class Shard:
    """One slice of a fleet: ``index`` of ``total`` (0-based)."""

    index: int
    total: int

    def __post_init__(self) -> None:
        if self.total <= 0:
            raise ValueError(f"shard count must be positive, got {self.total}")
        if not 0 <= self.index < self.total:
            raise ValueError(
                f"shard index must be in [0, {self.total}), got {self.index}"
            )

    def owns(self, key: str) -> bool:
        """Whether this shard owns the cell with content hash ``key``."""
        return shard_of_key(key, self.total) == self.index

    def __str__(self) -> str:
        return f"{self.index}/{self.total}"


def shard_of_key(key: str, total: int) -> int:
    """The owning shard index for a hex content hash, given ``total`` shards."""
    if total <= 0:
        raise ValueError(f"shard count must be positive, got {total}")
    return int(key, 16) % total


def parse_shard(text: str) -> Shard:
    """Parse a ``--shard i/n`` argument (0-based: ``0/2`` and ``1/2``)."""
    match = _SHARD_RE.match(text.strip())
    if match is None:
        raise ValueError(
            f"shard must look like 'i/n' with 0 <= i < n (e.g. '0/2'), got {text!r}"
        )
    return Shard(index=int(match.group(1)), total=int(match.group(2)))


def partition_cells(cells: Iterable[_Cell], shard: Shard | None) -> list[_Cell]:
    """The cells ``shard`` owns, in input order (all of them for ``None``)."""
    if shard is None:
        return list(cells)
    return [cell for cell in cells if shard.owns(cell.key)]
