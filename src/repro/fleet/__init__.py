"""repro.fleet: sharded multi-writer campaigns and a read-mostly serving layer.

The campaign substrate (:mod:`repro.campaign`) made experiment grids
declarative, content-addressed, and resumable — but single-writer, and
readable only by re-running the campaign.  This package scales both
directions:

* **Fleet fill** — :mod:`repro.fleet.partition` partitions a campaign's
  cells deterministically by their SHA-256 content hash
  (``afterimage campaign run --shard i/n``), so any number of workers
  fill disjoint, stable slices into their own stores;
  :mod:`repro.fleet.merge` then unions those stores with hard conflict
  detection (same hash, differing payload ⇒ refuse, listing both
  provenances) into an aggregate that is byte-identical to a
  single-writer run.
* **Serving** — :mod:`repro.fleet.server` is a dependency-free asyncio
  HTTP daemon (``afterimage serve <store>``) exposing cells, aggregates,
  reports, health and :mod:`repro.obs`-shaped metrics, with an LRU +
  ETag cache (:mod:`repro.fleet.cache`) keyed on content hashes — the
  results are immutable by construction, so a warm aggregate is one
  cache lookup.  :mod:`repro.fleet.client` is the matching stdlib
  client.

See docs/CAMPAIGN.md §"Fleet mode" for the shard → merge → serve
walkthrough, and ``benchmarks/bench_serve.py`` for the latency contract
(warm aggregates under 10 ms).
"""

from repro.fleet.cache import CacheEntry, CacheStats, LruCache
from repro.fleet.client import FleetClient, FleetResponse
from repro.fleet.merge import (
    MergeConflict,
    MergeConflictError,
    MergeReport,
    merge_stores,
)
from repro.fleet.partition import Shard, parse_shard, partition_cells, shard_of_key
from repro.fleet.server import FleetServer, ServerHandle, start_in_thread

__all__ = [
    "CacheEntry",
    "CacheStats",
    "FleetClient",
    "FleetResponse",
    "FleetServer",
    "LruCache",
    "MergeConflict",
    "MergeConflictError",
    "MergeReport",
    "merge_stores",
    "parse_shard",
    "partition_cells",
    "ServerHandle",
    "Shard",
    "shard_of_key",
    "start_in_thread",
]
