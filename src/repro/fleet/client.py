"""A small stdlib client for the fleet serving layer.

Thin by design — ``http.client`` plus JSON decoding — so tests, the
serve benchmark, and CI smoke steps can all talk to ``afterimage serve``
without growing a dependency.  The one piece of real protocol it adds is
ETag revalidation: pass the ``etag`` a previous response carried and a
fresh request becomes ``If-None-Match``, answered with a bodyless 304
when the content (by construction) has not changed.

Each call opens its own connection (the server speaks
``Connection: close``), which keeps the client safe to use from many
threads at once — the shape the ``bench_serve`` concurrency measurement
leans on.
"""

from __future__ import annotations

import http.client
import json
from dataclasses import dataclass
from typing import Any


@dataclass(frozen=True)
class FleetResponse:
    """One HTTP exchange: status, headers (lower-cased), raw body."""

    status: int
    headers: dict[str, str]
    body: bytes

    @property
    def etag(self) -> str | None:
        value = self.headers.get("etag")
        return value.strip('"') if value else None

    @property
    def not_modified(self) -> bool:
        return self.status == 304

    def json(self) -> Any:
        return json.loads(self.body.decode())

    def text(self) -> str:
        return self.body.decode()


class FleetClient:
    """Talk to one ``afterimage serve`` daemon."""

    def __init__(self, host: str, port: int, timeout: float = 10.0) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout

    def get(self, path: str, etag: str | None = None) -> FleetResponse:
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            headers = {"If-None-Match": f'"{etag}"'} if etag else {}
            connection.request("GET", path, headers=headers)
            response = connection.getresponse()
            body = response.read()
            return FleetResponse(
                status=response.status,
                headers={k.lower(): v for k, v in response.getheaders()},
                body=body,
            )
        finally:
            connection.close()

    # Convenience wrappers over the server's routes ---------------------- #

    def healthz(self) -> dict[str, Any]:
        return self.get("/healthz").json()

    def metrics(self) -> dict[str, Any]:
        return self.get("/metrics").json()

    def cells(self) -> dict[str, Any]:
        return self.get("/cells").json()

    def cell(self, key: str, etag: str | None = None) -> FleetResponse:
        return self.get(f"/cell/{key}", etag=etag)

    def aggregate(self, campaign: str, etag: str | None = None) -> FleetResponse:
        return self.get(f"/aggregate/{campaign}", etag=etag)

    def report(self, campaign: str, etag: str | None = None) -> FleetResponse:
        return self.get(f"/report/{campaign}", etag=etag)
