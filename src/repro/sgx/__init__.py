"""Intel SGX enclave model.

Captures the paper's §4.6 finding: an in-enclave thread shares the core's
IP-stride prefetcher with the untrusted zone, and cache lines it causes to
be prefetched remain valid (and measurable) after the enclave is switched
out.
"""

from repro.sgx.enclave import Enclave, StrideSecretEnclave

__all__ = ["Enclave", "StrideSecretEnclave"]
