"""SGX enclaves on the simulated machine.

Architecturally, an enclave's EPC memory is inaccessible to the outside —
but the microarchitectural structures (caches, TLB, IP-stride prefetcher)
are shared with whatever else runs on the logical core.  The paper exploits
two consequences:

* §4.6: prefetches triggered by enclave loads stay valid after the enclave
  exits, so the untrusted zone can time them;
* §5.4 / Listing 8: an enclave whose loop stride depends on a secret leaks
  that secret through the prefetcher's learned stride.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.cpu.context import ThreadContext
from repro.cpu.machine import Machine
from repro.mmu.buffer import Buffer
from repro.params import CACHE_LINE_SIZE

#: EENTER/EEXIT are far more expensive than a syscall.
ECALL_OVERHEAD_CYCLES = 8000

#: Default base of the enclave's measured code image.
ENCLAVE_TEXT_BASE = 0x7F00_0000_0000


class Enclave:
    """An SGX enclave: private address space, ECALL entry points."""

    def __init__(self, machine: Machine, name: str = "enclave") -> None:
        if not machine.params.sgx_supported:
            raise RuntimeError(
                f"machine {machine.params.name} has no SGX support "
                "(the paper runs SGX PoCs on the i7-9700)"
            )
        self.machine = machine
        self.name = name
        self.space = machine.new_address_space(f"{name}-epc")
        self.ctx = ThreadContext(name=name, space=self.space)
        self.text = machine.code_region(ENCLAVE_TEXT_BASE, name=f"{name}-text")
        self._ecalls: dict[str, Callable[..., object]] = {}

    def register_ecall(self, name: str, fn: Callable[..., object]) -> None:
        """Expose ``fn`` as an ECALL entry point."""
        if name in self._ecalls:
            raise ValueError(f"ECALL {name!r} already registered")
        self._ecalls[name] = fn

    def ecall(self, caller: ThreadContext, name: str, *args: object) -> object:
        """EENTER from ``caller``, run the ECALL, EEXIT back."""
        if name not in self._ecalls:
            raise KeyError(f"no ECALL named {name!r}")
        self.machine.advance(ECALL_OVERHEAD_CYCLES)
        self.machine.context_switch(self.ctx)
        try:
            return self._ecalls[name](*args)
        finally:
            self.machine.context_switch(caller)
            self.machine.advance(ECALL_OVERHEAD_CYCLES)

    def map_untrusted(self, buffer: Buffer, name: str | None = None) -> Buffer:
        """Map an untrusted-zone buffer into the enclave (the ``pms`` arg)."""
        view = self.machine.share_buffer(buffer, self.space, name=name)
        self.machine.warm_buffer_tlb(self.ctx, view)
        return view


class StrideSecretEnclave(Enclave):
    """The paper's Listing 8 / Figure 10 PoC enclave.

    ``sgx_magic``: the secret selects the loop stride (3 vs 5 lines); eight
    strided loads over the caller-provided buffer train the shared
    IP-stride prefetcher, whose footprint the untrusted zone then reads.
    """

    STRIDE_IF_SECRET_SET = 3
    STRIDE_IF_SECRET_CLEAR = 5
    N_TRAIN_LOADS = 8

    def __init__(self, machine: Machine, secret: int, name: str = "sgx-magic") -> None:
        super().__init__(machine, name=name)
        self.secret = secret
        self.load_ip = self.text.place("sgx_magic_loop_load", 0x9E0)
        self.register_ecall("ECALL_MyFunc", self._sgx_magic)
        self._views: dict[int, Buffer] = {}

    def run(self, caller: ThreadContext, buffer: Buffer) -> None:
        """ECALL_MyFunc(*Buffer, LenBuf)."""
        if id(buffer) not in self._views:
            self._views[id(buffer)] = self.map_untrusted(buffer, name="pms->arr")
        self.ecall(caller, "ECALL_MyFunc", self._views[id(buffer)])

    def _sgx_magic(self, view: Buffer) -> None:
        stride = self.STRIDE_IF_SECRET_SET if self.secret else self.STRIDE_IF_SECRET_CLEAR
        for i in range(self.N_TRAIN_LOADS):
            vaddr = view.base + i * stride * CACHE_LINE_SIZE
            self.machine.warm_tlb(self.ctx, vaddr)
            self.machine.load(self.ctx, self.load_ip, vaddr)
