"""DPL (adjacent-line) prefetcher.

Paper §3.2: data is treated as 128-byte aligned blocks; a miss to one line
of a block fetches its pair line.  Reach: one line — noise only.
"""

from __future__ import annotations

from repro.memsys.addr import line_base, same_block
from repro.memsys.hierarchy import MemoryLevel
from repro.params import CACHE_LINE_SIZE
from repro.prefetch.base import LoadEvent, Prefetcher, PrefetchRequest, TranslateFn

_BLOCK_SIZE = 128


class AdjacentPrefetcher(Prefetcher):
    """Fetch the buddy line of a 128-byte block on an LLC/DRAM miss."""

    name = "adjacent"

    def __init__(self) -> None:
        self.prefetches_issued = 0

    def observe(self, event: LoadEvent, translate: TranslateFn) -> list[PrefetchRequest]:
        if event.hit_level is not MemoryLevel.DRAM:
            return []
        line_addr = line_base(event.paddr)
        pair = line_addr ^ CACHE_LINE_SIZE  # buddy within the 128 B block
        if not same_block(pair, line_addr, _BLOCK_SIZE):
            return []
        self.prefetches_issued += 1
        return [PrefetchRequest(paddr=pair, source=self.name)]

    def clear(self) -> None:
        pass
