"""The Intel IP-stride prefetcher, transcribed from the paper's §4.

Everything in this module encodes a specific reverse-engineering finding:

* **Indexing (Fig. 6)** — the history table is indexed by the least
  significant 8 bits of the load IP and has *no tag*: any two loads whose
  IPs agree in those bits share an entry, across threads, processes, the
  kernel and SGX enclaves.  This aliasing is AfterImage's root cause.
* **Capacity (Fig. 8a)** — 24 entries.
* **Replacement (Fig. 8b)** — Bit-PLRU (contiguous eviction runs).
* **Update/trigger policy (Algorithm 1, Fig. 7)** — 2-bit confidence with
  prefetch threshold 2; once confidence ≥ 2 a prefetch of
  ``current + stride`` is issued *unconditionally*, even when the observed
  stride just changed (the paper's "key component"); a stride mismatch then
  rewrites the stride and resets confidence to 1.
* **Stride field (§4.2)** — sign + 12 bits; strides are learned at byte
  granularity but requests are only issued for magnitudes up to 2 KiB
  (footnote 5: at most 5 secret bits per round at line granularity).
* **Page-boundary rule (§4.3, Table 1)** — a prefetch request never
  crosses the current access's physical frame; a load whose page misses
  the TLB is invisible to the prefetcher ("will not impact the prefetcher
  status"), except that the Haswell+ *next-page prefetcher* carries a
  confident pattern onto the next virtual page.  TLB-resident loads
  trigger normally from any frame — the enabler of every cross-domain
  variant.
* **Persistence** — nothing is cleared on a context/privilege/enclave
  switch; :meth:`IPStridePrefetcher.clear` exists only as the paper's
  proposed ``clear-ip-prefetcher`` mitigation (§8.3).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.memsys.addr import page_frame, same_page
from repro.memsys.replacement import make_policy
from repro.obs.events import EntrySnapshot, TableTransition
from repro.obs.tracer import NULL_TRACER, zero_clock
from repro.params import IPStrideParams
from repro.prefetch.base import LoadEvent, Prefetcher, PrefetchRequest, TranslateFn
from repro.utils.bits import low_bits, sign_extend


@dataclass(slots=True)
class IPStrideEntry:
    """One history-table entry (Figure 5: IP | Last Addr | Stride | Conf.)."""

    index: int
    last_vaddr: int
    last_paddr: int
    stride: int = 0
    confidence: int = 0

    @property
    def last_frame(self) -> int:
        return page_frame(self.last_paddr)


class IPStridePrefetcher(Prefetcher):
    """History table + update/trigger state machine of the IP-stride prefetcher."""

    name = "ip-stride"

    def __init__(self, params: IPStrideParams, enable_next_page: bool = True) -> None:
        self.params = params
        self.enable_next_page = enable_next_page
        self._slots: list[IPStrideEntry | None] = [None] * params.n_entries
        self._index_to_slot: dict[int, int] = {}
        self._policy = make_policy(params.replacement, params.n_entries)
        self.prefetches_issued = 0
        self.prefetches_dropped_page_cross = 0
        self.prefetches_dropped_stride_cap = 0
        self.allocations = 0
        self.evictions = 0
        self.evictions_by_cause: dict[str, int] = {"confidence0": 0, "plru": 0}
        self.stride_rewrites = 0
        self.clears = 0
        #: Observability hooks, reassigned by the owning Machine; the
        #: defaults keep a standalone prefetcher silent.
        self.tracer = NULL_TRACER
        self.clock = zero_clock

    # ------------------------------------------------------------------ #
    # Observation (Algorithm 1)                                           #
    # ------------------------------------------------------------------ #

    def observe(self, event: LoadEvent, translate: TranslateFn) -> list[PrefetchRequest]:
        """Digest one TLB-resident retired load (the paper's Algorithm 1).

        The "key component" (§4.2): once the confidence has reached the
        threshold, a prefetch of ``current + stride`` is issued
        *unconditionally* — before the stride comparison, and regardless of
        whether the access sits in the training page's physical frame.
        This is what lets a single victim load in a completely different
        frame (another process, the kernel, an enclave) fire the prefetch.
        The distance register only keeps the low 13 bits, so a cross-frame
        "stride" wraps into an effectively arbitrary value, rewriting the
        entry's stride and resetting its confidence to 1 — the state change
        AfterImage-PSC reads back.
        """
        index = low_bits(event.ip, self.params.index_bits)
        slot = self._index_to_slot.get(index)
        if slot is None:
            self._allocate(index, event)
            return []

        entry = self._slots[slot]
        assert entry is not None
        self._policy.touch(slot)
        traced = self.tracer.enabled
        before = EntrySnapshot.of(entry) if traced else None

        requests: list[PrefetchRequest] = []
        distance = sign_extend(event.paddr - entry.last_paddr, self.params.stride_bits)
        if entry.confidence >= self.params.prefetch_threshold:
            # The "key component": trigger unconditionally before updating.
            self._issue(event.paddr, entry.stride, requests)
            if distance != entry.stride:
                entry.stride = distance
                entry.confidence = 1
                self.stride_rewrites += 1
            elif entry.confidence != self.params.confidence_max:
                entry.confidence += 1
        else:
            if distance != entry.stride:
                entry.stride = distance
                entry.confidence = 1
                self.stride_rewrites += 1
            else:
                entry.confidence += 1
                if entry.confidence == self.params.prefetch_threshold:
                    self._issue(event.paddr, entry.stride, requests)
        entry.last_vaddr = event.vaddr
        entry.last_paddr = event.paddr
        if traced:
            self.tracer.emit(
                TableTransition(
                    cycle=self.clock(),
                    transition="update",
                    index=index,
                    slot=slot,
                    before=before,
                    after=EntrySnapshot.of(entry),
                    triggered=bool(requests),
                )
            )
        return requests

    def observe_tlb_miss(self, event: LoadEvent) -> list[PrefetchRequest]:
        """A load whose page missed the TLB (the §4.3 page-boundary rule).

        Such an access "creates the page table entry and will not impact
        the prefetcher status": the entry is neither updated nor triggered.
        The single exception is the Haswell+ *next-page prefetcher*: when a
        confident entry's pattern continues onto the next *virtual* page,
        the prefetch is carried across (Table 1, locked row, offset 1 —
        offsets 2+ stay unprefetchable).
        """
        index = low_bits(event.ip, self.params.index_bits)
        slot = self._index_to_slot.get(index)
        if slot is None:
            return []
        entry = self._slots[slot]
        assert entry is not None
        requests: list[PrefetchRequest] = []
        on_next_virtual_page = page_frame(event.vaddr) == page_frame(entry.last_vaddr) + 1
        if (
            self.enable_next_page
            and on_next_virtual_page
            and entry.confidence >= self.params.prefetch_threshold
        ):
            self._issue(event.paddr, entry.stride, requests)
        return requests

    def _issue(self, paddr: int, stride: int, out: list[PrefetchRequest]) -> None:
        """Issue ``paddr + stride`` unless capped or frame-crossing."""
        if stride == 0:
            return
        if abs(stride) > self.params.max_stride_bytes:
            self.prefetches_dropped_stride_cap += 1
            return
        target = paddr + stride
        if not same_page(target, paddr):
            self.prefetches_dropped_page_cross += 1
            return
        self.prefetches_issued += 1
        out.append(PrefetchRequest(paddr=target, source=self.name))

    def _allocate(self, index: int, event: LoadEvent) -> None:
        """Create_New_Entry(IP, confidence = 0, stride = 0) with replacement.

        Victim preference: a free slot, then a confidence-0 entry (an entry
        that never confirmed a stride is worthless to keep), then the
        Bit-PLRU victim.  The confidence-0 preference is required to make
        the paper's own Figure 8a/8b methodology self-consistent: those
        experiments re-execute evicted IPs while probing, and with a pure
        bit-scan victim each re-allocation would cascade through the live
        entries, destroying the contiguous-eviction signal the paper
        measured on hardware.
        """
        self.allocations += 1
        traced = self.tracer.enabled
        try:
            slot = self._slots.index(None)
        except ValueError:
            slot, cause = self._victim_slot()
            victim = self._slots[slot]
            assert victim is not None
            del self._index_to_slot[victim.index]
            self.evictions += 1
            self.evictions_by_cause[cause] += 1
            if traced:
                self.tracer.emit(
                    TableTransition(
                        cycle=self.clock(),
                        transition="evict",
                        index=victim.index,
                        slot=slot,
                        before=EntrySnapshot.of(victim),
                        after=None,
                        cause=cause,
                    )
                )
        entry = IPStrideEntry(index=index, last_vaddr=event.vaddr, last_paddr=event.paddr)
        self._slots[slot] = entry
        self._index_to_slot[index] = slot
        self._policy.fill(slot)
        if traced:
            self.tracer.emit(
                TableTransition(
                    cycle=self.clock(),
                    transition="allocate",
                    index=index,
                    slot=slot,
                    before=None,
                    after=EntrySnapshot.of(entry),
                )
            )

    def _victim_slot(self) -> tuple[int, str]:
        """Victim slot and the cause label for eviction statistics."""
        for slot, entry in enumerate(self._slots):
            if entry is not None and entry.confidence == 0:
                return slot, "confidence0"
        return self._policy.victim(), "plru"

    # ------------------------------------------------------------------ #
    # Introspection and mitigation                                        #
    # ------------------------------------------------------------------ #

    def entry_for_ip(self, ip: int) -> IPStrideEntry | None:
        """The entry a load at ``ip`` would hit (low-8-bit aliasing included)."""
        slot = self._index_to_slot.get(low_bits(ip, self.params.index_bits))
        if slot is None:
            return None
        return self._slots[slot]

    def entries(self) -> list[IPStrideEntry]:
        """All live entries (unordered)."""
        return [entry for entry in self._slots if entry is not None]

    @property
    def occupancy(self) -> int:
        return len(self._index_to_slot)

    def clear(self) -> None:
        """The proposed privileged ``clear-ip-prefetcher`` instruction (§8.3)."""
        self.clears += 1
        evicted = len(self._index_to_slot)
        self._slots = [None] * self.params.n_entries
        self._index_to_slot.clear()
        self._policy.reset()
        if self.tracer.enabled:
            self.tracer.emit(
                TableTransition(
                    cycle=self.clock(),
                    transition="clear",
                    index=-1,
                    slot=-1,
                    before=None,
                    after=None,
                    evicted=evicted,
                )
            )

    def reset_stats(self) -> None:
        """Zero every counter (table contents are untouched)."""
        self.prefetches_issued = 0
        self.prefetches_dropped_page_cross = 0
        self.prefetches_dropped_stride_cap = 0
        self.allocations = 0
        self.evictions = 0
        self.evictions_by_cause = {"confidence0": 0, "plru": 0}
        self.stride_rewrites = 0
        self.clears = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"IPStridePrefetcher(entries={self.occupancy}/{self.params.n_entries}, "
            f"issued={self.prefetches_issued})"
        )
