"""DCU (next-line) prefetcher.

Paper §3.2: "attempts to automatically prefetch a single, subsequent cache
line".  It is a pure noise source for AfterImage (§7.1): its reach is one
line, which is why the attacks use strides greater than four lines.
"""

from __future__ import annotations

from repro.memsys.addr import line_addr, line_index, same_page
from repro.prefetch.base import LoadEvent, Prefetcher, PrefetchRequest, TranslateFn


class DCUPrefetcher(Prefetcher):
    """Prefetch the next line after an ascending same-page access pair."""

    name = "dcu"

    def __init__(self) -> None:
        self._last_line: int | None = None
        self.prefetches_issued = 0

    def observe(self, event: LoadEvent, translate: TranslateFn) -> list[PrefetchRequest]:
        line = line_index(event.paddr)
        previous = self._last_line
        self._last_line = line
        if previous is None or line != previous + 1:
            return []
        target = line_addr(line + 1)
        if not same_page(target, event.paddr):
            return []
        self.prefetches_issued += 1
        return [PrefetchRequest(paddr=target, source=self.name)]

    def clear(self) -> None:
        self._last_line = None
