"""DCU (next-line) prefetcher.

Paper §3.2: "attempts to automatically prefetch a single, subsequent cache
line".  It is a pure noise source for AfterImage (§7.1): its reach is one
line, which is why the attacks use strides greater than four lines.
"""

from __future__ import annotations

from repro.params import CACHE_LINE_SIZE, PAGE_SIZE
from repro.prefetch.base import LoadEvent, Prefetcher, PrefetchRequest, TranslateFn


class DCUPrefetcher(Prefetcher):
    """Prefetch the next line after an ascending same-page access pair."""

    name = "dcu"

    def __init__(self) -> None:
        self._last_line: int | None = None
        self.prefetches_issued = 0

    def observe(self, event: LoadEvent, translate: TranslateFn) -> list[PrefetchRequest]:
        line = event.paddr // CACHE_LINE_SIZE
        previous = self._last_line
        self._last_line = line
        if previous is None or line != previous + 1:
            return []
        target = (line + 1) * CACHE_LINE_SIZE
        if target // PAGE_SIZE != event.paddr // PAGE_SIZE:
            return []
        self.prefetches_issued += 1
        return [PrefetchRequest(paddr=target, source=self.name)]

    def clear(self) -> None:
        self._last_line = None
