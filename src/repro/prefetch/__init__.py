"""Hardware prefetcher models.

All four prefetchers Intel documents for these parts are modeled (paper
§3.2): the IP-stride prefetcher — the attack target, transcribed from the
paper's reverse engineering — plus the DCU next-line, DPL adjacent and
streamer prefetchers, which only matter as noise sources (the paper avoids
them by using strides larger than four cache lines, §7.1).
"""

from repro.prefetch.adjacent import AdjacentPrefetcher
from repro.prefetch.base import LoadEvent, Prefetcher, PrefetchRequest, TranslateFn
from repro.prefetch.dcu import DCUPrefetcher
from repro.prefetch.ip_stride import IPStrideEntry, IPStridePrefetcher
from repro.prefetch.streamer import StreamerPrefetcher

__all__ = [
    "LoadEvent",
    "Prefetcher",
    "PrefetchRequest",
    "TranslateFn",
    "IPStrideEntry",
    "IPStridePrefetcher",
    "DCUPrefetcher",
    "AdjacentPrefetcher",
    "StreamerPrefetcher",
]
