"""Common prefetcher interfaces."""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Callable
from dataclasses import dataclass

from repro.memsys.hierarchy import MemoryLevel

#: Translate a *virtual* address to a physical one for prefetching purposes.
#: Returns ``None`` when no translation is available — hardware prefetchers
#: never take page faults, they simply drop the request.
TranslateFn = Callable[[int], int | None]


@dataclass(frozen=True, slots=True)
class LoadEvent:
    """One retired demand load, as seen by the prefetchers.

    ``asid`` identifies the issuing address space.  The *stock* IP-stride
    prefetcher ignores it — that is AfterImage's root cause — but the
    tagged-prefetcher defense (:mod:`repro.defenses.tagged_prefetcher`)
    keys its table on it.
    """

    ip: int
    vaddr: int
    paddr: int
    hit_level: MemoryLevel
    asid: int = 0


@dataclass(frozen=True, slots=True)
class PrefetchRequest:
    """A line the prefetcher wants brought into the cache."""

    paddr: int
    source: str

    def __post_init__(self) -> None:
        if self.paddr < 0:
            raise ValueError(f"negative physical address {self.paddr:#x}")


class Prefetcher(ABC):
    """A hardware prefetcher observing the retired-load stream."""

    #: Short identifier used in PrefetchRequest.source and statistics.
    name: str = "prefetcher"

    @abstractmethod
    def observe(self, event: LoadEvent, translate: TranslateFn) -> list[PrefetchRequest]:
        """Digest one load; return any prefetch requests it provokes."""

    @abstractmethod
    def clear(self) -> None:
        """Drop all learned state (the proposed mitigation instruction)."""

    def reset_stats(self) -> None:
        """Zero statistics counters; learned state is untouched.

        Every concrete prefetcher counts at least ``prefetches_issued``;
        subclasses with richer statistics override this.
        """
        self.prefetches_issued = 0
