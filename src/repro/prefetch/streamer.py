"""Streamer prefetcher.

Paper §3.2: records sequential positive/negative line streams per page and
prefetches the next one or two lines in the stream direction.  Reach: a few
sequential lines — noise only for AfterImage, which is why the attacks pick
strides of 5+ lines (§7.1).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.memsys.addr import line_addr, line_index, page_frame
from repro.prefetch.base import LoadEvent, Prefetcher, PrefetchRequest, TranslateFn

_MAX_TRACKED_PAGES = 16
_LINES_AHEAD = 2


@dataclass(slots=True)
class _Stream:
    last_line: int
    direction: int = 0  # +1 ascending, -1 descending, 0 undecided
    confirmations: int = 0


class StreamerPrefetcher(Prefetcher):
    """Per-page sequential stream detector with a small tracking table."""

    name = "streamer"

    def __init__(self) -> None:
        self._streams: dict[int, _Stream] = {}  # page frame -> stream state
        self.prefetches_issued = 0

    def observe(self, event: LoadEvent, translate: TranslateFn) -> list[PrefetchRequest]:
        frame = page_frame(event.paddr)
        line = line_index(event.paddr)
        stream = self._streams.get(frame)
        if stream is None:
            if len(self._streams) >= _MAX_TRACKED_PAGES:
                self._streams.pop(next(iter(self._streams)))
            self._streams[frame] = _Stream(last_line=line)
            return []

        step = line - stream.last_line
        stream.last_line = line
        if step not in (1, -1):
            stream.direction = 0
            stream.confirmations = 0
            return []
        if step == stream.direction:
            stream.confirmations += 1
        else:
            stream.direction = step
            stream.confirmations = 1
        if stream.confirmations < 2:
            return []

        requests = []
        for ahead in range(1, _LINES_AHEAD + 1):
            target = line_addr(line + ahead * stream.direction)
            if page_frame(target) != frame or target < 0:
                break
            self.prefetches_issued += 1
            requests.append(PrefetchRequest(paddr=target, source=self.name))
        return requests

    def clear(self) -> None:
        self._streams.clear()
