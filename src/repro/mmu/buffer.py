"""Cache-line-indexed view over a mapping — the `array` of the paper's listings."""

from __future__ import annotations

from repro.mmu.address_space import Mapping
from repro.params import CACHE_LINE_SIZE, LINES_PER_PAGE, PAGE_SIZE


class Buffer:
    """Convenience wrapper addressing a mapping by cache line and page.

    All the paper's microbenchmarks and attacks index their arrays in units
    of cache lines (``array[i * stride]`` with line-sized elements) or pages;
    this wrapper keeps that arithmetic in one audited place.
    """

    def __init__(self, mapping: Mapping) -> None:
        self.mapping = mapping

    @property
    def base(self) -> int:
        return self.mapping.base

    @property
    def size(self) -> int:
        return self.mapping.size

    @property
    def n_lines(self) -> int:
        return self.mapping.size // CACHE_LINE_SIZE

    @property
    def n_pages(self) -> int:
        return self.mapping.n_pages

    @property
    def space(self):
        return self.mapping.space

    def addr(self, byte_offset: int) -> int:
        """Virtual address ``byte_offset`` bytes into the buffer."""
        return self.mapping.addr(byte_offset)

    def line_addr(self, line: int) -> int:
        """Virtual address of cache line ``line`` (line 0 = buffer start)."""
        if not 0 <= line < self.n_lines:
            raise IndexError(f"line {line} outside buffer of {self.n_lines} lines")
        return self.mapping.base + line * CACHE_LINE_SIZE

    def page_line_addr(self, page: int, line_in_page: int) -> int:
        """Virtual address of line ``line_in_page`` within page ``page``."""
        if not 0 <= page < self.n_pages:
            raise IndexError(f"page {page} outside buffer of {self.n_pages} pages")
        if not 0 <= line_in_page < LINES_PER_PAGE:
            raise IndexError(f"line {line_in_page} outside page of {LINES_PER_PAGE} lines")
        return self.mapping.base + page * PAGE_SIZE + line_in_page * CACHE_LINE_SIZE

    def lines(self) -> list[int]:
        """Virtual addresses of every cache line, in order."""
        return [self.mapping.base + i * CACHE_LINE_SIZE for i in range(self.n_lines)]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Buffer({self.mapping.name!r}, {self.n_pages} pages)"
