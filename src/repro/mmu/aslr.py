"""Address-space layout randomization (ASLR / KASLR).

The paper's observation (§5.2, footnote 4): Linux ASLR randomizes at page
granularity or coarser, so the low 12 bits of every address are preserved —
and since the IP-stride prefetcher indexes with the low **8** bits of the IP,
ASLR and KASLR do not perturb AfterImage at all.  We model exactly that:
randomized bases are always page-aligned.
"""

from __future__ import annotations

import numpy as np

from repro.params import PAGE_SIZE


class Aslr:
    """Page-aligned base randomization for mmap regions and code images."""

    #: Number of random bits above the page offset (Linux mmap ASLR uses 28
    #: on x86-64; the exact value is irrelevant to the attacks).
    ENTROPY_BITS = 28

    def __init__(self, rng: np.random.Generator, enabled: bool = True) -> None:
        self._rng = rng
        self.enabled = enabled

    def randomize_base(self, base: int) -> int:
        """Return ``base`` shifted by a random page-aligned displacement.

        The low 12 bits of ``base`` are preserved even when it is not
        page-aligned, mirroring Linux behaviour.
        """
        if not self.enabled:
            return base
        slide_pages = int(self._rng.integers(0, 1 << self.ENTROPY_BITS))
        return base + slide_pages * PAGE_SIZE

    @staticmethod
    def preserves_low_bits(original: int, randomized: int, n_bits: int = 12) -> bool:
        """Check the invariant the attack relies on (used by tests)."""
        mask = (1 << n_bits) - 1
        return (original & mask) == (randomized & mask)
