"""Physical frame allocation and per-address-space page tables."""

from __future__ import annotations

import numpy as np

from repro.params import PAGE_SIZE


class PhysicalMemory:
    """Allocator of physical page frames.

    Frames are handed out in a pseudo-random order (seeded) so that physical
    addresses spread over LLC sets and slices the way a fragmented real
    system's do.  Frame 0 is reserved as the shared **zero frame** backing
    untouched anonymous mappings — the mechanism behind the paper's
    "reclaimable" pool in Table 1, where several virtual pages share one
    physical page.
    """

    ZERO_FRAME = 0

    def __init__(self, rng: np.random.Generator, n_frames: int = 1 << 21) -> None:
        if n_frames <= 1:
            raise ValueError(f"need at least two frames, got {n_frames}")
        self._rng = rng
        self._n_frames = n_frames
        self._allocated: set[int] = {self.ZERO_FRAME}

    @property
    def n_frames(self) -> int:
        return self._n_frames

    @property
    def allocated_count(self) -> int:
        return len(self._allocated)

    def alloc_frame(self) -> int:
        """Allocate a fresh, unique frame number."""
        if len(self._allocated) >= self._n_frames:
            raise MemoryError("physical memory exhausted")
        while True:
            frame = int(self._rng.integers(1, self._n_frames))
            if frame not in self._allocated:
                self._allocated.add(frame)
                return frame

    def free_frame(self, frame: int) -> None:
        """Return ``frame`` to the allocator (the zero frame is never freed)."""
        if frame == self.ZERO_FRAME:
            return
        self._allocated.discard(frame)

    @staticmethod
    def frame_to_paddr(frame: int, offset: int = 0) -> int:
        """Physical byte address of ``offset`` within ``frame``."""
        if not 0 <= offset < PAGE_SIZE:
            raise ValueError(f"offset {offset} outside page")
        return frame * PAGE_SIZE + offset


class PageTable:
    """Virtual-page → physical-frame map for one address space."""

    def __init__(self) -> None:
        self._entries: dict[int, int] = {}

    def map(self, vpage: int, frame: int) -> None:
        """Install ``vpage -> frame`` (remapping an existing page is allowed:
        that is exactly what copy-on-write promotion does)."""
        self._entries[vpage] = frame

    def unmap(self, vpage: int) -> int | None:
        """Remove the mapping; return the frame it pointed to, if any."""
        return self._entries.pop(vpage, None)

    def frame_of(self, vpage: int) -> int | None:
        """Frame backing ``vpage``, or None when unmapped."""
        return self._entries.get(vpage)

    def is_mapped(self, vpage: int) -> bool:
        return vpage in self._entries

    def translate(self, vaddr: int) -> int:
        """Translate a virtual byte address; raises KeyError when unmapped."""
        vpage, offset = divmod(vaddr, PAGE_SIZE)
        frame = self._entries.get(vpage)
        if frame is None:
            raise KeyError(f"page fault: virtual address {vaddr:#x} is not mapped")
        return frame * PAGE_SIZE + offset

    def mapped_pages(self) -> list[int]:
        """All mapped virtual page numbers (unordered)."""
        return list(self._entries)

    def __len__(self) -> int:
        return len(self._entries)
