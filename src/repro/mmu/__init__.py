"""Virtual-memory substrate: physical frames, page tables, TLB, ASLR.

Physical-frame behaviour matters for the reproduction in two places:

* The prefetcher's page-boundary rule (paper §4.3 / Table 1) is checked on
  *physical* frames, so reclaimable (zero-page-backed) vs ``MAP_LOCKED``
  mappings behave differently.
* The paper's threat model requires victim pages to be TLB-resident: a
  TLB-missing access does not update the prefetcher state.
"""

from repro.mmu.address_space import AddressSpace, Mapping
from repro.mmu.aslr import Aslr
from repro.mmu.buffer import Buffer
from repro.mmu.page_table import PageTable, PhysicalMemory
from repro.mmu.tlb import TLB, TranslationResult

__all__ = [
    "AddressSpace",
    "Mapping",
    "Aslr",
    "Buffer",
    "PageTable",
    "PhysicalMemory",
    "TLB",
    "TranslationResult",
]
