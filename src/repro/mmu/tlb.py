"""Translation lookaside buffer.

The TLB matters to AfterImage because of the paper's §4.3 finding: a load
whose page *misses* the TLB creates the translation but does **not** update
the IP-stride prefetcher state.  The threat model therefore assumes victim
pages are TLB-resident; victims in this library warm the TLB before their
secret-dependent loads, exactly as streaming applications do naturally.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.memsys.addr import page_frame, page_split
from repro.mmu.address_space import AddressSpace
from repro.obs.tracer import NULL_TRACER, zero_clock
from repro.params import PAGE_SIZE


@dataclass(frozen=True, slots=True)
class TranslationResult:
    """Outcome of translating one virtual address."""

    vaddr: int
    paddr: int
    tlb_hit: bool
    latency: int

    @property
    def frame(self) -> int:
        return page_frame(self.paddr)


class TLB:
    """Fully-associative, LRU, ASID-tagged TLB.

    Entries are tagged ``(asid, vpage)``.  An address-space switch flushes
    non-global entries (x86 CR3 write without PCID); kernel translations are
    installed as global and survive, which is why the Variant-2 victim's
    kernel pages stay TLB-resident across the user/kernel round trip.
    """

    def __init__(self, n_entries: int, walk_latency: int) -> None:
        if n_entries <= 0:
            raise ValueError(f"n_entries must be positive, got {n_entries}")
        self._n_entries = n_entries
        self._walk_latency = walk_latency
        self._entries: dict[tuple[int, int], int] = {}  # (asid, vpage) -> frame
        self._order: list[tuple[int, int]] = []  # LRU order, oldest first
        self._global_keys: set[tuple[int, int]] = set()
        self.hits = 0
        self.misses = 0
        #: Observability hooks, reassigned by the owning Machine; the
        #: defaults keep a standalone TLB silent.
        self.tracer = NULL_TRACER
        self.clock = zero_clock

    def translate(self, space: AddressSpace, vaddr: int) -> TranslationResult:
        """Translate ``vaddr`` in ``space``; walks the page table on a miss."""
        vpage, offset = page_split(vaddr)
        key = (space.asid, vpage)
        frame = self._entries.get(key)
        if frame is not None:
            self._order.remove(key)
            self._order.append(key)
            self.hits += 1
            return TranslationResult(vaddr, frame * PAGE_SIZE + offset, True, 0)
        self.misses += 1
        if self.tracer.enabled:
            from repro.obs.events import TlbMiss

            self.tracer.emit(
                TlbMiss(cycle=self.clock(), asid=space.asid, vaddr=vaddr, vpage=vpage)
            )
        frame = space.page_table.frame_of(vpage)
        if frame is None:
            raise KeyError(f"page fault: {vaddr:#x} not mapped in {space.name!r}")
        self._install(key, frame, is_global=space.global_pages)
        return TranslationResult(vaddr, frame * PAGE_SIZE + offset, False, self._walk_latency)

    def warm(self, space: AddressSpace, vaddr: int) -> None:
        """Pre-install the translation for ``vaddr`` without timing effects."""
        vpage = page_frame(vaddr)
        frame = space.page_table.frame_of(vpage)
        if frame is None:
            raise KeyError(f"page fault: {vaddr:#x} not mapped in {space.name!r}")
        key = (space.asid, vpage)
        if key in self._entries:
            self._order.remove(key)
            self._order.append(key)
        else:
            self._install(key, frame, is_global=space.global_pages)

    def is_resident(self, space: AddressSpace, vaddr: int) -> bool:
        """Non-mutating residency check."""
        return (space.asid, page_frame(vaddr)) in self._entries

    def invalidate_page(self, space: AddressSpace, vaddr: int) -> None:
        """INVLPG: drop one translation."""
        key = (space.asid, page_frame(vaddr))
        if key in self._entries:
            del self._entries[key]
            self._order.remove(key)
            self._global_keys.discard(key)

    def flush(self, keep_global: bool = True) -> None:
        """Flush the TLB (CR3 write); global entries optionally survive."""
        if not keep_global:
            self._entries.clear()
            self._order.clear()
            self._global_keys.clear()
            return
        for key in list(self._order):
            if key not in self._global_keys:
                del self._entries[key]
                self._order.remove(key)

    def _install(self, key: tuple[int, int], frame: int, is_global: bool) -> None:
        if len(self._entries) >= self._n_entries:
            victim = self._order.pop(0)
            del self._entries[victim]
            self._global_keys.discard(victim)
        self._entries[key] = frame
        self._order.append(key)
        if is_global:
            self._global_keys.add(key)

    def reset_stats(self) -> None:
        """Zero the hit/miss counters (resident entries are untouched)."""
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)
