"""Address spaces: mmap-style allocation, shared memory, CoW zero pages."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.mmu.aslr import Aslr
from repro.mmu.page_table import PageTable, PhysicalMemory
from repro.params import PAGE_SIZE
from repro.utils.bits import align_up

#: Fallback allocator for spaces built without an owner.  Machines assign
#: their own per-instance sequence instead, so same-seed runs produce the
#: same ASIDs no matter how many machines the process created before them.
_ASID_COUNTER = itertools.count(1)


@dataclass(slots=True)
class Mapping:
    """One contiguous virtual mapping inside an address space."""

    name: str
    base: int
    n_pages: int
    locked: bool
    space: "AddressSpace" = field(repr=False)

    @property
    def size(self) -> int:
        return self.n_pages * PAGE_SIZE

    @property
    def end(self) -> int:
        return self.base + self.size

    def addr(self, offset: int) -> int:
        """Virtual address at byte ``offset`` into the mapping."""
        if not 0 <= offset < self.size:
            raise IndexError(f"offset {offset} outside mapping of {self.size} bytes")
        return self.base + offset

    def vpages(self) -> list[int]:
        """Virtual page numbers covered by the mapping, in order."""
        first = self.base // PAGE_SIZE
        return list(range(first, first + self.n_pages))

    def frames(self) -> list[int]:
        """Physical frames currently backing the mapping, in page order."""
        result = []
        for vpage in self.vpages():
            frame = self.space.page_table.frame_of(vpage)
            if frame is None:
                raise KeyError(f"mapping {self.name!r}: page {vpage:#x} is unmapped")
            result.append(frame)
        return result


class AddressSpace:
    """A process (or kernel) address space.

    ``mmap`` semantics mirror what the paper's microbenchmarks rely on:

    * ``locked=True`` (``MAP_LOCKED``): every page gets its own pinned frame.
    * ``populate=True`` (the default for attack buffers): pages are written
      once at setup, so each is promoted to a private frame — normal
      anonymous memory in steady state.
    * ``populate=False, locked=False``: untouched anonymous memory; every
      page is backed by the shared **zero frame**, so the whole region lives
      in a single physical frame until written.  This is the "reclaimable
      pool" whose pages *share a physical page* in the paper's Table 1.
    """

    #: Default first mmap base (arbitrary; ASLR slides it per-mapping).
    DEFAULT_MMAP_BASE = 0x5000_0000

    def __init__(
        self,
        name: str,
        physical: PhysicalMemory,
        aslr: Aslr | None = None,
        global_pages: bool = False,
        asid: int | None = None,
    ) -> None:
        self.name = name
        self.physical = physical
        self.aslr = aslr
        self.global_pages = global_pages
        self.asid = next(_ASID_COUNTER) if asid is None else asid
        self.page_table = PageTable()
        self.mappings: list[Mapping] = []
        self._next_base = self.DEFAULT_MMAP_BASE

    def mmap(
        self,
        n_bytes: int,
        locked: bool = False,
        populate: bool = True,
        name: str = "anon",
    ) -> Mapping:
        """Create an anonymous mapping of at least ``n_bytes`` bytes."""
        if n_bytes <= 0:
            raise ValueError(f"n_bytes must be positive, got {n_bytes}")
        n_pages = align_up(n_bytes, PAGE_SIZE) // PAGE_SIZE
        base = self._carve_region(n_pages)
        mapping = Mapping(name=name, base=base, n_pages=n_pages, locked=locked, space=self)
        backed = locked or populate
        for vpage in mapping.vpages():
            frame = self.physical.alloc_frame() if backed else PhysicalMemory.ZERO_FRAME
            self.page_table.map(vpage, frame)
        self.mappings.append(mapping)
        return mapping

    def map_shared(self, source: Mapping, name: str | None = None) -> Mapping:
        """Map the frames of ``source`` (from any space) into this space.

        Models ``mmap(MAP_SHARED)`` between processes, the syscall
        ``memory_space`` parameter of the paper's Listing 7, and the
        enclave's copied buffer: same physical lines, new virtual base.
        """
        frames = source.frames()
        base = self._carve_region(len(frames))
        mapping = Mapping(
            name=name if name is not None else f"{source.name}@{self.name}",
            base=base,
            n_pages=len(frames),
            locked=source.locked,
            space=self,
        )
        for vpage, frame in zip(mapping.vpages(), frames):
            self.page_table.map(vpage, frame)
        self.mappings.append(mapping)
        return mapping

    def write_touch(self, vaddr: int) -> None:
        """Model a store to ``vaddr``: promote a zero-frame page to private.

        This is the copy-on-write promotion that turns a "reclaimable" page
        into a normally-backed one.
        """
        vpage = vaddr // PAGE_SIZE
        frame = self.page_table.frame_of(vpage)
        if frame is None:
            raise KeyError(f"page fault: virtual address {vaddr:#x} is not mapped")
        if frame == PhysicalMemory.ZERO_FRAME:
            self.page_table.map(vpage, self.physical.alloc_frame())

    def translate(self, vaddr: int) -> int:
        """Virtual → physical byte address (raises KeyError when unmapped)."""
        return self.page_table.translate(vaddr)

    def munmap(self, mapping: Mapping) -> None:
        """Tear down ``mapping``, releasing private frames."""
        if mapping not in self.mappings:
            raise ValueError(f"mapping {mapping.name!r} does not belong to {self.name!r}")
        for vpage in mapping.vpages():
            frame = self.page_table.unmap(vpage)
            if frame is not None:
                self.physical.free_frame(frame)
        self.mappings.remove(mapping)

    def _carve_region(self, n_pages: int) -> int:
        base = self._next_base
        if self.aslr is not None:
            base = self.aslr.randomize_base(base)
        # Keep a guard page between mappings so off-by-one address bugs in
        # experiments fault instead of silently touching a neighbour.
        self._next_base = base + (n_pages + 1) * PAGE_SIZE
        return base

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"AddressSpace({self.name!r}, asid={self.asid}, mappings={len(self.mappings)})"
