"""Shared lint primitives: the Rule base class and path/AST helpers.

This module exists so both rule families can import the same base
without a cycle: the syntactic rules (:mod:`repro.lint.rules`) and the
flow rules (:mod:`repro.lint.flow.rules`) depend on it, and
``repro.lint.rules`` then aggregates both into ``ALL_RULES``.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator
from typing import TYPE_CHECKING, ClassVar

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.lint.engine import FileContext, Finding

#: Packages holding per-cycle model state (the sanitizer's subjects).
MODEL_PACKAGES = ("repro/prefetch", "repro/memsys", "repro/mmu", "repro/cpu")

#: Packages where even the small paper constants (24 entries, 64-byte
#: lines) are load-bearing and must come from :mod:`repro.params`.
CORE_MODEL_PACKAGES = MODEL_PACKAGES + ("repro/channels", "repro/revng")

#: Container methods that mutate their receiver in place.
_MUTATOR_METHODS = frozenset(
    {"append", "add", "clear", "discard", "extend", "insert", "pop", "popitem",
     "remove", "setdefault", "sort", "update", "reverse"}
)


def _in_package(path: str, package: str) -> bool:
    return f"/{package}/" in path or path.startswith(f"{package}/")


def _in_any_package(path: str, packages: tuple[str, ...]) -> bool:
    return any(_in_package(path, package) for package in packages)


def _is_test_path(path: str) -> bool:
    return "tests" in path.split("/")[:-1]


def _dotted(node: ast.AST) -> tuple[str, ...] | None:
    """``a.b.c`` as ``("a", "b", "c")``; None for non-name chains."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return tuple(reversed(parts))


class Rule:
    """One lint rule.  Subclasses set the class attributes and ``check``."""

    rule_id: ClassVar[str]
    title: ClassVar[str]
    hint: ClassVar[str]
    #: Rules that consume the CFG/dataflow pass set this; the engine skips
    #: them when linting with ``flow=False`` (``--no-flow``).
    requires_flow: ClassVar[bool] = False

    def applies_to(self, path: str) -> bool:
        """Whether the rule runs on ``path`` (posix-style, repo-relative)."""
        return True

    def check(self, ctx: "FileContext") -> Iterator["Finding"]:
        raise NotImplementedError

    @classmethod
    def describe(cls) -> dict[str, str]:
        return {"id": cls.rule_id, "title": cls.title, "hint": cls.hint}
