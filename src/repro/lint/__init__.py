"""`repro.lint` — the repository's own static-analysis pass.

Every figure this repo reproduces is only as trustworthy as the simulator's
state machines, and those are only as trustworthy as the modelling
conventions around them: all randomness seeded and derived through
:mod:`repro.utils.rng`, no wall-clock time in model code, paper constants
taken from :mod:`repro.params` instead of re-typed literals, no module
reaching into another component's private state, hot per-cycle objects kept
allocation-lean.  ``repro.lint`` enforces those conventions over the AST.

Beyond the single-node syntactic rules, :mod:`repro.lint.flow` adds an
intraprocedural CFG + fixpoint dataflow layer (on by default; disable
with ``--no-flow``): taint tracking from nondeterminism sources into
trial/seed/trace sinks (RL014/RL015), fork-safety checks on worker-pool
dispatch (RL016/RL017), alias-aware upgrades of RL001/RL003/RL008, and
dead-branch suppression of their false positives.

Usage::

    python -m repro.lint src tests benchmarks [--format=json]
    afterimage lint [paths ...] [--no-flow] [--changed]

Findings can be suppressed per line with ``# repro: noqa[RLxxx]`` (or a
bare ``# repro: noqa`` to suppress every rule).  See ``docs/LINT.md`` for
the rule catalogue.
"""

from __future__ import annotations

from repro.lint.cli import main
from repro.lint.engine import Finding, lint_paths, lint_source, render_json, render_text
from repro.lint.rules import ALL_RULES, Rule

__all__ = [
    "ALL_RULES",
    "Finding",
    "Rule",
    "lint_paths",
    "lint_source",
    "main",
    "render_json",
    "render_text",
]
