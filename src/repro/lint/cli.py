"""Command-line front end for the lint pass.

Split from :mod:`repro.lint.engine` so the engine stays a pure library —
RL011 (no ``print()`` in library code) applies to the engine itself; all
terminal output lives here, in a ``cli.py`` the rule exempts.
"""

from __future__ import annotations

import argparse
import subprocess
import sys
from collections.abc import Sequence
from pathlib import Path

from repro.lint.engine import lint_paths, render_json, render_text
from repro.lint.rules import ALL_RULES


def changed_files(paths: Sequence[str]) -> list[str]:
    """Python files changed vs HEAD (tracked diff + untracked), restricted
    to the requested ``paths``.

    Raises ``RuntimeError`` when git is unavailable or the tree is not a
    repository — callers map that to the usage exit code.
    """
    commands = (
        ["git", "rev-parse", "--show-toplevel"],
        ["git", "diff", "--name-only", "HEAD"],
        ["git", "ls-files", "--others", "--exclude-standard"],
    )
    outputs: list[list[str]] = []
    for command in commands:
        try:
            result = subprocess.run(
                command, capture_output=True, text=True, check=True
            )
        except (OSError, subprocess.CalledProcessError) as error:
            raise RuntimeError(f"--changed needs a git checkout: {error}") from error
        outputs.append([line.strip() for line in result.stdout.splitlines() if line.strip()])
    # git reports paths relative to the repo root, not the cwd.
    repo_root = Path(outputs[0][0])
    names = outputs[1] + outputs[2]
    roots = [Path(p).resolve() for p in paths]
    selected: list[str] = []
    for name in sorted(set(names)):
        path = repo_root / name
        if path.suffix != ".py" or not path.is_file():
            continue
        resolved = path.resolve()
        if any(resolved == root or root in resolved.parents for root in roots):
            selected.append(str(path))
    return selected


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point: ``python -m repro.lint`` / ``afterimage lint``."""
    parser = argparse.ArgumentParser(
        prog="repro.lint",
        description="Static-analysis pass enforcing this repo's modelling conventions.",
    )
    parser.add_argument("paths", nargs="*", default=["src"], help="files or directories (default: src)")
    parser.add_argument("--format", choices=("text", "json"), default="text")
    parser.add_argument(
        "--select",
        metavar="RLxxx[,RLxxx...]",
        default=None,
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--flow",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="run the CFG/dataflow pass: flow rules RL014-RL017, alias-aware "
        "RL001/RL003/RL008, dead-branch filtering (default: on)",
    )
    parser.add_argument(
        "--changed",
        action="store_true",
        help="lint only files changed vs HEAD (git diff + untracked), "
        "restricted to the given paths",
    )
    parser.add_argument("--list-rules", action="store_true", help="print the rule catalogue and exit")
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule_cls in ALL_RULES:
            flow_tag = "  [flow]" if rule_cls.requires_flow else ""
            print(f"{rule_cls.rule_id}  {rule_cls.title}{flow_tag}")
        return 0

    paths = list(args.paths)
    if args.changed:
        try:
            paths = changed_files(paths)
        except RuntimeError as error:
            print(f"repro.lint: {error}", file=sys.stderr)
            return 2
        if not paths:
            print(render_text([], 0))
            return 0

    only = args.select.split(",") if args.select else None
    timings: dict[str, float] = {}
    try:
        findings, n_files = lint_paths(paths, only=only, flow=args.flow, timings=timings)
    except (FileNotFoundError, ValueError) as error:
        print(f"repro.lint: {error}", file=sys.stderr)
        return 2
    if args.format == "json":
        print(render_json(findings, n_files, timings=timings))
    else:
        print(render_text(findings, n_files))
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
