"""Command-line front end for the lint pass.

Split from :mod:`repro.lint.engine` so the engine stays a pure library —
RL011 (no ``print()`` in library code) applies to the engine itself; all
terminal output lives here, in a ``cli.py`` the rule exempts.
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence

from repro.lint.engine import lint_paths, render_json, render_text
from repro.lint.rules import ALL_RULES


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point: ``python -m repro.lint`` / ``afterimage lint``."""
    parser = argparse.ArgumentParser(
        prog="repro.lint",
        description="Static-analysis pass enforcing this repo's modelling conventions.",
    )
    parser.add_argument("paths", nargs="*", default=["src"], help="files or directories (default: src)")
    parser.add_argument("--format", choices=("text", "json"), default="text")
    parser.add_argument(
        "--select",
        metavar="RLxxx[,RLxxx...]",
        default=None,
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument("--list-rules", action="store_true", help="print the rule catalogue and exit")
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule_cls in ALL_RULES:
            print(f"{rule_cls.rule_id}  {rule_cls.title}")
        return 0

    only = args.select.split(",") if args.select else None
    try:
        findings, n_files = lint_paths(args.paths, only=only)
    except (FileNotFoundError, ValueError) as error:
        print(f"repro.lint: {error}", file=sys.stderr)
        return 2
    renderer = render_json if args.format == "json" else render_text
    print(renderer(findings, n_files))
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
