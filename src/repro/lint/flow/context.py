"""Per-file flow state shared by every flow rule.

Building CFGs and running taint fixpoints is the expensive part of the
flow pass, so it happens once per file: the engine attaches a
:class:`FlowContext` to the :class:`~repro.lint.engine.FileContext` and
every rule reads from it.  A :class:`Scope` is one CFG-owning body —
the module, a class body, or a function — with its taint fixpoint
computed lazily and cached.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.flow.cfg import CFG, build_cfg, unreachable_lines
from repro.lint.flow.solver import solve_forward
from repro.lint.flow.taint import (
    KIND_ALIAS_HASH,
    KIND_ALIAS_WALLCLOCK,
    Env,
    TaintAnalysis,
    taint_of,
    _comp_target_names,
)

_SCOPE_NODES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)


class Scope:
    """One CFG-owning body: module, class body, or function."""

    def __init__(self, kind: str, name: str, node: ast.AST, body: list[ast.stmt]) -> None:
        self.kind = kind
        self.name = name
        self.node = node
        self.cfg: CFG = build_cfg(body)
        self._items_with_env: list[tuple[ast.AST, Env]] | None = None

    def items_with_env(self) -> list[tuple[ast.AST, Env]]:
        """Every reachable item paired with the taint env *before* it."""
        if self._items_with_env is None:
            analysis = TaintAnalysis()
            in_facts, _out = solve_forward(self.cfg, analysis)
            pairs: list[tuple[ast.AST, Env]] = []
            for block in self.cfg.blocks:
                if not block.reachable:
                    continue
                env = in_facts[block.index]
                for item in block.items:
                    pairs.append((item, env))
                    env = analysis.transfer_item(item, env)
            self._items_with_env = pairs
        return self._items_with_env


def iter_calls_with_env(item: ast.AST, env: Env) -> Iterator[tuple[ast.Call, Env]]:
    """Call sites inside one item, each with the env its args see.

    Walks the item's *expressions* only — nested ``def``/``class`` bodies
    belong to their own scopes, lambda bodies run later under a different
    env, and comprehension bodies get the env extended with the
    comprehension targets bound to the taint of their iterables (so a
    ``Trial(...)`` built inside a list comprehension still sees the taint
    of the list being iterated).
    """
    if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
        roots: list[ast.expr] = list(item.decorator_list)
        roots.extend(d for d in item.args.defaults)
        roots.extend(d for d in item.args.kw_defaults if d is not None)
    elif isinstance(item, ast.ClassDef):
        roots = list(item.decorator_list) + list(item.bases) + [
            keyword.value for keyword in item.keywords
        ]
    elif isinstance(item, (ast.For, ast.AsyncFor)):
        roots = [item.iter]
    elif isinstance(item, (ast.With, ast.AsyncWith)):
        roots = [with_item.context_expr for with_item in item.items]
    elif isinstance(item, ast.ExceptHandler):
        roots = [item.type] if item.type is not None else []
    elif isinstance(item, ast.expr):
        roots = [item]
    elif isinstance(item, ast.stmt):
        roots = [child for child in ast.iter_child_nodes(item) if isinstance(child, ast.expr)]
    else:
        roots = []
    for root in roots:
        yield from _walk_expr(root, env)


def _walk_expr(node: ast.expr, env: Env) -> Iterator[tuple[ast.Call, Env]]:
    if isinstance(node, ast.Lambda):
        return
    if isinstance(node, (ast.ListComp, ast.GeneratorExp, ast.SetComp, ast.DictComp)):
        inner = dict(env)
        for generator in node.generators:
            yield from _walk_expr(generator.iter, inner)
            iter_labels = taint_of(generator.iter, inner)
            for name in _comp_target_names(generator.target):
                inner[name] = iter_labels
            for condition in generator.ifs:
                yield from _walk_expr(condition, inner)
        if isinstance(node, ast.DictComp):
            yield from _walk_expr(node.key, inner)
            yield from _walk_expr(node.value, inner)
        else:
            yield from _walk_expr(node.elt, inner)
        return
    if isinstance(node, ast.Call):
        yield node, env
    for child in ast.iter_child_nodes(node):
        if isinstance(child, ast.expr):
            yield from _walk_expr(child, env)
        elif isinstance(child, ast.keyword):
            yield from _walk_expr(child.value, env)


def _dynamic_random_import(call: ast.Call) -> bool:
    """``__import__("random")`` / ``importlib.import_module("random")``."""
    func = call.func
    name = None
    if isinstance(func, ast.Name):
        name = func.id
    elif isinstance(func, ast.Attribute):
        name = func.attr
    if name not in ("__import__", "import_module"):
        return False
    if not call.args or not isinstance(call.args[0], ast.Constant):
        return False
    value = call.args[0].value
    return isinstance(value, str) and (value == "random" or value.startswith("random."))


class FlowContext:
    """Everything the flow rules need about one parsed file."""

    def __init__(self, tree: ast.Module) -> None:
        self.tree = tree
        self.scopes: list[Scope] = [Scope("module", "<module>", tree, tree.body)]
        for node in ast.walk(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self.scopes.append(Scope("function", node.name, node, node.body))
            elif isinstance(node, ast.ClassDef):
                self.scopes.append(Scope("class", node.name, node, node.body))
        self.dead_lines: set[int] = set()
        for scope in self.scopes:
            self.dead_lines.update(unreachable_lines(scope.cfg))
        self._alias_calls: list[tuple[str, ast.Call]] | None = None

    def function_scopes(self) -> list[Scope]:
        return [scope for scope in self.scopes if scope.kind == "function"]

    def module_scope(self) -> Scope:
        return self.scopes[0]

    def alias_calls(self) -> list[tuple[str, ast.Call]]:
        """Calls through aliases of banned functions, plus dynamic random
        imports: ("wall-clock"|"hash"|"random-import", call node)."""
        if self._alias_calls is None:
            found: list[tuple[str, ast.Call]] = []
            for scope in self.scopes:
                for item, env in scope.items_with_env():
                    for call, call_env in iter_calls_with_env(item, env):
                        if _dynamic_random_import(call):
                            found.append(("random-import", call))
                        if not isinstance(call.func, ast.Name):
                            continue
                        labels = call_env.get(call.func.id, frozenset())
                        kinds = {kind for kind, _line in labels}
                        if KIND_ALIAS_WALLCLOCK in kinds:
                            found.append(("wall-clock", call))
                        if KIND_ALIAS_HASH in kinds:
                            found.append(("hash", call))
            self._alias_calls = found
        return self._alias_calls
