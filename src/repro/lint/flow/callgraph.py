"""Module-local call graphs, shared by the flow rules and ``leakcheck.extract``.

Two consumers need the same approximation of "which functions in this
module can this function reach by calling":

* RL016 (:mod:`repro.lint.flow.rules`) walks the closure of a
  pool-dispatched worker callable over *bare-name* calls to decide which
  module globals the worker can touch;
* the static victim front-end (:mod:`repro.leakcheck.extract`) inlines
  callee bodies at call sites, where method calls (``self._helper(...)``)
  must resolve too, so its closure also follows *attribute-call names*.

Both shapes live here so the two passes cannot drift: the graph is always
name-based (no type inference), always module-local (imports are opaque),
and deterministic (closures are discovered in call-site order).
"""

from __future__ import annotations

import ast

from repro.lint.flow.taint import dotted

#: The AST nodes that define a function body.
FUNC_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)


def module_functions(
    tree: ast.Module,
) -> dict[str, ast.FunctionDef | ast.AsyncFunctionDef]:
    """Module-*level* function definitions, by name (methods excluded)."""
    return {
        stmt.name: stmt for stmt in tree.body if isinstance(stmt, FUNC_NODES)
    }


def function_defs(
    tree: ast.Module,
) -> dict[str, list[ast.FunctionDef | ast.AsyncFunctionDef]]:
    """Every ``def`` in the module — top-level functions *and* class
    methods — grouped by bare name.

    A name maps to more than one definition when several classes define
    the same method (e.g. three ``_consume_bit`` overrides); callers that
    need unambiguous resolution must treat those as dynamic dispatch.
    """
    defs: dict[str, list[ast.FunctionDef | ast.AsyncFunctionDef]] = {}
    for node in ast.walk(tree):
        if isinstance(node, FUNC_NODES):
            defs.setdefault(node.name, []).append(node)
    return defs


def called_names(func: ast.AST, *, attr_calls: bool = False) -> list[str]:
    """Bare names this body calls, in source order.

    With ``attr_calls`` the last element of attribute-call chains counts
    too (``self._helper()`` contributes ``_helper``) — the liberal
    resolution the extractor's inliner uses.  Without it, only direct
    ``name(...)`` calls count — RL016's conservative worker closure.
    """
    names: list[str] = []
    for node in ast.walk(func):
        if not isinstance(node, ast.Call):
            continue
        chain = dotted(node.func)
        if chain is None:
            continue
        if len(chain) == 1 or attr_calls:
            names.append(chain[-1])
    return names


def reachable_from(
    module_funcs: dict[str, ast.FunctionDef | ast.AsyncFunctionDef],
    roots: dict[str, int],
) -> dict[str, tuple[str, int]]:
    """RL016's worker closure: function name → (dispatch root, root line).

    Starting from ``roots`` (dispatched callable name → dispatch line),
    follow bare-name calls into other module-level functions.  The
    traversal order (depth-first, first root wins) is part of the rule's
    observable output ordering and is kept stable here.
    """
    reached: dict[str, tuple[str, int]] = {}
    frontier = [(name, name, line) for name, line in roots.items()]
    while frontier:
        name, root, line = frontier.pop()
        if name in reached:
            continue
        reached[name] = (root, line)
        for callee in called_names(module_funcs[name]):
            if callee in module_funcs:
                frontier.append((callee, root, line))
    return reached


def closure_defs(
    defs: dict[str, list[ast.FunctionDef | ast.AsyncFunctionDef]],
    root: ast.FunctionDef | ast.AsyncFunctionDef,
) -> list[ast.FunctionDef | ast.AsyncFunctionDef]:
    """The extractor's inlining closure: every definition reachable from
    ``root`` by (bare- or attribute-) called name, root first, then in
    discovery order.

    Ambiguously named callees contribute *all* their definitions — the
    closure over-approximates; the interpreter rejects the ambiguous call
    itself if it is ever actually taken.
    """
    out = [root]
    seen = {id(root)}
    queue = [root]
    while queue:
        current = queue.pop(0)
        for name in called_names(current, attr_calls=True):
            for candidate in defs.get(name, []):
                if id(candidate) not in seen:
                    seen.add(id(candidate))
                    out.append(candidate)
                    queue.append(candidate)
    return out
