"""Intraprocedural control-flow graphs over stdlib ``ast``.

A :class:`CFG` is a list of :class:`BasicBlock`\\ s connected by successor/
predecessor edges.  Blocks hold *items*: ordinary statements, plus the
bare test expression of an ``if``/``while`` header, the ``for``/``with``/
``except`` header nodes (whose bodies live in successor blocks or later
items), so a dataflow transfer function can process exactly what executes
at that program point and nothing nested.

The builder is deliberately approximate where precision buys nothing for
a may-analysis over union joins:

* every ``except`` handler is entered both from the start and from the
  end of its ``try`` body (an exception may fire before or after any
  definition inside it);
* ``match`` statements fan out one edge per case plus a fall-through;
* comprehensions are not control flow here — their binding semantics are
  handled at expression level by the taint evaluator.

Literal-constant branch tests (``if False:``, ``while True:`` exits,
``if True:`` else-arms) suppress the corresponding edge, which is what
makes dead-branch code CFG-unreachable — see :func:`unreachable_lines`.

Nested ``def``/``class`` statements are opaque binding items: their
bodies get their own CFGs via :class:`repro.lint.flow.context.Scope`.
"""

from __future__ import annotations

import ast
from collections import deque
from dataclasses import dataclass, field

#: Loop bookkeeping: (header block, after block) for break/continue.
_Loop = tuple[int, int]


@dataclass
class BasicBlock:
    """One straight-line run of items plus its edges."""

    index: int
    items: list[ast.AST] = field(default_factory=list)
    succs: list[int] = field(default_factory=list)
    preds: list[int] = field(default_factory=list)
    reachable: bool = False


class CFG:
    """Blocks, an entry, an exit, and reachability over the edges."""

    def __init__(self) -> None:
        self.blocks: list[BasicBlock] = []
        self.entry: int = 0
        self.exit: int = 0

    def new_block(self) -> int:
        block = BasicBlock(index=len(self.blocks))
        self.blocks.append(block)
        return block.index

    def add_edge(self, src: int, dst: int) -> None:
        if dst not in self.blocks[src].succs:
            self.blocks[src].succs.append(dst)
            self.blocks[dst].preds.append(src)

    def mark_reachable(self) -> None:
        seen = {self.entry}
        queue = deque([self.entry])
        while queue:
            index = queue.popleft()
            self.blocks[index].reachable = True
            for succ in self.blocks[index].succs:
                if succ not in seen:
                    seen.add(succ)
                    queue.append(succ)

    def reachable_blocks(self) -> list[BasicBlock]:
        return [block for block in self.blocks if block.reachable]


def _literal_test(test: ast.expr) -> bool | None:
    """The truth value of a constant branch test, or None when dynamic."""
    if isinstance(test, ast.Constant):
        return bool(test.value)
    return None


def _item_lines(item: ast.AST) -> range:
    """Source lines an item *itself* occupies (headers, not their bodies)."""
    start = getattr(item, "lineno", 0)
    end = getattr(item, "end_lineno", start)
    if isinstance(item, (ast.For, ast.AsyncFor)):
        end = getattr(item.iter, "end_lineno", start)
    elif isinstance(item, (ast.With, ast.AsyncWith)):
        last = item.items[-1]
        bound = last.optional_vars or last.context_expr
        end = getattr(bound, "end_lineno", start)
    elif isinstance(item, ast.ExceptHandler):
        end = start
    return range(start, end + 1)


class _Builder:
    def __init__(self) -> None:
        self.cfg = CFG()
        self.cfg.entry = self.cfg.new_block()
        self.cfg.exit = self.cfg.new_block()
        self._loops: list[_Loop] = []

    def build(self, body: list[ast.stmt]) -> CFG:
        end = self._visit_body(body, self.cfg.entry)
        self.cfg.add_edge(end, self.cfg.exit)
        self.cfg.mark_reachable()
        return self.cfg

    # ------------------------------------------------------------------ #
    # Statement dispatch                                                  #
    # ------------------------------------------------------------------ #

    def _visit_body(self, body: list[ast.stmt], current: int) -> int:
        for stmt in body:
            current = self._visit_stmt(stmt, current)
        return current

    def _visit_stmt(self, stmt: ast.stmt, current: int) -> int:
        cfg = self.cfg
        if isinstance(stmt, ast.If):
            return self._visit_if(stmt, current)
        if isinstance(stmt, ast.While):
            return self._visit_while(stmt, current)
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            return self._visit_for(stmt, current)
        if isinstance(stmt, ast.Try) or (
            hasattr(ast, "TryStar") and isinstance(stmt, ast.TryStar)
        ):
            return self._visit_try(stmt, current)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            cfg.blocks[current].items.append(stmt)
            return self._visit_body(stmt.body, current)
        if isinstance(stmt, ast.Match):
            return self._visit_match(stmt, current)
        if isinstance(stmt, (ast.Return, ast.Raise)):
            cfg.blocks[current].items.append(stmt)
            cfg.add_edge(current, cfg.exit)
            return cfg.new_block()
        if isinstance(stmt, ast.Break):
            if self._loops:
                cfg.add_edge(current, self._loops[-1][1])
            else:
                cfg.add_edge(current, cfg.exit)
            return cfg.new_block()
        if isinstance(stmt, ast.Continue):
            if self._loops:
                cfg.add_edge(current, self._loops[-1][0])
            else:
                cfg.add_edge(current, cfg.exit)
            return cfg.new_block()
        # Simple statements — including nested def/class, which bind a
        # name here and get their own CFG in their own Scope.
        cfg.blocks[current].items.append(stmt)
        return current

    # ------------------------------------------------------------------ #
    # Structured statements                                               #
    # ------------------------------------------------------------------ #

    def _visit_if(self, stmt: ast.If, current: int) -> int:
        cfg = self.cfg
        cfg.blocks[current].items.append(stmt.test)
        literal = _literal_test(stmt.test)
        after = cfg.new_block()
        then_entry = cfg.new_block()
        if literal is not False:
            cfg.add_edge(current, then_entry)
        then_end = self._visit_body(stmt.body, then_entry)
        cfg.add_edge(then_end, after)
        if stmt.orelse:
            else_entry = cfg.new_block()
            if literal is not True:
                cfg.add_edge(current, else_entry)
            else_end = self._visit_body(stmt.orelse, else_entry)
            cfg.add_edge(else_end, after)
        elif literal is not True:
            cfg.add_edge(current, after)
        return after

    def _visit_while(self, stmt: ast.While, current: int) -> int:
        cfg = self.cfg
        header = cfg.new_block()
        cfg.add_edge(current, header)
        cfg.blocks[header].items.append(stmt.test)
        literal = _literal_test(stmt.test)
        body_entry = cfg.new_block()
        after = cfg.new_block()
        if literal is not False:
            cfg.add_edge(header, body_entry)
        self._loops.append((header, after))
        body_end = self._visit_body(stmt.body, body_entry)
        self._loops.pop()
        cfg.add_edge(body_end, header)
        if literal is not True:
            if stmt.orelse:
                else_entry = cfg.new_block()
                cfg.add_edge(header, else_entry)
                cfg.add_edge(self._visit_body(stmt.orelse, else_entry), after)
            else:
                cfg.add_edge(header, after)
        return after

    def _visit_for(self, stmt: ast.For | ast.AsyncFor, current: int) -> int:
        cfg = self.cfg
        header = cfg.new_block()
        cfg.add_edge(current, header)
        cfg.blocks[header].items.append(stmt)  # transfer binds target from iter
        body_entry = cfg.new_block()
        after = cfg.new_block()
        cfg.add_edge(header, body_entry)
        self._loops.append((header, after))
        body_end = self._visit_body(stmt.body, body_entry)
        self._loops.pop()
        cfg.add_edge(body_end, header)
        if stmt.orelse:
            else_entry = cfg.new_block()
            cfg.add_edge(header, else_entry)
            cfg.add_edge(self._visit_body(stmt.orelse, else_entry), after)
        else:
            cfg.add_edge(header, after)
        return after

    def _visit_try(self, stmt: ast.Try, current: int) -> int:
        cfg = self.cfg
        body_entry = cfg.new_block()
        cfg.add_edge(current, body_entry)
        # Statement-granular body: the exception may fire before the body
        # (current's out) or after any single statement in it, so each
        # statement ends a block whose out-fact feeds the handlers.
        exception_sources = [current]
        block = body_entry
        for inner in stmt.body:
            block = self._visit_stmt(inner, block)
            exception_sources.append(block)
            nxt = cfg.new_block()
            cfg.add_edge(block, nxt)
            block = nxt
        body_end = block
        after = cfg.new_block()
        normal_end = body_end
        if stmt.orelse:
            else_entry = cfg.new_block()
            cfg.add_edge(body_end, else_entry)
            normal_end = self._visit_body(stmt.orelse, else_entry)
        cfg.add_edge(normal_end, after)
        for handler in stmt.handlers:
            handler_entry = cfg.new_block()
            cfg.blocks[handler_entry].items.append(handler)  # binds `as name`
            for source in exception_sources:
                cfg.add_edge(source, handler_entry)
            handler_end = self._visit_body(handler.body, handler_entry)
            cfg.add_edge(handler_end, after)
        if stmt.finalbody:
            fin_entry = cfg.new_block()
            cfg.add_edge(after, fin_entry)
            return self._visit_body(stmt.finalbody, fin_entry)
        return after

    def _visit_match(self, stmt: ast.Match, current: int) -> int:
        cfg = self.cfg
        cfg.blocks[current].items.append(stmt.subject)
        after = cfg.new_block()
        for case in stmt.cases:
            case_entry = cfg.new_block()
            cfg.add_edge(current, case_entry)
            cfg.add_edge(self._visit_body(case.body, case_entry), after)
        cfg.add_edge(current, after)  # no case matched
        return after


def build_cfg(body: list[ast.stmt]) -> CFG:
    """Build the CFG of one straight scope body (module/class/function)."""
    return _Builder().build(body)


def unreachable_lines(cfg: CFG) -> set[int]:
    """Source lines of items sitting in CFG-unreachable blocks."""
    dead: set[int] = set()
    for block in cfg.blocks:
        if block.reachable:
            continue
        for item in block.items:
            dead.update(_item_lines(item))
    return dead
