"""Label-propagation taint analysis for the flow rules.

The abstract state at every program point is an *environment* mapping
variable names to sets of labels, each label a ``(kind, source_line)``
pair.  :func:`taint_of` evaluates an expression under an environment and
returns the labels of its value; :class:`TaintAnalysis` is the forward
analysis that pushes environments through a scope's CFG.

Two families of label kinds:

* **determinism kinds** — wall-clock reads, unseeded RNG draws, ``id()``,
  OS entropy (``os.urandom``/``secrets``/``uuid.uuid4``), and set
  iteration order.  These propagate *broadly*: through arithmetic,
  containers, attribute access and calls (``rng.integers(...)`` on a
  tainted generator yields a tainted draw).  ``sorted(...)`` strips the
  set-order kind — ordering is exactly what it repairs.
* **resource kinds** — open file handles and locks, tracked for the
  fork-safety checker.  These propagate only through *aliasing* shapes
  (plain name binding, containers, conditionals): the bytes read *from*
  a file are not a file handle, so calls and attribute access drop them.

Two extra alias kinds power the flow-aware RL003/RL008 upgrades: a bare
(uncalled) reference to ``time.perf_counter`` or builtin ``hash`` labels
the name it lands in, and calling through that alias is then flagged by
the syntactic rule's flow extension.
"""

from __future__ import annotations

import ast

from repro.lint.flow.cfg import BasicBlock

#: One taint label: (kind, line of the source expression).
Label = tuple[str, int]
#: The abstract state: variable name -> labels of its value.
Env = dict[str, frozenset[Label]]

KIND_WALLCLOCK = "wall-clock"
KIND_UNSEEDED_RNG = "unseeded-rng"
KIND_ID = "id()"
KIND_URANDOM = "os-entropy"
KIND_SET_ORDER = "set-order"
KIND_OPEN_HANDLE = "open-handle"
KIND_LOCK = "lock"
KIND_ALIAS_WALLCLOCK = "alias:wall-clock-fn"
KIND_ALIAS_HASH = "alias:hash-fn"

#: Kinds that make a value nondeterministic across runs/processes.
DETERMINISM_KINDS = frozenset(
    {KIND_WALLCLOCK, KIND_UNSEEDED_RNG, KIND_ID, KIND_URANDOM, KIND_SET_ORDER}
)
#: Kinds naming process-local resources that must not cross a fork/pickle.
RESOURCE_KINDS = frozenset({KIND_OPEN_HANDLE, KIND_LOCK})
#: Function-alias kinds (flow-aware RL003/RL008).
ALIAS_KINDS = frozenset({KIND_ALIAS_WALLCLOCK, KIND_ALIAS_HASH})

_WALLCLOCK_FNS = frozenset(
    {
        "time",
        "time_ns",
        "perf_counter",
        "perf_counter_ns",
        "monotonic",
        "monotonic_ns",
        "process_time",
        "process_time_ns",
    }
)
#: Wall-clock functions unambiguous even as bare names (``from time
#: import perf_counter``); bare ``time`` is excluded — too common a local.
_BARE_WALLCLOCK_FNS = _WALLCLOCK_FNS - {"time"}
_LOCK_CTORS = frozenset(
    {"Lock", "RLock", "Semaphore", "BoundedSemaphore", "Condition", "Barrier"}
)


def dotted(node: ast.AST) -> tuple[str, ...] | None:
    """``a.b.c`` as ``("a", "b", "c")``; None for non-name chains."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return tuple(reversed(parts))


def _source_kinds(node: ast.Call) -> list[str]:
    """Taint kinds a call introduces by itself (independent of operands)."""
    kinds: list[str] = []
    chain = dotted(node.func)
    name = chain[-1] if chain else None
    if chain is None:
        return kinds
    if len(chain) == 2 and chain[0] == "time" and chain[1] in _WALLCLOCK_FNS:
        kinds.append(KIND_WALLCLOCK)
    elif len(chain) == 1 and name in _BARE_WALLCLOCK_FNS:
        kinds.append(KIND_WALLCLOCK)
    elif name in ("now", "utcnow") and "datetime" in chain:
        kinds.append(KIND_WALLCLOCK)
    elif chain[0] == "random" and len(chain) > 1:
        kinds.append(KIND_UNSEEDED_RNG)
    elif chain[0] in ("np", "numpy") and len(chain) >= 3 and chain[1] == "random":
        if not (name == "default_rng" and (node.args or node.keywords)):
            kinds.append(KIND_UNSEEDED_RNG)
    elif name == "default_rng" and not node.args and not node.keywords:
        kinds.append(KIND_UNSEEDED_RNG)
    elif name == "urandom" or chain[0] == "secrets":
        kinds.append(KIND_URANDOM)
    elif chain == ("uuid", "uuid4") or name == "uuid4":
        kinds.append(KIND_URANDOM)
    elif len(chain) == 1 and name == "id" and len(node.args) == 1:
        kinds.append(KIND_ID)
    elif name in ("set", "frozenset") and len(chain) == 1:
        kinds.append(KIND_SET_ORDER)
    elif name == "open" and (len(chain) == 1 or chain[0] in ("io", "gzip", "bz2", "lzma")):
        kinds.append(KIND_OPEN_HANDLE)
    elif name in _LOCK_CTORS and (
        len(chain) == 1 or chain[0] in ("threading", "multiprocessing", "mp")
    ):
        kinds.append(KIND_LOCK)
    return kinds


def _reference_labels(node: ast.expr) -> frozenset[Label]:
    """Labels of a bare (uncalled) reference to a flagged function."""
    chain = dotted(node)
    if chain is None:
        return frozenset()
    line = getattr(node, "lineno", 0)
    if len(chain) == 2 and chain[0] == "time" and chain[1] in _WALLCLOCK_FNS:
        return frozenset({(KIND_ALIAS_WALLCLOCK, line)})
    if chain == ("hash",):
        return frozenset({(KIND_ALIAS_HASH, line)})
    return frozenset()


def _strip(labels: frozenset[Label], kinds: frozenset[str]) -> frozenset[Label]:
    return frozenset(label for label in labels if label[0] not in kinds)


def taint_of(node: ast.expr | None, env: Env) -> frozenset[Label]:
    """Labels of the value ``node`` evaluates to under ``env``.

    ``env`` is updated in place for walrus (``:=``) bindings encountered
    during evaluation.
    """
    if node is None:
        return frozenset()
    if isinstance(node, ast.Name):
        return env.get(node.id, frozenset()) | _reference_labels(node)
    if isinstance(node, ast.Constant):
        return frozenset()
    if isinstance(node, ast.NamedExpr):
        labels = taint_of(node.value, env)
        env[node.target.id] = labels
        return labels
    if isinstance(node, ast.Call):
        labels: frozenset[Label] = frozenset()
        func_labels = taint_of(node.func, env)
        for arg in node.args:
            inner = arg.value if isinstance(arg, ast.Starred) else arg
            labels |= taint_of(inner, env)
        for keyword in node.keywords:
            labels |= taint_of(keyword.value, env)
        line = getattr(node, "lineno", 0)
        chain = dotted(node.func)
        name = chain[-1] if chain else None
        if name == "sorted":
            labels = _strip(labels, frozenset({KIND_SET_ORDER}))
        # A call's result is data, not the resource itself.
        labels = _strip(labels | func_labels, RESOURCE_KINDS | ALIAS_KINDS)
        # ...unless the call *is* a resource/nondeterminism source.
        labels |= frozenset((kind, line) for kind in _source_kinds(node))
        # Calling through an alias of a wall-clock function reads the clock.
        if any(kind == KIND_ALIAS_WALLCLOCK for kind, _line in func_labels):
            labels |= frozenset({(KIND_WALLCLOCK, line)})
        return labels
    if isinstance(node, ast.Attribute):
        ref = _reference_labels(node)
        if ref:
            return ref
        return _strip(taint_of(node.value, env), RESOURCE_KINDS | ALIAS_KINDS)
    if isinstance(node, (ast.BinOp,)):
        return taint_of(node.left, env) | taint_of(node.right, env)
    if isinstance(node, ast.UnaryOp):
        return taint_of(node.operand, env)
    if isinstance(node, ast.BoolOp):
        labels = frozenset()
        for value in node.values:
            labels |= taint_of(value, env)
        return labels
    if isinstance(node, ast.Compare):
        labels = taint_of(node.left, env)
        for comparator in node.comparators:
            labels |= taint_of(comparator, env)
        return labels
    if isinstance(node, ast.IfExp):
        taint_of(node.test, env)  # walrus side effects only
        return taint_of(node.body, env) | taint_of(node.orelse, env)
    if isinstance(node, ast.Subscript):
        return taint_of(node.value, env) | _strip(
            taint_of(node.slice, env), RESOURCE_KINDS | ALIAS_KINDS
        )
    if isinstance(node, ast.Starred):
        return taint_of(node.value, env)
    if isinstance(node, (ast.Tuple, ast.List)):
        labels = frozenset()
        for element in node.elts:
            labels |= taint_of(element, env)
        return labels
    if isinstance(node, ast.Set):
        labels = frozenset({(KIND_SET_ORDER, getattr(node, "lineno", 0))})
        for element in node.elts:
            labels |= taint_of(element, env)
        return labels
    if isinstance(node, ast.Dict):
        labels = frozenset()
        for key in node.keys:
            if key is not None:
                labels |= taint_of(key, env)
        for value in node.values:
            labels |= taint_of(value, env)
        return labels
    if isinstance(node, (ast.ListComp, ast.GeneratorExp, ast.SetComp, ast.DictComp)):
        inner = dict(env)
        labels: frozenset[Label] = frozenset()
        for generator in node.generators:
            iter_labels = taint_of(generator.iter, inner)
            for name in _comp_target_names(generator.target):
                inner[name] = iter_labels
            for condition in generator.ifs:
                taint_of(condition, inner)
        if isinstance(node, ast.DictComp):
            labels |= taint_of(node.key, inner) | taint_of(node.value, inner)
        else:
            labels |= taint_of(node.elt, inner)
        if isinstance(node, ast.SetComp):
            labels |= frozenset({(KIND_SET_ORDER, getattr(node, "lineno", 0))})
        return labels
    if isinstance(node, ast.JoinedStr):
        labels = frozenset()
        for value in node.values:
            labels |= taint_of(value, env)
        return labels
    if isinstance(node, ast.FormattedValue):
        return taint_of(node.value, env)
    if isinstance(node, ast.Await):
        return taint_of(node.value, env)
    if isinstance(node, ast.Lambda):
        return frozenset()
    return frozenset()


def _comp_target_names(target: ast.expr) -> list[str]:
    names: list[str] = []
    if isinstance(target, ast.Name):
        names.append(target.id)
    elif isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            names.extend(_comp_target_names(element))
    elif isinstance(target, ast.Starred):
        names.extend(_comp_target_names(target.value))
    return names


def _bind(env: Env, target: ast.expr, labels: frozenset[Label]) -> None:
    """Bind an assignment target (flattening tuples) to ``labels``."""
    if isinstance(target, ast.Name):
        if labels:
            env[target.id] = labels
        else:
            env.pop(target.id, None)
    elif isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            _bind(env, element, labels)
    elif isinstance(target, ast.Starred):
        _bind(env, target.value, labels)
    # Attribute/subscript stores don't rebind a tracked name.


class TaintAnalysis:
    """Forward taint propagation over one scope's CFG."""

    def bottom(self) -> Env:
        return {}

    def initial(self) -> Env:
        return {}

    def join(self, left: Env, right: Env) -> Env:
        if not right:
            return left
        if not left:
            return dict(right)
        merged = dict(left)
        for name, labels in right.items():
            merged[name] = merged.get(name, frozenset()) | labels
        return merged

    def transfer_item(self, item: ast.AST, env: Env) -> Env:
        """Apply one item to a *copy* of ``env`` and return it."""
        env = dict(env)
        if isinstance(item, ast.Assign):
            labels = taint_of(item.value, env)
            for target in item.targets:
                _bind(env, target, labels)
        elif isinstance(item, ast.AnnAssign):
            if item.value is not None:
                _bind(env, item.target, taint_of(item.value, env))
        elif isinstance(item, ast.AugAssign):
            extra = taint_of(item.value, env)
            if isinstance(item.target, ast.Name):
                combined = env.get(item.target.id, frozenset()) | extra
                if combined:
                    env[item.target.id] = combined
        elif isinstance(item, (ast.For, ast.AsyncFor)):
            _bind(env, item.target, taint_of(item.iter, env))
        elif isinstance(item, (ast.With, ast.AsyncWith)):
            for with_item in item.items:
                labels = taint_of(with_item.context_expr, env)
                if with_item.optional_vars is not None:
                    _bind(env, with_item.optional_vars, labels)
        elif isinstance(item, (ast.Import, ast.ImportFrom)):
            for alias in item.names:
                env.pop(alias.asname or alias.name.split(".")[0], None)
        elif isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            env.pop(item.name, None)
        elif isinstance(item, ast.ExceptHandler):
            if item.name:
                env.pop(item.name, None)
        elif isinstance(item, ast.Delete):
            for target in item.targets:
                if isinstance(target, ast.Name):
                    env.pop(target.id, None)
        elif isinstance(item, ast.Expr):
            taint_of(item.value, env)  # walrus bindings
        elif isinstance(item, ast.Return):
            taint_of(item.value, env)
        elif isinstance(item, ast.expr):  # a branch test
            taint_of(item, env)
        return env

    def transfer_block(self, block: BasicBlock, env: Env) -> Env:
        for item in block.items:
            env = self.transfer_item(item, env)
        return env
