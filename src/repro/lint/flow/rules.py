"""Flow rules RL014–RL019: determinism taint, fork safety, span/sink
pairing, kernel component isolation.

These rules consume the per-file :class:`~repro.lint.flow.context.FlowContext`
the engine attaches when the flow pass is enabled.  They are registered in
``ALL_RULES`` like every syntactic rule — same noqa suppression, same JSON
rendering, same ``--select`` handling — but carry ``requires_flow`` and are
skipped when the flow pass is off.

* **RL014/RL015 (determinism taint)** — values originating from
  wall-clock reads, unseeded RNG construction, ``id()``, OS entropy and
  set iteration order are tracked through assignments, calls, containers
  and comprehensions; RL014 fires when one reaches a ``Trial``/
  ``TrialBatch``/trace-event payload, RL015 when one reaches a seed or
  content-hash input.  Both bug classes silently break the repo's
  headline invariants (byte-identical crash-healed aggregates,
  same-seed trace equality) without failing any behavioural test.
* **RL016/RL017 (fork safety)** — task callables dispatched through a
  worker pool (``pool.map``-family calls, ``run_cell_fn=`` injection)
  must not reach module-level mutable globals (RL016: a forked copy
  diverges silently; a future persistent worker shares it for real),
  and dispatch sites must not smuggle open file handles/locks across
  the pool boundary or mutate objects already submitted (RL017).
* **RL018 (span/sink pairing)** — an explicit ``emit(SpanBegin(...))``
  must reach a matching ``SpanEnd`` emit, and a constructed
  ``JsonlSink``/``ChromeTraceSink``/``Tracer`` must reach ``close()``
  (or be handed off / returned / ``with``-managed), on **every** CFG
  path out of the scope — an unbalanced span corrupts nesting-aware
  trace consumers, an unclosed sink drops buffered events.
* **RL019 (kernel component isolation)** — classes deriving from the
  simulation kernel's ``Component`` base may only reach kernel state
  through the port/bus API (``kernel.post``/``publish``/``complete``/
  ``clock_of`` and wired ``*_port`` callables); ``self.machine``
  back-references, ``component_of()`` sibling grabs and private-kernel
  pokes re-create the hidden coupling the kernel refactor removed.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator
from typing import TYPE_CHECKING, ClassVar

from repro.lint.flow.callgraph import module_functions, reachable_from
from repro.lint.flow.context import FlowContext, Scope, iter_calls_with_env
from repro.lint.flow.solver import assigned_names
from repro.lint.flow.taint import (
    DETERMINISM_KINDS,
    RESOURCE_KINDS,
    Env,
    Label,
    dotted,
    taint_of,
)
from repro.lint.base import Rule, _MUTATOR_METHODS, _is_test_path

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.lint.engine import FileContext, Finding


class FlowRule(Rule):
    """A rule that needs the CFG/dataflow pass (skipped when flow is off)."""

    requires_flow: ClassVar[bool] = True

    def flow(self, ctx: "FileContext") -> FlowContext | None:
        return getattr(ctx, "flow", None)


def _describe_labels(labels: frozenset[Label]) -> str:
    """``wall-clock (line 3), set-order (line 7)`` — stable ordering."""
    best: dict[str, int] = {}
    for kind, line in labels:
        if kind not in best or line < best[kind]:
            best[kind] = line
    return ", ".join(f"{kind} (line {line})" for kind, line in sorted(best.items()))


def _determinism_labels(expr: ast.expr, env: Env) -> frozenset[Label]:
    return frozenset(
        label for label in taint_of(expr, dict(env)) if label[0] in DETERMINISM_KINDS
    )


def _call_args(call: ast.Call) -> Iterator[tuple[str, ast.expr]]:
    for position, arg in enumerate(call.args):
        node = arg.value if isinstance(arg, ast.Starred) else arg
        yield f"argument {position + 1}", node
    for keyword in call.keywords:
        label = f"keyword `{keyword.arg}`" if keyword.arg else "**kwargs"
        yield label, keyword.value


# ---------------------------------------------------------------------- #
# RL014 — determinism taint into Trial/TrialBatch/trace payloads          #
# ---------------------------------------------------------------------- #

#: Constructor names whose instances are persisted/compared byte-for-byte.
_RESULT_CTORS = frozenset({"Trial", "TrialBatch"})
#: The trace-event dataclasses of repro.obs.events (payloads must replay
#: byte-identically for the same seed).
_EVENT_CTORS = frozenset(
    {
        "TraceEvent",
        "LoadTraced",
        "TlbMiss",
        "PrefetchIssued",
        "PrefetchFill",
        "TableTransition",
        "ContextSwitch",
        "Clflush",
        "SanitizerViolation",
        "SpanBegin",
        "SpanEnd",
    }
)


def _trial_sink(call: ast.Call) -> str | None:
    chain = dotted(call.func)
    name = chain[-1] if chain else None
    if name in _RESULT_CTORS or name in _EVENT_CTORS:
        return f"{name}()"
    if isinstance(call.func, ast.Attribute) and call.func.attr == "emit":
        return ".emit()"
    return None


class DeterminismTrialTaintRule(FlowRule):
    """RL014 — a nondeterministic value reaches a persisted result object.

    Trial/TrialBatch fields and trace-event payloads are exactly the data
    the campaign store content-addresses and the same-seed trace-equality
    tests compare: a wall-clock read, an unseeded draw, an ``id()`` or a
    set-iteration artifact flowing into one reproduces differently on
    every run while every behavioural test keeps passing.
    """

    rule_id = "RL014"
    title = "nondeterministic value flows into a Trial/TrialBatch/trace-event field"
    hint = "derive it from the trial seed (make_rng/derive_rng) or record simulated cycles, not host state"

    def applies_to(self, path: str) -> bool:
        return not _is_test_path(path)

    def check(self, ctx: "FileContext") -> Iterator["Finding"]:
        flow = self.flow(ctx)
        if flow is None:
            return
        for scope in flow.scopes:
            for item, env in scope.items_with_env():
                for call, call_env in iter_calls_with_env(item, env):
                    sink = _trial_sink(call)
                    if sink is None:
                        continue
                    for where, expr in _call_args(call):
                        labels = _determinism_labels(expr, call_env)
                        if labels:
                            yield ctx.finding(
                                self, call,
                                f"{sink} {where} carries nondeterministic taint: "
                                f"{_describe_labels(labels)}",
                            )


# ---------------------------------------------------------------------- #
# RL015 — determinism taint into seed / content-hash inputs               #
# ---------------------------------------------------------------------- #

_SEED_FNS = frozenset({"stable_seed", "make_rng", "derive_rng", "task_seed", "cell_seed"})
_SEED_KEYWORDS = frozenset({"seed", "base_seed"})
_HASH_CTORS = frozenset({"sha256", "sha1", "sha512", "md5", "blake2b", "blake2s"})


def _seed_sink(call: ast.Call) -> str | None:
    chain = dotted(call.func)
    name = chain[-1] if chain else None
    if name in _SEED_FNS:
        return f"{name}()"
    if chain and (chain[0] == "hashlib" or (len(chain) == 1 and name in _HASH_CTORS)):
        return f"{'.'.join(chain)}()"
    return None


class SeedTaintRule(FlowRule):
    """RL015 — a nondeterministic value reaches a seed or content hash.

    Seeds and cell content hashes are the roots of the reproducibility
    tree: everything downstream replays from them.  A tainted seed makes
    *every* derived stream differ per run; a tainted content-hash input
    makes the trial store mint a fresh key per run, silently disabling
    caching and crash-healed resumption.
    """

    rule_id = "RL015"
    title = "nondeterministic value flows into a seed or content-hash input"
    hint = "seeds/cell keys must be pure functions of declared coordinates (see cell_seed/task_seed)"

    def applies_to(self, path: str) -> bool:
        return not _is_test_path(path)

    def check(self, ctx: "FileContext") -> Iterator["Finding"]:
        flow = self.flow(ctx)
        if flow is None:
            return
        for scope in flow.scopes:
            for item, env in scope.items_with_env():
                for call, call_env in iter_calls_with_env(item, env):
                    sink = _seed_sink(call)
                    if sink is not None:
                        for where, expr in _call_args(call):
                            labels = _determinism_labels(expr, call_env)
                            if labels:
                                yield ctx.finding(
                                    self, call,
                                    f"{sink} {where} carries nondeterministic taint: "
                                    f"{_describe_labels(labels)}",
                                )
                        continue
                    for keyword in call.keywords:
                        if keyword.arg in _SEED_KEYWORDS:
                            labels = _determinism_labels(keyword.value, call_env)
                            if labels:
                                yield ctx.finding(
                                    self, call,
                                    f"`{keyword.arg}=` carries nondeterministic taint: "
                                    f"{_describe_labels(labels)}",
                                )


# ---------------------------------------------------------------------- #
# Worker-dispatch discovery (shared by RL016/RL017)                       #
# ---------------------------------------------------------------------- #

#: ``pool.<method>(callable, iterable...)`` shapes that ship work to
#: other processes.  ``run`` is deliberately absent here (TrialExecutor
#: .run takes *tasks*, not callables) — it participates only in the
#: post-dispatch-mutation check below.
_DISPATCH_METHODS = frozenset(
    {"map", "imap", "imap_unordered", "starmap", "starmap_async", "map_async",
     "apply", "apply_async", "submit"}
)
#: Methods whose arguments count as "submitted to the pool" for the
#: post-dispatch-mutation check (superset of the above).
_SUBMIT_METHODS = _DISPATCH_METHODS | {"run"}
#: Keyword arguments that inject a worker callable.
_CALLABLE_KEYWORDS = frozenset({"run_cell_fn"})
_POOLISH_MARKERS = ("pool", "executor", "runner")
_POOLISH_CTORS = frozenset(
    {"Pool", "TrialExecutor", "CampaignRunner", "ProcessPoolExecutor", "ThreadPoolExecutor"}
)


def _poolish_receiver(expr: ast.expr) -> bool:
    """Does this receiver look like a worker pool / executor / runner?"""
    chain = dotted(expr)
    if chain is not None:
        lowered = [part.lower() for part in chain]
        return any(marker in part for part in lowered for marker in _POOLISH_MARKERS)
    if isinstance(expr, ast.Call):
        ctor = dotted(expr.func)
        return ctor is not None and ctor[-1] in _POOLISH_CTORS
    return False


def _dispatch_callables(call: ast.Call) -> list[ast.expr]:
    """Callable expressions this call dispatches to workers, if any."""
    callables: list[ast.expr] = []
    if (
        isinstance(call.func, ast.Attribute)
        and call.func.attr in _DISPATCH_METHODS
        and _poolish_receiver(call.func.value)
        and call.args
    ):
        callables.append(call.args[0])
    for keyword in call.keywords:
        if keyword.arg in _CALLABLE_KEYWORDS:
            callables.append(keyword.value)
    return callables


def _resolve_callable_names(expr: ast.expr) -> list[str]:
    """Function names an expression may designate (through partial())."""
    if isinstance(expr, ast.Name):
        return [expr.id]
    if isinstance(expr, ast.Call):
        chain = dotted(expr.func)
        if chain and chain[-1] == "partial" and expr.args:
            return _resolve_callable_names(expr.args[0])
    return []


def _is_submit_call(call: ast.Call) -> bool:
    return (
        isinstance(call.func, ast.Attribute)
        and call.func.attr in _SUBMIT_METHODS
        and _poolish_receiver(call.func.value)
    )


def _is_mutable_ctor(expr: ast.expr) -> bool:
    if isinstance(expr, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)):
        return True
    if isinstance(expr, ast.Call):
        chain = dotted(expr.func)
        return chain is not None and chain[-1] in (
            "list", "dict", "set", "bytearray", "defaultdict", "OrderedDict", "Counter", "deque"
        )
    return False


def _base_name(expr: ast.expr) -> str | None:
    """The root Name of ``x``, ``x.attr``, ``x[i]`` chains."""
    while isinstance(expr, (ast.Attribute, ast.Subscript)):
        expr = expr.value
    return expr.id if isinstance(expr, ast.Name) else None


def _mutations(node: ast.AST) -> Iterator[tuple[str, str, ast.AST]]:
    """(name, description, node) for in-place mutations inside ``node``."""
    for child in ast.walk(node):
        if isinstance(child, ast.Call) and isinstance(child.func, ast.Attribute):
            if child.func.attr in _MUTATOR_METHODS:
                name = _base_name(child.func.value)
                if name is not None:
                    yield name, f".{child.func.attr}()", child
        elif isinstance(child, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = child.targets if isinstance(child, ast.Assign) else [child.target]
            for target in targets:
                if isinstance(target, (ast.Subscript, ast.Attribute)):
                    name = _base_name(target)
                    if name is not None:
                        kind = "subscript store" if isinstance(target, ast.Subscript) else "attribute store"
                        yield name, kind, child
        elif isinstance(child, ast.Delete):
            for target in child.targets:
                if isinstance(target, (ast.Subscript, ast.Attribute)):
                    name = _base_name(target)
                    if name is not None:
                        yield name, "del", child


def _local_names(func: ast.FunctionDef | ast.AsyncFunctionDef) -> set[str]:
    """Names the function binds locally (params + assignments), minus
    declared globals."""
    args = func.args
    names = {
        arg.arg
        for arg in (*args.posonlyargs, *args.args, *args.kwonlyargs)
    }
    if args.vararg:
        names.add(args.vararg.arg)
    if args.kwarg:
        names.add(args.kwarg.arg)
    declared_global: set[str] = set()
    for node in ast.walk(func):
        if isinstance(node, ast.Global):
            declared_global.update(node.names)
        else:
            names.update(assigned_names(node) if isinstance(node, (ast.stmt, ast.expr)) else ())
    return names - declared_global


# ---------------------------------------------------------------------- #
# RL016 — task callables reaching module-level mutable globals            #
# ---------------------------------------------------------------------- #


class WorkerSharedGlobalRule(FlowRule):
    """RL016 — a dispatched task callable reaches module-level mutable state.

    Under ``fork`` each worker gets a silently diverging copy (appends are
    lost, caches go stale); under the planned persistent-worker executor
    the same object is *shared* across tasks, which is precisely the race
    the multi-writer store work will otherwise hit at runtime.  Read-only
    module registries (built at import time, never mutated from functions)
    stay legal.
    """

    rule_id = "RL016"
    title = "worker callable reaches a module-level mutable global"
    hint = "pass state through the task object and return results; workers must be pure functions of their task"

    def applies_to(self, path: str) -> bool:
        return not _is_test_path(path)

    def check(self, ctx: "FileContext") -> Iterator["Finding"]:
        flow = self.flow(ctx)
        if flow is None:
            return
        tree = ctx.tree
        mutable_globals: dict[str, int] = {}
        for stmt in tree.body:
            targets: list[ast.expr] = []
            value: ast.expr | None = None
            if isinstance(stmt, ast.Assign):
                targets, value = stmt.targets, stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                targets, value = [stmt.target], stmt.value
            if value is None or not _is_mutable_ctor(value):
                continue
            for target in targets:
                if isinstance(target, ast.Name):
                    mutable_globals[target.id] = stmt.lineno
        if not mutable_globals:
            return
        module_funcs = module_functions(tree)
        dispatched: dict[str, int] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Call):
                for expr in _dispatch_callables(node):
                    for name in _resolve_callable_names(expr):
                        if name in module_funcs:
                            dispatched.setdefault(name, node.lineno)
        if not dispatched:
            return
        # Globals mutated from *any* function body (module-level init is fine).
        mutated_somewhere: set[str] = set()
        for node in ast.walk(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                for name, _desc, _node in _mutations(node):
                    if name in mutable_globals:
                        mutated_somewhere.add(name)
                for sub in ast.walk(node):
                    if isinstance(sub, ast.Global):
                        mutated_somewhere.update(
                            n for n in sub.names if n in mutable_globals
                        )
        # Worker-reachable closure over the module-local call graph
        # (shared with leakcheck.extract via repro.lint.flow.callgraph).
        reached = reachable_from(module_funcs, dispatched)
        for name, (root, line) in sorted(reached.items(), key=lambda kv: kv[1][1]):
            func = module_funcs[name]
            locals_ = _local_names(func)
            seen: set[tuple[str, int]] = set()
            declared = {
                n
                for node in ast.walk(func)
                if isinstance(node, ast.Global)
                for n in node.names
                if n in mutable_globals
            }
            if declared:
                for node in ast.walk(func):
                    if isinstance(node, (ast.Assign, ast.AugAssign)):
                        targets = node.targets if isinstance(node, ast.Assign) else [node.target]
                        for target in targets:
                            if isinstance(target, ast.Name) and target.id in declared:
                                key = (target.id, node.lineno)
                                if key not in seen:
                                    seen.add(key)
                                    yield ctx.finding(
                                        self, node,
                                        f"worker `{name}` (dispatched via `{root}` at line "
                                        f"{line}) rebinds module-level mutable global "
                                        f"`{target.id}` via `global`",
                                    )
            for global_name, desc, node in _mutations(func):
                if global_name in mutable_globals and global_name not in locals_:
                    key = (global_name, node.lineno)
                    if key not in seen:
                        seen.add(key)
                        yield ctx.finding(
                            self, node,
                            f"worker `{name}` (dispatched via `{root}` at line {line}) "
                            f"mutates module-level mutable global `{global_name}` ({desc})",
                        )
            for node in ast.walk(func):
                if (
                    isinstance(node, ast.Name)
                    and isinstance(node.ctx, ast.Load)
                    and node.id in mutable_globals
                    and node.id in mutated_somewhere
                    and node.id not in locals_
                ):
                    key = (node.id, node.lineno)
                    if key not in seen:
                        seen.add(key)
                        yield ctx.finding(
                            self, node,
                            f"worker `{name}` (dispatched via `{root}` at line {line}) "
                            f"reads module-level mutable global `{node.id}`, which is "
                            f"mutated elsewhere at runtime",
                        )


# ---------------------------------------------------------------------- #
# RL017 — handles/locks across the pool boundary; post-dispatch mutation  #
# ---------------------------------------------------------------------- #


def _free_names(func: ast.FunctionDef | ast.AsyncFunctionDef | ast.Lambda) -> set[str]:
    """Names a nested callable loads without binding them itself."""
    if isinstance(func, ast.Lambda):
        bound = {arg.arg for arg in (*func.args.posonlyargs, *func.args.args, *func.args.kwonlyargs)}
        body: list[ast.AST] = [func.body]
    else:
        bound = _local_names(func)
        body = list(func.body)
    loaded: set[str] = set()
    for root in body:
        for node in ast.walk(root):
            if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
                loaded.add(node.id)
    return loaded - bound


class ForkCaptureRule(FlowRule):
    """RL017 — process-local resources cross the pool; submitted objects mutate.

    A file handle or lock captured by (or passed to) a dispatched callable
    either fails to pickle or — worse, under ``fork`` — duplicates the
    underlying file offset / lock state per worker.  And mutating an object
    after submitting it to a pool races the workers' view of it: harmless
    today only because ``pool.map`` happens to be synchronous, and exactly
    the bug the persistent-worker executor rework would surface.
    """

    rule_id = "RL017"
    title = "open handle/lock crosses the pool boundary, or a submitted object is mutated"
    hint = "pass paths/plain data to workers; freeze (or stop touching) task lists once submitted"

    def applies_to(self, path: str) -> bool:
        return not _is_test_path(path)

    def check(self, ctx: "FileContext") -> Iterator["Finding"]:
        flow = self.flow(ctx)
        if flow is None:
            return
        for scope in flow.scopes:
            yield from self._check_captures(ctx, scope)
            yield from self._check_post_dispatch(ctx, scope)

    # -- (a) captured/passed handles and locks ------------------------- #

    def _check_captures(self, ctx: "FileContext", scope: Scope) -> Iterator["Finding"]:
        nested: dict[str, ast.AST] = {}
        for item, _env in scope.items_with_env():
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                nested[item.name] = item
        for item, env in scope.items_with_env():
            for call, call_env in iter_calls_with_env(item, env):
                is_dispatch = _is_submit_call(call)
                callables = _dispatch_callables(call)
                if not is_dispatch and not callables:
                    continue
                if is_dispatch:
                    for where, expr in _call_args(call):
                        labels = frozenset(
                            label
                            for label in taint_of(expr, dict(call_env))
                            if label[0] in RESOURCE_KINDS
                        )
                        if labels:
                            yield ctx.finding(
                                self, call,
                                f"pool dispatch {where} carries a process-local "
                                f"resource: {_describe_labels(labels)}",
                            )
                for expr in callables:
                    target: ast.AST | None = None
                    if isinstance(expr, ast.Lambda):
                        target = expr
                    elif isinstance(expr, ast.Name) and expr.id in nested:
                        target = nested[expr.id]
                    if target is None:
                        continue
                    for free in sorted(_free_names(target)):
                        labels = frozenset(
                            label
                            for label in call_env.get(free, frozenset())
                            if label[0] in RESOURCE_KINDS
                        )
                        if labels:
                            yield ctx.finding(
                                self, call,
                                f"dispatched callable captures `{free}`, a "
                                f"process-local resource: {_describe_labels(labels)}",
                            )

    # -- (b) mutation of objects already submitted to the pool --------- #

    def _check_post_dispatch(self, ctx: "FileContext", scope: Scope) -> Iterator["Finding"]:
        in_facts = self._submitted_facts(scope)
        for block in scope.cfg.blocks:
            if not block.reachable:
                continue
            fact = in_facts[block.index]
            for item in block.items:
                submitted = {name: line for name, line in fact}
                if submitted:
                    for name, desc, node in _mutations(item):
                        if name in submitted:
                            yield ctx.finding(
                                self, node,
                                f"`{name}` mutated ({desc}) after being submitted "
                                f"to the pool at line {submitted[name]}",
                            )
                fact = self._transfer_submitted(item, fact)

    def _submitted_facts(self, scope: Scope) -> dict[int, frozenset[tuple[str, int]]]:
        rule = self

        class _Submitted:
            def bottom(self) -> frozenset[tuple[str, int]]:
                return frozenset()

            def initial(self) -> frozenset[tuple[str, int]]:
                return frozenset()

            def join(self, left, right):
                return left | right

            def transfer_block(self, block, fact):
                for item in block.items:
                    fact = rule._transfer_submitted(item, fact)
                return fact

        from repro.lint.flow.solver import solve_forward

        in_facts, _out = solve_forward(scope.cfg, _Submitted())
        return in_facts

    def _transfer_submitted(
        self, item: ast.AST, fact: frozenset[tuple[str, int]]
    ) -> frozenset[tuple[str, int]]:
        updated = set(fact)
        for node in ast.walk(item):
            if isinstance(node, ast.Call) and _is_submit_call(node):
                for _where, expr in _call_args(node):
                    if isinstance(expr, ast.Name):
                        updated.add((expr.id, node.lineno))
        rebound = set(assigned_names(item)) if isinstance(item, (ast.stmt, ast.expr)) else set()
        if rebound:
            updated = {pair for pair in updated if pair[0] not in rebound}
        return frozenset(updated)


# ---------------------------------------------------------------------- #
# RL019 — kernel components talk only through the port/bus API             #
# ---------------------------------------------------------------------- #

#: The SimKernel surface a component may legitimately touch.
_KERNEL_BUS_API = frozenset({"post", "publish", "complete", "clock_of", "topology"})


def _component_classes(tree: ast.Module) -> Iterator[ast.ClassDef]:
    """Classes deriving from the kernel ``Component`` base."""
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef):
            for base in node.bases:
                chain = dotted(base)
                if chain and chain[-1] == "Component":
                    yield node
                    break


class KernelComponentIsolationRule(FlowRule):
    """RL019 — a kernel component bypasses the port/bus API.

    The simulation kernel's component contract (``repro.cpu.kernel.core``)
    is that components interact only through ``kernel.post`` /
    ``kernel.publish`` / ``kernel.complete`` / ``kernel.clock_of`` and the
    ``*_port`` callables the Machine facade wires at assembly time.  A
    component that holds a ``self.machine`` back-reference, pulls a
    sibling out with ``component_of()``, or pokes at the kernel's private
    queue/lane state re-creates exactly the hidden coupling the kernel
    refactor removed: the equivalence gate can no longer reason about a
    lane from its event log alone, and batched lanes stop being
    independent.
    """

    rule_id = "RL019"
    title = "kernel component bypasses the port/bus API"
    hint = "components talk via kernel.post/publish/complete/clock_of and wired *_port callables; wiring belongs to the Machine facade"

    def applies_to(self, path: str) -> bool:
        normalized = path.replace("\\", "/")
        return "repro/cpu/kernel/" in normalized and not _is_test_path(path)

    def check(self, ctx: "FileContext") -> Iterator["Finding"]:
        flow = self.flow(ctx)
        if flow is None:
            return
        for klass in _component_classes(ctx.tree):
            yield from self._check_component(ctx, klass)

    def _check_component(
        self, ctx: "FileContext", klass: ast.ClassDef
    ) -> Iterator["Finding"]:
        seen: set[tuple[int, int]] = set()

        def once(node: ast.AST) -> bool:
            key = (node.lineno, node.col_offset)
            if key in seen:
                return False
            seen.add(key)
            return True

        for node in ast.walk(klass):
            if isinstance(node, ast.Call):
                chain = dotted(node.func)
                if chain and chain[-1] == "component_of" and once(node):
                    yield ctx.finding(
                        self, node,
                        f"component `{klass.name}` grabs a sibling component via "
                        f"`component_of()`; communicate through a wired `*_port` "
                        f"callable instead",
                    )
            if not isinstance(node, ast.Attribute):
                continue
            if (
                isinstance(node.value, ast.Name)
                and node.value.id == "self"
                and node.attr == "machine"
                and once(node)
            ):
                yield ctx.finding(
                    self, node,
                    f"component `{klass.name}` reaches back into the Machine "
                    f"facade via `self.machine`",
                )
            if (
                isinstance(node.value, ast.Attribute)
                and isinstance(node.value.value, ast.Name)
                and node.value.value.id == "self"
                and node.value.attr == "kernel"
                and node.attr not in _KERNEL_BUS_API
                and node.attr != "component_of"  # flagged above, at the call
                and once(node)
            ):
                yield ctx.finding(
                    self, node,
                    f"component `{klass.name}` touches `kernel.{node.attr}` "
                    f"outside the bus API "
                    f"({', '.join(sorted(_KERNEL_BUS_API))})",
                )


# ---------------------------------------------------------------------- #
# RL018 — spans and sinks must close on every path                         #
# ---------------------------------------------------------------------- #

#: Sink/tracer constructors whose instances own an OS resource (a file
#: handle) or buffer events that only land on ``close()``.  RingBufferSink
#: is deliberately absent: it holds no resource and close() is a no-op.
_CLOSEABLE_CTORS = frozenset({"JsonlSink", "ChromeTraceSink", "Tracer"})

#: Fact element: (kind, key, open line, AST node to anchor the finding).
_PairFact = tuple[str, str, int, ast.AST]


def _emitted_event(call: ast.Call) -> tuple[str, ast.Call] | None:
    """(``"SpanBegin"``/``"SpanEnd"``, event ctor call) for ``*.emit(...)``."""
    if not (isinstance(call.func, ast.Attribute) and call.func.attr == "emit"):
        return None
    if not call.args or not isinstance(call.args[0], ast.Call):
        return None
    event = call.args[0]
    chain = dotted(event.func)
    name = chain[-1] if chain else None
    if name in ("SpanBegin", "SpanEnd"):
        return name, event
    return None


def _span_name(event: ast.Call) -> str | None:
    """The constant ``name=`` of a SpanBegin/SpanEnd ctor, else None."""
    for keyword in event.keywords:
        if keyword.arg == "name":
            if isinstance(keyword.value, ast.Constant) and isinstance(
                keyword.value.value, str
            ):
                return keyword.value.value
            return None
    # TraceEvent puts ``cycle`` first, so a positional name is arg 2.
    if len(event.args) >= 2 and isinstance(event.args[1], ast.Constant):
        value = event.args[1].value
        if isinstance(value, str):
            return value
    return None


class SpanSinkPairingRule(FlowRule):
    """RL018 — an explicit SpanBegin emit or sink construction can reach
    scope exit without its SpanEnd / ``close()``.

    An unbalanced ``SpanBegin`` corrupts every nesting-aware trace
    consumer (the Chrome-trace ``B``/``E`` stack, the span profiler), and
    an unclosed ``JsonlSink``/``ChromeTraceSink``/``Tracer`` silently
    drops buffered events — the trace looks truncated, not broken.  Both
    have a zero-cost fix that this rule never flags: the context manager
    (``with machine.span(...):``, ``with JsonlSink(...) as sink:``),
    which pairs begin/end on the exception path too.  Ownership
    transfers (passing the sink to a call, returning it, storing it on
    an object) move the close obligation to the receiver and discharge
    the fact here.
    """

    rule_id = "RL018"
    title = "span emit or sink left open on some path to scope exit"
    hint = "use `with machine.span(...)`/`with Sink(...) as s:`, or close in a `finally:`"

    def applies_to(self, path: str) -> bool:
        return not _is_test_path(path)

    def check(self, ctx: "FileContext") -> Iterator["Finding"]:
        flow = self.flow(ctx)
        if flow is None:
            return
        for scope in flow.function_scopes():
            # The profiler's Span halves emit one unpaired event each by
            # design; a ``close()`` forwarding closes discharges its own.
            if scope.name in ("__enter__", "__exit__", "close"):
                continue
            yield from self._check_scope(ctx, scope)

    def _check_scope(self, ctx: "FileContext", scope: Scope) -> Iterator["Finding"]:
        rule = self

        class _OpenFacts:
            def bottom(self) -> frozenset[_PairFact]:
                return frozenset()

            def initial(self) -> frozenset[_PairFact]:
                return frozenset()

            def join(self, left, right):
                return left | right

            def transfer_block(self, block, fact):
                for item in block.items:
                    fact = rule._transfer(item, fact)
                return fact

        from repro.lint.flow.solver import solve_forward

        in_facts, _out = solve_forward(scope.cfg, _OpenFacts())
        leaked = in_facts[scope.cfg.exit]
        if not leaked:
            return
        excused = self._finally_closed(scope)
        for kind, key, _line, node in sorted(leaked, key=lambda f: f[2]):
            if (kind, key) in excused:
                continue
            if kind == "span":
                yield ctx.finding(
                    self, node,
                    f"emit(SpanBegin(name={key!r})) has no matching SpanEnd on "
                    f"some path to the end of `{scope.name}`",
                )
            else:
                ctor = dotted(node.func) if isinstance(node, ast.Call) else None
                what = ctor[-1] if ctor else "sink"
                yield ctx.finding(
                    self, node,
                    f"`{key}` ({what}) is not closed, handed off, or returned "
                    f"on some path to the end of `{scope.name}`",
                )

    # -- transfer ------------------------------------------------------- #

    def _transfer(
        self, item: ast.AST, fact: frozenset[_PairFact]
    ) -> frozenset[_PairFact]:
        updated = set(fact)
        # Rebinding a tracked sink variable loses the only reference.
        rebound = set(
            assigned_names(item) if isinstance(item, (ast.stmt, ast.expr)) else ()
        )
        if rebound:
            updated = {
                f for f in updated if not (f[0] == "sink" and f[1] in rebound)
            }
        # ``with sink:`` / ``with sink as s:`` closes on every path.
        if isinstance(item, (ast.With, ast.AsyncWith)):
            for with_item in item.items:
                expr = with_item.context_expr
                if isinstance(expr, ast.Name):
                    updated = {
                        f
                        for f in updated
                        if not (f[0] == "sink" and f[1] == expr.id)
                    }
        # Escapes: ``return sink`` and ``self.attr = sink`` transfer the
        # close obligation to the caller / the owning object.
        escaping: list[ast.expr] = []
        if isinstance(item, ast.Return) and item.value is not None:
            escaping.append(item.value)
        if isinstance(item, (ast.Assign, ast.AnnAssign)):
            targets = item.targets if isinstance(item, ast.Assign) else [item.target]
            if any(isinstance(t, (ast.Attribute, ast.Subscript)) for t in targets):
                if item.value is not None:
                    escaping.append(item.value)
        for root in escaping:
            for node in ast.walk(root):
                if isinstance(node, ast.Name):
                    updated = {
                        f
                        for f in updated
                        if not (f[0] == "sink" and f[1] == node.id)
                    }
        for call, _env in iter_calls_with_env(item, {}):
            updated = self._transfer_call(call, updated)
        # Gen last: ``v = JsonlSink(...)`` opens after its own call runs.
        if isinstance(item, ast.Assign) and isinstance(item.value, ast.Call):
            chain = dotted(item.value.func)
            if chain and chain[-1] in _CLOSEABLE_CTORS:
                for target in item.targets:
                    if isinstance(target, ast.Name):
                        updated.add(("sink", target.id, item.lineno, item.value))
        return frozenset(updated)

    def _transfer_call(
        self, call: ast.Call, fact: set[_PairFact]
    ) -> set[_PairFact]:
        emitted = _emitted_event(call)
        if emitted is not None:
            which, event = emitted
            name = _span_name(event)
            if which == "SpanBegin":
                if name is not None:
                    fact.add(("span", name, call.lineno, call))
                return fact
            if name is None:
                return {f for f in fact if f[0] != "span"}
            return {f for f in fact if not (f[0] == "span" and f[1] == name)}
        if (
            isinstance(call.func, ast.Attribute)
            and call.func.attr == "close"
            and isinstance(call.func.value, ast.Name)
        ):
            closed = call.func.value.id
            return {f for f in fact if not (f[0] == "sink" and f[1] == closed)}
        # A sink passed as an argument is handed off (e.g. Machine(trace=t),
        # Tracer(sinks=[s])): the receiver owns the close from here on.
        handed: set[str] = set()
        for position_arg in call.args:
            node = (
                position_arg.value
                if isinstance(position_arg, ast.Starred)
                else position_arg
            )
            for sub in ast.walk(node):
                if isinstance(sub, ast.Name):
                    handed.add(sub.id)
        for keyword in call.keywords:
            for sub in ast.walk(keyword.value):
                if isinstance(sub, ast.Name):
                    handed.add(sub.id)
        if handed:
            return {f for f in fact if not (f[0] == "sink" and f[1] in handed)}
        return fact

    # -- finally discharge ---------------------------------------------- #

    def _finally_closed(self, scope: Scope) -> set[tuple[str, str]]:
        """(kind, key) pairs closed inside a ``finally:`` anywhere in the
        scope.  The CFG routes a mid-``try`` ``raise`` straight to exit,
        bypassing ``finalbody`` — but Python runs it, so a close there
        covers every path through its ``try``."""
        closed: set[tuple[str, str]] = set()
        for node in ast.walk(scope.node):
            if not isinstance(node, ast.Try) or not node.finalbody:
                continue
            for stmt in node.finalbody:
                for sub in ast.walk(stmt):
                    if not isinstance(sub, ast.Call):
                        continue
                    emitted = _emitted_event(sub)
                    if emitted is not None and emitted[0] == "SpanEnd":
                        name = _span_name(emitted[1])
                        if name is not None:
                            closed.add(("span", name))
                        continue
                    if (
                        isinstance(sub.func, ast.Attribute)
                        and sub.func.attr == "close"
                        and isinstance(sub.func.value, ast.Name)
                    ):
                        closed.add(("sink", sub.func.value.id))
        return closed


FLOW_RULES: tuple[type[Rule], ...] = (
    DeterminismTrialTaintRule,
    SeedTaintRule,
    WorkerSharedGlobalRule,
    ForkCaptureRule,
    SpanSinkPairingRule,
    KernelComponentIsolationRule,
)
