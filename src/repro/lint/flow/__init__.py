"""``repro.lint.flow`` — intraprocedural CFG + fixpoint dataflow engine.

The syntactic rules in :mod:`repro.lint.rules` match single AST nodes; the
flow layer adds the machinery to reason about *values in motion*:

* :mod:`repro.lint.flow.cfg` — a control-flow-graph builder over stdlib
  ``ast`` (branches, loops, ``try``/``except``/``finally``, ``with``,
  ``break``/``continue``/``return``), dependency-free like the rest of
  the lint pass;
* :mod:`repro.lint.flow.solver` — a generic forward worklist fixpoint
  solver plus the classic reaching-definitions analysis;
* :mod:`repro.lint.flow.taint` — a label-propagation taint analysis used
  by the determinism (RL014/RL015) and fork-safety (RL017) checkers and
  by the flow-aware alias upgrades of RL001/RL003/RL008;
* :mod:`repro.lint.flow.context` — :class:`FlowContext`, the per-file
  cache of scopes, CFGs and taint fixpoints every flow rule shares;
* :mod:`repro.lint.flow.callgraph` — module-local name-based call graphs,
  shared between RL016's worker closure and the ``leakcheck.extract``
  interprocedural inliner;
* :mod:`repro.lint.flow.rules` — the flow rules RL014–RL017.

See ``docs/LINT.md`` ("Flow-aware analysis") for the architecture.
"""

from __future__ import annotations

from repro.lint.flow.callgraph import (
    closure_defs,
    function_defs,
    module_functions,
    reachable_from,
)
from repro.lint.flow.cfg import CFG, BasicBlock, build_cfg, unreachable_lines
from repro.lint.flow.context import FlowContext, Scope
from repro.lint.flow.solver import ReachingDefinitions, solve_forward
from repro.lint.flow.taint import (
    DETERMINISM_KINDS,
    KIND_ALIAS_HASH,
    KIND_ALIAS_WALLCLOCK,
    KIND_ID,
    KIND_OPEN_HANDLE,
    KIND_LOCK,
    KIND_SET_ORDER,
    KIND_UNSEEDED_RNG,
    KIND_URANDOM,
    KIND_WALLCLOCK,
    TaintAnalysis,
    taint_of,
)

#: Rules whose syntactic findings are dropped when they sit in CFG-dead
#: code (``if False:`` branches, statements after an unconditional
#: return/raise) — the flow-aware "fewer false positives" half of the
#: RL001/RL003/RL008 upgrade.
DEAD_CODE_FILTERED_RULES = frozenset({"RL001", "RL003", "RL008"})

__all__ = [
    "BasicBlock",
    "CFG",
    "DEAD_CODE_FILTERED_RULES",
    "DETERMINISM_KINDS",
    "FlowContext",
    "KIND_ALIAS_HASH",
    "KIND_ALIAS_WALLCLOCK",
    "KIND_ID",
    "KIND_LOCK",
    "KIND_OPEN_HANDLE",
    "KIND_SET_ORDER",
    "KIND_UNSEEDED_RNG",
    "KIND_URANDOM",
    "KIND_WALLCLOCK",
    "ReachingDefinitions",
    "Scope",
    "TaintAnalysis",
    "build_cfg",
    "closure_defs",
    "function_defs",
    "module_functions",
    "reachable_from",
    "solve_forward",
    "taint_of",
    "unreachable_lines",
]
