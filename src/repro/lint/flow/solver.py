"""A generic forward worklist fixpoint solver over :class:`~repro.lint.flow.cfg.CFG`.

An analysis supplies a bottom element, an entry fact, a join, and a
per-item transfer function; :func:`solve_forward` iterates blocks until
the out-facts stop changing.  Facts must support ``==``; joins must be
monotone over a finite lattice (every analysis here unions finite sets
of (name, label) pairs, so termination is structural, with a generous
iteration cap as a belt-and-braces guard).

:class:`ReachingDefinitions` is the textbook client — used directly by
the CFG/solver tests and as the reference for writing new analyses.
"""

from __future__ import annotations

import ast
from collections import deque
from typing import Protocol, TypeVar

from repro.lint.flow.cfg import CFG, BasicBlock

F = TypeVar("F")

#: Hard cap on block visits; ~never hit (lattices here are finite and
#: joins monotone) but turns a hypothetical non-termination into a loud
#: failure instead of a hung lint run.
MAX_VISITS_PER_BLOCK = 1000


class ForwardAnalysis(Protocol[F]):
    """What :func:`solve_forward` needs from an analysis."""

    def bottom(self) -> F: ...

    def initial(self) -> F: ...

    def join(self, left: F, right: F) -> F: ...

    def transfer_block(self, block: BasicBlock, fact: F) -> F: ...


def solve_forward(cfg: CFG, analysis: "ForwardAnalysis[F]") -> tuple[dict[int, F], dict[int, F]]:
    """Run ``analysis`` to fixpoint; return (in_facts, out_facts) by block."""
    in_facts: dict[int, F] = {block.index: analysis.bottom() for block in cfg.blocks}
    out_facts: dict[int, F] = {block.index: analysis.bottom() for block in cfg.blocks}
    in_facts[cfg.entry] = analysis.initial()
    worklist = deque(block.index for block in cfg.blocks if block.reachable)
    queued = set(worklist)
    visits: dict[int, int] = {}
    while worklist:
        index = worklist.popleft()
        queued.discard(index)
        visits[index] = visits.get(index, 0) + 1
        if visits[index] > MAX_VISITS_PER_BLOCK:
            raise RuntimeError(
                f"dataflow solver did not converge at block {index} "
                f"(> {MAX_VISITS_PER_BLOCK} visits) — non-monotone transfer?"
            )
        block = cfg.blocks[index]
        fact = in_facts[index]
        for pred in block.preds:
            fact = analysis.join(fact, out_facts[pred])
        in_facts[index] = fact
        out = analysis.transfer_block(block, fact)
        if out != out_facts[index]:
            out_facts[index] = out
            for succ in block.succs:
                if succ not in queued:
                    queued.add(succ)
                    worklist.append(succ)
    return in_facts, out_facts


# ---------------------------------------------------------------------- #
# Reaching definitions                                                    #
# ---------------------------------------------------------------------- #

#: One fact element: (variable name, line of the definition).
Definition = tuple[str, int]


def assigned_names(item: ast.AST) -> list[str]:
    """Names an item (re)binds at its own program point."""
    names: list[str] = []

    def flatten(target: ast.expr) -> None:
        if isinstance(target, ast.Name):
            names.append(target.id)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                flatten(element)
        elif isinstance(target, ast.Starred):
            flatten(target.value)

    if isinstance(item, ast.Assign):
        for target in item.targets:
            flatten(target)
    elif isinstance(item, (ast.AugAssign, ast.AnnAssign)):
        if isinstance(item, ast.AnnAssign) and item.value is None:
            return names
        flatten(item.target)
    elif isinstance(item, (ast.For, ast.AsyncFor)):
        flatten(item.target)
    elif isinstance(item, (ast.With, ast.AsyncWith)):
        for with_item in item.items:
            if with_item.optional_vars is not None:
                flatten(with_item.optional_vars)
    elif isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
        names.append(item.name)
    elif isinstance(item, (ast.Import, ast.ImportFrom)):
        for alias in item.names:
            bound = alias.asname or alias.name.split(".")[0]
            names.append(bound)
    elif isinstance(item, ast.ExceptHandler):
        if item.name:
            names.append(item.name)
    elif isinstance(item, ast.expr):
        for node in ast.walk(item):
            if isinstance(node, ast.NamedExpr):
                names.append(node.target.id)
    return names


class ReachingDefinitions:
    """Which (name, def-line) pairs may reach each program point."""

    def bottom(self) -> frozenset[Definition]:
        return frozenset()

    def initial(self) -> frozenset[Definition]:
        return frozenset()

    def join(
        self, left: frozenset[Definition], right: frozenset[Definition]
    ) -> frozenset[Definition]:
        return left | right

    def transfer_item(
        self, item: ast.AST, fact: frozenset[Definition]
    ) -> frozenset[Definition]:
        killed_gen: dict[str, int] = {
            name: getattr(item, "lineno", 0) for name in assigned_names(item)
        }
        if not killed_gen:
            return fact
        survivors = {pair for pair in fact if pair[0] not in killed_gen}
        survivors.update(killed_gen.items())
        return frozenset(survivors)

    def transfer_block(
        self, block: BasicBlock, fact: frozenset[Definition]
    ) -> frozenset[Definition]:
        for item in block.items:
            fact = self.transfer_item(item, fact)
        return fact


def definitions_reaching_exit(cfg: CFG, analysis: ReachingDefinitions | None = None) -> frozenset[Definition]:
    """Convenience for tests: the reaching-definitions fact at scope exit."""
    analysis = analysis or ReachingDefinitions()
    in_facts, _out_facts = solve_forward(cfg, analysis)
    return in_facts[cfg.exit]


__all__ = [
    "Definition",
    "ForwardAnalysis",
    "MAX_VISITS_PER_BLOCK",
    "ReachingDefinitions",
    "assigned_names",
    "definitions_reaching_exit",
    "solve_forward",
]
