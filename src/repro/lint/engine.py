"""Lint driver: file discovery, AST contexts, suppression, rendering.

The engine is deliberately dependency-free (stdlib ``ast`` only) so the
``lint`` extra installs nothing: the same container that runs the simulator
can gate its own CI.
"""

from __future__ import annotations

import ast
import json
import re
from collections.abc import Iterable, Iterator, Sequence
from dataclasses import asdict, dataclass
from pathlib import Path
from time import perf_counter  # repro: noqa[RL003] — lint timing, not model code

from repro.lint.flow import DEAD_CODE_FILTERED_RULES, FlowContext
from repro.lint.rules import ALL_RULES, Rule

#: ``# repro: noqa`` or ``# repro: noqa[RL001]`` / ``[RL001, RL006]``.
_NOQA_RE = re.compile(r"#\s*repro:\s*noqa(?:\[([A-Za-z0-9_,\s]+)\])?")

#: Rule id used for files that fail to parse at all.
SYNTAX_RULE_ID = "RL000"


@dataclass(frozen=True, slots=True)
class Finding:
    """One lint finding, stable across text and JSON renderings.

    ``via_flow`` marks findings produced by a flow-aware extension of a
    syntactic rule (alias tracking); when a flow finding and its
    line-based counterpart land on the same ``(path, line, rule)``,
    :func:`lint_source` keeps only the flow one.
    """

    rule: str
    path: str
    line: int
    col: int
    message: str
    hint: str
    via_flow: bool = False

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message} [hint: {self.hint}]"


class FileContext:
    """Parsed source plus the helpers rules need (paths, parents, lines)."""

    def __init__(self, path: str, source: str, tree: ast.Module) -> None:
        self.path = path
        self.source = source
        self.tree = tree
        self.lines = source.splitlines()
        #: CFG/dataflow state, attached by :func:`lint_source` when the
        #: flow pass is on; rules with ``requires_flow`` read it.
        self.flow: FlowContext | None = None
        self._parents: dict[ast.AST, ast.AST] = {}
        for parent in ast.walk(tree):
            for child in ast.iter_child_nodes(parent):
                self._parents[child] = parent

    def walk(self) -> Iterator[ast.AST]:
        return ast.walk(self.tree)

    def parent(self, node: ast.AST) -> ast.AST | None:
        return self._parents.get(node)

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        current = self._parents.get(node)
        while current is not None:
            yield current
            current = self._parents.get(current)

    def finding(
        self, rule: Rule, node: ast.AST, message: str, *, via_flow: bool = False
    ) -> Finding:
        return Finding(
            rule=rule.rule_id,
            path=self.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message,
            hint=rule.hint,
            via_flow=via_flow,
        )

    def suppressed(self, finding: Finding) -> bool:
        """True when the finding's line carries a matching noqa marker."""
        if not 1 <= finding.line <= len(self.lines):
            return False
        match = _NOQA_RE.search(self.lines[finding.line - 1])
        if match is None:
            return False
        listed = match.group(1)
        if listed is None:
            return True
        rule_ids = {rule_id.strip().upper() for rule_id in listed.split(",")}
        return finding.rule.upper() in rule_ids


def _make_rules(only: Iterable[str] | None = None) -> list[Rule]:
    selected = {rule_id.strip().upper() for rule_id in only} if only is not None else None
    if selected is not None:
        known = {rule_cls.rule_id for rule_cls in ALL_RULES}
        unknown = sorted(selected - known)
        if unknown:
            raise ValueError(
                f"unknown rule id(s): {', '.join(unknown)} (known: {', '.join(sorted(known))})"
            )
    rules = []
    for rule_cls in ALL_RULES:
        if selected is None or rule_cls.rule_id in selected:
            rules.append(rule_cls())
    return rules


def lint_source(
    source: str,
    path: str,
    rules: Sequence[Rule] | None = None,
    *,
    flow: bool = False,
    timings: dict[str, float] | None = None,
) -> list[Finding]:
    """Lint one source string presented as ``path`` (rules scope by path).

    With ``flow=True`` a :class:`~repro.lint.flow.context.FlowContext`
    (CFGs + taint fixpoints) is built once for the file: the flow rules
    (``requires_flow``) run, the syntactic rules gain their flow-aware
    extensions, and findings of the dead-code-filtered rules landing on
    CFG-unreachable lines are dropped.  ``timings``, when given, is
    updated in place with cumulative per-rule wall seconds (plus a
    ``"flow-build"`` entry for CFG/fixpoint construction).
    """
    normalized = Path(path).as_posix()
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as error:
        return [
            Finding(
                rule=SYNTAX_RULE_ID,
                path=normalized,
                line=error.lineno or 1,
                col=error.offset or 0,
                message=f"file does not parse: {error.msg}",
                hint="fix the syntax error; nothing else was checked",
            )
        ]
    ctx = FileContext(normalized, source, tree)
    if flow:
        started = perf_counter()
        ctx.flow = FlowContext(tree)
        if timings is not None:
            timings["flow-build"] = timings.get("flow-build", 0.0) + (
                perf_counter() - started
            )
    findings: list[Finding] = []
    for rule in rules if rules is not None else _make_rules():
        if rule.requires_flow and ctx.flow is None:
            continue
        if not rule.applies_to(ctx.path):
            continue
        started = perf_counter()
        raw = list(rule.check(ctx))
        if timings is not None:
            timings[rule.rule_id] = timings.get(rule.rule_id, 0.0) + (
                perf_counter() - started
            )
        for finding in raw:
            if ctx.suppressed(finding):
                continue
            if (
                ctx.flow is not None
                and finding.rule in DEAD_CODE_FILTERED_RULES
                and finding.line in ctx.flow.dead_lines
            ):
                continue  # the flagged call sits in a CFG-dead branch
            findings.append(finding)
    findings = _dedup_flow_overlaps(findings)
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings


def _dedup_flow_overlaps(findings: list[Finding]) -> list[Finding]:
    """Collapse a flow-aware finding and its syntactic counterpart.

    When an alias-upgraded rule (``via_flow``) and the line-based check of
    the *same* rule both fire on one ``(path, line, rule)`` — e.g.
    ``hash = hash`` followed by ``hash(x)`` on the flagged line — only the
    flow finding survives: it carries the alias provenance in its message.
    """
    flow_keys = {
        (f.path, f.line, f.rule) for f in findings if f.via_flow
    }
    return [
        f
        for f in findings
        if f.via_flow or (f.path, f.line, f.rule) not in flow_keys
    ]


def iter_python_files(paths: Sequence[str | Path]) -> Iterator[Path]:
    """Yield every ``.py`` file under the given files/directories, sorted."""
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            yield from sorted(p for p in path.rglob("*.py") if p.is_file())
        elif path.suffix == ".py" and path.is_file():
            yield path
        else:
            raise FileNotFoundError(f"no such python file or directory: {raw}")


def lint_paths(
    paths: Sequence[str | Path],
    only: Iterable[str] | None = None,
    *,
    flow: bool = False,
    timings: dict[str, float] | None = None,
) -> tuple[list[Finding], int]:
    """Lint files/trees; return (findings, files_checked)."""
    rules = _make_rules(only)
    findings: list[Finding] = []
    n_files = 0
    for file_path in iter_python_files(paths):
        n_files += 1
        findings.extend(
            lint_source(
                file_path.read_text(), str(file_path), rules, flow=flow, timings=timings
            )
        )
    return findings, n_files


def render_text(findings: Sequence[Finding], n_files: int) -> str:
    lines = [finding.render() for finding in findings]
    noun = "file" if n_files == 1 else "files"
    if findings:
        lines.append(f"{len(findings)} finding(s) in {n_files} {noun}")
    else:
        lines.append(f"clean: 0 findings in {n_files} {noun}")
    return "\n".join(lines)


def render_json(
    findings: Sequence[Finding],
    n_files: int,
    timings: dict[str, float] | None = None,
) -> str:
    payload = {
        "files_checked": n_files,
        "findings": [asdict(finding) for finding in findings],
        "rules": [rule_cls.describe() for rule_cls in ALL_RULES],
    }
    if timings is not None:
        payload["timings"] = {
            key: round(seconds, 6) for key, seconds in sorted(timings.items())
        }
    return json.dumps(payload, indent=2)


def main(argv: Sequence[str] | None = None) -> int:
    """Deprecated shim — the CLI moved to :mod:`repro.lint.cli`."""
    from repro.lint.cli import main as cli_main

    return cli_main(argv)
