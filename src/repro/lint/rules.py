"""Lint rules RL001–RL013: the conventions the reproduction depends on.

Each rule is a class with a stable id, a one-line title, and an autofix
hint.  Rules receive a :class:`~repro.lint.engine.FileContext` (parsed AST
plus parent links and path helpers) and yield findings.  A rule may scope
itself to parts of the tree via :meth:`Rule.applies_to` — e.g. the
magic-number rule exempts ``repro/params.py`` (the canonical home of the
constants) and ``tests/`` (golden-value assertions are the point of a
test).
"""

from __future__ import annotations

import ast
from collections.abc import Iterator
from typing import TYPE_CHECKING

from repro.lint.base import (
    CORE_MODEL_PACKAGES,
    MODEL_PACKAGES,
    Rule,
    _MUTATOR_METHODS,
    _dotted,
    _in_any_package,
    _in_package,
    _is_test_path,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.lint.engine import FileContext, Finding

__all__ = [
    "ALL_RULES",
    "CORE_MODEL_PACKAGES",
    "MODEL_PACKAGES",
    "Rule",
]


class StdlibRandomRule(Rule):
    """RL001 — the stdlib ``random`` module is process-global, shared state.

    A single un-namespaced draw anywhere silently couples every stochastic
    component and breaks the one-seed reproducibility contract of
    ``cpu/machine.py``.
    """

    rule_id = "RL001"
    title = "stdlib `random` module is banned (global, unseeded state)"
    hint = "draw from a generator built with repro.utils.rng.make_rng/derive_rng"

    def check(self, ctx: "FileContext") -> Iterator["Finding"]:
        for node in ctx.walk():
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random" or alias.name.startswith("random."):
                        yield ctx.finding(self, node, "`import random` pulls in the process-global RNG")
            elif isinstance(node, ast.ImportFrom):
                if node.module == "random" or (node.module or "").startswith("random."):
                    yield ctx.finding(self, node, "`from random import ...` uses the process-global RNG")
        # Flow-aware: dynamic imports (`__import__("random")`) that the
        # syntactic import scan above cannot see.
        flow = getattr(ctx, "flow", None)
        if flow is not None:
            for kind, call in flow.alias_calls():
                if kind == "random-import":
                    yield ctx.finding(
                        self,
                        call,
                        "dynamic import of the process-global `random` module",
                        via_flow=True,
                    )


class NumpyRngRule(Rule):
    """RL002 — numpy RNG construction must flow through ``repro.utils.rng``.

    ``np.random.default_rng()`` without a seed is OS entropy; the legacy
    ``np.random.<dist>`` functions share one global state.  Even *seeded*
    ``default_rng(seed)`` calls are banned outside ``repro/utils/rng.py`` so
    that every stream in the codebase is greppable through one chokepoint.
    """

    rule_id = "RL002"
    title = "direct numpy RNG construction (use make_rng/derive_rng)"
    hint = "replace np.random.default_rng(seed) with repro.utils.rng.make_rng(seed)"

    def check(self, ctx: "FileContext") -> Iterator["Finding"]:
        for node in ctx.walk():
            if isinstance(node, ast.Call):
                chain = _dotted(node.func)
                if chain and len(chain) >= 3 and chain[0] in ("np", "numpy") and chain[1] == "random":
                    yield ctx.finding(self, node, f"call to {'.'.join(chain)}")
            elif isinstance(node, ast.ImportFrom) and node.module == "numpy.random":
                yield ctx.finding(self, node, "`from numpy.random import ...` bypasses repro.utils.rng")


class WallClockRule(Rule):
    """RL003 — wall-clock reads in a cycle-accurate simulator are always bugs.

    The model's only clock is ``Machine.cycles``; host time leaking into
    model code makes results machine- and load-dependent.
    """

    rule_id = "RL003"
    title = "wall-clock call in model code"
    hint = "use Machine.cycles / Machine.seconds() — the simulator owns time"

    _BANNED = (
        "time",
        "time_ns",
        "perf_counter",
        "perf_counter_ns",
        "monotonic",
        "monotonic_ns",
        "process_time",
        "process_time_ns",
    )

    def check(self, ctx: "FileContext") -> Iterator["Finding"]:
        for node in ctx.walk():
            if isinstance(node, ast.Call):
                chain = _dotted(node.func)
                if chain is None:
                    continue
                if len(chain) == 2 and chain[0] == "time" and chain[1] in self._BANNED:
                    yield ctx.finding(self, node, f"call to time.{chain[1]}")
                elif chain[-1] in ("now", "utcnow") and "datetime" in chain:
                    yield ctx.finding(self, node, f"call to {'.'.join(chain)}")
            elif isinstance(node, ast.ImportFrom) and node.module == "time":
                banned = [alias.name for alias in node.names if alias.name in self._BANNED]
                if banned:
                    yield ctx.finding(self, node, f"imports wall-clock function(s): {', '.join(banned)}")
        # Flow-aware: calls through aliases of wall-clock functions
        # (`t = time.time; ...; t()`), invisible to the dotted-name scan.
        flow = getattr(ctx, "flow", None)
        if flow is not None:
            for kind, call in flow.alias_calls():
                if kind == "wall-clock":
                    yield ctx.finding(
                        self,
                        call,
                        "call through an alias of a wall-clock function",
                        via_flow=True,
                    )


class FloatEqualityRule(Rule):
    """RL004 — ``==``/``!=`` against float literals.

    Latencies, thresholds and rates go through noise models; exact float
    comparison is either dead code or a latent flake.
    """

    rule_id = "RL004"
    title = "float equality comparison"
    hint = "compare integer cycle counts, or use math.isclose with an explicit tolerance"

    def check(self, ctx: "FileContext") -> Iterator["Finding"]:
        for node in ctx.walk():
            if not isinstance(node, ast.Compare):
                continue
            if any(isinstance(ancestor, ast.Assert) for ancestor in ctx.ancestors(node)):
                continue  # asserting an exactly-configured value is the test's point
            operands = [node.left, *node.comparators]
            for position, op in enumerate(node.ops):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                for side in (operands[position], operands[position + 1]):
                    if isinstance(side, ast.Constant) and isinstance(side.value, float):
                        yield ctx.finding(self, node, f"float literal {side.value!r} compared with ==/!=")
                        break


def _foreign_private_attr(node: ast.AST) -> ast.Attribute | None:
    """``obj._x`` (or deeper, ``a.b._x``) where ``obj`` is not self/cls."""
    if not isinstance(node, ast.Attribute):
        return None
    if not node.attr.startswith("_") or node.attr.startswith("__"):
        return None
    if isinstance(node.value, ast.Name) and node.value.id in ("self", "cls"):
        return None
    return node


class PrivateMutationRule(Rule):
    """RL005 — mutating another component's ``_``-private state.

    ``machine.hierarchy._levels = ...`` or ``pf._slots[0] = ...`` from
    outside the owning class bypasses every invariant the component
    maintains; the sanitizer exists precisely because such writes are
    silent.  Reads are allowed (experiments and checkers introspect state);
    writes must go through the public API.
    """

    rule_id = "RL005"
    title = "cross-component mutation of private state"
    hint = "use the owning component's public API (or # repro: noqa[RL005] in a corruption test)"

    def _mutated_targets(self, node: ast.AST) -> Iterator[ast.AST]:
        if isinstance(node, ast.Assign):
            yield from node.targets
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            yield node.target
        elif isinstance(node, ast.Delete):
            yield from node.targets

    def _flatten(self, target: ast.AST) -> Iterator[ast.AST]:
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                yield from self._flatten(element)
        else:
            yield target

    def check(self, ctx: "FileContext") -> Iterator["Finding"]:
        for node in ctx.walk():
            for raw_target in self._mutated_targets(node):
                for target in self._flatten(raw_target):
                    if isinstance(target, ast.Subscript):
                        target = target.value
                    attr = _foreign_private_attr(target)
                    if attr is not None:
                        yield ctx.finding(self, node, f"write to private attribute `{attr.attr}` of another object")
            if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
                if node.func.attr in _MUTATOR_METHODS:
                    attr = _foreign_private_attr(node.func.value)
                    if attr is not None:
                        yield ctx.finding(
                            self, node,
                            f"mutating call `.{node.func.attr}()` on private attribute `{attr.attr}` of another object",
                        )


class MagicNumberRule(Rule):
    """RL006 — re-typed paper constants.

    The reverse-engineered values (24 entries, 64-byte lines, 120-cycle
    threshold, 2 KiB stride cap, 4 KiB pages) live in :mod:`repro.params`;
    a literal copy silently diverges the moment a parameter study changes
    the canonical value.  Named-constant definitions (module/class-level
    assignments), function parameter defaults and ``assert`` statements are
    exempt; 24 and 64 are only enforced inside the core model packages
    (elsewhere they are usually RSA bit-widths or unrelated counts); hex and
    binary spellings (``0x40``) denote deliberate address/layout arithmetic
    and are exempt.
    """

    rule_id = "RL006"
    title = "paper constant written as a literal (import it from repro.params)"
    hint = "import PAGE_SIZE / CACHE_LINE_SIZE / IPStrideParams / llc_hit_threshold from repro.params"

    _SUGGESTION = {
        24: "IPStrideParams.n_entries",
        64: "CACHE_LINE_SIZE",
        120: "MachineParams.llc_hit_threshold (or page_walk_latency)",
        2048: "IPStrideParams.max_stride_bytes",
        4096: "PAGE_SIZE",
    }
    _NARROW = frozenset({24, 64})

    def applies_to(self, path: str) -> bool:
        return not path.endswith("repro/params.py") and not _is_test_path(path)

    def _exempt(self, ctx: "FileContext", node: ast.AST) -> bool:
        seen_stmt = False
        for ancestor in ctx.ancestors(node):
            if isinstance(ancestor, ast.Assert):
                return True
            if isinstance(ancestor, ast.arguments):  # parameter defaults
                return True
            if isinstance(ancestor, ast.stmt) and not seen_stmt:
                seen_stmt = True
                if isinstance(ancestor, (ast.Assign, ast.AnnAssign)):
                    parent = ctx.parent(ancestor)
                    if isinstance(parent, (ast.Module, ast.ClassDef)):
                        return True  # named-constant definition
        return False

    def check(self, ctx: "FileContext") -> Iterator["Finding"]:
        narrow_scope = _in_any_package(ctx.path, CORE_MODEL_PACKAGES)
        for node in ctx.walk():
            if not isinstance(node, ast.Constant):
                continue
            value = node.value
            if not isinstance(value, int) or isinstance(value, bool):
                continue
            if value not in self._SUGGESTION:
                continue
            if value in self._NARROW and not narrow_scope:
                continue
            if self._exempt(ctx, node) or not self._decimal_spelling(ctx, node):
                continue
            yield ctx.finding(self, node, f"literal {value} duplicates {self._SUGGESTION[value]}")

    @staticmethod
    def _decimal_spelling(ctx: "FileContext", node: ast.Constant) -> bool:
        if node.lineno != getattr(node, "end_lineno", node.lineno):
            return True
        line = ctx.lines[node.lineno - 1] if node.lineno <= len(ctx.lines) else ""
        segment = line[node.col_offset : node.end_col_offset]
        return not segment.lower().startswith(("0x", "0b", "0o"))


class SlotsRule(Rule):
    """RL007 — hot per-cycle dataclasses must declare ``slots=True``.

    ``LoadEvent``, ``PrefetchRequest``, cache/TLB results and prefetcher
    entries are allocated on every simulated load; a ``__dict__`` per
    instance roughly doubles their footprint and allows silent attribute
    typos (``entry.confidnce = 1`` would just... work).
    """

    rule_id = "RL007"
    title = "per-cycle dataclass without slots=True"
    hint = "declare @dataclass(slots=True) (add frozen=True where instances are immutable)"

    def applies_to(self, path: str) -> bool:
        return _in_any_package(path, MODEL_PACKAGES)

    @staticmethod
    def _dataclass_decorator(node: ast.ClassDef) -> tuple[ast.expr, ast.Call | None] | None:
        for decorator in node.decorator_list:
            target = decorator.func if isinstance(decorator, ast.Call) else decorator
            chain = _dotted(target)
            if chain and chain[-1] == "dataclass":
                return decorator, decorator if isinstance(decorator, ast.Call) else None
        return None

    def check(self, ctx: "FileContext") -> Iterator["Finding"]:
        for node in ctx.walk():
            if not isinstance(node, ast.ClassDef):
                continue
            found = self._dataclass_decorator(node)
            if found is None:
                continue
            _decorator, call = found
            has_slots = call is not None and any(
                keyword.arg == "slots"
                and isinstance(keyword.value, ast.Constant)
                and keyword.value.value is True
                for keyword in call.keywords
            )
            if not has_slots:
                yield ctx.finding(self, node, f"dataclass `{node.name}` allocated per cycle lacks slots=True")


class UnstableHashRule(Rule):
    """RL008 — builtin ``hash()`` on the seed path is nondeterministic.

    ``str``/``bytes`` hashes are randomized per process (PYTHONHASHSEED),
    so ``seed ^ hash(name)`` produces a different stream on every run —
    results change while every test keeps passing.  This rule caught a real
    instance in ``mitigation/traces.py``.
    """

    rule_id = "RL008"
    title = "builtin hash() is salted per process (nondeterministic seeds)"
    hint = "use repro.utils.rng.stable_seed(label) or zlib.crc32 for deterministic label mixing"

    def check(self, ctx: "FileContext") -> Iterator["Finding"]:
        for node in ctx.walk():
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "hash"
            ):
                yield ctx.finding(self, node, "builtin hash() result varies across processes")
        # Flow-aware: calls through aliases of hash (`h = hash; h(x)`).
        flow = getattr(ctx, "flow", None)
        if flow is not None:
            for kind, call in flow.alias_calls():
                if kind == "hash":
                    yield ctx.finding(
                        self,
                        call,
                        "call through an alias of builtin hash()",
                        via_flow=True,
                    )


class MutableDefaultRule(Rule):
    """RL009 — mutable default arguments.

    A ``def f(xs=[])`` default is evaluated once at definition time, so
    every call shares (and mutates) one list.  In a simulator where attack
    objects are constructed per experiment, a shared default silently
    couples rounds the same way a global RNG would — results depend on
    call history instead of the seed.
    """

    rule_id = "RL009"
    title = "mutable default argument (shared across calls)"
    hint = "default to None and create the list/dict/set inside the function body"

    _MUTABLE_CONSTRUCTORS = frozenset({"list", "dict", "set", "bytearray"})

    def _is_mutable(self, node: ast.expr) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)):
            return True
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in self._MUTABLE_CONSTRUCTORS
        )

    def check(self, ctx: "FileContext") -> Iterator["Finding"]:
        for node in ctx.walk():
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue
            defaults = list(node.args.defaults) + [
                default for default in node.args.kw_defaults if default is not None
            ]
            for default in defaults:
                if self._is_mutable(default):
                    name = node.name if not isinstance(node, ast.Lambda) else "<lambda>"
                    yield ctx.finding(
                        self, default,
                        f"mutable default in `{name}()` is shared across all calls",
                    )


class AssertValidationRule(Rule):
    """RL010 — ``assert`` used for input validation in library code.

    ``python -O`` strips asserts, so an assert guarding a *caller-supplied*
    value is a validation that can silently vanish.  The tell is an assert
    whose condition mentions a parameter of the enclosing function: that is
    the caller's input, and rejecting it must raise ``ValueError`` /
    ``TypeError``.  Asserts over locals (``assert entry is not None``
    narrowing, internal invariants) remain fine, as do tests — asserting is
    what tests do.
    """

    rule_id = "RL010"
    title = "bare assert validates a caller-supplied argument"
    hint = "raise ValueError/TypeError for bad inputs; assert only internal invariants"

    def applies_to(self, path: str) -> bool:
        return _in_package(path, "repro") and not _is_test_path(path)

    @staticmethod
    def _parameter_names(func: ast.FunctionDef | ast.AsyncFunctionDef) -> frozenset[str]:
        args = func.args
        names = [
            arg.arg
            for arg in (*args.posonlyargs, *args.args, *args.kwonlyargs)
        ]
        if args.vararg is not None:
            names.append(args.vararg.arg)
        if args.kwarg is not None:
            names.append(args.kwarg.arg)
        return frozenset(names) - {"self", "cls"}

    def check(self, ctx: "FileContext") -> Iterator["Finding"]:
        for node in ctx.walk():
            if not isinstance(node, ast.Assert):
                continue
            enclosing = next(
                (
                    ancestor
                    for ancestor in ctx.ancestors(node)
                    if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef))
                ),
                None,
            )
            if enclosing is None:
                continue
            params = self._parameter_names(enclosing)
            referenced = sorted(
                {
                    name.id
                    for name in ast.walk(node.test)
                    if isinstance(name, ast.Name) and name.id in params
                }
            )
            if referenced:
                yield ctx.finding(
                    self, node,
                    f"assert checks parameter(s) {', '.join(referenced)} of "
                    f"`{enclosing.name}()`; stripped under -O",
                )


class PrintRule(Rule):
    """RL011 — ``print()`` in library code.

    Library modules are imported by experiments, tests and the
    observability tooling; a stray ``print()`` in one of them pollutes
    machine-readable output (``--format json``, JSONL traces, benchmark
    dumps) and cannot be silenced by callers.  Terminal output belongs in
    the CLI front ends (``cli.py`` / ``__main__.py``) and in examples;
    everything else returns data and lets the caller render it.
    """

    rule_id = "RL011"
    title = "print() call in library code (return data; render in cli.py)"
    hint = "move the output to a cli.py/__main__.py front end or return the string"

    def applies_to(self, path: str) -> bool:
        if not _in_package(path, "repro") or _is_test_path(path):
            return False
        return path.split("/")[-1] not in ("cli.py", "__main__.py")

    def check(self, ctx: "FileContext") -> Iterator["Finding"]:
        for node in ctx.walk():
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "print"
            ):
                yield ctx.finding(self, node, "print() bypasses the caller's output channel")


class UnregisteredAttackRule(Rule):
    """RL012 — attack classes in ``repro/core`` must register an AttackSpec.

    The :mod:`repro.attacks` registry is the single source of truth for
    every consumer (CLI, tracing, report, bench, executor); an attack class
    that never appears in any spec's ``covers`` tuple is invisible to all
    of them — exactly how ``sgx`` and ``switch-leak`` went missing from the
    observability tooling before the registry existed.  A class counts as
    an attack when it defines one of the entry-point methods the registry
    scenarios drive (``run_round``/``transmit``/``recover_key_bits``/
    ``track``); victim classes expose plain ``run``/``work_slice`` and are
    deliberately out of scope — they are driven *by* attacks.
    """

    rule_id = "RL012"
    title = "attack class not covered by any registered AttackSpec"
    hint = 'register it in repro/attacks/builtin.py with covers=("ClassName",)'

    _ENTRY_POINTS = frozenset({"run_round", "transmit", "recover_key_bits", "track"})

    def applies_to(self, path: str) -> bool:
        return _in_package(path, "repro/core") and not _is_test_path(path)

    @staticmethod
    def _registered_covers() -> frozenset[str] | None:
        try:
            from repro.attacks import registered_covers
        except ImportError:  # linting a tree without the attacks package
            return None
        return registered_covers()

    def check(self, ctx: "FileContext") -> Iterator["Finding"]:
        covered = self._registered_covers()
        if covered is None:
            return
        for node in ctx.walk():
            if not isinstance(node, ast.ClassDef) or node.name.startswith("_"):
                continue
            methods = {
                item.name
                for item in node.body
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
            }
            entry_points = sorted(methods & self._ENTRY_POINTS)
            if entry_points and node.name not in covered:
                yield ctx.finding(
                    self, node,
                    f"`{node.name}` defines {', '.join(entry_points)} but no "
                    f"AttackSpec lists it in covers=",
                )


class ConfinedMultiprocessingRule(Rule):
    """RL013 — ``multiprocessing`` imports are confined to the two pool owners.

    Worker fan-out has exactly two sanctioned homes: the trial executor
    (``repro/attacks/executor.py``) and the campaign layer
    (``repro/campaign/``).  Both get the platform context dance, per-cell
    fault isolation, and deterministic per-task seed derivation right; an
    ad-hoc ``multiprocessing`` pool anywhere else would re-introduce the
    all-or-nothing ``pool.map`` failure mode and dispatch-order-dependent
    seeds those layers exist to prevent.  Everything else parallelises by
    building a task list and handing it to the executor or a campaign.
    """

    rule_id = "RL013"
    title = "multiprocessing import outside attacks/executor.py and campaign/"
    hint = "fan out via repro.attacks.TrialExecutor or repro.campaign.CampaignRunner"

    _ALLOWED = ("repro/attacks/executor.py", "repro/campaign/")

    def applies_to(self, path: str) -> bool:
        if not _in_package(path, "repro") or _is_test_path(path):
            return False
        return not any(allowed in path for allowed in self._ALLOWED)

    def check(self, ctx: "FileContext") -> Iterator["Finding"]:
        for node in ctx.walk():
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "multiprocessing" or alias.name.startswith(
                        "multiprocessing."
                    ):
                        yield ctx.finding(
                            self, node, "direct `import multiprocessing`"
                        )
            elif isinstance(node, ast.ImportFrom):
                module = node.module or ""
                if module == "multiprocessing" or module.startswith("multiprocessing."):
                    yield ctx.finding(
                        self, node, "direct `from multiprocessing import ...`"
                    )


# Imported at the bottom so the flow rules can subclass Rule above
# without a circular import.
from repro.lint.flow.rules import FLOW_RULES  # noqa: E402

ALL_RULES: tuple[type[Rule], ...] = (
    StdlibRandomRule,
    NumpyRngRule,
    WallClockRule,
    FloatEqualityRule,
    PrivateMutationRule,
    MagicNumberRule,
    SlotsRule,
    UnstableHashRule,
    MutableDefaultRule,
    AssertValidationRule,
    PrintRule,
    UnregisteredAttackRule,
    ConfinedMultiprocessingRule,
    *FLOW_RULES,
)
