"""Shared address arithmetic: lines, pages, sets, tags — one audited place.

Before this module, ``vaddr // CACHE_LINE_SIZE``, ``paddr // PAGE_SIZE``
and the set/tag decomposition were re-derived independently in
``cpu/machine.py``, all four prefetchers, the TLB and ``memsys/cache.py``.
Every helper here is pure integer arithmetic; the regression tests
(``tests/test_memsys_addr.py``) pin each one against the original inline
formula so the dedup cannot drift.

Line/page helpers default to the architectural ``CACHE_LINE_SIZE`` /
``PAGE_SIZE``; the set/tag helpers take the cache geometry explicitly
because cache levels may differ in line size and set count.
"""

from __future__ import annotations

from repro.params import CACHE_LINE_SIZE, PAGE_SIZE


def line_index(addr: int, line_size: int = CACHE_LINE_SIZE) -> int:
    """Cache-line number of ``addr`` (virtual or physical)."""
    return addr // line_size


def line_base(addr: int, line_size: int = CACHE_LINE_SIZE) -> int:
    """Byte address of the start of the line containing ``addr``."""
    return (addr // line_size) * line_size


def line_addr(index: int, line_size: int = CACHE_LINE_SIZE) -> int:
    """Byte address of line number ``index`` (inverse of :func:`line_index`)."""
    return index * line_size


def page_frame(addr: int) -> int:
    """Page/frame number of ``addr``."""
    return addr // PAGE_SIZE


def page_split(addr: int) -> tuple[int, int]:
    """``(page number, byte offset within the page)`` of ``addr``."""
    return divmod(addr, PAGE_SIZE)


def same_page(a: int, b: int) -> bool:
    """Do two addresses fall in the same page/frame?"""
    return a // PAGE_SIZE == b // PAGE_SIZE

def same_block(a: int, b: int, block_size: int) -> bool:
    """Do two addresses fall in the same aligned ``block_size`` block?"""
    return a // block_size == b // block_size


def set_index(addr: int, line_size: int, n_sets: int) -> int:
    """Set index of the line containing ``addr`` in a set-associative cache."""
    return (addr // line_size) % n_sets


def cache_tag(addr: int, line_size: int, n_sets: int) -> int:
    """Tag of the line containing ``addr`` (line number above the set bits)."""
    return (addr // line_size) // n_sets


def tag_to_line_base(tag: int, index: int, line_size: int, n_sets: int) -> int:
    """Reassemble a line's byte address from ``(tag, set index)``."""
    return (tag * n_sets + index) * line_size
