"""Three-level inclusive cache hierarchy with a sliced LLC.

Latency-only model: every access returns the level that served it plus the
level's load-to-use latency.  Data values are never stored — all experiments
in the paper observe residency and timing, not contents.

Inclusivity is load-bearing for the reproduction: Prime+Probe (paper §5.1)
relies on LLC evictions back-invalidating the private caches so that a
later victim access misses all the way to DRAM.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.memsys.cache import Cache
from repro.memsys.slice_hash import SliceHash
from repro.obs.tracer import NULL_TRACER, zero_clock
from repro.params import MachineParams


class MemoryLevel(enum.IntEnum):
    """Which level of the hierarchy served an access."""

    L1 = 1
    L2 = 2
    LLC = 3
    DRAM = 4


@dataclass(frozen=True, slots=True)
class AccessResult:
    """Outcome of one demand access."""

    paddr: int
    level: MemoryLevel
    latency: int

    @property
    def hit(self) -> bool:
        """True when the access was served by any cache level."""
        return self.level is not MemoryLevel.DRAM


class CacheHierarchy:
    """L1D + L2 + sliced, inclusive LLC."""

    def __init__(self, params: MachineParams) -> None:
        self.params = params
        self.l1 = Cache(params.l1d)
        self.l2 = Cache(params.l2)
        self.slice_hash = SliceHash(params.llc_slices)
        self.llc = [Cache(params.llc) for _ in range(params.llc_slices)]
        self._latency = {
            MemoryLevel.L1: params.l1d.latency,
            MemoryLevel.L2: params.l2.latency,
            MemoryLevel.LLC: params.llc.latency,
            MemoryLevel.DRAM: params.dram_latency,
        }
        self.prefetch_fills = 0
        self.demand_accesses = 0
        #: Prefetch accuracy accounting: line addresses brought in by a
        #: prefetch and not yet touched by demand.  A later demand hit on
        #: such a line is a *useful* prefetch; losing the line first
        #: (eviction or flush) makes it *useless*.
        self.prefetch_useful = 0
        self.prefetch_useless = 0
        self._prefetched_lines: set[int] = set()
        #: Observability hooks, reassigned by the owning Machine; the
        #: defaults keep a standalone hierarchy silent.
        self.tracer = NULL_TRACER
        self.clock = zero_clock

    def latency_of(self, level: MemoryLevel) -> int:
        """Load-to-use latency of ``level`` (before timing noise)."""
        return self._latency[level]

    def llc_slice(self, paddr: int) -> Cache:
        """The LLC slice responsible for ``paddr``."""
        return self.llc[self.slice_hash.slice_of(paddr)]

    def llc_set_index(self, paddr: int) -> tuple[int, int]:
        """(slice id, set index) pair for ``paddr`` — the Prime+Probe target."""
        slice_id = self.slice_hash.slice_of(paddr)
        return slice_id, self.llc[slice_id].set_index(paddr)

    def access(self, paddr: int) -> AccessResult:
        """Perform a demand load of ``paddr``, filling caches on the way."""
        self.demand_accesses += 1
        if self._prefetched_lines:
            line = self.l1.line_address(paddr)
            if line in self._prefetched_lines:
                self._prefetched_lines.discard(line)
                self.prefetch_useful += 1
        if self.l1.lookup(paddr):
            return AccessResult(paddr, MemoryLevel.L1, self._latency[MemoryLevel.L1])
        if self.l2.lookup(paddr):
            self.l1.insert(paddr)
            return AccessResult(paddr, MemoryLevel.L2, self._latency[MemoryLevel.L2])
        llc = self.llc_slice(paddr)
        if llc.lookup(paddr):
            self.l2.insert(paddr)
            self.l1.insert(paddr)
            return AccessResult(paddr, MemoryLevel.LLC, self._latency[MemoryLevel.LLC])
        self._fill_from_dram(paddr, into_l1=True)
        return AccessResult(paddr, MemoryLevel.DRAM, self._latency[MemoryLevel.DRAM])

    def insert_prefetch(self, paddr: int) -> None:
        """Install a prefetched line.

        Intel's IP-stride prefetcher delivers into the L2 (and therefore,
        by inclusion, the LLC) — not the L1.  A subsequent demand access
        consequently sees an L2-hit latency, far below the paper's
        120-cycle threshold.
        """
        self.prefetch_fills += 1
        self._fill_from_dram(paddr, into_l1=False)
        self._prefetched_lines.add(self.l1.line_address(paddr))
        if self.tracer.enabled:
            from repro.obs.events import PrefetchFill

            self.tracer.emit(PrefetchFill(cycle=self.clock(), paddr=paddr))

    def _fill_from_dram(self, paddr: int, into_l1: bool) -> None:
        llc = self.llc_slice(paddr)
        evicted = llc.insert(paddr)
        if evicted is not None:
            # Inclusive LLC: a line leaving the LLC leaves the core caches too.
            self.l1.invalidate(evicted)
            self.l2.invalidate(evicted)
            if evicted in self._prefetched_lines:
                self._prefetched_lines.discard(evicted)
                self.prefetch_useless += 1
        self.l2.insert(paddr)
        if into_l1:
            self.l1.insert(paddr)

    def clflush(self, paddr: int) -> None:
        """Flush the line containing ``paddr`` from the whole hierarchy."""
        self.l1.invalidate(paddr)
        self.l2.invalidate(paddr)
        self.llc_slice(paddr).invalidate(paddr)
        line = self.l1.line_address(paddr)
        if line in self._prefetched_lines:
            self._prefetched_lines.discard(line)
            self.prefetch_useless += 1

    def contains(self, paddr: int) -> MemoryLevel | None:
        """Highest level currently holding ``paddr`` (non-mutating)."""
        if self.l1.contains(paddr):
            return MemoryLevel.L1
        if self.l2.contains(paddr):
            return MemoryLevel.L2
        if self.llc_slice(paddr).contains(paddr):
            return MemoryLevel.LLC
        return None

    def flush_all(self) -> None:
        """Invalidate every line at every level."""
        self.l1.flush_all()
        self.l2.flush_all()
        for llc_slice in self.llc:
            llc_slice.flush_all()
        self.prefetch_useless += len(self._prefetched_lines)
        self._prefetched_lines.clear()

    def reset_stats(self) -> None:
        """Zero every counter, including prefetch-accuracy accounting.

        The set of not-yet-touched prefetched lines is intentionally kept:
        it describes cache *contents*, not statistics, and dropping it
        would misclassify their eventual demand hits.
        """
        self.prefetch_fills = 0
        self.demand_accesses = 0
        self.prefetch_useful = 0
        self.prefetch_useless = 0
        self.l1.reset_stats()
        self.l2.reset_stats()
        for llc_slice in self.llc:
            llc_slice.reset_stats()
