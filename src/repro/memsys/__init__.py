"""Cache substrate: set-associative caches, replacement policies, sliced LLC.

The hierarchy is inclusive (Haswell / Coffee Lake client parts have inclusive
LLCs), which is what makes the Prime+Probe channel of the paper's Variant 1
work: evicting a line from the LLC back-invalidates the private levels.
"""

from repro.memsys.cache import Cache, CacheSet
from repro.memsys.hierarchy import AccessResult, CacheHierarchy, MemoryLevel
from repro.memsys.replacement import (
    BitPLRU,
    FIFOPolicy,
    LRUPolicy,
    RandomPolicy,
    ReplacementPolicy,
    TreePLRU,
    make_policy,
)
from repro.memsys.slice_hash import SliceHash

__all__ = [
    "Cache",
    "CacheSet",
    "CacheHierarchy",
    "AccessResult",
    "MemoryLevel",
    "ReplacementPolicy",
    "LRUPolicy",
    "FIFOPolicy",
    "BitPLRU",
    "TreePLRU",
    "RandomPolicy",
    "make_policy",
    "SliceHash",
]
