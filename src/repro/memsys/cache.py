"""A single set-associative cache level."""

from __future__ import annotations

from collections.abc import Iterator

from repro.memsys import addr
from repro.memsys.replacement import ReplacementPolicy, make_policy
from repro.params import CacheGeometry


class CacheSet:
    """One associative set: ``ways`` lines identified by their tag."""

    __slots__ = ("ways", "tags", "policy", "_tag_to_way")

    def __init__(self, ways: int, policy: ReplacementPolicy) -> None:
        self.ways = ways
        self.tags: list[int | None] = [None] * ways
        self.policy = policy
        self._tag_to_way: dict[int, int] = {}

    def lookup(self, tag: int) -> bool:
        """Return True on hit, refreshing replacement state."""
        way = self._tag_to_way.get(tag)
        if way is None:
            return False
        self.policy.touch(way)
        return True

    def contains(self, tag: int) -> bool:
        """Non-mutating presence check (for inspection/debugging only)."""
        return tag in self._tag_to_way

    def insert(self, tag: int) -> int | None:
        """Install ``tag``; return the evicted tag, if any.

        An already-present tag is just refreshed (no eviction).  Invalid ways
        are preferred over the policy's victim.
        """
        way = self._tag_to_way.get(tag)
        if way is not None:
            self.policy.touch(way)
            return None
        evicted: int | None = None
        try:
            way = self.tags.index(None)
        except ValueError:
            way = self.policy.victim()
            evicted = self.tags[way]
            assert evicted is not None
            del self._tag_to_way[evicted]
        self.tags[way] = tag
        self._tag_to_way[tag] = way
        self.policy.fill(way)
        return evicted

    def invalidate(self, tag: int) -> bool:
        """Drop ``tag`` if present; return whether it was present."""
        way = self._tag_to_way.pop(tag, None)
        if way is None:
            return False
        self.tags[way] = None
        return True

    def occupancy(self) -> int:
        """Number of valid lines in the set."""
        return len(self._tag_to_way)

    def resident_tags(self) -> list[int]:
        """Tags currently resident (unordered)."""
        return list(self._tag_to_way)

    def clear(self) -> None:
        self.tags = [None] * self.ways
        self._tag_to_way.clear()
        self.policy.reset()


class Cache:
    """A set-associative cache indexed by physical line address.

    The cache stores line *addresses* (byte address of the line start); the
    tag within a set is the line number divided by the set count.  Data
    payloads are not modeled — every experiment in the paper observes only
    residency and latency.
    """

    def __init__(self, geometry: CacheGeometry, replacement: str = "lru") -> None:
        self.geometry = geometry
        self.replacement = replacement
        self.line_size = geometry.line_size
        self.n_sets = geometry.sets
        self._sets = [
            CacheSet(geometry.ways, make_policy(replacement, geometry.ways))
            for _ in range(geometry.sets)
        ]
        self.hits = 0
        self.misses = 0

    def set_index(self, paddr: int) -> int:
        """Set index of the line containing physical address ``paddr``."""
        return addr.set_index(paddr, self.line_size, self.n_sets)

    def _tag(self, paddr: int) -> int:
        return addr.cache_tag(paddr, self.line_size, self.n_sets)

    def line_address(self, paddr: int) -> int:
        """Byte address of the start of the line containing ``paddr``."""
        return addr.line_base(paddr, self.line_size)

    def lookup(self, paddr: int) -> bool:
        """Access the line holding ``paddr``; True on hit (updates LRU/stats)."""
        hit = self._sets[self.set_index(paddr)].lookup(self._tag(paddr))
        if hit:
            self.hits += 1
        else:
            self.misses += 1
        return hit

    def contains(self, paddr: int) -> bool:
        """Non-mutating residency check (no LRU/statistics update)."""
        return self._sets[self.set_index(paddr)].contains(self._tag(paddr))

    def insert(self, paddr: int) -> int | None:
        """Fill the line holding ``paddr``; return evicted line address or None."""
        index = self.set_index(paddr)
        evicted_tag = self._sets[index].insert(self._tag(paddr))
        if evicted_tag is None:
            return None
        return addr.tag_to_line_base(evicted_tag, index, self.line_size, self.n_sets)

    def invalidate(self, paddr: int) -> bool:
        """Remove the line holding ``paddr``; True if it was resident."""
        return self._sets[self.set_index(paddr)].invalidate(self._tag(paddr))

    def flush_all(self) -> None:
        """Invalidate every line (e.g. a WBINVD-style flush)."""
        for cache_set in self._sets:
            cache_set.clear()

    def set_occupancy(self, index: int) -> int:
        """Valid-line count of set ``index`` (inspection helper)."""
        return self._sets[index].occupancy()

    def resident_lines(self) -> Iterator[int]:
        """Iterate over the byte addresses of all resident lines."""
        for index, cache_set in enumerate(self._sets):
            for tag in cache_set.resident_tags():
                yield addr.tag_to_line_base(tag, index, self.line_size, self.n_sets)

    def reset_stats(self) -> None:
        self.hits = 0
        self.misses = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Cache({self.geometry.name}, {self.n_sets} sets x {self.geometry.ways} ways, "
            f"{self.replacement})"
        )
