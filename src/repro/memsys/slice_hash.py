"""LLC slice-selection hash.

Modern Intel client parts split the LLC into per-core slices selected by an
undocumented XOR hash of physical address bits (the paper's §3.1 discusses
why this makes eviction-set construction hard).  We implement the functions
recovered by Maurice et al. (RAID 2015) / Irazoqui et al. (DSD 2015) for 2-,
4- and 8-slice parts: slice bit *i* is the XOR (parity) of a fixed subset of
physical address bits.

The exact bit subsets only matter in that they are (a) deterministic, (b)
balanced, and (c) unknown to a naive attacker — which is what forces the
slice-aware eviction-set construction in :mod:`repro.channels.eviction_sets`.
"""

from __future__ import annotations

# Published parity masks (bit positions of the physical address) for the
# slice-hash bits o0, o1, o2 on Haswell-generation parts.
_O0_BITS = (6, 10, 12, 14, 16, 17, 18, 20, 22, 24, 25, 26, 27, 28, 30, 32, 33)
_O1_BITS = (7, 11, 13, 15, 17, 19, 20, 21, 22, 23, 24, 26, 28, 29, 31, 33, 34)
_O2_BITS = (8, 12, 28, 29, 31, 33, 34, 35)


def _mask_from_bits(bits: tuple[int, ...]) -> int:
    mask = 0
    for bit in bits:
        mask |= 1 << bit
    return mask

_O_MASKS = tuple(_mask_from_bits(bits) for bits in (_O0_BITS, _O1_BITS, _O2_BITS))


class SliceHash:
    """Map a physical address to an LLC slice id in ``[0, n_slices)``."""

    def __init__(self, n_slices: int) -> None:
        if n_slices <= 0 or n_slices & (n_slices - 1):
            raise ValueError(f"n_slices must be a positive power of two, got {n_slices}")
        self.n_slices = n_slices
        self.n_bits = n_slices.bit_length() - 1
        if self.n_bits > len(_O_MASKS):
            raise ValueError(f"no published hash for {n_slices} slices")
        self._masks = _O_MASKS[: self.n_bits]

    def slice_of(self, paddr: int) -> int:
        """Slice id of the line containing physical address ``paddr``."""
        slice_id = 0
        for bit, mask in enumerate(self._masks):
            slice_id |= (bin(paddr & mask).count("1") & 1) << bit
        return slice_id

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SliceHash(n_slices={self.n_slices})"
