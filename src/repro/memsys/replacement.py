"""Replacement policies for fixed-capacity fully/set-associative structures.

A single policy object manages the ways of *one* set.  The same classes back
both the cache sets and the IP-stride prefetcher's 24-entry history table:
the paper concludes from Figure 8b that the prefetcher replacement is a
Bit-PLRU variant (contiguous evictions, cheaper than true LRU), so
:class:`BitPLRU` is exercised by the reverse-engineering benches, while the
caches default to :class:`LRUPolicy`.

Protocol
--------
``touch(way)``    — the way was accessed (hit or just filled).
``fill(way)``     — a new line landed in the way (implies a touch).
``victim()``      — choose the way to evict; does not mutate state.
``reset()``       — forget all history.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.utils.rng import make_rng


class ReplacementPolicy(ABC):
    """Replacement state for one associative set of ``n_ways`` ways."""

    def __init__(self, n_ways: int) -> None:
        if n_ways <= 0:
            raise ValueError(f"n_ways must be positive, got {n_ways}")
        self.n_ways = n_ways

    @abstractmethod
    def touch(self, way: int) -> None:
        """Record an access to ``way``."""

    def fill(self, way: int) -> None:
        """Record that a new line was installed in ``way``."""
        self.touch(way)

    @abstractmethod
    def victim(self) -> int:
        """Return the way to evict next (state is not mutated)."""

    @abstractmethod
    def reset(self) -> None:
        """Forget all replacement history."""

    def _check_way(self, way: int) -> None:
        if not 0 <= way < self.n_ways:
            raise IndexError(f"way {way} out of range [0, {self.n_ways})")


class LRUPolicy(ReplacementPolicy):
    """True least-recently-used: victim is the way with the oldest access."""

    def __init__(self, n_ways: int) -> None:
        super().__init__(n_ways)
        self._clock = 0
        self._stamp = [0] * n_ways

    def touch(self, way: int) -> None:
        self._check_way(way)
        self._clock += 1
        self._stamp[way] = self._clock

    def victim(self) -> int:
        return min(range(self.n_ways), key=self._stamp.__getitem__)

    def reset(self) -> None:
        self._clock = 0
        self._stamp = [0] * self.n_ways


class FIFOPolicy(ReplacementPolicy):
    """First-in-first-out: hits do not refresh a way's position."""

    def __init__(self, n_ways: int) -> None:
        super().__init__(n_ways)
        self._clock = 0
        self._filled_at = [0] * n_ways

    def touch(self, way: int) -> None:
        self._check_way(way)

    def fill(self, way: int) -> None:
        self._check_way(way)
        self._clock += 1
        self._filled_at[way] = self._clock

    def victim(self) -> int:
        return min(range(self.n_ways), key=self._filled_at.__getitem__)

    def reset(self) -> None:
        self._clock = 0
        self._filled_at = [0] * self.n_ways


class BitPLRU(ReplacementPolicy):
    """Bit-PLRU (MRU-bit) replacement.

    Each way has an MRU bit, set on access.  When setting a bit would make
    all bits one, every *other* bit is cleared first, starting a new
    generation.  The victim is the lowest-numbered way whose bit is clear.

    This produces the contiguous-run eviction pattern the paper observes in
    Figure 8b for the IP-stride prefetcher, which a tree PLRU would not.
    """

    def __init__(self, n_ways: int) -> None:
        super().__init__(n_ways)
        self._mru = [False] * n_ways

    def touch(self, way: int) -> None:
        self._check_way(way)
        if not self._mru[way] and sum(self._mru) == self.n_ways - 1:
            self._mru = [False] * self.n_ways
        self._mru[way] = True

    def victim(self) -> int:
        for way, bit in enumerate(self._mru):
            if not bit:
                return way
        # Unreachable by construction (touch() never leaves all bits set),
        # but a direct answer beats an assertion for robustness.
        return 0

    def reset(self) -> None:
        self._mru = [False] * self.n_ways


class TreePLRU(ReplacementPolicy):
    """Classic binary-tree pseudo-LRU (requires a power-of-two way count)."""

    def __init__(self, n_ways: int) -> None:
        super().__init__(n_ways)
        if n_ways & (n_ways - 1):
            raise ValueError(f"TreePLRU needs a power-of-two way count, got {n_ways}")
        self._bits = [False] * max(n_ways - 1, 1)

    def touch(self, way: int) -> None:
        self._check_way(way)
        node = 0
        lo, hi = 0, self.n_ways
        while hi - lo > 1:
            mid = (lo + hi) // 2
            went_right = way >= mid
            # Point the bit *away* from the touched way.
            self._bits[node] = not went_right
            if went_right:
                node = 2 * node + 2
                lo = mid
            else:
                node = 2 * node + 1
                hi = mid

    def victim(self) -> int:
        node = 0
        lo, hi = 0, self.n_ways
        while hi - lo > 1:
            mid = (lo + hi) // 2
            if self._bits[node]:
                node = 2 * node + 2
                lo = mid
            else:
                node = 2 * node + 1
                hi = mid
        return lo

    def reset(self) -> None:
        self._bits = [False] * len(self._bits)


class RandomPolicy(ReplacementPolicy):
    """Uniformly random victim selection (baseline for ablation benches)."""

    def __init__(self, n_ways: int, rng: np.random.Generator | None = None) -> None:
        super().__init__(n_ways)
        self._rng = rng if rng is not None else make_rng(0)

    def touch(self, way: int) -> None:
        self._check_way(way)

    def victim(self) -> int:
        return int(self._rng.integers(0, self.n_ways))

    def reset(self) -> None:
        pass


_POLICIES = {
    "lru": LRUPolicy,
    "fifo": FIFOPolicy,
    "bit-plru": BitPLRU,
    "tree-plru": TreePLRU,
    "random": RandomPolicy,
}


def make_policy(name: str, n_ways: int) -> ReplacementPolicy:
    """Instantiate a replacement policy by name.

    Known names: ``lru``, ``fifo``, ``bit-plru``, ``tree-plru``, ``random``.
    """
    key = name.strip().lower()
    if key not in _POLICIES:
        raise KeyError(f"unknown replacement policy {name!r}; known: {sorted(_POLICIES)}")
    return _POLICIES[key](n_ways)
