"""Prime+Probe (Osvik et al. 2006; Liu et al. 2015) on the simulated LLC.

No shared memory required: the attacker fills ("primes") chosen LLC sets
with its own lines, schedules the victim, then re-accesses ("probes") the
same lines.  High probe latency means the victim — or a prefetch the victim
triggered — displaced the attacker's data from that set.

The reported measurement matches the paper's Figure 13a/13b y-axis: the
difference between each set's probe time and its prime-phase baseline
("the time taken, between the probing phase and priming phase, to access
each MES of the cache set").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.channels.eviction_sets import EvictionSet
from repro.cpu.context import ThreadContext
from repro.cpu.machine import Machine


@dataclass(frozen=True)
class ProbeSample:
    """Prime/probe timing for one monitored cache set."""

    set_ordinal: int
    prime_latency: int
    probe_latency: int

    @property
    def delta(self) -> int:
        """Probe minus prime total latency — the Figure 13a/13b y-value."""
        return self.probe_latency - self.prime_latency


class PrimeProbe:
    """Prime+Probe over an ordered list of eviction sets.

    The ordinal of each eviction set is the caller's plotting coordinate
    (for the paper's figures: the line index inside the observed page).
    """

    def __init__(
        self,
        machine: Machine,
        ctx: ThreadContext,
        eviction_sets: list[EvictionSet],
        probe_ip: int,
    ) -> None:
        if not eviction_sets:
            raise ValueError("need at least one eviction set")
        self.machine = machine
        self.ctx = ctx
        self.eviction_sets = eviction_sets
        self.probe_ip = probe_ip
        self._prime_latencies: list[int] | None = None

    def prime(self) -> None:
        """Fill every monitored set with attacker lines, recording baselines.

        Each set is traversed twice so that the attacker's lines end up
        most-recently-used in the LRU order; the *second* pass (all hits in
        the steady state) is the baseline latency.
        """
        baselines = []
        for es in self.eviction_sets:
            for vaddr in es.addresses:
                self.machine.load(self.ctx, self.probe_ip, vaddr, fenced=True)
            total = 0
            for vaddr in es.addresses:
                total += self.machine.load(self.ctx, self.probe_ip, vaddr, fenced=True)
            baselines.append(total)
        self._prime_latencies = baselines

    def probe(self) -> list[ProbeSample]:
        """Timed traversal of every monitored set (requires a prior prime)."""
        if self._prime_latencies is None:
            raise RuntimeError("probe() before prime(); call prime() first")
        samples = []
        for ordinal, es in enumerate(self.eviction_sets):
            total = 0
            for vaddr in es.addresses:
                total += self.machine.load(self.ctx, self.probe_ip, vaddr, fenced=True)
            samples.append(
                ProbeSample(
                    set_ordinal=ordinal,
                    prime_latency=self._prime_latencies[ordinal],
                    probe_latency=total,
                )
            )
        self._prime_latencies = None
        return samples

    def victim_touched_sets(self, samples: list[ProbeSample], min_delta: int) -> list[int]:
        """Ordinals whose probe-prime delta indicates victim activity."""
        return [sample.set_ordinal for sample in samples if sample.delta >= min_delta]
