"""Prefetcher Status Checking (PSC) — the paper's §6.1 contribution.

PSC extracts the secret *without any cache primitive*: the attacker trains
an IP-stride entry with a known stride, lets the victim run, then continues
its own strided sequence by one more load and times the would-be prefetch
target:

* **hit**  → the entry still held (confidence ≥ 2, stride intact), so the
  prefetch fired → the victim did **not** execute the aliased load;
* **miss** → the victim's aliased load rewrote the stride and reset the
  confidence to 1, so no prefetch fired → the victim **did** execute it.

Only one destination address is timed per observation, which is why the
paper reports PSC to be faster than Flush+Reload / Prime+Probe and immune
to cache-primitive-focused defenses (§6.1, §8.1).

After a disturbed observation the attacker's own sequence needs two more
loads before the entry is confident again — the "two misses" visible in the
paper's Figure 15 (§7.4).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.channels.thresholds import classify_hit
from repro.cpu.context import ThreadContext
from repro.cpu.machine import Machine
from repro.mmu.buffer import Buffer
from repro.params import CACHE_LINE_SIZE, LINES_PER_PAGE
from repro.utils.bits import low_bits


@dataclass(frozen=True)
class PSCObservation:
    """One prefetcher-status check."""

    latency: int
    prefetcher_triggered: bool

    @property
    def victim_executed(self) -> bool:
        """Did a victim load alias our entry since the previous check?"""
        return not self.prefetcher_triggered


class PrefetcherStatusCheck:
    """Train-and-poll monitor for one IP-stride prefetcher entry.

    ``train_ip`` is the attacker's local load whose low 8 bits alias the
    victim load under observation.  The monitor walks an arithmetic
    progression of addresses with period ``stride_lines`` inside ``buffer``
    so that, when undisturbed, every check load itself keeps the entry's
    confidence saturated (§6.3: "we always access current_address + N in
    the detection phase to guarantee that the prefetcher status will not be
    reset by us").
    """

    def __init__(
        self,
        machine: Machine,
        ctx: ThreadContext,
        train_ip: int,
        buffer: Buffer,
        stride_lines: int,
        probe_ip: int | None = None,
    ) -> None:
        if stride_lines <= 0:
            raise ValueError(f"stride_lines must be positive, got {stride_lines}")
        # One page must fit a 3-load retrain plus a check and its target,
        # or the progression could run off the buffer mid-check.
        if (4 * stride_lines + 1) > LINES_PER_PAGE:
            raise ValueError(
                f"stride of {stride_lines} lines needs more than one page per "
                f"training run; use a stride of at most {(LINES_PER_PAGE - 1) // 4} lines"
            )
        self.machine = machine
        self.ctx = ctx
        self.train_ip = train_ip
        self.buffer = buffer
        self.stride_lines = stride_lines
        self.stride_bytes = stride_lines * CACHE_LINE_SIZE
        if probe_ip is None:
            probe_ip = train_ip + 1  # different low bits by construction
        index_bits = machine.params.prefetcher.index_bits
        if low_bits(probe_ip, index_bits) == low_bits(train_ip, index_bits):
            raise ValueError("probe IP must not alias the trained entry")
        self.probe_ip = probe_ip
        self._next_line = 0

    def train(self, iterations: int = 4) -> None:
        """(Re)train the monitored entry with the configured stride.

        Three iterations are the minimum for the confidence to reach the
        prefetch threshold (§A.8); the default of four saturates it.
        """
        if iterations < 3:
            raise ValueError("need at least 3 training loads to reach the threshold")
        for _ in range(iterations):
            self._ensure_capacity()
            vaddr = self.buffer.line_addr(self._next_line)
            self.machine.warm_tlb(self.ctx, vaddr)
            self.machine.load(self.ctx, self.train_ip, vaddr)
            self._next_line += self.stride_lines

    def check(self) -> PSCObservation:
        """One PSC poll: continue the pattern by one load, time the target."""
        self._ensure_capacity()
        vaddr = self.buffer.line_addr(self._next_line)
        target = vaddr + self.stride_bytes
        self.machine.warm_tlb(self.ctx, vaddr)
        self.machine.warm_tlb(self.ctx, target)
        # The target must be uncached beforehand, or a stale line would
        # masquerade as a prefetch.
        self.machine.clflush(self.ctx, target)
        self.machine.load(self.ctx, self.train_ip, vaddr)
        self._next_line += self.stride_lines
        latency = self.machine.load(self.ctx, self.probe_ip, target, fenced=True)
        hit = classify_hit(latency, self.machine.hit_threshold())
        return PSCObservation(latency=latency, prefetcher_triggered=hit)

    def _ensure_capacity(self) -> None:
        """Keep the progression (including its prefetch target) inside one
        page; jump to the next page and retrain when it would cross.

        A physical page boundary breaks the stride (the next page's frame
        is unrelated, §4.3), so continuing blindly would read back as a
        false "victim executed".  The paper's attacker sizes its training
        region the same way.
        """
        line_in_page = self._next_line % LINES_PER_PAGE
        if line_in_page + 2 * self.stride_lines < LINES_PER_PAGE:
            return
        next_page = self._next_line // LINES_PER_PAGE + 1
        if (next_page + 1) * LINES_PER_PAGE * CACHE_LINE_SIZE > self.buffer.size:
            next_page = 0
        self._next_line = next_page * LINES_PER_PAGE
        for _ in range(3):
            vaddr = self.buffer.line_addr(self._next_line)
            self.machine.warm_tlb(self.ctx, vaddr)
            self.machine.load(self.ctx, self.train_ip, vaddr)
            self._next_line += self.stride_lines
