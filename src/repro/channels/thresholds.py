"""Latency classification.

The paper uses a single LLC-hit threshold: "an Access Time higher than 120
cycles means that the prefetcher has not been triggered to prefetch the
address into cache" (caption of Fig. 6).  All channels classify against the
machine's configured threshold so the noise model and the classifier stay
consistent.
"""

from __future__ import annotations


def classify_hit(latency: int, threshold: int) -> bool:
    """True when ``latency`` indicates the line was served by a cache level."""
    if latency <= 0:
        raise ValueError(f"latency must be positive, got {latency}")
    return latency < threshold
