"""Flush+Flush (Gruss et al., DIMVA 2016).

Instead of reloading, the attacker re-flushes: ``clflush`` of a cached line
takes longer than of an uncached one.  Included for completeness of the
cache-primitive family the paper surveys in §3.1; the AfterImage variants
use Flush+Reload / Prime+Probe / PSC.

The simulator models the clflush timing difference directly: flushing a
resident line costs the LLC round trip, flushing a non-resident one returns
early.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cpu.context import ThreadContext
from repro.cpu.machine import Machine
from repro.mmu.buffer import Buffer

#: clflush latency (cycles) when the line was resident vs. not.
FLUSH_HIT_CYCLES = 44
FLUSH_MISS_CYCLES = 30
#: Classification threshold between the two.
FLUSH_THRESHOLD = 37


@dataclass(frozen=True)
class FlushSample:
    line: int
    latency: int

    @property
    def was_cached(self) -> bool:
        return self.latency >= FLUSH_THRESHOLD


class FlushFlush:
    """Flush+Flush over one shared buffer."""

    def __init__(self, machine: Machine, ctx: ThreadContext, shared: Buffer) -> None:
        self.machine = machine
        self.ctx = ctx
        self.shared = shared

    def flush_timed(self, line: int) -> FlushSample:
        """Flush one line, returning the (noisy) flush latency."""
        vaddr = self.shared.line_addr(line)
        resident = self.machine.is_cached(self.ctx, vaddr)
        self.machine.clflush(self.ctx, vaddr)
        ideal = FLUSH_HIT_CYCLES if resident else FLUSH_MISS_CYCLES
        latency = self.machine.measured_latency(ideal)
        return FlushSample(line=line, latency=latency)

    def sweep(self) -> list[FlushSample]:
        """Timed flush of every line of the shared buffer."""
        return [self.flush_timed(line) for line in range(self.shared.n_lines)]
