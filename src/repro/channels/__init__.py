"""Secret-extraction channels.

Two families, mirroring the paper's §2.3 "Observe Secret" step:

* Classic cache primitives — :class:`FlushReload`, :class:`PrimeProbe`
  (with slice-aware eviction-set construction) and :class:`FlushFlush` —
  used by the AfterImage-Cache flow.
* :class:`PrefetcherStatusCheck` (PSC, §6.1) — the paper's novel,
  cache-primitive-independent extraction method used by AfterImage-PSC.
"""

from repro.channels.eviction_sets import EvictionSet, EvictionSetBuilder
from repro.channels.flush_flush import FlushFlush
from repro.channels.flush_reload import FlushReload, ReloadSample
from repro.channels.prime_probe import PrimeProbe, ProbeSample
from repro.channels.psc import PrefetcherStatusCheck, PSCObservation
from repro.channels.thresholds import classify_hit

__all__ = [
    "FlushReload",
    "ReloadSample",
    "PrimeProbe",
    "ProbeSample",
    "FlushFlush",
    "EvictionSet",
    "EvictionSetBuilder",
    "PrefetcherStatusCheck",
    "PSCObservation",
    "classify_hit",
]
