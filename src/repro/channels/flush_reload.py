"""Flush+Reload (Yarom & Falkner, USENIX Security 2014) on the simulator.

Requires memory shared between attacker and victim (``MAP_SHARED`` pages, a
shared library, or the kernel's view of user memory).  The attacker flushes
the shared lines, lets the victim run, then reloads each line and classifies
by latency: a fast reload means the victim (or the prefetcher it triggered)
touched the line.

Two details come straight from the paper's artifact appendix (§A.6):

* the reload sweep visits lines in a Fisher-Yates-shuffled order, so the
  reload loads themselves never exhibit a constant stride that would train
  the IP-stride prefetcher and contaminate the measurement;
* the reload instruction's IP must not alias the monitored prefetcher
  entries — the constructor rejects such placements.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.channels.thresholds import classify_hit
from repro.cpu.context import ThreadContext
from repro.cpu.machine import Machine
from repro.mmu.buffer import Buffer
from repro.params import LINES_PER_PAGE
from repro.utils.bits import low_bits
from repro.utils.rng import make_rng


@dataclass(frozen=True)
class ReloadSample:
    """Measured reload of one cache line."""

    line: int
    latency: int
    hit: bool


class FlushReload:
    """Flush+Reload over one shared buffer."""

    def __init__(
        self,
        machine: Machine,
        ctx: ThreadContext,
        shared: Buffer,
        reload_ip: int,
        avoid_ip_indexes: frozenset[int] | set[int] = frozenset(),
    ) -> None:
        if low_bits(reload_ip, machine.params.prefetcher.index_bits) in avoid_ip_indexes:
            raise ValueError(
                f"reload IP {reload_ip:#x} aliases a monitored prefetcher entry; "
                "move the reload loop (paper §A.6 uses mfence + shuffled order "
                "precisely to keep the measurement from perturbing the entry)"
            )
        self.machine = machine
        self.ctx = ctx
        self.shared = shared
        self.reload_ip = reload_ip
        self._rng = make_rng(int(machine.rng.integers(0, 2**63 - 1)))

    def flush(self, page: int | None = None) -> None:
        """clflush the shared lines (one page, or the whole buffer)."""
        lines = self._page_lines(page)
        for line in lines:
            self.machine.clflush(self.ctx, self.shared.line_addr(line))

    def reload(self, page: int | None = None) -> list[ReloadSample]:
        """Timed reload of the shared lines in shuffled order.

        Results are returned in ascending line order regardless of visit
        order (the visit order only exists to avoid training the prefetcher).
        """
        lines = self._page_lines(page)
        order = list(lines)
        self._rng.shuffle(order)
        threshold = self.machine.hit_threshold()
        samples = {}
        for line in order:
            latency = self.machine.load(
                self.ctx, self.reload_ip, self.shared.line_addr(line), fenced=True
            )
            samples[line] = ReloadSample(
                line=line, latency=latency, hit=classify_hit(latency, threshold)
            )
        return [samples[line] for line in lines]

    def hit_lines(self, page: int | None = None) -> list[int]:
        """Convenience: reload and return only the lines that hit."""
        return [sample.line for sample in self.reload(page) if sample.hit]

    def _page_lines(self, page: int | None) -> list[int]:
        if page is None:
            return list(range(self.shared.n_lines))
        first = page * LINES_PER_PAGE
        if not 0 <= page < self.shared.n_pages:
            raise IndexError(f"page {page} outside shared buffer")
        return list(range(first, first + LINES_PER_PAGE))
