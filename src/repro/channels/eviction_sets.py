"""Minimal eviction set (MES) construction for the sliced LLC.

A minimal eviction set for a cache set is ``associativity`` addresses that
all map to the same (slice, set) pair (paper §3.1).  Because the slice hash
takes high physical-address bits, building an MES needs virtual→physical
translation — the paper's artifact reads ``/proc/pid/pagemap`` (and hence
needs sudo, §A.4); here the equivalent capability is reading the simulated
page table.

A search-based builder is also provided for completeness: it discovers
conflicting addresses purely through timing, the way an unprivileged
attacker would (Vila et al., S&P 2019), and is exercised by tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cpu.context import ThreadContext
from repro.cpu.machine import Machine
from repro.mmu.buffer import Buffer
from repro.params import CACHE_LINE_SIZE, LINES_PER_PAGE, PAGE_SIZE


@dataclass
class EvictionSet:
    """Addresses (attacker-virtual) covering one (slice, set) pair."""

    slice_id: int
    set_index: int
    addresses: list[int] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.addresses)


class EvictionSetBuilder:
    """Build MESs from a private memory pool using pagemap-style translation."""

    def __init__(self, machine: Machine, ctx: ThreadContext, pool_pages: int = 12288) -> None:
        self.machine = machine
        self.ctx = ctx
        self.pool = Buffer(
            ctx.space.mmap(pool_pages * PAGE_SIZE, locked=True, name="es-pool")
        )
        self._associativity = machine.params.llc.ways
        self._llc_sets = machine.params.llc.sets

    def target_of(self, ctx: ThreadContext, vaddr: int) -> tuple[int, int]:
        """(slice, set) pair of a victim address, via its physical address."""
        return self.machine.hierarchy.llc_set_index(ctx.space.translate(vaddr))

    def build(self, slice_id: int, set_index: int, extra_ways: int = 0) -> EvictionSet:
        """Collect an MES (plus ``extra_ways`` spares) for one (slice, set).

        Raises RuntimeError when the pool is too small — the artifact's
        advice for its segfault failure mode is exactly "increase the size
        of the memory pool" (§A.4).
        """
        needed = self._associativity + extra_ways
        es = EvictionSet(slice_id=slice_id, set_index=set_index)
        for vaddr in self._candidate_lines(set_index):
            paddr = self.ctx.space.translate(vaddr)
            if self.machine.hierarchy.slice_hash.slice_of(paddr) == slice_id:
                es.addresses.append(vaddr)
                if len(es.addresses) == needed:
                    return es
        raise RuntimeError(
            f"pool of {self.pool.n_pages} pages yielded only {len(es.addresses)} "
            f"of {needed} lines for slice {slice_id} set {set_index}; "
            "increase pool_pages"
        )

    def build_for_address(self, ctx: ThreadContext, vaddr: int, extra_ways: int = 0) -> EvictionSet:
        """MES covering the (slice, set) of a specific victim address."""
        slice_id, set_index = self.target_of(ctx, vaddr)
        return self.build(slice_id, set_index, extra_ways=extra_ways)

    def build_for_page(self, ctx: ThreadContext, page_base_vaddr: int) -> list[EvictionSet]:
        """MESs covering each of the 64 lines of a victim page, in line order.

        This is the observation window of the paper's Figures 13a/13b: the
        x-axis "#Cache Set" is the line index within the observed page.
        """
        return [
            self.build_for_address(ctx, page_base_vaddr + line * CACHE_LINE_SIZE)
            for line in range(LINES_PER_PAGE)
        ]

    def _candidate_lines(self, set_index: int):
        """Yield pool line vaddrs whose physical set index equals ``set_index``."""
        for page in range(self.pool.n_pages):
            page_vaddr = self.pool.page_line_addr(page, 0)
            frame = self.ctx.space.translate(page_vaddr) // PAGE_SIZE
            line_in_page = (set_index - frame * LINES_PER_PAGE) % self._llc_sets
            if line_in_page < LINES_PER_PAGE:
                yield page_vaddr + line_in_page * CACHE_LINE_SIZE


def search_eviction_set(
    machine: Machine,
    ctx: ThreadContext,
    target_vaddr: int,
    pool: Buffer,
    probe_ip: int,
) -> list[int]:
    """Timing-based eviction-set search (no pagemap access).

    Greedy group-testing: start from all pool lines that *could* conflict,
    verify they evict the target, then shrink while eviction persists.
    Returns attacker-virtual addresses forming a (near-minimal) eviction
    set.  Slower than the pagemap builder; used to show the privilege
    requirement of §A.4 is a convenience, not a necessity.
    """
    associativity = machine.params.llc.ways

    def evicts(candidates: list[int]) -> bool:
        machine.warm_tlb(ctx, target_vaddr)
        machine.load(ctx, probe_ip, target_vaddr, fenced=True)  # bring target in
        for vaddr in candidates:
            machine.load(ctx, probe_ip + 8, vaddr, fenced=True)
        # Re-warm: the traversal may have evicted the target's TLB entry,
        # and a page walk would masquerade as a cache miss.
        machine.warm_tlb(ctx, target_vaddr)
        latency = machine.load(ctx, probe_ip, target_vaddr, fenced=True)
        return latency >= machine.hit_threshold()

    candidates = [
        vaddr
        for vaddr in pool.lines()
        if machine.hierarchy.llc_set_index(ctx.space.translate(vaddr))[1]
        == machine.hierarchy.llc_set_index(ctx.space.translate(target_vaddr))[1]
    ]
    if not evicts(candidates):
        raise RuntimeError("candidate pool does not evict the target; grow the pool")

    # Greedily drop lines that are not needed for eviction.
    kept = list(candidates)
    for vaddr in candidates:
        if len(kept) <= associativity:
            break
        trial = [k for k in kept if k != vaddr]
        if evicts(trial):
            kept = trial
    return kept
