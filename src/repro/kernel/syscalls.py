"""Syscall dispatch and the paper's customized vulnerable kernel function.

The kernel runs in its own (KASLR-slid, global-page) address space on the
same logical core, so it shares the caches and the prefetcher with user
code.  Each syscall models:

* the privilege-domain switch in both directions (context-switch cost,
  TLB treatment, switch-path memory noise),
* data-dependent kernel loads on the entry/exit path
  (``NoiseParams.kernel_variable_ips``) — these occasionally alias a
  trained prefetcher entry, which is the main reason Variant 2's success
  rate (91 %) trails the user-space variants (§7.2).

``VulnerableSyscall`` is the paper's Listing 7: a secret determines an
``if`` whose body loads from memory shared with the caller.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

from repro.cpu.context import ThreadContext
from repro.cpu.machine import Machine
from repro.mmu.buffer import Buffer
from repro.params import PAGE_SIZE

#: Default virtual base of the kernel text image (before KASLR slide).
KERNEL_TEXT_BASE = 0xFFFF_8000_0100_0000

#: Cycle cost of the syscall instruction + entry/exit assembly.
SYSCALL_OVERHEAD_CYCLES = 700


@dataclass
class SyscallRecord:
    """Bookkeeping for one executed syscall (used by tests and benches)."""

    number: int
    caller: str
    cycles_before: int
    cycles_after: int = 0


class Kernel:
    """The kernel: a privileged context plus a syscall table."""

    def __init__(self, machine: Machine) -> None:
        self.machine = machine
        self.ctx = machine.kernel_context("kernel")
        self.text = machine.code_region(KERNEL_TEXT_BASE, name="kernel-text", kernel=True)
        self._table: dict[int, Callable[..., object]] = {}
        self._next_number = 333  # the artifact's "available system call number"
        self._entry_path = machine.new_buffer(
            machine.kernel_space, 16 * PAGE_SIZE, locked=True, name="kernel-entry-data"
        )
        self.records: list[SyscallRecord] = []

    def register(self, handler: Callable[..., object], number: int | None = None) -> int:
        """Install ``handler`` in the syscall table; returns its number."""
        if number is None:
            number = self._next_number
            self._next_number += 1
        if number in self._table:
            raise ValueError(f"syscall number {number} already registered")
        self._table[number] = handler
        return number

    def syscall(self, user_ctx: ThreadContext, number: int, *args: object) -> object:
        """Invoke syscall ``number`` from ``user_ctx``.

        Performs the full domain round trip: user → kernel, handler, kernel
        → user, charging switch costs and injecting entry/exit noise.
        """
        if number not in self._table:
            raise KeyError(f"ENOSYS: no syscall {number}")
        record = SyscallRecord(
            number=number, caller=user_ctx.name, cycles_before=self.machine.cycles
        )
        self.machine.advance(SYSCALL_OVERHEAD_CYCLES)
        self.machine.context_switch(self.ctx)
        # The entry path (argument validation) is short; the heavier
        # data-dependent work (fd bookkeeping, accounting, audit) runs on
        # the way out.  The split matters: only pre-handler loads can evict
        # a trained entry before the victim load runs.
        variable = self.machine.params.noise.kernel_variable_ips
        self._run_kernel_path(variable // 2)
        try:
            result = self._table[number](*args)
        finally:
            self._run_kernel_path(variable - variable // 2)
            self.machine.context_switch(user_ctx)
            self.machine.advance(SYSCALL_OVERHEAD_CYCLES)
            record.cycles_after = self.machine.cycles
            self.records.append(record)
        return result

    def _run_kernel_path(self, n_loads: int) -> None:
        """Kernel loads on the syscall entry/exit path.

        Which helper paths run (permission checks, fd lookups, accounting)
        depends on the call's arguments and system state, so these loads hit
        effectively variable IPs — each one a 1/256 chance of clobbering a
        trained entry.  This is the main reason Variant 2's success rate
        trails the pure-user variants (paper §7.2: 91 % vs 97–99 %).
        """
        if n_loads == 0:
            return
        rng = self.machine.rng
        for _ in range(n_loads):
            ip = self.text.base + int(rng.integers(0, 1 << 20))
            line = int(rng.integers(0, self._entry_path.n_lines))
            vaddr = self._entry_path.line_addr(line)
            self.machine.warm_tlb(self.ctx, vaddr)
            self.machine.load(self.ctx, ip, vaddr)


class VulnerableSyscall:
    """The paper's Listing 7 kernel function.

    ``int vulnerable_syscall(void* memory_space)``: an in-kernel secret
    decides an ``if``; the taken path loads from ``memory_space``, which is
    shared with the user (the kernel can always reach user pages, cf.
    ``copy_from_user``).  The branch-guarded load sits at a fixed kernel IP
    — the prefetcher-entry alias target for Variant 2.
    """

    def __init__(
        self,
        kernel: Kernel,
        secret_source: Callable[[], int],
        load_offset: int = 0x4B0,
    ) -> None:
        self.kernel = kernel
        self.machine = kernel.machine
        self.secret_source = secret_source
        self.load_ip = kernel.text.place("vulnerable_syscall_if_load", load_offset)
        self.number = kernel.register(self._handler)
        self._shared_views: dict[int, Buffer] = {}
        self.executions: list[bool] = []

    def share_user_buffer(self, user_buffer: Buffer) -> None:
        """Map the caller-provided memory_space into the kernel's view."""
        view = self.machine.share_buffer(
            user_buffer, self.machine.kernel_space, name="memory_space"
        )
        self._shared_views[id(user_buffer)] = view
        # Kernel mappings of user memory are in steady use; keep them warm.
        self.machine.warm_buffer_tlb(self.kernel.ctx, view)

    def invoke(self, user_ctx: ThreadContext, user_buffer: Buffer, address_line: int) -> int:
        """Call the syscall from user space with a memory_space pointer."""
        if id(user_buffer) not in self._shared_views:
            self.share_user_buffer(user_buffer)
        return int(
            self.kernel.syscall(user_ctx, self.number, user_buffer, address_line)
        )

    def _handler(self, user_buffer: Buffer, address_line: int) -> int:
        view = self._shared_views[id(user_buffer)]
        num = self.secret_source()
        taken = bool(num)
        self.executions.append(taken)
        if taken:
            vaddr = view.line_addr(address_line)
            self.machine.warm_tlb(self.kernel.ctx, vaddr)
            self.machine.load(self.kernel.ctx, self.load_ip, vaddr)
        return 0
