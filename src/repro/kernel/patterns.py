"""Real-world vulnerable kernel code patterns from the paper's Figures 1–2.

Both are switches whose controlling value derives from user data, with a
load (a statistics-counter or property-field access) at a distinct IP in
each case arm — exactly the branch-dependent-load shape AfterImage leaks.
They serve as richer victims for examples and integration tests: leaking
*which arm ran* reveals the user's packet type / queried battery property.
"""

from __future__ import annotations

from repro.cpu.context import ThreadContext
from repro.kernel.syscalls import Kernel
from repro.params import PAGE_SIZE


class BluetoothTxSyscall:
    """Figure 1: ``hci_send_frame``-style switch over the HCI packet type.

    Each case increments a different ``hdev->stat`` counter, i.e. performs a
    load/store at a case-specific IP and offset.
    """

    PACKET_TYPES = ("HCI_COMMAND_PKT", "HCI_ACLDATA_PKT", "HCI_SCODATA_PKT")

    def __init__(self, kernel: Kernel, text_offset: int = 0x2470) -> None:
        self.kernel = kernel
        self.machine = kernel.machine
        # hdev->stat lives in one kernel cache line per counter.
        self._stats = self.machine.new_buffer(
            self.machine.kernel_space, PAGE_SIZE, locked=True, name="hdev-stat"
        )
        self.case_ips = {
            pkt: kernel.text.place(f"bt_stat_{pkt}", text_offset + 0x40 * i)
            for i, pkt in enumerate(self.PACKET_TYPES)
        }
        self.counters = {pkt: 0 for pkt in self.PACKET_TYPES}
        self.number = kernel.register(self._handler)

    def send_frame(self, user_ctx: ThreadContext, packet_type: str) -> None:
        """User sends one HCI frame; the kernel updates the matching stat."""
        if packet_type not in self.case_ips:
            raise ValueError(f"unknown packet type {packet_type!r}")
        self.kernel.syscall(user_ctx, self.number, packet_type)

    def _handler(self, packet_type: str) -> int:
        slot = self.PACKET_TYPES.index(packet_type)
        vaddr = self._stats.line_addr(slot)
        self.machine.warm_tlb(self.kernel.ctx, vaddr)
        self.machine.load(self.kernel.ctx, self.case_ips[packet_type], vaddr)
        self.counters[packet_type] += 1
        return 0


class BatteryPropertySyscall:
    """Figure 2: power-supply property getter switch.

    ``switch (prop)`` with four arms (``ONLINE``, ``CAPACITY``,
    ``MODEL_NAME``, ``SCOPE``), each filling a different field of ``val``
    through a load at its own IP.
    """

    PROPERTIES = ("PROP_ONLINE", "PROP_CAPACITY", "PROP_MODEL_NAME", "PROP_SCOPE")

    def __init__(self, kernel: Kernel, text_offset: int = 0x5310) -> None:
        self.kernel = kernel
        self.machine = kernel.machine
        self._val = self.machine.new_buffer(
            self.machine.kernel_space, PAGE_SIZE, locked=True, name="psy-val"
        )
        self.case_ips = {
            prop: kernel.text.place(f"battery_{prop}", text_offset + 0x40 * i)
            for i, prop in enumerate(self.PROPERTIES)
        }
        self.number = kernel.register(self._handler)
        self.queries: list[str] = []

    def get_property(self, user_ctx: ThreadContext, prop: str) -> None:
        """User queries one battery property."""
        if prop not in self.case_ips:
            raise ValueError(f"unknown property {prop!r}")
        self.kernel.syscall(user_ctx, self.number, prop)

    def _handler(self, prop: str) -> int:
        slot = self.PROPERTIES.index(prop)
        vaddr = self._val.line_addr(slot)
        self.machine.warm_tlb(self.kernel.ctx, vaddr)
        self.machine.load(self.kernel.ctx, self.case_ips[prop], vaddr)
        self.queries.append(prop)
        return 0
