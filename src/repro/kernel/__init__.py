"""Kernel substrate: syscall dispatch, privilege switching, victim patterns.

Variant 2 of AfterImage (paper §5.2) crosses the user-kernel boundary: the
IP-stride prefetcher's entries survive privilege-mode switches, so a
syscall's branch-dependent load triggers an entry trained in user space.
"""

from repro.kernel.patterns import BatteryPropertySyscall, BluetoothTxSyscall
from repro.kernel.syscalls import Kernel, SyscallRecord, VulnerableSyscall

__all__ = [
    "Kernel",
    "SyscallRecord",
    "VulnerableSyscall",
    "BluetoothTxSyscall",
    "BatteryPropertySyscall",
]
