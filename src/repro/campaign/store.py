"""The on-disk trial store: content-addressed, sharded JSONL, atomic.

Layout::

    <root>/
      store.json              # format marker + schema version
      shards/
        0f.jsonl              # records whose cell key starts with "0f"
        a3.jsonl
        ...

Each record is one line: ``{"schema": 1, "key": <sha256>,
"batch": <TrialBatch.as_dict()>}``.  Keys come from
:attr:`repro.campaign.spec.CampaignCell.key` — the content hash of
everything that determines the result — so *lookup is the cache policy*:
a hit means the exact computation already ran, anywhere, under any
campaign name.

Durability discipline:

* **Atomic replace.**  A shard is never appended in place; writes rewrite
  the shard to a tmp file in the same directory and ``os.replace`` it, so
  a killed writer leaves either the old shard or the new one, never a
  half-written line.  The store is single-writer by design (the campaign
  runner persists from the parent process only; workers return batches).
* **Corruption tolerance.**  A truncated or garbled line — the classic
  power-loss artifact append-mode JSONL suffers — is counted, skipped,
  and dropped on the next rewrite of its shard.  The affected cell simply
  reads as a miss and is re-executed; nothing crashes
  (``tests/test_campaign_store.py`` locks this in).
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Iterator

from repro.attacks.trial import TrialBatch
from repro.campaign.spec import SCHEMA_VERSION

#: Leading hex digits of the key that select a shard (256 shards).
SHARD_CHARS = 2


class TrialStore:
    """Content-addressed persistence for :class:`TrialBatch` cells."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.shards_dir = self.root / "shards"
        self.shards_dir.mkdir(parents=True, exist_ok=True)
        self._marker()
        #: Lines skipped as unreadable since this handle was opened.
        self.corrupt_lines = 0
        self._cache: dict[str, dict[str, dict[str, Any]]] = {}
        #: Shard file signature at load time, for :meth:`refresh`.
        self._signatures: dict[str, tuple[int, int] | None] = {}

    def _marker(self) -> None:
        marker = self.root / "store.json"
        if not marker.exists():
            _atomic_write(
                marker,
                json.dumps({"format": "repro.campaign.TrialStore", "schema": SCHEMA_VERSION})
                + "\n",
            )

    # ----------------------------------------------------------------- #
    # Shard plumbing                                                     #
    # ----------------------------------------------------------------- #

    def _shard_name(self, key: str) -> str:
        return key[:SHARD_CHARS]

    def _shard_path(self, shard: str) -> Path:
        return self.shards_dir / f"{shard}.jsonl"

    @staticmethod
    def _file_signature(path: Path) -> tuple[int, int] | None:
        """(mtime_ns, size) of a shard file, or None when absent."""
        try:
            stat = path.stat()
        except OSError:
            return None
        return (stat.st_mtime_ns, stat.st_size)

    def _load_shard(self, shard: str) -> dict[str, dict[str, Any]]:
        """Parse one shard into ``key -> record``, skipping bad lines."""
        if shard in self._cache:
            return self._cache[shard]
        records: dict[str, dict[str, Any]] = {}
        path = self._shard_path(shard)
        self._signatures[shard] = self._file_signature(path)
        if path.exists():
            for line in path.read_text().splitlines():
                if not line.strip():
                    continue
                try:
                    record = json.loads(line)
                    if record.get("schema") != SCHEMA_VERSION:
                        raise ValueError(f"schema {record.get('schema')}")
                    key = record["key"]
                    if "batch" not in record:
                        raise KeyError("batch")
                except (ValueError, KeyError, TypeError):
                    self.corrupt_lines += 1
                    continue
                records[key] = record
        self._cache[shard] = records
        return records

    def _write_shard(self, shard: str, records: dict[str, dict[str, Any]]) -> None:
        lines = "".join(
            json.dumps(records[key], sort_keys=True) + "\n" for key in sorted(records)
        )
        path = self._shard_path(shard)
        _atomic_write(path, lines)
        self._cache[shard] = records
        self._signatures[shard] = self._file_signature(path)

    # ----------------------------------------------------------------- #
    # Public API                                                         #
    # ----------------------------------------------------------------- #

    def get(self, key: str) -> TrialBatch | None:
        """The stored batch for ``key``, or None (miss *or* bad record)."""
        record = self._load_shard(self._shard_name(key)).get(key)
        if record is None:
            return None
        try:
            return TrialBatch.from_dict(record["batch"])
        except (ValueError, KeyError, TypeError):
            # A record that parsed as JSON but fails batch validation is
            # as good as absent: report a miss so the cell re-runs.
            self.corrupt_lines += 1
            return None

    def put(self, key: str, batch: TrialBatch) -> None:
        """Store ``batch`` under ``key`` (idempotent; last write wins)."""
        shard = self._shard_name(key)
        records = dict(self._load_shard(shard))
        records[key] = {
            "schema": SCHEMA_VERSION,
            "key": key,
            "batch": batch.as_dict(),
        }
        self._write_shard(shard, records)

    def __contains__(self, key: str) -> bool:
        return key in self._load_shard(self._shard_name(key))

    def keys(self) -> Iterator[str]:
        for path in sorted(self.shards_dir.glob(f"{'[0-9a-f]' * SHARD_CHARS}.jsonl")):
            yield from sorted(self._load_shard(path.stem))

    def __len__(self) -> int:
        return sum(1 for _key in self.keys())

    def records(self) -> Iterator[tuple[str, dict[str, Any]]]:
        """Every valid raw record as ``(key, record)``, shard/key sorted.

        The record is the full stored line — ``{"schema", "key", "batch"}``
        — unparsed past JSON, which is what the fleet merge needs: records
        union and compare by canonical bytes without round-tripping every
        batch through :class:`TrialBatch`.
        """
        for path in sorted(self.shards_dir.glob(f"{'[0-9a-f]' * SHARD_CHARS}.jsonl")):
            shard = self._load_shard(path.stem)
            for key in sorted(shard):
                yield key, shard[key]

    def write_records(self, records: dict[str, dict[str, Any]]) -> None:
        """Bulk-union raw records into the store, one write per shard.

        The fleet-merge write path: grouping by shard first keeps the cost
        at one atomic rewrite per touched shard instead of one per record.
        Records must carry the current schema and a key matching their
        mapping slot (a corrupted source must not propagate).
        """
        by_shard: dict[str, dict[str, dict[str, Any]]] = {}
        for key, record in records.items():
            if record.get("schema") != SCHEMA_VERSION or record.get("key") != key:
                raise ValueError(
                    f"refusing to write malformed record for key {key[:12]}…: "
                    f"schema={record.get('schema')!r} key={str(record.get('key'))[:12]}…"
                )
            by_shard.setdefault(self._shard_name(key), {})[key] = record
        for shard, fresh in by_shard.items():
            merged = dict(self._load_shard(shard))
            merged.update(fresh)
            self._write_shard(shard, merged)

    def refresh(self) -> int:
        """Drop cached shards whose backing file changed; returns the count.

        Long-lived readers (the fleet serving layer) call this per request:
        one ``stat`` per cached shard notices a concurrent fill or merge —
        each an atomic whole-file replace — and invalidates exactly the
        shards that moved, so a daemon never serves a stale cell without
        ever re-reading unchanged files.
        """
        stale = [
            shard
            for shard in self._cache
            if self._file_signature(self._shard_path(shard))
            != self._signatures.get(shard)
        ]
        for shard in stale:
            del self._cache[shard]
            self._signatures.pop(shard, None)
        return len(stale)


def _atomic_write(path: Path, text: str) -> None:
    """Write-to-tmp-then-rename in ``path``'s own directory."""
    tmp = path.with_name(f".{path.name}.tmp.{os.getpid()}")
    tmp.write_text(text)
    os.replace(tmp, path)
