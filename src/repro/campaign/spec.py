"""Declarative campaign specs and content-addressed cell identity.

A campaign is the paper's evaluation style written down once: a set of
experiments (registry attacks plus the ``table1`` reverse-engineering
sweep) crossed with machine presets, a defense/noise axis, and a repeat
count.  :meth:`CampaignSpec.cells` expands that cross product into
concrete :class:`CampaignCell`\\ s, each carrying

* the fully resolved :class:`~repro.params.MachineParams` (preset with the
  axis's noise overrides applied),
* a derived seed, mixed with :func:`~repro.utils.rng.stable_seed` from the
  cell coordinates so dispatch order and worker scheduling cannot change
  any stream, and
* a **content hash** (:attr:`CampaignCell.key`): SHA-256 over the fields
  that determine the cell's result — experiment name, rounds, options,
  defense, the machine-params fingerprint, and the derived seed.

The key deliberately excludes the campaign name and the axis *label*:
two campaigns asking for the same computation share one store entry, and
renaming an axis does not invalidate the cache.  (The axis's *content*
does feed the seed derivation, so distinct defense/noise points get
independent streams.)

Specs load from TOML (Python 3.11+) or JSON files, or from plain dicts::

    name = "my-sweep"
    attacks = ["variant1", "covert"]
    machines = ["i7-9700"]
    repeats = 2
    rounds = 10

    [[axes]]
    name = "baseline"

    [[axes]]
    name = "flushed"
    defense = "flush-on-switch"

    [[axes]]
    name = "noisy"
    noise = { switch_variable_ips = 4 }

    [options.covert]
    entries = 4
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.params import MachineParams, NoiseParams, preset
from repro.utils.rng import stable_seed

#: Bump when the cell-key recipe changes: every key embeds it, so old
#: store entries simply stop matching instead of being misread.
SCHEMA_VERSION = 1

#: The defense names a cell axis may request (applied in
#: :mod:`repro.campaign.experiments`).
DEFENSE_NAMES = ("none", "flush-on-switch", "tagged", "disabled")

_NOISE_FIELDS = frozenset(f.name for f in dataclasses.fields(NoiseParams))


def canonical_json(data: Any) -> str:
    """Deterministic JSON: sorted keys, no whitespace drift."""
    return json.dumps(data, sort_keys=True, separators=(",", ":"))


def params_fingerprint(params: MachineParams) -> str:
    """Alias for :meth:`repro.params.MachineParams.fingerprint`.

    Any model-parameter change — a latency, a prefetcher knob, a noise
    level — changes the fingerprint and therefore every cell key built on
    it: stale results can never be served for a reconfigured machine.
    """
    return params.fingerprint()


@dataclass(frozen=True)
class AxisPoint:
    """One point on the defense/noise axis.

    ``noise`` holds :class:`~repro.params.NoiseParams` field overrides as a
    sorted tuple of pairs so the dataclass stays frozen and comparable.
    """

    name: str
    defense: str = "none"
    noise: tuple[tuple[str, float], ...] = ()

    def __post_init__(self) -> None:
        if self.defense not in DEFENSE_NAMES:
            raise ValueError(
                f"axis {self.name!r}: unknown defense {self.defense!r}; "
                f"known: {', '.join(DEFENSE_NAMES)}"
            )
        unknown = [key for key, _value in self.noise if key not in _NOISE_FIELDS]
        if unknown:
            raise ValueError(
                f"axis {self.name!r}: unknown noise field(s) {', '.join(unknown)}; "
                f"known: {', '.join(sorted(_NOISE_FIELDS))}"
            )
        object.__setattr__(self, "noise", tuple(sorted(self.noise)))

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "AxisPoint":
        noise = data.get("noise") or {}
        return cls(
            name=str(data["name"]),
            defense=str(data.get("defense", "none")),
            noise=tuple(sorted((str(k), v) for k, v in noise.items())),
        )

    def as_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "defense": self.defense,
            "noise": dict(self.noise),
        }

    def content_label(self) -> str:
        """A label derived from the axis *content*, not its display name.

        Feeds seed derivation, so renaming an axis keeps every stream (and
        hence every cell key) unchanged.
        """
        return canonical_json({"defense": self.defense, "noise": dict(self.noise)})

    def apply_noise(self, params: MachineParams) -> MachineParams:
        if not self.noise:
            return params
        return params.with_noise(**dict(self.noise))


def cell_seed(
    base_seed: int, experiment: str, machine: str, axis: AxisPoint, repeat: int
) -> int:
    """Derive one cell's seed from its coordinates, dispatch-order free.

    Same mixing discipline as :func:`repro.attacks.executor.task_seed`,
    with the axis content as an extra coordinate so each defense/noise
    point draws an independent stream.
    """
    label = f"{experiment}:{machine}:{axis.content_label()}:{repeat}"
    return (base_seed * 1_000_003 + stable_seed(label)) % 2**32


@dataclass(frozen=True)
class CampaignCell:
    """One fully resolved point of the campaign matrix."""

    experiment: str
    machine: str
    axis: AxisPoint
    repeat: int
    seed: int
    rounds: int | None
    options: tuple[tuple[str, Any], ...]
    params: MachineParams

    @property
    def key(self) -> str:
        """The content hash under which this cell's batch is stored."""
        material = canonical_json(
            {
                "schema": SCHEMA_VERSION,
                "experiment": self.experiment,
                "rounds": self.rounds,
                "options": dict(self.options),
                "defense": self.axis.defense,
                "machine": params_fingerprint(self.params),
                "seed": self.seed,
            }
        )
        return hashlib.sha256(material.encode()).hexdigest()

    @property
    def label(self) -> str:
        """Human-facing coordinates, e.g. ``variant1/i7-9700/flushed#0``."""
        return f"{self.experiment}/{self.machine}/{self.axis.name}#{self.repeat}"

    def options_dict(self) -> dict[str, Any]:
        return dict(self.options)

    def provenance(self) -> dict[str, Any]:
        """Content-only cell coordinates, recorded on the batch's notes."""
        return {
            "key": self.key,
            "defense": self.axis.defense,
            "noise": dict(self.axis.noise),
            "repeat": self.repeat,
        }


@dataclass(frozen=True)
class CampaignSpec:
    """The declarative campaign: what to run, crossed how many ways."""

    name: str
    attacks: tuple[str, ...]
    machines: tuple[str, ...] = ("i7-9700",)
    axes: tuple[AxisPoint, ...] = (AxisPoint(name="baseline"),)
    repeats: int = 1
    rounds: int | None = None
    base_seed: int = 2023
    options: dict[str, dict[str, Any]] = field(default_factory=dict)
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("campaign name must be non-empty")
        if not self.attacks:
            raise ValueError(f"campaign {self.name!r}: no attacks listed")
        if not self.axes:
            raise ValueError(f"campaign {self.name!r}: no axis points listed")
        if self.repeats <= 0:
            raise ValueError(
                f"campaign {self.name!r}: repeats must be positive, got {self.repeats}"
            )
        if self.rounds is not None and self.rounds <= 0:
            raise ValueError(
                f"campaign {self.name!r}: rounds must be positive, got {self.rounds}"
            )
        axis_names = [axis.name for axis in self.axes]
        if len(set(axis_names)) != len(axis_names):
            raise ValueError(f"campaign {self.name!r}: duplicate axis names")
        for machine in self.machines:
            preset(machine)  # raises KeyError on unknown presets

    @property
    def n_cells(self) -> int:
        return len(self.attacks) * len(self.machines) * len(self.axes) * self.repeats

    def cells(self) -> list[CampaignCell]:
        """Expand the cross product into seeded, content-addressed cells."""
        cells: list[CampaignCell] = []
        for machine_name in self.machines:
            base_params = preset(machine_name)
            for axis in self.axes:
                params = axis.apply_noise(base_params)
                for attack in self.attacks:
                    options = tuple(sorted(self.options.get(attack, {}).items()))
                    for repeat in range(self.repeats):
                        cells.append(
                            CampaignCell(
                                experiment=attack,
                                machine=base_params.name,
                                axis=axis,
                                repeat=repeat,
                                seed=cell_seed(
                                    self.base_seed,
                                    attack,
                                    base_params.name,
                                    axis,
                                    repeat,
                                ),
                                rounds=self.rounds,
                                options=options,
                                params=params,
                            )
                        )
        return cells

    def as_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "description": self.description,
            "attacks": list(self.attacks),
            "machines": list(self.machines),
            "axes": [axis.as_dict() for axis in self.axes],
            "repeats": self.repeats,
            "rounds": self.rounds,
            "base_seed": self.base_seed,
            "options": {k: dict(v) for k, v in self.options.items()},
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "CampaignSpec":
        axes = tuple(
            AxisPoint.from_dict(axis) for axis in data.get("axes", [])
        ) or (AxisPoint(name="baseline"),)
        rounds = data.get("rounds")
        return cls(
            name=str(data["name"]),
            attacks=tuple(str(a) for a in data.get("attacks", [])),
            machines=tuple(str(m) for m in data.get("machines", ["i7-9700"])),
            axes=axes,
            repeats=int(data.get("repeats", 1)),
            rounds=None if rounds is None else int(rounds),
            base_seed=int(data.get("base_seed", 2023)),
            options={
                str(k): dict(v) for k, v in (data.get("options") or {}).items()
            },
            description=str(data.get("description", "")),
        )


def load_spec(path: str | Path) -> CampaignSpec:
    """Load a spec from a ``.toml`` or ``.json`` file."""
    path = Path(path)
    text = path.read_text()
    if path.suffix == ".toml":
        try:
            import tomllib
        except ImportError as exc:  # Python < 3.11
            raise RuntimeError(
                "TOML campaign specs need Python 3.11+ (tomllib); "
                "use a .json spec on this interpreter"
            ) from exc
        data = tomllib.loads(text)
    elif path.suffix == ".json":
        data = json.loads(text)
    else:
        raise ValueError(
            f"unknown campaign spec format {path.suffix!r} (expected .toml or .json)"
        )
    return CampaignSpec.from_dict(data)
