"""Rendering: campaign results as text tables and report markdown.

The markdown side deliberately reuses :class:`repro.analysis.report`'s
row schema and formatter, so a campaign section drops straight into the
``afterimage report`` document via ``generate_report(...,
extra_sections=...)`` — the campaign grids feed the same artifact the
headline experiments do.
"""

from __future__ import annotations

from repro.campaign.runner import CampaignResult, CampaignStatus


def _text_table(rows: list[tuple], header: tuple[str, ...]) -> str:
    widths = [
        max(len(str(header[i])), max((len(str(r[i])) for r in rows), default=0))
        for i in range(len(header))
    ]
    lines = ["  ".join(str(h).ljust(w) for h, w in zip(header, widths))]
    lines += ["  ".join(str(v).ljust(w) for v, w in zip(row, widths)) for row in rows]
    return "\n".join(lines)


def render_status(status: CampaignStatus) -> str:
    """`afterimage campaign status` text output."""
    scope = f" [shard {status.shard}]" if status.shard else ""
    lines = [
        f"campaign {status.spec.name}{scope}: {len(status.cached)}/{status.total} "
        f"cells cached, {len(status.pending)} pending"
    ]
    if status.corrupt_lines:
        lines.append(
            f"store: {status.corrupt_lines} corrupt line(s) skipped — the "
            "affected cells read as pending and will re-execute"
        )
    if status.pending:
        lines.append("pending:")
        lines.extend(f"  {cell.label}" for cell in status.pending)
    else:
        lines.append("all cells cached — a run would execute nothing")
    return "\n".join(lines)


def render_result(result: CampaignResult) -> str:
    """`afterimage campaign run` text output: one row per merged group."""
    rows = []
    for label, batch in result.merged().items():
        rows.append(
            (
                label,
                f"{batch.quality:.3f}",
                batch.n_trials,
                batch.detail,
            )
        )
    table = _text_table(rows, ("cell group", "quality", "trials", "detail"))
    scope = f" [shard {result.shard}]" if result.shard else ""
    summary = (
        f"{len(result.outcomes)} cells{scope}: {result.cached_count} cached, "
        f"{result.executed_count} executed, {len(result.failed)} failed "
        f"(jobs={result.jobs}, wall {result.wall_seconds:.2f}s)"
    )
    lines = [table, summary]
    for outcome in result.failed:
        lines.append(f"FAILED {outcome.cell.label}: {outcome.error_summary}")
    if result.telemetry is not None:
        lines += ["", "where the time went:", result.telemetry.render_text()]
    return "\n".join(lines)


def render_time_went(result: CampaignResult) -> list[str]:
    """The "where the time went" markdown block (empty without telemetry)."""
    timeline = result.telemetry
    if timeline is None:
        return []
    attribution = timeline.attribution()
    lines = [
        "",
        "### Where the time went",
        "",
        f"{len(timeline.records)} dispatches over jobs={timeline.jobs}, wall "
        f"{timeline.wall_seconds:.2f}s, worker utilization "
        f"{timeline.utilization() * 100:.0f}%, attribution coverage "
        f"{attribution['coverage'] * 100:.1f}%.",
        "",
        "| bucket | seconds | share |",
        "| --- | ---: | ---: |",
    ]
    for name, entry in attribution["buckets"].items():
        lines.append(
            f"| {name} | {entry['seconds']:.3f} | {entry['share'] * 100:.1f}% |"
        )
    totals = timeline.totals()
    lines += [
        "",
        f"Payloads: {totals['request_bytes'] / 1024:.1f} KiB dispatched, "
        f"{totals['result_bytes'] / 1024:.1f} KiB returned; dominant overhead "
        f"bucket (non-compute): `{timeline.dominant_overhead()}`.",
    ]
    return lines


def _expectation(cell, batch) -> tuple[str, bool]:
    """(expected-behaviour string, in-band verdict) for one merged group.

    Defended cells are expected to *suppress* the attack; undefended ones
    are informational (their quality is the measurement itself), except
    ``table1`` whose ground truth is the paper's table.
    """
    if cell.experiment == "table1":
        return "all rows match Table 1", batch.successes == batch.n_trials
    if cell.axis.defense != "none":
        return "defense closes the channel", batch.quality <= 0.65
    return "attack lands (informational)", True


def render_markdown(result: CampaignResult) -> str:
    """A campaign section in the reproduction report's row format."""
    from repro.analysis.report import ReportRow, format_rows

    spec = result.spec
    rows: list[ReportRow] = []
    for cell, batch in result.groups():
        label = f"{cell.experiment}/{cell.machine}/{cell.axis.name}"
        paper, in_band = _expectation(cell, batch)
        rows.append(
            ReportRow(
                experiment=label,
                paper=paper,
                measured=f"{batch.quality * 100:.0f}% ({batch.detail})",
                in_band=in_band,
            )
        )
    header = [
        f"## Campaign `{spec.name}`",
        "",
        spec.description or "(no description)",
        "",
        f"{len(result.outcomes)} cells — {result.cached_count} cached, "
        f"{result.executed_count} executed, {len(result.failed)} failed.",
        "",
    ]
    body = format_rows(rows, title=None)
    failed = [
        f"- FAILED `{outcome.cell.label}`: {outcome.error_summary}"
        for outcome in result.failed
    ]
    return "\n".join(header + [body] + failed + render_time_went(result))
