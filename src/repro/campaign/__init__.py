"""repro.campaign: declarative, resumable experiment campaigns.

The paper's evaluation is a grid of sweeps — Table 1 verdicts on both
machines, success-rate-vs-noise curves per attack, an attack × defense
matrix — and this package is that grid written down once and made cheap
to re-run:

* :class:`CampaignSpec` (:mod:`repro.campaign.spec`) declares the matrix
  — experiments × machine presets × a defense/noise axis × repeats — and
  expands it into content-addressed :class:`CampaignCell`\\ s.
* :class:`TrialStore` (:mod:`repro.campaign.store`) persists each cell's
  :class:`~repro.attacks.trial.TrialBatch` under its content hash in
  sharded JSONL with atomic writes; lookup *is* the cache policy.
* :class:`CampaignRunner` (:mod:`repro.campaign.runner`) drives a spec to
  completion: cache hits served from the store, misses fanned across
  workers with per-cell fault isolation and capped-backoff retries,
  successes persisted immediately so an interrupted campaign resumes
  exactly where it stopped.
* :data:`BUILTIN_CAMPAIGNS` (:mod:`repro.campaign.builtin`) mirrors the
  paper's grids: ``revng-table1``, ``attacks-vs-noise``,
  ``defense-matrix``.
* :mod:`repro.campaign.render` turns results into the status/run text the
  CLI prints and the markdown section ``afterimage report`` embeds.

Surface: ``afterimage campaign run|status|report`` and ``make campaign``.
See docs/CAMPAIGN.md for spec format, store layout, and resume
guarantees.
"""

from repro.campaign.builtin import (
    ATTACKS_VS_NOISE,
    BUILTIN_CAMPAIGNS,
    DEFENSE_MATRIX,
    REVNG_TABLE1,
    builtin_campaign,
)
from repro.campaign.experiments import (
    CAMPAIGN_EXPERIMENTS,
    defense_applier,
    experiment_names,
    run_cell,
)
from repro.campaign.render import render_markdown, render_result, render_status
from repro.campaign.runner import (
    CampaignResult,
    CampaignRunner,
    CampaignStatus,
    CellOutcome,
    campaign_status,
)
from repro.campaign.spec import (
    DEFENSE_NAMES,
    SCHEMA_VERSION,
    AxisPoint,
    CampaignCell,
    CampaignSpec,
    canonical_json,
    cell_seed,
    load_spec,
    params_fingerprint,
)
from repro.campaign.store import TrialStore

__all__ = [
    "ATTACKS_VS_NOISE",
    "AxisPoint",
    "BUILTIN_CAMPAIGNS",
    "CAMPAIGN_EXPERIMENTS",
    "CampaignCell",
    "CampaignResult",
    "CampaignRunner",
    "CampaignSpec",
    "CampaignStatus",
    "CellOutcome",
    "DEFENSE_MATRIX",
    "DEFENSE_NAMES",
    "REVNG_TABLE1",
    "SCHEMA_VERSION",
    "TrialStore",
    "builtin_campaign",
    "campaign_status",
    "canonical_json",
    "cell_seed",
    "defense_applier",
    "experiment_names",
    "load_spec",
    "params_fingerprint",
    "render_markdown",
    "render_result",
    "render_status",
    "run_cell",
]
