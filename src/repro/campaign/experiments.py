"""Cell execution: registry attacks under defenses, plus ``table1``.

A campaign cell names an *experiment*.  Almost always that is one of the
eight registered attacks, executed through the ordinary
:func:`repro.attacks.run_trials` path with the cell's defense applied to
the freshly built machine via the ``configure`` hook.  On top of those,
the campaign layer defines one pseudo-experiment of its own —
``table1`` — which wraps the §4.3 page-boundary reverse-engineering sweep
(:class:`~repro.revng.page_boundary.PageBoundaryExperiment`) in the same
:class:`~repro.attacks.trial.TrialBatch` schema: each Table 1 row becomes
a trial whose ground truth is the paper's published verdict, so the
``revng-table1`` builtin campaign scores exactly like an attack sweep.

Defense names on the axis map to machine mutations:

========================  ====================================================
``none``                  the vulnerable baseline
``flush-on-switch``       §8.3: ``machine.flush_prefetcher_on_switch = True``
``tagged``                §8.2: :func:`repro.defenses.harden_machine`
``disabled``              §8.2: :func:`repro.defenses.disable_ip_stride_prefetcher`
========================  ====================================================
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable

from repro.attacks.registry import attack_names, run_trials
from repro.attacks.trial import Trial, TrialBatch
from repro.campaign.spec import CampaignCell

if TYPE_CHECKING:
    from repro.cpu.machine import Machine

#: Pseudo-experiments owned by the campaign layer (not in the registry).
CAMPAIGN_EXPERIMENTS = ("table1",)


def _flush_on_switch(machine: "Machine") -> None:
    machine.flush_prefetcher_on_switch = True


def _tagged(machine: "Machine") -> None:
    from repro.defenses import harden_machine

    harden_machine(machine)


def _disabled(machine: "Machine") -> None:
    from repro.defenses import disable_ip_stride_prefetcher

    disable_ip_stride_prefetcher(machine)


_DEFENSE_APPLIERS: dict[str, Callable[["Machine"], None] | None] = {
    "none": None,
    "flush-on-switch": _flush_on_switch,
    "tagged": _tagged,
    "disabled": _disabled,
}


def experiment_names() -> tuple[str, ...]:
    """Everything a campaign may name: registry attacks + pseudo-experiments."""
    return attack_names() + CAMPAIGN_EXPERIMENTS


def defense_applier(defense: str) -> Callable[["Machine"], None] | None:
    if defense not in _DEFENSE_APPLIERS:
        raise ValueError(
            f"unknown defense {defense!r}; known: {', '.join(_DEFENSE_APPLIERS)}"
        )
    return _DEFENSE_APPLIERS[defense]


def run_cell(cell: CampaignCell) -> TrialBatch:
    """Execute one campaign cell (the worker entry point).

    The returned batch carries the cell's content-only coordinates in
    ``notes["campaign_cell"]`` so a stored artifact is self-describing.
    """
    if cell.experiment == "table1":
        batch = _run_table1(cell)
    else:
        batch = run_trials(
            cell.experiment,
            params=cell.params,
            seed=cell.seed,
            rounds=cell.rounds,
            options=cell.options_dict(),
            configure=defense_applier(cell.axis.defense),
        )
    batch.notes["campaign_cell"] = cell.provenance()
    return batch


def _table1_expected(pool: str, offset: int) -> bool:
    """Table 1's published verdict for one row: every ``recl`` offset is
    prefetchable (all pages share the zero frame); ``lock`` only at offset
    1 (the next-page prefetcher), never beyond."""
    return pool == "recl" or offset == 1


def _run_table1(cell: CampaignCell) -> TrialBatch:
    """The §4.3 page-boundary sweep, scored against the paper's Table 1."""
    from repro.revng.page_boundary import PageBoundaryExperiment

    if cell.axis.defense != "none":
        raise ValueError(
            "the table1 experiment builds its machines internally and "
            f"cannot apply defense {cell.axis.defense!r}; use a 'none' axis"
        )
    options = cell.options_dict()
    max_offset = int(options.get("max_offset", 4))
    stride_lines = int(options.get("stride_lines", 7))
    rows = PageBoundaryExperiment(cell.params, seed=cell.seed).run(
        stride_lines=stride_lines, max_offset=max_offset
    )
    trials = [
        Trial(
            index=index,
            true_outcome=_table1_expected(row.pool, row.virtual_page_offset),
            inferred_outcome=row.prefetchable,
            success=row.prefetchable
            == _table1_expected(row.pool, row.virtual_page_offset),
            cycles=row.access_time,
            spans={},
            payload=row,
        )
        for index, row in enumerate(rows)
    ]
    wins = sum(1 for trial in trials if trial.success)
    quality = wins / len(trials) if trials else 0.0
    notes: dict[str, Any] = {
        "max_offset": max_offset,
        "stride_lines": stride_lines,
        "rows": [
            {
                "pool": row.pool,
                "offset": row.virtual_page_offset,
                "shares_frame": row.shares_physical_page,
                "prefetchable": row.prefetchable,
            }
            for row in rows
        ],
    }
    return TrialBatch(
        attack="table1",
        seed=cell.seed,
        machine=cell.machine,
        rounds=len(trials),
        trials=trials,
        quality=quality,
        detail=f"{wins}/{len(trials)} Table 1 rows match the paper",
        simulated_cycles=sum(row.access_time for row in rows),
        notes=notes,
    )
