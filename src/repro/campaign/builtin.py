"""The three built-in campaigns, mirroring the paper's evaluation grids.

* ``revng-table1`` — the §4.3 page-boundary sweep on both Table 2
  machines, repeated over independent seeds: the reverse-engineering
  claims as a regression grid.
* ``attacks-vs-noise`` — every registered attack against a noise axis
  from quiet to hostile: the success-rate-vs-noise curves behind the
  paper's Table 3 discussion (and the robustness story PhantomFetch-style
  evaluations lead with).
* ``defense-matrix`` — representative attacks crossed with the paper's
  §8.2/§8.3 defenses: the attack × defense verdict matrix.

Each is a plain :class:`~repro.campaign.spec.CampaignSpec` value —
``afterimage campaign run <name>`` resolves it here, and callers may
shrink it with ``--rounds``/``--repeats``/``--attacks`` overrides (CI's
smoke job does exactly that).
"""

from __future__ import annotations

from repro.campaign.spec import AxisPoint, CampaignSpec

#: Noise axis: the paper's calibrated defaults sit between a quiet,
#: pinned-core setup (§4's microbenchmark conditions) and a hostile,
#: switch-heavy one (§7.2's multi-entry degradation regime).
_NOISE_AXES = (
    AxisPoint(
        name="quiet",
        noise=(
            ("kernel_variable_ips", 0),
            ("switch_cache_lines", 0),
            ("switch_fixed_ips", 0),
            ("switch_variable_ips", 0),
            ("timing_sigma", 0.0),
            ("timing_spike_prob", 0.0),
        ),
    ),
    AxisPoint(name="paper"),  # the calibrated NoiseParams defaults
    AxisPoint(
        name="hostile",
        noise=(
            ("kernel_variable_ips", 64),
            ("switch_cache_lines", 192),
            ("switch_variable_ips", 4),
            ("timing_sigma", 6.0),
            ("timing_spike_prob", 0.01),
        ),
    ),
)

_DEFENSE_AXES = (
    AxisPoint(name="baseline"),
    AxisPoint(name="flush-on-switch", defense="flush-on-switch"),
    AxisPoint(name="tagged", defense="tagged"),
    AxisPoint(name="disabled", defense="disabled"),
)

REVNG_TABLE1 = CampaignSpec(
    name="revng-table1",
    description="Table 1 page-boundary verdicts on both Table 2 machines",
    attacks=("table1",),
    machines=("i7-4770", "i7-9700"),
    axes=(AxisPoint(name="baseline"),),
    repeats=3,
)

ATTACKS_VS_NOISE = CampaignSpec(
    name="attacks-vs-noise",
    description="every attack's success rate across a quiet→hostile noise axis",
    attacks=(
        "variant1",
        "variant1-thread",
        "variant2",
        "covert",
        "sgx",
        "switch-leak",
        "rsa",
        "tracker",
    ),
    machines=("i7-9700",),
    axes=_NOISE_AXES,
    repeats=2,
)

DEFENSE_MATRIX = CampaignSpec(
    name="defense-matrix",
    description="representative attacks crossed with the §8.2/§8.3 defenses",
    attacks=("variant1", "variant1-thread", "covert", "sgx"),
    machines=("i7-9700",),
    axes=_DEFENSE_AXES,
    repeats=2,
)

BUILTIN_CAMPAIGNS: dict[str, CampaignSpec] = {
    spec.name: spec for spec in (REVNG_TABLE1, ATTACKS_VS_NOISE, DEFENSE_MATRIX)
}


def builtin_campaign(name: str) -> CampaignSpec:
    if name not in BUILTIN_CAMPAIGNS:
        raise KeyError(
            f"unknown builtin campaign {name!r}; known: "
            f"{', '.join(BUILTIN_CAMPAIGNS)}"
        )
    return BUILTIN_CAMPAIGNS[name]
