"""The resumable campaign runner: cache, fan out, retry, persist.

Where :class:`repro.attacks.TrialExecutor` answers "run this task list,
fast", the runner answers "make this campaign *complete*":

1. **Cache first.**  Every cell key is looked up in the
   :class:`~repro.campaign.store.TrialStore`; hits are served without
   building a machine.  A finished campaign therefore re-runs with zero
   executions, and an interrupted one picks up exactly where it stopped —
   resumption is a property of the store, not of any runner state.
2. **Per-cell fault isolation.**  Pending cells are dispatched through a
   worker pool (or in-process for ``jobs=1``) behind a wrapper that turns
   a raising worker into an error value; one bad cell cannot abort the
   sweep or discard its siblings.
3. **Capped-backoff retries.**  Failed cells are collected and re-executed
   as a group, up to ``max_attempts`` rounds, sleeping
   ``backoff_seconds * 2**(round-1)`` (capped at ``backoff_cap_seconds``)
   between rounds.  A retried cell reuses its derived seed, so a
   transient crash heals to the *identical* batch an undisturbed run
   produces — aggregates stay byte-for-byte stable.
4. **Persist successes immediately.**  Each successful batch is written
   to the store before the next retry round, so even a campaign that
   ultimately fails leaves everything it completed on disk.

Cells that still fail after the last round are reported as error
outcomes — recorded, not raised — and stay pending for the next
invocation.
"""

from __future__ import annotations

import time
import traceback
from dataclasses import dataclass, field
from functools import partial
from time import perf_counter  # repro: noqa[RL003] — campaign measures host wall-clock
from typing import TYPE_CHECKING, Any, Callable, Sequence

from repro.attacks.trial import TrialBatch
from repro.campaign.experiments import experiment_names, run_cell
from repro.campaign.spec import CampaignCell, CampaignSpec
from repro.campaign.store import TrialStore
from repro.obs.telemetry import TelemetryCollector, TelemetryEnvelope, Timeline, capture_worker

if TYPE_CHECKING:
    from repro.fleet.partition import Shard

RunCellFn = Callable[[CampaignCell], TrialBatch]


@dataclass
class CellOutcome:
    """What happened to one cell this invocation."""

    cell: CampaignCell
    batch: TrialBatch | None
    cached: bool
    attempts: int = 0
    error: str | None = None

    @property
    def ok(self) -> bool:
        return self.batch is not None

    @property
    def error_summary(self) -> str | None:
        if self.error is None:
            return None
        lines = [line for line in self.error.strip().splitlines() if line.strip()]
        return lines[-1] if lines else "unknown error"

    def as_dict(self) -> dict[str, Any]:
        return {
            "label": self.cell.label,
            "key": self.cell.key,
            "cached": self.cached,
            "attempts": self.attempts,
            "ok": self.ok,
            "error": self.error_summary,
        }


@dataclass
class CampaignResult:
    """One invocation's outcomes, in spec cell order."""

    spec: CampaignSpec
    outcomes: list[CellOutcome]
    wall_seconds: float
    jobs: int
    telemetry: Timeline | None = None
    #: ``"i/n"`` when this invocation ran one fleet shard, else None.
    shard: str | None = None

    @property
    def cached_count(self) -> int:
        return sum(1 for outcome in self.outcomes if outcome.cached)

    @property
    def executed_count(self) -> int:
        return sum(1 for outcome in self.outcomes if outcome.ok and not outcome.cached)

    @property
    def failed(self) -> list[CellOutcome]:
        return [outcome for outcome in self.outcomes if not outcome.ok]

    @property
    def complete(self) -> bool:
        return not self.failed

    @property
    def all_cached(self) -> bool:
        return self.cached_count == len(self.outcomes)

    def groups(self) -> list[tuple[CampaignCell, TrialBatch]]:
        """Repeats merged per (experiment, machine, axis) group.

        Returns ``(representative cell, merged batch)`` pairs in spec
        order — the cell carries the axis so renderers can reason about
        defenses.  Aggregates are recomputed from the union of trials by
        :meth:`TrialBatch.merge`, so they are identical whether the
        batches came from workers or from the store.
        """
        grouped: dict[str, tuple[CampaignCell, list[TrialBatch]]] = {}
        for outcome in self.outcomes:
            if outcome.batch is None:
                continue
            cell = outcome.cell
            label = f"{cell.experiment}/{cell.machine}/{cell.axis.name}"
            grouped.setdefault(label, (cell, []))[1].append(outcome.batch)
        return [
            (cell, TrialBatch.merge(batches)) for cell, batches in grouped.values()
        ]

    def merged(self) -> dict[str, TrialBatch]:
        """:meth:`groups` keyed by ``experiment/machine/axis`` label."""
        return {
            f"{cell.experiment}/{cell.machine}/{cell.axis.name}": batch
            for cell, batch in self.groups()
        }

    def aggregates(self) -> dict[str, dict[str, Any]]:
        """The wall-clock-free view two runs of one campaign must agree on.

        Everything in a batch is derived from the cell's seed except the
        host ``wall_seconds`` in its span profile, so that field is
        stripped (via :meth:`TrialBatch.wall_clock_free_dict`): cached,
        re-executed, retried-after-a-crash and pooled runs of the same
        spec all serialize to byte-identical aggregates (the CI smoke job
        asserts exactly this).
        """
        return {
            label: batch.wall_clock_free_dict()
            for label, batch in self.merged().items()
        }

    def as_dict(self) -> dict[str, Any]:
        data = {
            "campaign": self.spec.name,
            "shard": self.shard,
            "n_cells": len(self.outcomes),
            "cached": self.cached_count,
            "executed": self.executed_count,
            "failed": len(self.failed),
            "complete": self.complete,
            "jobs": self.jobs,
            "wall_seconds": self.wall_seconds,
            "outcomes": [outcome.as_dict() for outcome in self.outcomes],
            "aggregates": self.aggregates(),
        }
        if self.telemetry is not None:
            data["telemetry"] = self.telemetry.as_dict()
        return data


@dataclass
class CampaignStatus:
    """The store's answer to "how far along is this campaign?"."""

    spec: CampaignSpec
    cached: list[CampaignCell] = field(default_factory=list)
    pending: list[CampaignCell] = field(default_factory=list)
    #: ``"i/n"`` when the status covers one fleet shard, else None.
    shard: str | None = None
    #: Unreadable store lines noticed while answering (see TrialStore).
    corrupt_lines: int = 0

    @property
    def total(self) -> int:
        return len(self.cached) + len(self.pending)

    @property
    def all_cached(self) -> bool:
        return not self.pending

    def as_dict(self) -> dict[str, Any]:
        return {
            "campaign": self.spec.name,
            "shard": self.shard,
            "total": self.total,
            "cached": len(self.cached),
            "pending": len(self.pending),
            "all_cached": self.all_cached,
            "corrupt_lines": self.corrupt_lines,
            "pending_cells": [cell.label for cell in self.pending],
        }


def campaign_status(
    spec: CampaignSpec, store: TrialStore, shard: "Shard | None" = None
) -> CampaignStatus:
    """Classify every cell of ``spec`` (or one fleet shard of it).

    Also surfaces the store's corrupt-line counter: classifying touches
    every shard file a cell key maps to, so any unreadable line those
    files carry has been counted by the time the loop finishes — silent
    skipping stays silent in the *data* (the cell just reads as pending)
    but not in the operator's status output.
    """
    from repro.fleet.partition import partition_cells

    status = CampaignStatus(spec=spec, shard=str(shard) if shard else None)
    for cell in partition_cells(spec.cells(), shard):
        (status.cached if cell.key in store else status.pending).append(cell)
    status.corrupt_lines = store.corrupt_lines
    return status


def _call_safely(
    fn: RunCellFn, cell: CampaignCell
) -> tuple[str, TrialBatch | None, str | None]:
    """Worker wrapper: (key, batch, error) — never raises across the pool."""
    try:
        return cell.key, fn(cell), None
    except Exception:
        return cell.key, None, traceback.format_exc()


def _call_safely_telemetry(fn: RunCellFn, cell: CampaignCell) -> TelemetryEnvelope:
    """:func:`_call_safely` with worker-side telemetry piggy-backed on it.

    Module-level (and built from picklable pieces) so it crosses the pool
    boundary like the plain wrapper does.
    """
    return capture_worker(partial(_call_safely, fn), cell)


class CampaignRunner:
    """Drive a :class:`CampaignSpec` to completion against a store.

    ``run_cell_fn`` exists for fault-injection tests (and any caller that
    wants to wrap execution); with ``jobs > 1`` it must be picklable —
    i.e. a module-level function — because it crosses the pool boundary.
    """

    def __init__(
        self,
        store: TrialStore,
        jobs: int = 1,
        max_attempts: int = 3,
        backoff_seconds: float = 0.1,
        backoff_cap_seconds: float = 2.0,
        run_cell_fn: RunCellFn | None = None,
        telemetry: bool = False,
    ) -> None:
        if jobs <= 0:
            raise ValueError(f"jobs must be positive, got {jobs}")
        if max_attempts <= 0:
            raise ValueError(f"max_attempts must be positive, got {max_attempts}")
        if backoff_seconds < 0 or backoff_cap_seconds < 0:
            raise ValueError("backoff durations must be non-negative")
        self.store = store
        self.jobs = jobs
        self.max_attempts = max_attempts
        self.backoff_seconds = backoff_seconds
        self.backoff_cap_seconds = backoff_cap_seconds
        self.run_cell_fn: RunCellFn = run_cell_fn or run_cell
        self.telemetry = telemetry

    def run(self, spec: CampaignSpec, shard: "Shard | None" = None) -> CampaignResult:
        """Drive ``spec`` — or, with ``shard``, one fleet slice of it.

        A sharded run is an ordinary run over the subset of cells the
        shard owns (partitioned by cell content hash, see
        :mod:`repro.fleet.partition`): same caching, same fault isolation,
        same retries, same byte-identical aggregates for its slice.
        """
        from repro.fleet.partition import partition_cells

        start = perf_counter()
        known = set(experiment_names())
        unknown = sorted(set(spec.attacks) - known)
        if unknown:
            raise ValueError(
                f"campaign {spec.name!r} names unknown experiment(s): "
                f"{', '.join(unknown)}; known: {', '.join(sorted(known))}"
            )
        cells = partition_cells(spec.cells(), shard)
        collector = TelemetryCollector(jobs=self.jobs) if self.telemetry else None
        outcomes: dict[str, CellOutcome] = {}
        pending: list[CampaignCell] = []
        for cell in cells:
            batch = self.store.get(cell.key)
            if batch is not None:
                outcomes[cell.key] = CellOutcome(cell=cell, batch=batch, cached=True)
            else:
                pending.append(cell)

        attempts: dict[str, int] = {}
        errors: dict[str, str] = {}
        for round_number in range(1, self.max_attempts + 1):
            if not pending:
                break
            if round_number > 1:
                self._backoff(round_number - 1)
            still_failing: list[CampaignCell] = []
            for cell, batch, error in self._execute(pending, collector):
                attempts[cell.key] = attempts.get(cell.key, 0) + 1
                if batch is not None:
                    self.store.put(cell.key, batch)
                    errors.pop(cell.key, None)
                    outcomes[cell.key] = CellOutcome(
                        cell=cell,
                        batch=batch,
                        cached=False,
                        attempts=attempts[cell.key],
                    )
                else:
                    errors[cell.key] = error or "unknown error"
                    still_failing.append(cell)
            pending = still_failing

        for cell in pending:  # out of attempts: record, don't raise
            outcomes[cell.key] = CellOutcome(
                cell=cell,
                batch=None,
                cached=False,
                attempts=attempts.get(cell.key, 0),
                error=errors.get(cell.key),
            )
        wall = perf_counter() - start
        return CampaignResult(
            spec=spec,
            outcomes=[outcomes[cell.key] for cell in cells],
            wall_seconds=wall,
            jobs=self.jobs,
            telemetry=(
                collector.finish(wall_seconds=wall) if collector is not None else None
            ),
            shard=str(shard) if shard else None,
        )

    def status(self, spec: CampaignSpec, shard: "Shard | None" = None) -> CampaignStatus:
        return campaign_status(spec, self.store, shard=shard)

    # ----------------------------------------------------------------- #
    # Internals                                                          #
    # ----------------------------------------------------------------- #

    def _backoff(self, failed_rounds: int) -> None:
        delay = min(
            self.backoff_seconds * (2 ** (failed_rounds - 1)),
            self.backoff_cap_seconds,
        )
        if delay > 0:
            time.sleep(delay)

    def _execute(
        self,
        cells: Sequence[CampaignCell],
        collector: TelemetryCollector | None = None,
    ) -> list[tuple[CampaignCell, TrialBatch | None, str | None]]:
        by_key = {cell.key: cell for cell in cells}
        if collector is not None:
            raw = self._execute_telemetry(cells, collector)
        elif self.jobs == 1 or len(cells) == 1:
            raw = [_call_safely(self.run_cell_fn, cell) for cell in cells]
        else:
            raw = self._run_pool(cells)
        return [(by_key[key], batch, error) for key, batch, error in raw]

    def _run_pool(
        self, cells: Sequence[CampaignCell]
    ) -> list[tuple[str, TrialBatch | None, str | None]]:
        import multiprocessing

        try:
            context = multiprocessing.get_context("fork")
        except ValueError:  # platform without fork (e.g. Windows)
            context = multiprocessing.get_context("spawn")
        n_workers = min(self.jobs, len(cells))
        with context.Pool(processes=n_workers) as pool:
            return pool.map(partial(_call_safely, self.run_cell_fn), cells)

    def _execute_telemetry(
        self, cells: Sequence[CampaignCell], collector: TelemetryCollector
    ) -> list[tuple[str, TrialBatch | None, str | None]]:
        """One execution round with parent+worker bookkeeping.

        Indices continue across retry rounds, so a healed campaign's
        timeline shows every attempt as its own record.
        """
        base = len(collector.records)
        for offset, cell in enumerate(cells):
            collector.add_request(base + offset, cell.label, cell)
        raw: list[tuple[str, TrialBatch | None, str | None]] = []
        if self.jobs == 1 or len(cells) == 1:
            collector.window_begin()
            for offset, cell in enumerate(cells):
                envelope = _call_safely_telemetry(self.run_cell_fn, cell)
                raw.append(collector.receive(base + offset, envelope))
            collector.window_end()
        else:
            import multiprocessing

            try:
                context = multiprocessing.get_context("fork")
            except ValueError:  # platform without fork (e.g. Windows)
                context = multiprocessing.get_context("spawn")
            n_workers = min(self.jobs, len(cells))
            with context.Pool(processes=n_workers) as pool:
                collector.window_begin()
                results = pool.imap(
                    partial(_call_safely_telemetry, self.run_cell_fn), cells
                )
                for offset, envelope in enumerate(results):
                    raw.append(collector.receive(base + offset, envelope))
                collector.window_end()
        collector.measure_results(raw, start=base)
        return raw
