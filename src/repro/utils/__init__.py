"""Shared low-level helpers: bit manipulation, seeded RNG plumbing, statistics."""

from repro.utils.bits import (
    align_down,
    align_up,
    cache_line_index,
    low_bits,
    page_number,
    page_offset,
    sign_extend,
)
from repro.utils.rng import derive_rng, make_rng
from repro.utils.stats import mean, median, percentile, welch_t_statistic

__all__ = [
    "align_down",
    "align_up",
    "cache_line_index",
    "low_bits",
    "page_number",
    "page_offset",
    "sign_extend",
    "make_rng",
    "derive_rng",
    "mean",
    "median",
    "percentile",
    "welch_t_statistic",
]
