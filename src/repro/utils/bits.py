"""Bit- and address-manipulation helpers used throughout the simulator.

Addresses in the simulator are plain Python integers (byte granularity).
The memory-geometry constants live in :mod:`repro.memsys.cacheline`; these
helpers are parameterised so they can be reused for any power-of-two
granularity (cache lines, pages, 2 MiB huge pages in tests, ...).
"""

from __future__ import annotations


def low_bits(value: int, n_bits: int) -> int:
    """Return the ``n_bits`` least significant bits of ``value``.

    This is the operation the IP-stride prefetcher applies to the load
    instruction pointer when indexing its history table (the paper finds
    ``n_bits == 8`` and *no* tag verification of the remaining bits).
    """
    if n_bits < 0:
        raise ValueError(f"n_bits must be non-negative, got {n_bits}")
    return value & ((1 << n_bits) - 1)


def sign_extend(value: int, n_bits: int) -> int:
    """Interpret the low ``n_bits`` of ``value`` as a two's-complement integer.

    Used to model the prefetcher's (1+12)-bit stride register.
    """
    if n_bits <= 0:
        raise ValueError(f"n_bits must be positive, got {n_bits}")
    mask = (1 << n_bits) - 1
    value &= mask
    sign_bit = 1 << (n_bits - 1)
    if value & sign_bit:
        return value - (1 << n_bits)
    return value


def align_down(address: int, granularity: int) -> int:
    """Round ``address`` down to a multiple of ``granularity`` (a power of two)."""
    _check_power_of_two(granularity)
    return address & ~(granularity - 1)


def align_up(address: int, granularity: int) -> int:
    """Round ``address`` up to a multiple of ``granularity`` (a power of two)."""
    _check_power_of_two(granularity)
    return (address + granularity - 1) & ~(granularity - 1)


def cache_line_index(address: int, line_size: int = 64) -> int:
    """Return the cache-line number containing ``address``."""
    _check_power_of_two(line_size)
    return address // line_size


def page_number(address: int, page_size: int = 4096) -> int:
    """Return the page number containing ``address``."""
    _check_power_of_two(page_size)
    return address // page_size


def page_offset(address: int, page_size: int = 4096) -> int:
    """Return the offset of ``address`` within its page."""
    _check_power_of_two(page_size)
    return address & (page_size - 1)


def _check_power_of_two(value: int) -> None:
    if value <= 0 or value & (value - 1):
        raise ValueError(f"expected a positive power of two, got {value}")
