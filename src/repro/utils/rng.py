"""Deterministic random-number plumbing.

Every stochastic component of the simulator (timing noise, scheduler noise,
ASLR, physical frame allocation, plaintext generation for the t-test, ...)
draws from a :class:`numpy.random.Generator` seeded through these helpers, so
a whole experiment is reproducible from a single integer seed.

This module is the *only* place allowed to call ``np.random.default_rng``
directly — ``repro.lint`` rule RL002 enforces that everything else builds
generators through :func:`make_rng`/:func:`derive_rng`, keeping every stream
in the codebase greppable through one chokepoint.
"""

from __future__ import annotations

import numpy as np

DEFAULT_SEED = 0xAF7E2


def make_rng(seed: int | None = None) -> np.random.Generator:
    """Create a seeded generator; ``None`` selects the library default seed."""
    if seed is None:
        seed = DEFAULT_SEED
    return np.random.default_rng(seed)  # repro: noqa[RL002] - the one sanctioned call site


def stable_seed(label: str) -> int:
    """A process-stable integer derived from ``label``.

    Builtin ``hash()`` on strings is salted per process (PYTHONHASHSEED), so
    ``seed ^ hash(label)`` silently changes streams between runs — lint rule
    RL008 bans it.  This mixing is deliberately simple and fully specified:
    each character is OR-folded into a rotating 32-bit window.
    """
    return sum(ord(ch) << (8 * (i % 4)) for i, ch in enumerate(label))


def derive_rng(parent: np.random.Generator, label: str) -> np.random.Generator:
    """Derive an independent child generator from ``parent`` and a label.

    Components owning their own stream (e.g. the scheduler vs. the timing
    model) derive children at construction time, in a fixed order, so that
    their *runtime* draws never interleave: heavy use of one stream cannot
    perturb another.  Derivation consumes one draw from ``parent``.
    """
    mix = int(parent.integers(0, 2**63 - 1))
    return np.random.default_rng(  # repro: noqa[RL002] - the one sanctioned call site
        (mix ^ stable_seed(label)) & (2**63 - 1)
    )
