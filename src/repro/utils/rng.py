"""Deterministic random-number plumbing.

Every stochastic component of the simulator (timing noise, scheduler noise,
ASLR, physical frame allocation, plaintext generation for the t-test, ...)
draws from a :class:`numpy.random.Generator` seeded through these helpers, so
a whole experiment is reproducible from a single integer seed.
"""

from __future__ import annotations

import numpy as np

DEFAULT_SEED = 0xAF7E2


def make_rng(seed: int | None = None) -> np.random.Generator:
    """Create a seeded generator; ``None`` selects the library default seed."""
    if seed is None:
        seed = DEFAULT_SEED
    return np.random.default_rng(seed)


def derive_rng(parent: np.random.Generator, label: str) -> np.random.Generator:
    """Derive an independent child generator from ``parent`` and a label.

    Components owning their own stream (e.g. the scheduler vs. the timing
    model) derive children at construction time, in a fixed order, so that
    their *runtime* draws never interleave: heavy use of one stream cannot
    perturb another.  Derivation consumes one draw from ``parent``.
    """
    label_seed = sum(ord(ch) << (8 * (i % 4)) for i, ch in enumerate(label))
    mix = int(parent.integers(0, 2**63 - 1))
    return np.random.default_rng((mix ^ label_seed) & (2**63 - 1))
