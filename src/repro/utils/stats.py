"""Small statistics helpers shared by the analysis and channel packages."""

from __future__ import annotations

import math
from collections.abc import Sequence

import numpy as np


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean; raises on an empty sequence (silence hides bugs)."""
    if len(values) == 0:
        raise ValueError("mean of empty sequence")
    return float(np.mean(values))


def median(values: Sequence[float]) -> float:
    """Median; raises on an empty sequence."""
    if len(values) == 0:
        raise ValueError("median of empty sequence")
    return float(np.median(values))


def percentile(values: Sequence[float], q: float) -> float:
    """The ``q``-th percentile (0-100) of ``values``."""
    if len(values) == 0:
        raise ValueError("percentile of empty sequence")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile q must be in [0, 100], got {q}")
    return float(np.percentile(values, q))


def welch_t_statistic(sample_a: Sequence[float], sample_b: Sequence[float]) -> float:
    """Welch's t statistic between two independent samples.

    This is the statistic used by the TVLA leakage-assessment methodology
    (Schneider & Moradi, CHES 2015) that the paper applies in Figure 16:
    ``t = (mean_a - mean_b) / sqrt(var_a/n_a + var_b/n_b)``.

    Returns 0.0 when both variances vanish and the means are equal (no
    evidence either way); raises when either sample has fewer than two
    observations, since the variance is then undefined.
    """
    a = np.asarray(sample_a, dtype=np.float64)
    b = np.asarray(sample_b, dtype=np.float64)
    if a.size < 2 or b.size < 2:
        raise ValueError("welch_t_statistic needs at least two observations per sample")
    var_term = a.var(ddof=1) / a.size + b.var(ddof=1) / b.size
    delta = float(a.mean() - b.mean())
    if var_term == 0.0:  # repro: noqa[RL004] - exact zero variance means identical samples
        if delta == 0.0:  # repro: noqa[RL004] - exact equality is the degenerate-case guard
            return 0.0
        return math.copysign(math.inf, delta)
    return delta / math.sqrt(var_term)
