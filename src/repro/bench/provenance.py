"""Provenance stamps for benchmark artifacts.

A wall-clock number is only comparable to another wall-clock number from
the *same* machine; a ``BENCH_*.json`` without provenance invites exactly
that silent cross-machine diff.  :func:`provenance` captures where and
when an artifact was produced so :mod:`repro.bench.compare` can refuse
incomparable pairs, and leaves an audit trail (git revision, timestamp)
for the ones it accepts.

This module is deliberately host-facing: wall-clock reads are the point
(the lint exemptions say so inline), and none of these values may ever
flow into simulator state.
"""

from __future__ import annotations

import os
import platform
import socket
import subprocess
from datetime import datetime, timezone
from typing import Any

#: The fields two artifacts must agree on to be wall-clock comparable.
MACHINE_IDENTITY_FIELDS = ("hostname", "platform", "python", "cpu_count")


def git_revision(cwd: str | None = None) -> str:
    """The current ``HEAD`` hash, or ``"unknown"`` outside a checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=cwd,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    if out.returncode != 0:
        return "unknown"
    return out.stdout.strip() or "unknown"


def provenance() -> dict[str, Any]:
    """The stamp every ``BENCH_*.json`` emitter embeds under ``"provenance"``."""
    return {
        "git_rev": git_revision(),
        "timestamp": datetime.now(timezone.utc).isoformat(  # repro: noqa[RL003] — artifact stamp, not model state
            timespec="seconds"
        ),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "hostname": socket.gethostname(),
        "cpu_count": os.cpu_count() or 1,
    }


def identity(stamp: dict[str, Any] | None) -> dict[str, Any] | None:
    """The machine-identity slice of a provenance stamp (None if absent)."""
    if not isinstance(stamp, dict):
        return None
    return {field: stamp.get(field) for field in MACHINE_IDENTITY_FIELDS}
