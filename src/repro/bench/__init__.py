"""repro.bench: provenance-stamped benchmark artifacts and the regression gate.

Every ``BENCH_*.json`` emitter stamps its document with
:func:`~repro.bench.provenance.provenance` — git revision, timestamp,
python version, and the host identity fields — and
``afterimage bench compare <baseline> <current>`` (:mod:`repro.bench.compare`)
diffs two artifacts of the same kind with configurable tolerance and
lint-style exit codes, refusing cross-machine comparisons unless told
otherwise.  ``make bench`` and the CI ``perf-telemetry`` job run the
gate, so the executor regression tracked in ``BENCH_attacks.json`` is a
gated number instead of a footnote.
"""

from repro.bench.compare import (
    CompareFinding,
    CompareReport,
    EXIT_INTERNAL,
    EXIT_OK,
    EXIT_REGRESSION,
    EXIT_USAGE,
    compare_documents,
    compare_files,
)
from repro.bench.provenance import MACHINE_IDENTITY_FIELDS, provenance

__all__ = [
    "CompareFinding",
    "CompareReport",
    "EXIT_INTERNAL",
    "EXIT_OK",
    "EXIT_REGRESSION",
    "EXIT_USAGE",
    "MACHINE_IDENTITY_FIELDS",
    "compare_documents",
    "compare_files",
    "provenance",
]
