"""The bench regression gate: diff two ``BENCH_*.json`` artifacts.

``afterimage bench compare <baseline.json> <current.json>`` loads both
documents, refuses pairs that are not comparable (different artifact
kinds, different schema versions, different machines — unless
``--allow-cross-machine``), and then checks the kind-specific contract:

* **obs** (``BENCH_obs.json``) — per-attack simulated cycles and quality
  are deterministic and must match exactly; wall-clock may drift within
  the tolerance.
* **attacks** (``BENCH_attacks.json``) — the executor's speedup must not
  regress beyond the tolerance, ``aggregates_identical`` must hold, and
  per-attack quality/cycles must match exactly.
* **campaign** (``BENCH_campaign.json``) — the caching contract
  (warm pass fully cached, byte-identical aggregates) must hold and the
  warm wall-clock must stay within tolerance.
* **telemetry** (``BENCH_telemetry.json``) — the telemetry-off overhead
  bound must hold, aggregates must stay identical, and the speedup must
  not regress beyond tolerance.
* **kernel** (``BENCH_kernel.json``) — the batched/serial equivalence
  flag must hold, the batched per-trial overhead must stay within its
  recorded bound, deterministic lane totals (simulated cycles, retired
  loads, quality) must match exactly, and the wall clocks must stay
  within tolerance.
* **serve** (``BENCH_serve.json``) — the warm-aggregate latency budget
  (p50 under the recorded ``warm_budget_seconds``), ETag revalidation
  and aggregate completeness must hold, the cache hit ratio must not
  regress beyond tolerance, and the latency percentiles must stay
  within tolerance.

Exit codes are lint-style: 0 = no regression, 1 = regression found,
2 = refusal/usage error (incomparable artifacts), 3 = internal error.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any

from repro.bench.provenance import identity

EXIT_OK = 0
EXIT_REGRESSION = 1
EXIT_USAGE = 2
EXIT_INTERNAL = 3

#: Default relative tolerance for wall-clock-derived numbers (they are
#: noisy on shared containers; determinism-derived numbers get none).
DEFAULT_TOLERANCE = 0.25

_QUALITY_EPS = 1e-9


@dataclass(frozen=True)
class CompareFinding:
    """One checked field: baseline vs current plus the verdict."""

    field: str
    baseline: Any
    current: Any
    ok: bool
    note: str = ""

    def as_dict(self) -> dict[str, Any]:
        return {
            "field": self.field,
            "baseline": self.baseline,
            "current": self.current,
            "ok": self.ok,
            "note": self.note,
        }


@dataclass
class CompareReport:
    """Everything ``bench compare`` decided about one artifact pair."""

    kind: str
    baseline_path: str
    current_path: str
    tolerance: float
    findings: list[CompareFinding] = field(default_factory=list)
    refusal: str | None = None

    @property
    def regressions(self) -> list[CompareFinding]:
        return [finding for finding in self.findings if not finding.ok]

    @property
    def exit_code(self) -> int:
        if self.refusal is not None:
            return EXIT_USAGE
        return EXIT_REGRESSION if self.regressions else EXIT_OK

    def as_dict(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "baseline": self.baseline_path,
            "current": self.current_path,
            "tolerance": self.tolerance,
            "refusal": self.refusal,
            "regressions": len(self.regressions),
            "findings": [finding.as_dict() for finding in self.findings],
        }

    def render_text(self) -> str:
        if self.refusal is not None:
            return f"bench compare: REFUSED — {self.refusal}"
        lines = [
            f"bench compare [{self.kind}] {self.baseline_path} -> "
            f"{self.current_path} (tolerance {self.tolerance:.0%})"
        ]
        for finding in self.findings:
            marker = "ok  " if finding.ok else "FAIL"
            note = f"  ({finding.note})" if finding.note else ""
            lines.append(
                f"  {marker} {finding.field}: {finding.baseline!r} -> "
                f"{finding.current!r}{note}"
            )
        verdict = (
            "no regressions"
            if not self.regressions
            else f"{len(self.regressions)} regression(s)"
        )
        lines.append(f"bench compare: {verdict}")
        return "\n".join(lines)


def artifact_kind(doc: dict[str, Any]) -> str | None:
    """Classify a ``BENCH_*.json`` document by its load-bearing keys."""
    if not isinstance(doc, dict):
        return None
    if doc.get("kind") in ("obs", "attacks", "campaign", "telemetry", "kernel", "serve"):
        return str(doc["kind"])
    if "warm_aggregate_p50_seconds" in doc:
        return "serve"
    if "batched_wall_seconds" in doc:
        return "kernel"
    if "telemetry_overhead_ratio" in doc:
        return "telemetry"
    if "serial_wall_seconds" in doc:
        return "attacks"
    if "cold_wall_seconds" in doc:
        return "campaign"
    if "results" in doc:
        return "obs"
    return None


def _check_ratio(
    findings: list[CompareFinding],
    label: str,
    baseline: Any,
    current: Any,
    tolerance: float,
    higher_is_better: bool,
) -> None:
    """Tolerance check on a wall-clock-derived scalar (None passes)."""
    if baseline is None or current is None:
        findings.append(
            CompareFinding(label, baseline, current, True, "missing value, skipped")
        )
        return
    baseline_f, current_f = float(baseline), float(current)
    if higher_is_better:
        ok = current_f >= baseline_f * (1.0 - tolerance)
        note = f"must stay >= {baseline_f * (1.0 - tolerance):.4g}"
    else:
        ok = current_f <= baseline_f * (1.0 + tolerance)
        note = f"must stay <= {baseline_f * (1.0 + tolerance):.4g}"
    findings.append(CompareFinding(label, baseline, current, ok, note))


def _check_exact(
    findings: list[CompareFinding],
    label: str,
    baseline: Any,
    current: Any,
    note: str = "deterministic, compared exactly",
) -> None:
    if isinstance(baseline, float) or isinstance(current, float):
        ok = (
            baseline is not None
            and current is not None
            and abs(float(baseline) - float(current)) <= _QUALITY_EPS
        )
    else:
        ok = baseline == current
    findings.append(CompareFinding(label, baseline, current, ok, note))


def _check_flag(
    findings: list[CompareFinding], label: str, baseline: Any, current: Any
) -> None:
    findings.append(
        CompareFinding(label, baseline, current, bool(current), "must hold in current")
    )


def _compare_per_attack(
    findings: list[CompareFinding],
    baseline: dict[str, Any],
    current: dict[str, Any],
    prefix: str,
    fields: tuple[str, ...],
) -> None:
    for name in sorted(baseline):
        if name not in current:
            findings.append(
                CompareFinding(f"{prefix}.{name}", "present", "missing", False)
            )
            continue
        for fld in fields:
            _check_exact(
                findings,
                f"{prefix}.{name}.{fld}",
                baseline[name].get(fld),
                current[name].get(fld),
            )


def _compare_obs(
    findings: list[CompareFinding],
    baseline: dict[str, Any],
    current: dict[str, Any],
    tolerance: float,
) -> None:
    base_rows = {row["attack"]: row for row in baseline.get("results", [])}
    cur_rows = {row["attack"]: row for row in current.get("results", [])}
    _compare_per_attack(
        findings, base_rows, cur_rows, "attack", ("simulated_cycles", "quality", "rounds")
    )
    for name in sorted(base_rows):
        if name in cur_rows:
            _check_ratio(
                findings,
                f"attack.{name}.wall_seconds",
                base_rows[name].get("wall_seconds"),
                cur_rows[name].get("wall_seconds"),
                tolerance,
                higher_is_better=False,
            )


def _compare_attacks(
    findings: list[CompareFinding],
    baseline: dict[str, Any],
    current: dict[str, Any],
    tolerance: float,
) -> None:
    _check_ratio(
        findings,
        "speedup",
        baseline.get("speedup"),
        current.get("speedup"),
        tolerance,
        higher_is_better=True,
    )
    for fld in ("serial_wall_seconds", "parallel_wall_seconds"):
        _check_ratio(
            findings, fld, baseline.get(fld), current.get(fld), tolerance,
            higher_is_better=False,
        )
    _check_flag(
        findings,
        "aggregates_identical",
        baseline.get("aggregates_identical"),
        current.get("aggregates_identical"),
    )
    _compare_per_attack(
        findings,
        baseline.get("per_attack", {}),
        current.get("per_attack", {}),
        "per_attack",
        ("quality", "n_trials", "simulated_cycles"),
    )


def _compare_campaign(
    findings: list[CompareFinding],
    baseline: dict[str, Any],
    current: dict[str, Any],
    tolerance: float,
) -> None:
    for fld in ("cold_wall_seconds", "warm_wall_seconds"):
        _check_ratio(
            findings, fld, baseline.get(fld), current.get(fld), tolerance,
            higher_is_better=False,
        )
    verification_base = baseline.get("verification", {})
    verification_cur = current.get("verification", {})
    for flag in ("warm_all_cached", "aggregates_identical"):
        _check_flag(
            findings,
            f"verification.{flag}",
            verification_base.get(flag),
            verification_cur.get(flag),
        )
    _compare_per_attack(
        findings,
        baseline.get("groups", {}),
        current.get("groups", {}),
        "group",
        ("quality", "n_trials"),
    )


def _compare_telemetry(
    findings: list[CompareFinding],
    baseline: dict[str, Any],
    current: dict[str, Any],
    tolerance: float,
) -> None:
    _check_ratio(
        findings,
        "speedup",
        baseline.get("speedup"),
        current.get("speedup"),
        tolerance,
        higher_is_better=True,
    )
    for fld in ("serial_wall_seconds", "parallel_wall_seconds"):
        _check_ratio(
            findings, fld, baseline.get(fld), current.get(fld), tolerance,
            higher_is_better=False,
        )
    overhead = current.get("telemetry_overhead_ratio")
    bound = current.get("telemetry_overhead_bound", 0.05)
    findings.append(
        CompareFinding(
            "telemetry_overhead_ratio",
            baseline.get("telemetry_overhead_ratio"),
            overhead,
            overhead is not None and abs(float(overhead)) <= float(bound),
            f"|overhead| must stay <= {bound}",
        )
    )
    _check_flag(
        findings,
        "aggregates_identical",
        baseline.get("aggregates_identical"),
        current.get("aggregates_identical"),
    )
    _check_ratio(
        findings,
        "attribution_coverage",
        baseline.get("attribution", {}).get("coverage"),
        current.get("attribution", {}).get("coverage"),
        0.05,
        higher_is_better=True,
    )


def _compare_kernel(
    findings: list[CompareFinding],
    baseline: dict[str, Any],
    current: dict[str, Any],
    tolerance: float,
) -> None:
    for fld in ("serial_wall_seconds", "batched_wall_seconds"):
        _check_ratio(
            findings, fld, baseline.get(fld), current.get(fld), tolerance,
            higher_is_better=False,
        )
    _check_ratio(
        findings,
        "batch_speedup",
        baseline.get("batch_speedup"),
        current.get("batch_speedup"),
        tolerance,
        higher_is_better=True,
    )
    overhead = current.get("batch_overhead_ratio")
    bound = current.get("batch_overhead_bound", 0.10)
    findings.append(
        CompareFinding(
            "batch_overhead_ratio",
            baseline.get("batch_overhead_ratio"),
            overhead,
            overhead is not None and float(overhead) <= float(bound),
            f"batched per-trial overhead must stay <= {bound}",
        )
    )
    _check_flag(
        findings,
        "aggregates_identical",
        baseline.get("aggregates_identical"),
        current.get("aggregates_identical"),
    )
    for fld in (
        "lanes",
        "rounds",
        "simulated_cycles_total",
        "loads_retired_total",
        "mean_quality",
    ):
        _check_exact(findings, fld, baseline.get(fld), current.get(fld))


def _compare_serve(
    findings: list[CompareFinding],
    baseline: dict[str, Any],
    current: dict[str, Any],
    tolerance: float,
) -> None:
    for fld in (
        "cold_aggregate_seconds",
        "warm_aggregate_p50_seconds",
        "warm_aggregate_p99_seconds",
        "revalidate_p50_seconds",
    ):
        _check_ratio(
            findings, fld, baseline.get(fld), current.get(fld), tolerance,
            higher_is_better=False,
        )
    warm = current.get("warm_aggregate_p50_seconds")
    budget = current.get("warm_budget_seconds", 0.010)
    findings.append(
        CompareFinding(
            "warm_aggregate_p50_seconds.budget",
            baseline.get("warm_budget_seconds"),
            warm,
            warm is not None and float(warm) < float(budget),
            f"warm aggregate p50 must stay < {budget}s",
        )
    )
    concurrent_base = baseline.get("concurrent", {})
    concurrent_cur = current.get("concurrent", {})
    for fld in ("p50_seconds", "p99_seconds"):
        _check_ratio(
            findings,
            f"concurrent.{fld}",
            concurrent_base.get(fld),
            concurrent_cur.get(fld),
            tolerance,
            higher_is_better=False,
        )
    _check_ratio(
        findings,
        "cache.hit_ratio",
        baseline.get("cache", {}).get("hit_ratio"),
        current.get("cache", {}).get("hit_ratio"),
        tolerance,
        higher_is_better=True,
    )
    verification_base = baseline.get("verification", {})
    verification_cur = current.get("verification", {})
    for flag in ("aggregate_complete", "warm_under_budget", "etag_revalidates"):
        _check_flag(
            findings,
            f"verification.{flag}",
            verification_base.get(flag),
            verification_cur.get(flag),
        )
    _check_exact(findings, "campaign", baseline.get("campaign"), current.get("campaign"))


_CHECKERS = {
    "obs": _compare_obs,
    "attacks": _compare_attacks,
    "campaign": _compare_campaign,
    "telemetry": _compare_telemetry,
    "kernel": _compare_kernel,
    "serve": _compare_serve,
}


def compare_documents(
    baseline: dict[str, Any],
    current: dict[str, Any],
    baseline_path: str = "<baseline>",
    current_path: str = "<current>",
    tolerance: float = DEFAULT_TOLERANCE,
    allow_cross_machine: bool = False,
) -> CompareReport:
    """Diff two loaded artifacts; never raises on content problems."""
    report = CompareReport(
        kind="unknown",
        baseline_path=baseline_path,
        current_path=current_path,
        tolerance=tolerance,
    )
    base_kind = artifact_kind(baseline)
    cur_kind = artifact_kind(current)
    if base_kind is None or cur_kind is None:
        report.refusal = (
            f"unrecognized artifact ({baseline_path if base_kind is None else current_path}"
            " is not a known BENCH_*.json layout)"
        )
        return report
    if base_kind != cur_kind:
        report.refusal = f"artifact kinds differ: {base_kind} vs {cur_kind}"
        return report
    report.kind = base_kind
    if baseline.get("schema") != current.get("schema"):
        report.refusal = (
            f"schema versions differ: {baseline.get('schema')} vs "
            f"{current.get('schema')}; regenerate the baseline"
        )
        return report
    base_id = identity(baseline.get("provenance"))
    cur_id = identity(current.get("provenance"))
    if not allow_cross_machine:
        if base_id is None or cur_id is None:
            which = baseline_path if base_id is None else current_path
            report.refusal = (
                f"{which} carries no provenance stamp; wall-clock numbers are "
                "not comparable (regenerate it, or pass --allow-cross-machine)"
            )
            return report
        if base_id != cur_id:
            diffs = [
                f"{key}: {base_id[key]!r} vs {cur_id[key]!r}"
                for key in base_id
                if base_id[key] != cur_id[key]
            ]
            report.refusal = (
                "artifacts come from different machines ("
                + "; ".join(diffs)
                + "); pass --allow-cross-machine to diff anyway"
            )
            return report
    _CHECKERS[base_kind](report.findings, baseline, current, tolerance)
    return report


def compare_files(
    baseline_path: str,
    current_path: str,
    tolerance: float = DEFAULT_TOLERANCE,
    allow_cross_machine: bool = False,
) -> CompareReport:
    """Load and diff two artifact files (unreadable input is a refusal)."""
    documents = []
    for path in (baseline_path, current_path):
        try:
            with open(path, "r", encoding="utf-8") as handle:
                documents.append(json.load(handle))
        except (OSError, json.JSONDecodeError) as exc:
            report = CompareReport(
                kind="unknown",
                baseline_path=baseline_path,
                current_path=current_path,
                tolerance=tolerance,
            )
            report.refusal = f"cannot load {path}: {exc}"
            return report
    return compare_documents(
        documents[0],
        documents[1],
        baseline_path=baseline_path,
        current_path=current_path,
        tolerance=tolerance,
        allow_cross_machine=allow_cross_machine,
    )
