"""The kernel clock: one source of truth for simulated time on a lane.

Before the kernel existed, cycle bookkeeping was split three ways: the
``Machine`` owned a ``cycles`` counter plus the ``_next_timer`` deadline,
``cpu/scheduler.py`` duplicated the ~100 µs tick period as its scheduling
quantum, and ``seconds()``/span timestamps re-derived wall time from the
raw counter.  :class:`KernelClock` folds all of that into one object per
lane: components charge cycles here, the timer-interrupt deadline lives
here, and ``Machine.seconds()``/``machine.span(...)`` read back through
the same counter.
"""

from __future__ import annotations

from repro.cpu.context import ThreadContext

#: The canonical ~100 µs OS tick (at the modeled ~3 GHz): both the
#: timer-interrupt period and the scheduler's default quantum.  The paper's
#: §8.3 cost model assumes this syscall/scheduling period for a modern OS.
DEFAULT_TICK_CYCLES = 300_000


class KernelClock:
    """Cycle counter + timer-tick deadline for one simulation lane."""

    __slots__ = ("cycles", "tick_period", "next_tick")

    def __init__(self, tick_period: int = DEFAULT_TICK_CYCLES) -> None:
        self.cycles = 0
        self.tick_period = tick_period
        self.next_tick = tick_period

    def now(self) -> int:
        """Current cycle count (signature-compatible with ``zero_clock``)."""
        return self.cycles

    def advance(self, cycles: int) -> None:
        """Burn cycles without attributing them to a context."""
        self.cycles += cycles

    def charge(self, ctx: ThreadContext, cycles: int) -> None:
        """Burn cycles and attribute them to ``ctx``'s CPU time."""
        self.cycles += cycles
        ctx.cpu_cycles += cycles

    def tick_due(self) -> bool:
        """Has the timer-interrupt deadline elapsed?"""
        return self.cycles >= self.next_tick

    def rearm_tick(self) -> None:
        """Schedule the next timer interrupt one period from *now*.

        A backlog of elapsed ticks collapses into a single rearm — the
        modeled IRQ disturbance saturates (see ``OSComponent.maybe_tick``).
        """
        self.next_tick = self.cycles + self.tick_period

    def seconds(self, frequency_hz: float) -> float:
        """Wall-clock equivalent of the elapsed cycle count."""
        return self.cycles / frequency_hz

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"KernelClock(cycles={self.cycles}, next_tick={self.next_tick})"
