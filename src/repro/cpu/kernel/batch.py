"""``MachineBatch``: N same-topology trials through one kernel instance.

This is the entry point the NumPy-vectorization roadmap item plugs into:
instead of running N independent machines in a Python loop, a batch adds
N *lanes* to a single :class:`~repro.cpu.kernel.core.SimKernel` and steps
their attack scenarios interleaved — one rendezvous per lane per step.
Per-trial state is exposed array-shaped (:meth:`cycles`,
:meth:`lane_state`): a future vectorized kernel replaces the per-lane
Python dispatch with array operations over exactly these lanes without
touching the attack code above it.

Trials stay *independent*: every lane owns its components and its clock,
so interleaving cannot change any lane's RNG draw order — batch results
are byte-identical to the serial loop (``benchmarks/bench_kernel.py``
asserts this, and CI gates it via ``BENCH_kernel.json``).

Scenarios opt into interleaved stepping with the ``begin(rounds)`` /
``step(index)`` / ``finish()`` protocol (see ``_Scenario`` and
``_CovertScenario`` in :mod:`repro.attacks.builtin`); scenarios without
it fall back to running whole-trial-loop per lane, still inside the one
kernel.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.cpu.kernel.core import SimKernel
from repro.cpu.kernel.topology import Topology
from repro.params import DEFAULT_MACHINE, MachineParams

if TYPE_CHECKING:
    from repro.attacks.trial import TrialBatch
    from repro.cpu.machine import Machine
    from repro.obs.tracer import Tracer


def _steppable(scenario: Any) -> bool:
    return (
        hasattr(scenario, "begin")
        and hasattr(scenario, "step")
        and hasattr(scenario, "finish")
    )


class MachineBatch:
    """N machines (one per seed) sharing a single event kernel."""

    def __init__(
        self,
        seeds: list[int],
        params: MachineParams = DEFAULT_MACHINE,
        sanitize: bool | None = None,
        trace: "Tracer | bool | None" = None,
        topology: Topology | None = None,
    ) -> None:
        import gc

        from repro.cpu.machine import Machine

        if not seeds:
            raise ValueError("a batch needs at least one seed")
        self.params = params
        self.seeds = list(seeds)
        self.kernel = SimKernel(topology)
        # N machines allocate N * ~17k cache-set objects that all stay
        # live; letting the cyclic GC run its gen-2 scans mid-construction
        # re-walks the growing graph quadratically (a 32-lane batch spends
        # ~3x longer building with collection enabled).  The machines form
        # a stable, acyclic-by-design graph, so pause collection while
        # assembling them.
        pause = gc.isenabled() and len(self.seeds) > 1
        if pause:
            gc.disable()
        try:
            self.machines: list[Machine] = [
                Machine(
                    params, seed=seed, sanitize=sanitize, trace=trace, kernel=self.kernel
                )
                for seed in self.seeds
            ]
        finally:
            if pause:
                gc.enable()

    @classmethod
    def of(
        cls,
        n_lanes: int,
        base_seed: int = 2023,
        params: MachineParams = DEFAULT_MACHINE,
        **kwargs: Any,
    ) -> "MachineBatch":
        """A batch of ``n_lanes`` trials seeded ``base_seed + lane``."""
        if n_lanes <= 0:
            raise ValueError(f"n_lanes must be positive, got {n_lanes}")
        return cls([base_seed + lane for lane in range(n_lanes)], params=params, **kwargs)

    @property
    def n_lanes(self) -> int:
        return len(self.machines)

    # ------------------------------------------------------------------ #
    # Array-shaped per-trial state (the vectorization seam)                #
    # ------------------------------------------------------------------ #

    def cycles(self):
        """Per-lane simulated cycles as an ``int64`` array."""
        return self.kernel.lane_cycles()

    def lane_state(self) -> dict[str, Any]:
        """Per-lane counters, one array per field.

        Keys: ``cycles``, ``events`` (kernel events dispatched),
        ``retired`` (loads retired), ``context_switches``,
        ``timer_interrupts``.  All arrays are indexed by lane.
        """
        import numpy as np

        return {
            "cycles": self.kernel.lane_cycles(),
            "events": self.kernel.lane_events(),
            "retired": self.kernel.lane_retired(),
            "context_switches": np.fromiter(
                (m.context_switches for m in self.machines),
                dtype=np.int64,
                count=self.n_lanes,
            ),
            "timer_interrupts": np.fromiter(
                (m.timer_interrupts for m in self.machines),
                dtype=np.int64,
                count=self.n_lanes,
            ),
        }

    # ------------------------------------------------------------------ #
    # Execution                                                           #
    # ------------------------------------------------------------------ #

    def run(
        self,
        name: str,
        rounds: int | None = None,
        options: dict[str, Any] | None = None,
    ) -> "list[TrialBatch]":
        """Run attack ``name`` on every lane; returns one batch per lane.

        Each lane's scenario draws from its own RNG stream (seeded by the
        lane's machine seed) and its own machine, so results match a
        serial ``run_on_machine`` loop over the same seeds exactly.
        """
        from repro.attacks.registry import get_attack
        from repro.attacks.trial import TrialBatch
        from repro.utils.rng import make_rng

        spec = get_attack(name)
        if rounds is None:
            rounds = spec.default_rounds
        if rounds <= 0:
            raise ValueError(f"rounds must be positive, got {rounds}")

        spans = []
        scenarios = []
        try:
            for machine, seed in zip(self.machines, self.seeds):
                span = machine.span("total")
                span.__enter__()
                spans.append(span)
                scenarios.append(spec.scenario(machine, make_rng(seed), **(options or {})))

            if all(_steppable(scenario) for scenario in scenarios):
                counts = [scenario.begin(rounds) for scenario in scenarios]
                for step in range(max(counts)):
                    for scenario, count in zip(scenarios, counts):
                        if step < count:
                            scenario.step(step)
                trials_per_lane = [scenario.finish() for scenario in scenarios]
            else:
                trials_per_lane = [scenario.run_trials(rounds) for scenario in scenarios]
        finally:
            for span in reversed(spans):
                span.__exit__(None, None, None)

        batches = []
        for machine, seed, scenario, trials in zip(
            self.machines, self.seeds, scenarios, trials_per_lane
        ):
            notes = dict(getattr(scenario, "notes", None) or {})
            quality, detail = spec.score(trials, notes)
            batches.append(
                TrialBatch(
                    attack=name,
                    seed=seed,
                    machine=machine.params.name,
                    rounds=rounds,
                    trials=trials,
                    quality=quality,
                    detail=detail,
                    simulated_cycles=machine.cycles,
                    spans=machine.profile.as_dict(),
                    metrics=machine.metrics().as_dict(),
                    notes=notes,
                )
            )
        return batches
