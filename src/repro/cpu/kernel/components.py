"""The pluggable components behind the ``Machine`` facade.

Each component owns exactly one subsystem and claims one or two pipeline
event types; everything a component needs from a sibling arrives either
as a pipeline event or through an explicitly wired ``*_port`` callable
(assigned by ``Machine._wire_kernel``).  The bodies are deliberate
transplants of the pre-kernel ``Machine`` methods — operation order and
RNG draw order are part of the equivalence contract pinned by
``tests/test_kernel_equivalence.py``.

Load pipeline::

    LoadIssued ──mmu──> AccessReady ──memsys──> FillDone
        ──prefetch──> ObserveDone ──retire──> LoadRetired (published)

The two modelling rules the old ``Machine`` enforced inline live in the
prefetch component now: a TLB-missing access does not update prefetcher
state (paper §4.3), and every prefetch fill is announced *before* it is
installed so the trace shows cause before effect.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from repro.cpu.context import ThreadContext
from repro.cpu.kernel.core import Component
from repro.cpu.kernel.events import (
    AccessReady,
    FillDone,
    FlushIssued,
    LineFlushed,
    LoadIssued,
    LoadRetired,
    ObserveDone,
    PrefetchDispatched,
    SwitchCompleted,
    SwitchIssued,
    TimerFired,
)
from repro.cpu.timing import TimingModel
from repro.memsys.hierarchy import CacheHierarchy, MemoryLevel
from repro.mmu.address_space import AddressSpace
from repro.mmu.buffer import Buffer
from repro.mmu.tlb import TLB
from repro.obs.metrics import Histogram
from repro.params import NoiseParams
from repro.prefetch.base import LoadEvent, Prefetcher, PrefetchRequest
from repro.sanitize.sanitizer import Sanitizer

#: Cycle cost of a clflush instruction (order of an LLC round trip).
CLFLUSH_CYCLES = 40

#: Fixed architectural cost of a context switch, before memory noise.
CONTEXT_SWITCH_CYCLES = 1500

#: Cost of the proposed clear-ip-prefetcher instruction: one cycle per
#: history entry (paper §8.3 assumes C_clear = 24).
CLEAR_PREFETCHER_CYCLES_PER_ENTRY = 1


def _null_translate(_vaddr: int) -> int | None:
    """Kernel noise loads never offer the prefetcher a usable translation."""
    return None


class MMUComponent(Component):
    """Owns the TLB; first stage of the load pipeline.

    Pokes the OS tick port before translating — the timer IRQ preempts
    the load, exactly as the old ``Machine.load`` called
    ``_maybe_timer_interrupt()`` before ``tlb.translate``.
    """

    name = "mmu"

    #: Wired to ``OSComponent.maybe_tick``.
    tick_port: Callable[[], None]

    def __init__(self, tlb: TLB) -> None:
        self.tlb = tlb

    def handlers(self) -> dict[type, Callable[..., None]]:
        return {LoadIssued: self.on_load}

    def on_load(self, ev: LoadIssued) -> None:
        self.tick_port()
        translation = self.tlb.translate(ev.ctx.space, ev.vaddr)
        self.kernel.post(
            AccessReady(ev.lane, ev.ctx, ev.ip, ev.vaddr, ev.fenced, translation)
        )

    def flush(self, keep_global: bool = True) -> None:
        """CR3-write TLB flush (port target for the OS component)."""
        self.tlb.flush(keep_global=keep_global)

    def warm(self, space: AddressSpace, vaddr: int) -> None:
        """Install a translation without memory-system side effects."""
        self.tlb.warm(space, vaddr)


class MemoryComponent(Component):
    """Owns the cache hierarchy; services demand accesses and flushes."""

    name = "memsys"

    def __init__(self, hierarchy: CacheHierarchy) -> None:
        self.hierarchy = hierarchy

    def handlers(self) -> dict[type, Callable[..., None]]:
        return {AccessReady: self.on_access, FlushIssued: self.on_flush}

    def on_access(self, ev: AccessReady) -> None:
        result = self.hierarchy.access(ev.translation.paddr)
        self.kernel.post(
            FillDone(ev.lane, ev.ctx, ev.ip, ev.vaddr, ev.fenced, ev.translation, result)
        )

    def on_flush(self, ev: FlushIssued) -> None:
        paddr = ev.ctx.space.translate(ev.vaddr)
        self.hierarchy.clflush(paddr)
        self.kernel.clock_of(ev.lane).charge(ev.ctx, CLFLUSH_CYCLES)
        self.kernel.publish(LineFlushed(ev.lane, ev.ctx, ev.vaddr, paddr))

    def demand_access(self, paddr: int):
        """Port target: a demand access outside the load pipeline (OS noise)."""
        return self.hierarchy.access(paddr)

    def insert_prefetch(self, paddr: int) -> None:
        """Port target: install a prefetched line (L2 + LLC, not L1)."""
        self.hierarchy.insert_prefetch(paddr)


class PrefetchComponent(Component):
    """Owns the IP-stride prefetcher and the noise prefetchers."""

    name = "prefetch"

    #: Wired to ``MemoryComponent.insert_prefetch``.
    insert_port: Callable[[int], None]

    def __init__(self, ip_stride: Prefetcher, noise_prefetchers: list[Prefetcher]) -> None:
        self.ip_stride = ip_stride
        self.noise_prefetchers = noise_prefetchers

    def handlers(self) -> dict[type, Callable[..., None]]:
        return {FillDone: self.on_fill}

    def on_fill(self, ev: FillDone) -> None:
        event: LoadEvent | None = None
        issued: tuple[PrefetchRequest, ...] = ()
        if not ev.fenced:
            event = LoadEvent(
                ip=ev.ip,
                vaddr=ev.vaddr,
                paddr=ev.translation.paddr,
                hit_level=ev.result.level,
                asid=ev.ctx.space.asid,
            )
            if ev.translation.tlb_hit:
                issued = self._feed_demand(ev.ctx, event)
            else:
                # §4.3: a TLB-missing first touch creates the translation but
                # leaves the prefetcher state untouched — only the next-page
                # prefetcher may carry a pattern across.
                issued = self._feed_tlb_miss(event)
        self.kernel.post(
            ObserveDone(
                ev.lane, ev.ctx, ev.ip, ev.vaddr, ev.fenced,
                ev.translation, ev.result, event, issued,
            )
        )

    def _dispatch(self, request: PrefetchRequest, trigger_ip: int) -> None:
        # Announce before installing: the trace shows the request leaving
        # the prefetcher, then the fill landing in the hierarchy.
        self.kernel.publish(PrefetchDispatched(self.lane, request, trigger_ip))
        self.insert_port(request.paddr)

    def _feed_demand(
        self, ctx: ThreadContext, event: LoadEvent
    ) -> tuple[PrefetchRequest, ...]:
        def translate(vaddr: int) -> int | None:
            try:
                return ctx.space.translate(vaddr)
            except KeyError:
                return None

        issued: list[PrefetchRequest] = []
        for prefetcher in (self.ip_stride, *self.noise_prefetchers):
            for request in prefetcher.observe(event, translate):
                self._dispatch(request, event.ip)
                issued.append(request)
        return tuple(issued)

    def _feed_tlb_miss(self, event: LoadEvent) -> tuple[PrefetchRequest, ...]:
        issued: list[PrefetchRequest] = []
        for request in self.ip_stride.observe_tlb_miss(event):
            self._dispatch(request, event.ip)
            issued.append(request)
        return tuple(issued)

    def feed_kernel(self, event: LoadEvent) -> None:
        """Port target: kernel noise loads feed only the IP-stride table."""
        for request in self.ip_stride.observe(event, _null_translate):
            self._dispatch(request, event.ip)

    def clear(self) -> None:
        """Port target: the §8.3 clear-ip-prefetcher instruction."""
        self.ip_stride.clear()


class RetireComponent(Component):
    """Prices the load, charges its context, and publishes retirement."""

    name = "retire"

    def __init__(self, timing: TimingModel, histogram: Histogram) -> None:
        self.timing = timing
        self.histogram = histogram

    def handlers(self) -> dict[type, Callable[..., None]]:
        return {ObserveDone: self.on_observe}

    def on_observe(self, ev: ObserveDone) -> None:
        latency = self.timing.measured(ev.translation.latency + ev.result.latency)
        self.kernel.clock_of(ev.lane).charge(ev.ctx, latency)
        self.histogram.observe(latency)
        done = LoadRetired(
            ev.lane, ev.ctx, ev.ip, ev.vaddr, ev.fenced,
            ev.translation, ev.result, ev.event, ev.issued, latency,
        )
        self.kernel.publish(done)
        self.kernel.complete(done)


class OSComponent(Component):
    """Timer interrupts, context switches, and their cache/prefetcher noise.

    Owns the scheduling state the old ``Machine`` kept inline: the running
    context, the switch/IRQ counters, the kernel's switch-noise working
    set and the fixed switch-path IPs (chosen once per boot), plus the
    §8.3 flush-on-switch mitigation flag.
    """

    name = "os"

    #: Wired to ``MemoryComponent.demand_access``.
    access_port: Callable[[int], object]
    #: Wired to ``PrefetchComponent.feed_kernel``.
    feed_port: Callable[[LoadEvent], None]
    #: Wired to ``PrefetchComponent.clear``.
    clear_port: Callable[[], None]
    #: Wired to ``MMUComponent.flush``.
    flush_tlb_port: Callable[..., None]

    def __init__(
        self,
        noise: NoiseParams,
        os_rng: np.random.Generator,
        kernel_space: AddressSpace,
        switch_noise: Buffer,
        switch_path_ips: list[int],
        clear_cost_cycles: int,
    ) -> None:
        self.noise = noise
        self.os_rng = os_rng
        self.kernel_space = kernel_space
        self.switch_noise = switch_noise
        self.switch_path_ips = switch_path_ips
        self.clear_cost_cycles = clear_cost_cycles
        self.current: ThreadContext | None = None
        self.context_switches = 0
        self.timer_interrupts = 0
        #: §8.3 mitigation: execute clear-ip-prefetcher on every domain switch.
        self.flush_prefetcher_on_switch = False

    def handlers(self) -> dict[type, Callable[..., None]]:
        return {SwitchIssued: self.on_switch}

    def on_switch(self, ev: SwitchIssued) -> None:
        """Switch the logical core to ``ev.to_ctx``.

        Same-address-space switches (threads of one process) keep the TLB;
        cross-space switches flush non-global entries.  Both kinds run the
        kernel's switch path, whose loads pollute the caches and the
        prefetcher table.
        """
        to_ctx = ev.to_ctx
        from_ctx = self.current
        if from_ctx is to_ctx:
            return
        self.context_switches += 1
        self.kernel.clock_of(self.lane).advance(CONTEXT_SWITCH_CYCLES)
        cross_space = from_ctx is not None and not from_ctx.same_address_space(to_ctx)
        if cross_space:
            self.flush_tlb_port(keep_global=True)
        # Cross-process switches run the heavier mm-switch path with
        # data-dependent kernel activity; same-space (thread) switches only
        # replay the fixed switch code.
        variable_ips = self.noise.switch_variable_ips if cross_space else 0
        self._inject_switch_noise(variable_ips)
        if self.flush_prefetcher_on_switch:
            self.run_prefetcher_clear()
        self.current = to_ctx
        self.kernel.publish(
            SwitchCompleted(
                self.lane,
                None if from_ctx is None else from_ctx.name,
                to_ctx.name,
                cross_space,
            )
        )

    def maybe_tick(self) -> None:
        """Run the kernel timer-IRQ path when the tick has elapsed.

        The IRQ handler touches a few kernel lines and executes one load at
        an effectively random kernel IP; with probability 1/256 that IP
        aliases (and clobbers) a trained prefetcher entry.  A backlog of
        elapsed ticks (e.g. after a long ``advance``) fires only once: the
        table's disturbance saturates, and the entries the backlogged ticks
        would have clobbered are retrained before the next observation
        anyway.
        """
        clock = self.kernel.clock_of(self.lane)
        if self.noise.switch_fixed_ips == 0:
            # Quiet machines (reverse-engineering benches) take no IRQs.
            clock.rearm_tick()
            return
        if not clock.tick_due():
            return
        self.timer_interrupts += 1
        clock.rearm_tick()
        n_lines = self.switch_noise.n_lines
        for _ in range(8):
            line = int(self.os_rng.integers(0, n_lines))
            self.access_port(self.kernel_space.translate(self.switch_noise.line_addr(line)))
        # Which IRQ handler ran is data-dependent: one variable-IP load.
        self._kernel_prefetcher_noise([int(self.os_rng.integers(0, 1 << 30))])
        self.kernel.publish(TimerFired(self.lane, clock.cycles))

    def run_prefetcher_clear(self) -> None:
        """Execute the proposed privileged clear-ip-prefetcher instruction."""
        self.kernel.clock_of(self.lane).advance(self.clear_cost_cycles)
        self.clear_port()

    def _inject_switch_noise(self, variable_ips: int) -> None:
        """Model the switch path's own memory traffic.

        Cache pollution: random lines of kernel memory are touched.
        Prefetcher pollution: the fixed switch-path IPs replay (occupying
        their slots, learning nothing — their data addresses vary), plus
        ``variable_ips`` loads at effectively random IPs, each with a 1/256
        chance of aliasing a trained entry.
        """
        n_lines = self.switch_noise.n_lines
        for _ in range(self.noise.switch_cache_lines):
            line = int(self.os_rng.integers(0, n_lines))
            self.access_port(self.kernel_space.translate(self.switch_noise.line_addr(line)))
        # Switch-path code loops over task/mm state, so each fixed IP issues
        # several loads per switch: a re-allocated fixed entry immediately
        # reaches confidence 1 and is no longer a preferred eviction victim.
        # (This is what makes a full-table covert channel lose ~6 of its 24
        # trained entries per switch — the paper's >25 % error rate, §7.2.)
        ips = [ip for ip in self.switch_path_ips for _ in range(2)] + [
            int(self.os_rng.integers(0, 1 << 30)) for _ in range(variable_ips)
        ]
        self._kernel_prefetcher_noise(ips)

    def _kernel_prefetcher_noise(self, ips: list[int]) -> None:
        """Kernel loads (random data lines) at the given IPs."""
        n_lines = self.switch_noise.n_lines
        for ip in ips:
            line = int(self.os_rng.integers(0, n_lines))
            vaddr = self.switch_noise.line_addr(line)
            event = LoadEvent(
                ip=ip,
                vaddr=vaddr,
                paddr=self.kernel_space.translate(vaddr),
                hit_level=MemoryLevel.LLC,
                asid=self.kernel_space.asid,
            )
            self.feed_port(event)


# --------------------------------------------------------------------- #
# Taps: obs + sanitize ride the published event stream                    #
# --------------------------------------------------------------------- #


class TracerTap:
    """Translates published kernel events into structured trace events.

    Registered *before* the sanitizer tap, preserving the pre-kernel
    emit-then-audit order on every load and switch.
    """

    __slots__ = ("tracer", "clock")

    def __init__(self, tracer, clock) -> None:
        self.tracer = tracer
        self.clock = clock

    def __call__(self, ev) -> None:
        tracer = self.tracer
        if not tracer.enabled:
            return
        from repro.obs.events import Clflush, ContextSwitch, LoadTraced, PrefetchIssued

        kind = type(ev)
        if kind is LoadRetired:
            tracer.emit(
                LoadTraced(
                    cycle=self.clock.cycles,
                    ip=ev.ip,
                    vaddr=ev.vaddr,
                    paddr=ev.translation.paddr,
                    level=int(ev.result.level),
                    latency=ev.latency,
                    tlb_hit=ev.translation.tlb_hit,
                    fenced=ev.fenced,
                    asid=ev.ctx.space.asid,
                )
            )
        elif kind is PrefetchDispatched:
            tracer.emit(
                PrefetchIssued(
                    cycle=self.clock.cycles,
                    source=ev.request.source,
                    paddr=ev.request.paddr,
                    trigger_ip=ev.trigger_ip,
                )
            )
        elif kind is LineFlushed:
            tracer.emit(Clflush(cycle=self.clock.cycles, vaddr=ev.vaddr, paddr=ev.paddr))
        elif kind is SwitchCompleted:
            tracer.emit(
                ContextSwitch(
                    cycle=self.clock.cycles,
                    from_ctx=ev.from_name,
                    to_ctx=ev.to_name,
                    cross_space=ev.cross_space,
                )
            )


class SanitizerTap:
    """Feeds the runtime invariant auditor from the published stream."""

    __slots__ = ("sanitizer",)

    def __init__(self, sanitizer: Sanitizer) -> None:
        self.sanitizer = sanitizer

    def __call__(self, ev) -> None:
        kind = type(ev)
        if kind is LoadRetired:
            self.sanitizer.after_load(ev.event, ev.translation, ev.issued)
        elif kind is SwitchCompleted:
            self.sanitizer.after_switch()
