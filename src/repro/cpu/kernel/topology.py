"""Topology descriptors: what a kernel instance is simulating.

Today every machine is one logical core in front of a private L1/L2 and
a shared (but single-client) LLC.  The descriptor exists so the planned
cross-core work (XPT-style channels, adversarial prefetch) is a
component-*wiring* change — two ``CoreDescriptor``\\ s sharing one LLC
component — rather than another ``Machine`` rewrite.  ``MachineBatch``
lanes are *trials*, not cores: each lane instantiates this topology.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True, slots=True)
class CoreDescriptor:
    """One logical core: a name plus its private cache levels."""

    name: str = "core0"
    private_levels: tuple[str, ...] = ("l1d", "l2")


@dataclass(frozen=True, slots=True)
class Topology:
    """Cores plus what they share.

    ``shared_llc=True`` is the only modeled sharing today; a future
    multi-core machine adds cores here and wires their memory components
    at the same LLC.
    """

    cores: tuple[CoreDescriptor, ...] = field(default_factory=tuple)
    shared_llc: bool = True

    def __post_init__(self) -> None:
        if not self.cores:
            raise ValueError("a topology needs at least one core")
        names = [core.name for core in self.cores]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate core names in topology: {names}")

    @property
    def n_cores(self) -> int:
        return len(self.cores)


def single_core(name: str = "core0") -> Topology:
    """The current default: one logical core, shared LLC."""
    return Topology(cores=(CoreDescriptor(name=name),), shared_llc=True)
