"""The event/queue simulation core.

:class:`SimKernel` owns a deterministic FIFO event queue and a set of
*lanes*.  A lane is one independent simulated machine: its own
:class:`~repro.cpu.kernel.clock.KernelClock`, its own components, its own
taps.  ``Machine`` creates a private kernel with one lane;
:class:`~repro.cpu.kernel.batch.MachineBatch` adds N lanes to a single
kernel and steps trials through it interleaved.

Determinism contract
--------------------
The queue is strictly FIFO and handlers are synchronous, so the dispatch
order is a pure function of the submission order — no wall clock, no
host-order iteration, no randomness of its own.  All randomness stays in
the components' seeded RNG streams, exactly where the pre-kernel
``Machine`` kept it; this is what makes same-seed runs byte-identical to
the committed golden traces (``tests/golden/``).

Component contract
------------------
Components register one handler per pipeline event type and communicate
only through:

* ``self.kernel.post(event)`` — hand an event to the next pipeline stage;
* ``self.kernel.publish(event)`` — synchronously notify the lane's taps
  (tracer, sanitizer) in registration order;
* ``self.kernel.clock_of(lane)`` — the lane's clock;
* explicitly wired ``*_port`` callables (narrow, method-shaped buses).

Reaching into the ``Machine`` facade or into a sibling component's
attributes from component code is a layering violation — flow lint rule
RL019 enforces this mechanically.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Callable

from repro.cpu.kernel.clock import KernelClock
from repro.cpu.kernel.events import SimEvent
from repro.cpu.kernel.topology import Topology, single_core

#: A tap: called synchronously with every event published on its lane.
Tap = Callable[[SimEvent], None]


class Component:
    """Base class for pluggable kernel components.

    Subclasses override :meth:`handlers` to claim pipeline event types
    and receive ``self.kernel``/``self.lane`` via :meth:`attach` when
    registered.  Ports (``*_port`` attributes) are wired afterwards by
    the machine that assembles the lane.
    """

    #: Stable component name (unique per lane).
    name = "component"

    kernel: "SimKernel"
    lane: int

    def attach(self, kernel: "SimKernel", lane: int) -> None:
        self.kernel = kernel
        self.lane = lane

    def handlers(self) -> dict[type, Callable[..., None]]:
        """Map of pipeline event type -> bound handler."""
        return {}


class _Lane:
    """Per-lane dispatch state: clock, handler table, taps, counters."""

    __slots__ = ("index", "clock", "handlers", "taps", "components", "events", "retired")

    def __init__(self, index: int, clock: KernelClock) -> None:
        self.index = index
        self.clock = clock
        self.handlers: dict[type, Callable[..., None]] = {}
        self.taps: list[Tap] = []
        self.components: dict[str, Component] = {}
        self.events = 0
        self.retired = 0


class SimKernel:
    """Deterministic FIFO event kernel over N independent lanes."""

    def __init__(self, topology: Topology | None = None) -> None:
        self.topology = topology if topology is not None else single_core()
        self._lanes: list[_Lane] = []
        self._queue: deque[SimEvent] = deque()
        self._completion: dict[int, SimEvent] = {}

    # ------------------------------------------------------------------ #
    # Assembly                                                            #
    # ------------------------------------------------------------------ #

    def add_lane(self, clock: KernelClock | None = None) -> int:
        """Create a new lane; returns its index."""
        lane = _Lane(len(self._lanes), clock if clock is not None else KernelClock())
        self._lanes.append(lane)
        return lane.index

    @property
    def n_lanes(self) -> int:
        return len(self._lanes)

    def clock_of(self, lane: int) -> KernelClock:
        return self._lanes[lane].clock

    def component_of(self, lane: int, name: str) -> Component:
        return self._lanes[lane].components[name]

    def register(self, lane: int, component: Component) -> Component:
        """Attach ``component`` to ``lane`` and claim its event types."""
        state = self._lanes[lane]
        if component.name in state.components:
            raise ValueError(
                f"lane {lane} already has a component named {component.name!r}"
            )
        component.attach(self, lane)
        state.components[component.name] = component
        for event_type, handler in component.handlers().items():
            if event_type in state.handlers:
                raise ValueError(
                    f"lane {lane}: {event_type.__name__} already handled by "
                    f"another component"
                )
            state.handlers[event_type] = handler
        return component

    def add_tap(self, lane: int, tap: Tap) -> None:
        """Append a tap; taps run synchronously in registration order."""
        self._lanes[lane].taps.append(tap)

    # ------------------------------------------------------------------ #
    # Dispatch                                                            #
    # ------------------------------------------------------------------ #

    def post(self, event: SimEvent) -> None:
        """Queue a pipeline event for its lane's handling component."""
        self._queue.append(event)

    def publish(self, event: SimEvent) -> None:
        """Synchronously fan ``event`` out to its lane's taps."""
        for tap in self._lanes[event.lane].taps:
            tap(event)

    def complete(self, event: SimEvent) -> None:
        """Record the terminal event ``submit`` hands back to the facade."""
        lane = self._lanes[event.lane]
        lane.retired += 1
        self._completion[event.lane] = event

    def submit(self, event: SimEvent) -> SimEvent | None:
        """Post ``event`` and drain the queue; return the lane's completion.

        This is the facade entry point: one architectural operation
        (a load, a flush, a switch) goes in, the pipeline runs to idle,
        and the terminal event (if the pipeline produced one) comes back.
        """
        self._queue.append(event)
        self.drain()
        return self._completion.pop(event.lane, None)

    def drain(self) -> None:
        """Dispatch queued events in FIFO order until the queue is idle."""
        queue = self._queue
        lanes = self._lanes
        while queue:
            event = queue.popleft()
            lane = lanes[event.lane]
            lane.events += 1
            handler = lane.handlers.get(type(event))
            if handler is None:
                raise LookupError(
                    f"lane {lane.index}: no component handles "
                    f"{type(event).__name__}"
                )
            handler(event)

    # ------------------------------------------------------------------ #
    # Array-shaped inspection (the vectorization seam)                     #
    # ------------------------------------------------------------------ #

    def lane_cycles(self):
        """Per-lane cycle counters as an ``int64`` NumPy array."""
        import numpy as np

        return np.fromiter(
            (lane.clock.cycles for lane in self._lanes), dtype=np.int64, count=len(self._lanes)
        )

    def lane_events(self):
        """Per-lane dispatched-event counts as an ``int64`` NumPy array."""
        import numpy as np

        return np.fromiter(
            (lane.events for lane in self._lanes), dtype=np.int64, count=len(self._lanes)
        )

    def lane_retired(self):
        """Per-lane retired-operation counts as an ``int64`` NumPy array."""
        import numpy as np

        return np.fromiter(
            (lane.retired for lane in self._lanes), dtype=np.int64, count=len(self._lanes)
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SimKernel(lanes={len(self._lanes)}, queued={len(self._queue)})"
