"""``repro.cpu.kernel`` — the event-driven simulation core.

The :class:`~repro.cpu.kernel.core.SimKernel` dispatches typed simulation
events (:mod:`repro.cpu.kernel.events`) through a deterministic FIFO queue
to pluggable components (:mod:`repro.cpu.kernel.components`); the public
``Machine`` is a facade over one kernel lane, and
:class:`~repro.cpu.kernel.batch.MachineBatch` steps N same-topology trials
through a single kernel instance with array-shaped per-trial state.  See
the "Simulation kernel" section of ``DESIGN.md``.
"""

from repro.cpu.kernel.batch import MachineBatch
from repro.cpu.kernel.clock import DEFAULT_TICK_CYCLES, KernelClock
from repro.cpu.kernel.core import Component, SimKernel
from repro.cpu.kernel.topology import CoreDescriptor, Topology, single_core

__all__ = [
    "Component",
    "CoreDescriptor",
    "DEFAULT_TICK_CYCLES",
    "KernelClock",
    "MachineBatch",
    "SimKernel",
    "Topology",
    "single_core",
]
