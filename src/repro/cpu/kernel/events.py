"""Typed simulation events — the kernel's only inter-component currency.

Two families share one base class:

* **Pipeline events** travel through the kernel's FIFO queue
  (:meth:`SimKernel.post`) from one component to the next; each is
  handled by exactly one component.  The load path is
  ``LoadIssued → AccessReady → FillDone → ObserveDone`` with the retire
  stage publishing a terminal :class:`LoadRetired`.
* **Published events** (:meth:`SimKernel.publish`) fan out synchronously
  to the lane's taps — the observability tracer and the sanitizer ride
  the event stream instead of being called inline from subsystem code.

Events are plain ``slots`` dataclasses rather than frozen ones: they are
created once per pipeline stage on the hottest path in the simulator, and
the kernel's single-handler dispatch means nothing ever mutates them.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cpu.context import ThreadContext
from repro.memsys.hierarchy import AccessResult
from repro.mmu.tlb import TranslationResult
from repro.prefetch.base import LoadEvent, PrefetchRequest


@dataclass(slots=True)
class SimEvent:
    """Base event: every event names the lane whose components handle it."""

    lane: int


# --------------------------------------------------------------------- #
# Load pipeline (queued)                                                  #
# --------------------------------------------------------------------- #


@dataclass(slots=True)
class LoadIssued(SimEvent):
    """A demand load enters the pipeline (handled by the MMU component)."""

    ctx: ThreadContext
    ip: int
    vaddr: int
    fenced: bool


@dataclass(slots=True)
class AccessReady(SimEvent):
    """Translation done; the memory component performs the cache access."""

    ctx: ThreadContext
    ip: int
    vaddr: int
    fenced: bool
    translation: TranslationResult


@dataclass(slots=True)
class FillDone(SimEvent):
    """Cache access done; the prefetch component observes the load."""

    ctx: ThreadContext
    ip: int
    vaddr: int
    fenced: bool
    translation: TranslationResult
    result: AccessResult


@dataclass(slots=True)
class ObserveDone(SimEvent):
    """Prefetchers fed; the retire component prices and retires the load."""

    ctx: ThreadContext
    ip: int
    vaddr: int
    fenced: bool
    translation: TranslationResult
    result: AccessResult
    event: LoadEvent | None
    issued: tuple[PrefetchRequest, ...]


@dataclass(slots=True)
class FlushIssued(SimEvent):
    """A ``clflush`` enters the pipeline (handled by the memory component)."""

    ctx: ThreadContext
    vaddr: int


@dataclass(slots=True)
class SwitchIssued(SimEvent):
    """A context switch enters the pipeline (handled by the OS component)."""

    to_ctx: ThreadContext


# --------------------------------------------------------------------- #
# Published events (synchronous tap fan-out)                              #
# --------------------------------------------------------------------- #


@dataclass(slots=True)
class LoadRetired(SimEvent):
    """Terminal load event: measured latency attached, taps notified."""

    ctx: ThreadContext
    ip: int
    vaddr: int
    fenced: bool
    translation: TranslationResult
    result: AccessResult
    event: LoadEvent | None
    issued: tuple[PrefetchRequest, ...]
    latency: int


@dataclass(slots=True)
class PrefetchDispatched(SimEvent):
    """One prefetch request left a prefetcher and is about to fill."""

    request: PrefetchRequest
    trigger_ip: int


@dataclass(slots=True)
class LineFlushed(SimEvent):
    """A ``clflush`` completed (cost already charged)."""

    ctx: ThreadContext
    vaddr: int
    paddr: int


@dataclass(slots=True)
class SwitchCompleted(SimEvent):
    """A context switch completed (noise injected, ``current`` updated)."""

    from_name: str | None
    to_name: str
    cross_space: bool


@dataclass(slots=True)
class TimerFired(SimEvent):
    """The timer-IRQ path ran (kernel noise already injected)."""

    cycle: int
