"""A minimal round-robin scheduler with ``sched_yield`` semantics.

The paper's attacks synchronize with the victim by calling ``sched_yield()``
(§6.2): the attacker trains, yields the core to the victim, and regains it
after the victim's quantum (or its own yield).  This scheduler reproduces
that hand-off and charges the context-switch cost — including the switch's
cache/prefetcher noise — through :meth:`Machine.context_switch`.
"""

from __future__ import annotations

from repro.cpu.context import ThreadContext
from repro.cpu.kernel.clock import DEFAULT_TICK_CYCLES
from repro.cpu.machine import Machine

#: Default scheduling period: the kernel clock's ~100 µs tick.  One
#: constant serves both the timer-interrupt period and the scheduler
#: quantum — they model the same OS tick (paper §8.3 cost model).
DEFAULT_QUANTUM_CYCLES = DEFAULT_TICK_CYCLES


class Scheduler:
    """Round-robin over a fixed set of contexts on one logical core."""

    def __init__(
        self,
        machine: Machine,
        contexts: list[ThreadContext],
        quantum_cycles: int = DEFAULT_QUANTUM_CYCLES,
    ) -> None:
        if not contexts:
            raise ValueError("scheduler needs at least one context")
        if quantum_cycles <= 0:
            raise ValueError(f"quantum must be positive, got {quantum_cycles}")
        self.machine = machine
        self.contexts = list(contexts)
        self.quantum_cycles = quantum_cycles
        self._index = 0
        machine.context_switch(self.contexts[0])

    @property
    def running(self) -> ThreadContext:
        return self.contexts[self._index]

    def sched_yield(self) -> ThreadContext:
        """Give up the core; the next runnable context is scheduled.

        Returns the newly running context.  Models the
        ``sched_yield()``-based synchronization of the paper's §6.2.
        """
        self._index = (self._index + 1) % len(self.contexts)
        self.machine.context_switch(self.running)
        return self.running

    def run_quantum(self) -> None:
        """Let the running context burn one full quantum of compute."""
        self.machine.advance(self.quantum_cycles)

    def switch_to(self, ctx: ThreadContext) -> None:
        """Directly schedule ``ctx`` (it must be managed by this scheduler)."""
        if ctx not in self.contexts:
            raise ValueError(f"context {ctx.name!r} is not managed by this scheduler")
        self._index = self.contexts.index(ctx)
        self.machine.context_switch(ctx)
