"""Execution substrate: the simulated machine, thread contexts, scheduler.

`Machine` wires the MMU, cache hierarchy and prefetchers into the load path
and owns the global cycle clock.  All contexts run on the *same logical
core* — the paper's threat model — so they share the caches, the TLB and,
crucially, the IP-stride prefetcher table.
"""

from repro.cpu.code import CodeRegion, match_low_bits
from repro.cpu.context import ThreadContext
from repro.cpu.machine import Machine
from repro.cpu.scheduler import Scheduler
from repro.cpu.timing import TimingModel

__all__ = [
    "Machine",
    "ThreadContext",
    "Scheduler",
    "CodeRegion",
    "match_low_bits",
    "TimingModel",
]
