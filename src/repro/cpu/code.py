"""Instruction-pointer bookkeeping for simulated code.

A victim binary or attacker gadget is modeled as a :class:`CodeRegion`: a
base address (optionally slid by ASLR, page-aligned, so its low 12 bits are
stable) plus named load instructions at fixed offsets.  The attacker's core
preparation step — "generate a local version of the targeted load
instructions [that] masquerade as the target loads" (paper §2.3) — is
:func:`match_low_bits`, which places a gadget load so its IP agrees with the
victim's in the low 8 bits.
"""

from __future__ import annotations

from repro.mmu.aslr import Aslr
from repro.utils.bits import low_bits


def match_low_bits(region_base: int, target_ip: int, n_bits: int = 8) -> int:
    """Smallest IP >= ``region_base`` sharing ``target_ip``'s low ``n_bits``.

    This is the "IP offset using NOPs" trick of the paper's Listing 2: pad a
    local load with NOPs until its address aliases the victim's prefetcher
    entry.
    """
    modulus = 1 << n_bits
    return region_base + ((target_ip - region_base) % modulus)


class CodeRegion:
    """Named load instructions laid out from a (possibly ASLR-slid) base."""

    def __init__(self, base_ip: int, aslr: Aslr | None = None, name: str = "code") -> None:
        self.name = name
        self.requested_base = base_ip
        self.base = aslr.randomize_base(base_ip) if aslr is not None else base_ip
        self._labels: dict[str, int] = {}
        # Mirror of the placed IPs: place_aliasing probes "is this IP taken?"
        # once per 256-byte step, and covert channels / leakcheck gadgets
        # place hundreds of aliased copies — a linear scan of the label map
        # per probe made that quadratic in the number of placed loads.
        self._placed_ips: set[int] = set()

    def place(self, label: str, offset: int) -> int:
        """Register a load instruction at ``base + offset``; returns its IP."""
        if label in self._labels:
            raise ValueError(f"label {label!r} already placed in region {self.name!r}")
        if offset < 0:
            raise ValueError(f"offset must be non-negative, got {offset}")
        ip = self.base + offset
        self._labels[label] = ip
        self._placed_ips.add(ip)
        return ip

    def place_aliasing(self, label: str, target_ip: int, n_bits: int = 8) -> int:
        """Register a load whose IP aliases ``target_ip`` in the low ``n_bits``.

        Successive calls for the same target land 256 bytes apart, mirroring
        NOP-padded copies of the gadget load.
        """
        if label in self._labels:
            raise ValueError(f"label {label!r} already placed in region {self.name!r}")
        candidate = match_low_bits(self.base, target_ip, n_bits)
        while candidate in self._placed_ips:
            candidate += 1 << n_bits
        self._labels[label] = candidate
        self._placed_ips.add(candidate)
        return candidate

    def ip(self, label: str) -> int:
        """IP of a previously placed load."""
        if label not in self._labels:
            raise KeyError(f"no load labeled {label!r} in region {self.name!r}")
        return self._labels[label]

    def labels(self) -> dict[str, int]:
        """Copy of the label → IP map."""
        return dict(self._labels)

    def low_bits_of(self, label: str, n_bits: int = 8) -> int:
        """The prefetcher-visible index bits of a placed load."""
        return low_bits(self.ip(label), n_bits)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CodeRegion({self.name!r}, base={self.base:#x}, loads={len(self._labels)})"
