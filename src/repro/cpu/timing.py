"""Measured-latency noise model.

A real `rdtscp`-bracketed load measurement carries jitter from pipeline
effects, interrupts and SMIs.  We add seeded Gaussian jitter plus rare large
spikes; the LLC-hit threshold (120 cycles, paper Fig. 6) must stay robust to
this noise, exactly as on hardware.
"""

from __future__ import annotations

import numpy as np

from repro.params import NoiseParams


class TimingModel:
    """Perturb ideal latencies into noisy measured latencies."""

    def __init__(self, noise: NoiseParams, rng: np.random.Generator) -> None:
        self.noise = noise
        self._rng = rng

    def measured(self, ideal_latency: int) -> int:
        """Return a noisy measurement of ``ideal_latency`` (cycles, >= 1)."""
        latency = float(ideal_latency)
        if self.noise.timing_sigma > 0.0:
            latency += self._rng.normal(0.0, self.noise.timing_sigma)
        if self.noise.timing_spike_prob > 0.0 and (
            self._rng.random() < self.noise.timing_spike_prob
        ):
            latency += self.noise.timing_spike_cycles
        return max(1, round(latency))
