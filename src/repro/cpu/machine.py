"""The simulated machine: a facade over one event-kernel lane.

The `Machine` keeps its seed-era public API — construction, ``load``,
``clflush``, ``context_switch``, spans, metrics — but the work happens in
:mod:`repro.cpu.kernel`: a load becomes a ``LoadIssued`` event dispatched
through the kernel's FIFO queue to the MMU, memory, prefetch and retire
components, and the tracer/sanitizer observe the published event stream
as taps instead of being called inline.

``load(ctx, ip, vaddr)`` → ``LoadIssued`` → TLB translate →
cache-hierarchy access → prefetcher observation → prefetch fills →
``LoadRetired`` with the noisy measured latency.

Two modelling rules from the paper are enforced in the prefetch component
rather than in the prefetcher itself:

* a TLB-missing access does **not** update prefetcher state (§4.3);
* a context switch flushes non-global TLB entries and injects the switch's
  memory traffic into the caches *and* the prefetcher table (the noise the
  paper blames for cross-process Prime+Probe degradation, §5.1, and for the
  24-entry covert channel's >25 % error rate, §7.2) — but never flushes the
  IP-stride table, unless the §8.3 mitigation is enabled.

Equivalence with the pre-kernel machine is pinned byte-for-byte by
``tests/test_kernel_equivalence.py`` against committed golden traces.
"""

from __future__ import annotations

from repro.cpu.code import CodeRegion
from repro.cpu.context import ThreadContext
from repro.cpu.kernel.clock import KernelClock
from repro.cpu.kernel.components import (
    CLEAR_PREFETCHER_CYCLES_PER_ENTRY,
    CLFLUSH_CYCLES,
    CONTEXT_SWITCH_CYCLES,
    MemoryComponent,
    MMUComponent,
    OSComponent,
    PrefetchComponent,
    RetireComponent,
    SanitizerTap,
    TracerTap,
)
from repro.cpu.kernel.core import SimKernel
from repro.cpu.kernel.events import FlushIssued, LoadIssued, SwitchIssued
from repro.cpu.timing import TimingModel
from repro.memsys.addr import line_index
from repro.memsys.hierarchy import CacheHierarchy, MemoryLevel
from repro.mmu.address_space import AddressSpace
from repro.mmu.aslr import Aslr
from repro.mmu.buffer import Buffer
from repro.mmu.page_table import PhysicalMemory
from repro.mmu.tlb import TLB
from repro.obs.metrics import Histogram, MetricsRegistry, latency_bounds, snapshot
from repro.obs.profiler import Span, SpanProfile
from repro.obs.tracer import Tracer, resolve_tracer
from repro.params import PAGE_SIZE, DEFAULT_MACHINE, MachineParams
from repro.prefetch.adjacent import AdjacentPrefetcher
from repro.prefetch.base import Prefetcher
from repro.prefetch.dcu import DCUPrefetcher
from repro.prefetch.ip_stride import IPStridePrefetcher
from repro.prefetch.streamer import StreamerPrefetcher
from repro.sanitize.sanitizer import Sanitizer, sanitize_enabled
from repro.utils.rng import derive_rng, make_rng

__all__ = [
    "CLEAR_PREFETCHER_CYCLES_PER_ENTRY",
    "CLFLUSH_CYCLES",
    "CONTEXT_SWITCH_CYCLES",
    "Machine",
    "line_of",
]


class Machine:
    """A simulated Intel machine (one logical core's view).

    Pass ``kernel=`` to join an existing :class:`SimKernel` as a new lane
    (how :class:`~repro.cpu.kernel.batch.MachineBatch` steps many trials
    through one kernel); by default each machine owns a private kernel.
    """

    def __init__(
        self,
        params: MachineParams = DEFAULT_MACHINE,
        seed: int | None = None,
        sanitize: bool | None = None,
        trace: Tracer | bool | None = None,
        kernel: SimKernel | None = None,
    ) -> None:
        self.params = params
        self.rng = make_rng(seed)
        self._timing = TimingModel(params.noise, derive_rng(self.rng, "timing"))
        self._os_rng = derive_rng(self.rng, "os")
        self.physical = PhysicalMemory(derive_rng(self.rng, "frames"))
        self.aslr = Aslr(derive_rng(self.rng, "aslr"), enabled=params.aslr_enabled)
        self.kaslr = Aslr(derive_rng(self.rng, "kaslr"), enabled=params.aslr_enabled)
        self.hierarchy = CacheHierarchy(params)
        self.tlb = TLB(params.tlb_entries, params.page_walk_latency)
        ip_stride = IPStridePrefetcher(
            params.prefetcher, enable_next_page=params.enable_next_page_prefetcher
        )
        self.noise_prefetchers: list[Prefetcher] = []
        if params.enable_dcu_prefetcher:
            self.noise_prefetchers.append(DCUPrefetcher())
        if params.enable_adjacent_prefetcher:
            self.noise_prefetchers.append(AdjacentPrefetcher())
        if params.enable_streamer_prefetcher:
            self.noise_prefetchers.append(StreamerPrefetcher())

        #: The event kernel and this machine's lane in it.  The lane's
        #: clock is the single source of simulated time: ``cycles``,
        #: ``seconds()``, the timer-interrupt deadline and span timestamps
        #: all read through it.
        self.kernel = kernel if kernel is not None else SimKernel()
        self.lane = self.kernel.add_lane(KernelClock())
        self._kernel_clock = self.kernel.clock_of(self.lane)

        #: Structured tracing (repro.obs); NULL_TRACER when off, so every
        #: hook site pays a single ``enabled`` attribute check.
        self.tracer = resolve_tracer(trace)
        #: Lane-aware sinks (ChromeTraceSink) label a per-machine lane; a
        #: shared tracer therefore no longer collapses multiple machines
        #: into one unlabeled Chrome-trace process.
        self.tracer.register_machine(self)
        #: Cycle-attribution profiler aggregate (``with machine.span(...)``);
        #: always collected — spans are rare compared to loads.
        self.profile = SpanProfile()
        #: Measured-latency histogram straddling the LLC-hit threshold;
        #: always populated — one bisect over ~5 bounds per load.
        self.latency_histogram = Histogram(latency_bounds(params))
        for component in (self.hierarchy, self.tlb, ip_stride):
            component.tracer = self.tracer
            component.clock = self._kernel_clock.now

        #: Per-machine ASID sequence: kernel gets 1, user spaces 2, 3, ...
        #: (a process-global counter would make same-seed traces differ).
        self._next_asid = 1
        self.kernel_space = AddressSpace(
            "kernel", self.physical, aslr=self.kaslr, global_pages=True,
            asid=self._alloc_asid(),
        )
        # The kernel working set touched by switch/IRQ paths.  It must be
        # large: a tiny pool would revisit the same lines every switch, so a
        # single page that happens to be slice-hash-equivalent to a victim
        # page would poison the same monitored cache sets on every round.  4 MiB
        # approximates a kernel steady-state working set.
        self._switch_noise = Buffer(
            self.kernel_space.mmap(1024 * PAGE_SIZE, locked=True, name="switch-noise")
        )
        # The context-switch path is fixed code: its load IPs are chosen
        # once per boot and hit the same prefetcher indexes every switch.
        self._switch_path_ips = [
            int(self._os_rng.integers(0, 1 << 30))
            for _ in range(params.noise.switch_fixed_ips)
        ]
        self._wire_kernel(ip_stride)

        #: Runtime invariant auditing (repro.sanitize); ``None`` when off, so
        #: the published-event tap is simply never registered.  Built after
        #: the kernel is wired — the checkers read the components' state
        #: through the facade properties — and tapped after the tracer,
        #: preserving emit-then-audit order.
        self.sanitizer: Sanitizer | None = (
            Sanitizer(self) if sanitize_enabled(sanitize) else None
        )
        if self.sanitizer is not None:
            self.sanitizer.register_space(self.kernel_space)
            self.kernel.add_tap(self.lane, SanitizerTap(self.sanitizer))

    # ------------------------------------------------------------------ #
    # Kernel assembly                                                     #
    # ------------------------------------------------------------------ #

    def _wire_kernel(self, ip_stride: IPStridePrefetcher) -> None:
        """Register this lane's components and wire their ports and taps."""
        kernel, lane = self.kernel, self.lane
        self._mmu = kernel.register(lane, MMUComponent(self.tlb))
        self._memsys = kernel.register(lane, MemoryComponent(self.hierarchy))
        self._prefetch = kernel.register(
            lane, PrefetchComponent(ip_stride, self.noise_prefetchers)
        )
        self._retire = kernel.register(
            lane, RetireComponent(self._timing, self.latency_histogram)
        )
        self._os = kernel.register(
            lane,
            OSComponent(
                noise=self.params.noise,
                os_rng=self._os_rng,
                kernel_space=self.kernel_space,
                switch_noise=self._switch_noise,
                switch_path_ips=self._switch_path_ips,
                clear_cost_cycles=(
                    CLEAR_PREFETCHER_CYCLES_PER_ENTRY * self.params.prefetcher.n_entries
                ),
            ),
        )
        # Ports: the narrow buses components are allowed to talk over
        # (flow lint rule RL019 flags anything wider).
        self._mmu.tick_port = self._os.maybe_tick
        self._prefetch.insert_port = self._memsys.insert_prefetch
        self._os.access_port = self._memsys.demand_access
        self._os.feed_port = self._prefetch.feed_kernel
        self._os.clear_port = self._prefetch.clear
        self._os.flush_tlb_port = self._mmu.flush
        # Taps: the tracer taps here; the sanitizer (built after wiring)
        # taps second in ``__init__``, preserving emit-then-audit order.
        kernel.add_tap(lane, TracerTap(self.tracer, self._kernel_clock))

    @property
    def ip_stride(self) -> IPStridePrefetcher:
        """The IP-stride prefetcher, owned by the kernel's prefetch component.

        Settable: the §8.2 defenses swap in a hardened variant
        (``harden_machine``, ``disable_prefetcher``) after construction,
        and the swap must reach the component actually observing loads.
        """
        return self._prefetch.ip_stride

    @ip_stride.setter
    def ip_stride(self, prefetcher: IPStridePrefetcher) -> None:
        self._prefetch.ip_stride = prefetcher

    # ------------------------------------------------------------------ #
    # Clock and OS state (delegated to the kernel lane)                    #
    # ------------------------------------------------------------------ #

    @property
    def cycles(self) -> int:
        """Simulated cycle count (the lane clock is the source of truth)."""
        return self._kernel_clock.cycles

    @cycles.setter
    def cycles(self, value: int) -> None:
        self._kernel_clock.cycles = value

    @property
    def current(self) -> ThreadContext | None:
        """The context the logical core is running."""
        return self._os.current

    @current.setter
    def current(self, ctx: ThreadContext | None) -> None:
        self._os.current = ctx

    @property
    def context_switches(self) -> int:
        return self._os.context_switches

    @context_switches.setter
    def context_switches(self, value: int) -> None:
        self._os.context_switches = value

    @property
    def timer_interrupts(self) -> int:
        return self._os.timer_interrupts

    @timer_interrupts.setter
    def timer_interrupts(self, value: int) -> None:
        self._os.timer_interrupts = value

    @property
    def flush_prefetcher_on_switch(self) -> bool:
        """§8.3 mitigation: execute clear-ip-prefetcher on every switch."""
        return self._os.flush_prefetcher_on_switch

    @flush_prefetcher_on_switch.setter
    def flush_prefetcher_on_switch(self, value: bool) -> None:
        self._os.flush_prefetcher_on_switch = value

    @property
    def timer_period_cycles(self) -> int:
        """Timer-interrupt period (~100 µs tick) on the lane clock."""
        return self._kernel_clock.tick_period

    @timer_period_cycles.setter
    def timer_period_cycles(self, value: int) -> None:
        self._kernel_clock.tick_period = value

    # ------------------------------------------------------------------ #
    # Construction helpers                                                #
    # ------------------------------------------------------------------ #

    def _alloc_asid(self) -> int:
        asid = self._next_asid
        self._next_asid += 1
        return asid

    def new_address_space(self, name: str) -> AddressSpace:
        """Create a fresh user address space (one per process)."""
        space = AddressSpace(name, self.physical, aslr=self.aslr, asid=self._alloc_asid())
        if self.sanitizer is not None:
            self.sanitizer.register_space(space)
        return space

    def new_thread(
        self, name: str, space: AddressSpace | None = None, privileged: bool = False
    ) -> ThreadContext:
        """Create a context; without ``space``, a private one is created."""
        if space is None:
            space = self.new_address_space(f"{name}-space")
        return ThreadContext(name=name, space=space, privileged=privileged)

    def kernel_context(self, name: str = "kernel") -> ThreadContext:
        """A privileged context running in the shared kernel address space."""
        return ThreadContext(name=name, space=self.kernel_space, privileged=True)

    def new_buffer(
        self,
        space: AddressSpace,
        n_bytes: int,
        locked: bool = False,
        populate: bool = True,
        name: str = "buf",
    ) -> Buffer:
        """mmap a buffer into ``space`` (see AddressSpace.mmap semantics)."""
        return Buffer(space.mmap(n_bytes, locked=locked, populate=populate, name=name))

    def share_buffer(self, buffer: Buffer, space: AddressSpace, name: str | None = None) -> Buffer:
        """Map ``buffer``'s physical pages into another space (MAP_SHARED)."""
        return Buffer(space.map_shared(buffer.mapping, name=name))

    def code_region(self, base_ip: int, name: str = "code", kernel: bool = False) -> CodeRegion:
        """A code image slid by (K)ASLR when enabled."""
        aslr = self.kaslr if kernel else self.aslr
        return CodeRegion(base_ip, aslr=aslr, name=name)

    # ------------------------------------------------------------------ #
    # Execution                                                           #
    # ------------------------------------------------------------------ #

    def load(self, ctx: ThreadContext, ip: int, vaddr: int, fenced: bool = False) -> int:
        """Execute a load at instruction ``ip``; returns measured latency.

        ``fenced=True`` models a measurement load bracketed by ``mfence``
        (and/or issued from a pointer-chase): the hardware prefetchers
        neither observe it nor act on it.  The paper's artifact reloads
        exactly this way (§A.6: shuffled order + mfence, "the memory
        barrier may prevent prefetching from taking place"), and careful
        Prime+Probe implementations traverse eviction sets as linked lists
        for the same reason.
        """
        done = self.kernel.submit(LoadIssued(self.lane, ctx, ip, vaddr, fenced))
        if done is None:
            raise RuntimeError("load pipeline retired no event")
        return done.latency

    def clflush(self, ctx: ThreadContext, vaddr: int) -> None:
        """Flush the line holding ``vaddr`` from the whole hierarchy."""
        self.kernel.submit(FlushIssued(self.lane, ctx, vaddr))

    def flush_buffer(self, ctx: ThreadContext, buffer: Buffer) -> None:
        """clflush every line of ``buffer`` (the Flush stage of F+R)."""
        for vaddr in buffer.lines():
            self.clflush(ctx, vaddr)

    def warm_tlb(self, ctx: ThreadContext, vaddr: int) -> None:
        """Install a translation without memory-system side effects."""
        self._mmu.warm(ctx.space, vaddr)

    def warm_buffer_tlb(self, ctx: ThreadContext, buffer: Buffer) -> None:
        """TLB-warm every page of ``buffer`` (the paper's threat-model state)."""
        for page in range(buffer.n_pages):
            self.warm_tlb(ctx, buffer.page_line_addr(page, 0))

    def advance(self, cycles: int) -> None:
        """Account for non-memory compute time."""
        if cycles < 0:
            raise ValueError(f"cannot advance by negative cycles: {cycles}")
        current = self._os.current
        if current is not None:
            self._kernel_clock.charge(current, cycles)
        else:
            self._kernel_clock.advance(cycles)

    # ------------------------------------------------------------------ #
    # Context switching                                                   #
    # ------------------------------------------------------------------ #

    def context_switch(self, to_ctx: ThreadContext) -> None:
        """Switch the logical core to ``to_ctx`` (see ``OSComponent``)."""
        self.kernel.submit(SwitchIssued(self.lane, to_ctx))

    def run_prefetcher_clear(self) -> None:
        """Execute the proposed privileged clear-ip-prefetcher instruction."""
        self._os.run_prefetcher_clear()

    # ------------------------------------------------------------------ #
    # Observability                                                       #
    # ------------------------------------------------------------------ #

    def span(self, name: str) -> Span:
        """Open a cycle-attribution span: ``with machine.span("train"): ...``

        The span always feeds ``machine.profile``; ``SpanBegin``/``SpanEnd``
        events are additionally emitted while tracing is enabled.
        """
        return Span(self.profile, name, machine=self)

    def metrics(self) -> MetricsRegistry:
        """Snapshot every component counter (see repro.obs.metrics)."""
        return snapshot(self)

    def reset_stats(self) -> None:
        """Zero every statistics counter across the machine.

        Symmetric by construction: the hierarchy (including prefetch-fill
        and accuracy counters), every cache level, the TLB, the IP-stride
        prefetcher and all noise prefetchers, the latency histogram, and
        the machine's own switch/IRQ counters all reset together.  The
        cycle clock and all learned µarch state survive — this resets
        *measurements*, not the machine.
        """
        self.hierarchy.reset_stats()
        self.tlb.reset_stats()
        self.ip_stride.reset_stats()
        for prefetcher in self.noise_prefetchers:
            prefetcher.reset_stats()
        self.latency_histogram.reset()
        self.context_switches = 0
        self.timer_interrupts = 0

    # ------------------------------------------------------------------ #
    # Inspection                                                          #
    # ------------------------------------------------------------------ #

    def cached_level(self, ctx: ThreadContext, vaddr: int) -> MemoryLevel | None:
        """Highest cache level holding ``vaddr`` (non-mutating debug helper)."""
        return self.hierarchy.contains(ctx.space.translate(vaddr))

    def is_cached(self, ctx: ThreadContext, vaddr: int) -> bool:
        return self.cached_level(ctx, vaddr) is not None

    def measured_latency(self, ideal: int) -> int:
        """Apply the timing-noise model to an ideal latency (for channels
        that time non-load operations, e.g. Flush+Flush)."""
        return self._timing.measured(ideal)

    def hit_threshold(self) -> int:
        """Measured-latency threshold separating cache hits from DRAM misses."""
        return self.params.llc_hit_threshold

    def seconds(self) -> float:
        """Wall-clock equivalent of the elapsed cycle count."""
        return self._kernel_clock.seconds(self.params.frequency_hz)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Machine({self.params.name}, cycles={self.cycles})"


def line_of(vaddr: int) -> int:
    """Cache-line number of a virtual address (convenience for experiments)."""
    return line_index(vaddr)
