"""The simulated machine: one logical core and its shared memory subsystem.

The `Machine` owns the global cycle clock and the load path:

``load(ctx, ip, vaddr)`` → TLB translate → cache-hierarchy access →
prefetcher observation → prefetch fills → noisy measured latency.

Two modelling rules from the paper are enforced here rather than in the
prefetcher itself:

* a TLB-missing access does **not** update prefetcher state (§4.3);
* a context switch flushes non-global TLB entries and injects the switch's
  memory traffic into the caches *and* the prefetcher table (the noise the
  paper blames for cross-process Prime+Probe degradation, §5.1, and for the
  24-entry covert channel's >25 % error rate, §7.2) — but never flushes the
  IP-stride table, unless the §8.3 mitigation is enabled.
"""

from __future__ import annotations

from repro.cpu.code import CodeRegion
from repro.cpu.context import ThreadContext
from repro.cpu.timing import TimingModel
from repro.memsys.hierarchy import CacheHierarchy, MemoryLevel
from repro.mmu.address_space import AddressSpace
from repro.mmu.aslr import Aslr
from repro.mmu.buffer import Buffer
from repro.mmu.page_table import PhysicalMemory
from repro.mmu.tlb import TLB
from repro.obs.events import Clflush, ContextSwitch, LoadTraced, PrefetchIssued
from repro.obs.metrics import Histogram, MetricsRegistry, latency_bounds, snapshot
from repro.obs.profiler import Span, SpanProfile
from repro.obs.tracer import Tracer, resolve_tracer
from repro.params import CACHE_LINE_SIZE, PAGE_SIZE, DEFAULT_MACHINE, MachineParams
from repro.prefetch.adjacent import AdjacentPrefetcher
from repro.prefetch.base import LoadEvent, Prefetcher, PrefetchRequest
from repro.prefetch.dcu import DCUPrefetcher
from repro.prefetch.ip_stride import IPStridePrefetcher
from repro.prefetch.streamer import StreamerPrefetcher
from repro.sanitize.sanitizer import Sanitizer, sanitize_enabled
from repro.utils.rng import derive_rng, make_rng

#: Cycle cost of a clflush instruction (order of an LLC round trip).
CLFLUSH_CYCLES = 40

#: Fixed architectural cost of a context switch, before memory noise.
CONTEXT_SWITCH_CYCLES = 1500

#: Cost of the proposed clear-ip-prefetcher instruction: one cycle per
#: history entry (paper §8.3 assumes C_clear = 24).
CLEAR_PREFETCHER_CYCLES_PER_ENTRY = 1


class Machine:
    """A simulated Intel machine (one logical core's view)."""

    def __init__(
        self,
        params: MachineParams = DEFAULT_MACHINE,
        seed: int | None = None,
        sanitize: bool | None = None,
        trace: Tracer | bool | None = None,
    ) -> None:
        self.params = params
        self.rng = make_rng(seed)
        self._timing = TimingModel(params.noise, derive_rng(self.rng, "timing"))
        self._os_rng = derive_rng(self.rng, "os")
        self.physical = PhysicalMemory(derive_rng(self.rng, "frames"))
        self.aslr = Aslr(derive_rng(self.rng, "aslr"), enabled=params.aslr_enabled)
        self.kaslr = Aslr(derive_rng(self.rng, "kaslr"), enabled=params.aslr_enabled)
        self.hierarchy = CacheHierarchy(params)
        self.tlb = TLB(params.tlb_entries, params.page_walk_latency)
        self.ip_stride = IPStridePrefetcher(
            params.prefetcher, enable_next_page=params.enable_next_page_prefetcher
        )
        self.noise_prefetchers: list[Prefetcher] = []
        if params.enable_dcu_prefetcher:
            self.noise_prefetchers.append(DCUPrefetcher())
        if params.enable_adjacent_prefetcher:
            self.noise_prefetchers.append(AdjacentPrefetcher())
        if params.enable_streamer_prefetcher:
            self.noise_prefetchers.append(StreamerPrefetcher())

        #: Structured tracing (repro.obs); NULL_TRACER when off, so every
        #: hook site pays a single ``enabled`` attribute check.
        self.tracer = resolve_tracer(trace)
        #: Lane-aware sinks (ChromeTraceSink) label a per-machine lane; a
        #: shared tracer therefore no longer collapses multiple machines
        #: into one unlabeled Chrome-trace process.
        self.tracer.register_machine(self)
        #: Cycle-attribution profiler aggregate (``with machine.span(...)``);
        #: always collected — spans are rare compared to loads.
        self.profile = SpanProfile()
        #: Measured-latency histogram straddling the LLC-hit threshold;
        #: always populated — one bisect over ~5 bounds per load.
        self.latency_histogram = Histogram(latency_bounds(params))
        for component in (self.hierarchy, self.tlb, self.ip_stride):
            component.tracer = self.tracer
            component.clock = self._clock

        #: Runtime invariant auditing (repro.sanitize); ``None`` when off, so
        #: the hot path pays a single identity test per load.
        self.sanitizer: Sanitizer | None = (
            Sanitizer(self) if sanitize_enabled(sanitize) else None
        )

        #: Per-machine ASID sequence: kernel gets 1, user spaces 2, 3, ...
        #: (a process-global counter would make same-seed traces differ).
        self._next_asid = 1
        self.kernel_space = AddressSpace(
            "kernel", self.physical, aslr=self.kaslr, global_pages=True,
            asid=self._alloc_asid(),
        )
        if self.sanitizer is not None:
            self.sanitizer.register_space(self.kernel_space)
        # The kernel working set touched by switch/IRQ paths.  It must be
        # large: a tiny pool would revisit the same lines every switch, so a
        # single page that happens to be slice-hash-equivalent to a victim
        # page would poison the same monitored cache sets on every round.  4 MiB
        # approximates a kernel steady-state working set.
        self._switch_noise = Buffer(
            self.kernel_space.mmap(1024 * PAGE_SIZE, locked=True, name="switch-noise")
        )
        # The context-switch path is fixed code: its load IPs are chosen
        # once per boot and hit the same prefetcher indexes every switch.
        self._switch_path_ips = [
            int(self._os_rng.integers(0, 1 << 30))
            for _ in range(params.noise.switch_fixed_ips)
        ]
        self.cycles = 0
        self.context_switches = 0
        self.timer_interrupts = 0
        self.current: ThreadContext | None = None
        #: §8.3 mitigation: execute clear-ip-prefetcher on every domain switch.
        self.flush_prefetcher_on_switch = False
        #: Timer-interrupt period (~100 µs tick).  Each tick runs a short
        #: kernel IRQ path whose loads add background cache/prefetcher noise;
        #: long-running measurement phases therefore see more disturbance
        #: than short ones, as on real hardware.
        self.timer_period_cycles = 300_000
        self._next_timer = self.timer_period_cycles

    # ------------------------------------------------------------------ #
    # Construction helpers                                                #
    # ------------------------------------------------------------------ #

    def _alloc_asid(self) -> int:
        asid = self._next_asid
        self._next_asid += 1
        return asid

    def new_address_space(self, name: str) -> AddressSpace:
        """Create a fresh user address space (one per process)."""
        space = AddressSpace(name, self.physical, aslr=self.aslr, asid=self._alloc_asid())
        if self.sanitizer is not None:
            self.sanitizer.register_space(space)
        return space

    def new_thread(
        self, name: str, space: AddressSpace | None = None, privileged: bool = False
    ) -> ThreadContext:
        """Create a context; without ``space``, a private one is created."""
        if space is None:
            space = self.new_address_space(f"{name}-space")
        return ThreadContext(name=name, space=space, privileged=privileged)

    def kernel_context(self, name: str = "kernel") -> ThreadContext:
        """A privileged context running in the shared kernel address space."""
        return ThreadContext(name=name, space=self.kernel_space, privileged=True)

    def new_buffer(
        self,
        space: AddressSpace,
        n_bytes: int,
        locked: bool = False,
        populate: bool = True,
        name: str = "buf",
    ) -> Buffer:
        """mmap a buffer into ``space`` (see AddressSpace.mmap semantics)."""
        return Buffer(space.mmap(n_bytes, locked=locked, populate=populate, name=name))

    def share_buffer(self, buffer: Buffer, space: AddressSpace, name: str | None = None) -> Buffer:
        """Map ``buffer``'s physical pages into another space (MAP_SHARED)."""
        return Buffer(space.map_shared(buffer.mapping, name=name))

    def code_region(self, base_ip: int, name: str = "code", kernel: bool = False) -> CodeRegion:
        """A code image slid by (K)ASLR when enabled."""
        aslr = self.kaslr if kernel else self.aslr
        return CodeRegion(base_ip, aslr=aslr, name=name)

    # ------------------------------------------------------------------ #
    # Execution                                                           #
    # ------------------------------------------------------------------ #

    def load(self, ctx: ThreadContext, ip: int, vaddr: int, fenced: bool = False) -> int:
        """Execute a load at instruction ``ip``; returns measured latency.

        ``fenced=True`` models a measurement load bracketed by ``mfence``
        (and/or issued from a pointer-chase): the hardware prefetchers
        neither observe it nor act on it.  The paper's artifact reloads
        exactly this way (§A.6: shuffled order + mfence, "the memory
        barrier may prevent prefetching from taking place"), and careful
        Prime+Probe implementations traverse eviction sets as linked lists
        for the same reason.
        """
        self._maybe_timer_interrupt()
        translation = self.tlb.translate(ctx.space, vaddr)
        result = self.hierarchy.access(translation.paddr)
        event: LoadEvent | None = None
        issued: list[PrefetchRequest] = []
        if not fenced:
            event = LoadEvent(
                ip=ip,
                vaddr=vaddr,
                paddr=translation.paddr,
                hit_level=result.level,
                asid=ctx.space.asid,
            )
            if translation.tlb_hit:
                issued = self._feed_prefetchers(ctx, event)
            else:
                # §4.3: a TLB-missing first touch creates the translation but
                # leaves the prefetcher state untouched — only the next-page
                # prefetcher may carry a pattern across.
                for request in self.ip_stride.observe_tlb_miss(event):
                    if self.tracer.enabled:
                        self.tracer.emit(
                            PrefetchIssued(
                                cycle=self.cycles,
                                source=request.source,
                                paddr=request.paddr,
                                trigger_ip=ip,
                            )
                        )
                    self.hierarchy.insert_prefetch(request.paddr)
                    issued.append(request)
        latency = self._timing.measured(translation.latency + result.latency)
        self._charge(ctx, latency)
        self.latency_histogram.observe(latency)
        if self.tracer.enabled:
            self.tracer.emit(
                LoadTraced(
                    cycle=self.cycles,
                    ip=ip,
                    vaddr=vaddr,
                    paddr=translation.paddr,
                    level=int(result.level),
                    latency=latency,
                    tlb_hit=translation.tlb_hit,
                    fenced=fenced,
                    asid=ctx.space.asid,
                )
            )
        if self.sanitizer is not None:
            self.sanitizer.after_load(event, translation, issued)
        return latency

    def _feed_prefetchers(self, ctx: ThreadContext, event: LoadEvent) -> list[PrefetchRequest]:
        def translate(vaddr: int) -> int | None:
            try:
                return ctx.space.translate(vaddr)
            except KeyError:
                return None

        issued: list[PrefetchRequest] = []
        for prefetcher in (self.ip_stride, *self.noise_prefetchers):
            for request in prefetcher.observe(event, translate):
                if self.tracer.enabled:
                    self.tracer.emit(
                        PrefetchIssued(
                            cycle=self.cycles,
                            source=request.source,
                            paddr=request.paddr,
                            trigger_ip=event.ip,
                        )
                    )
                self.hierarchy.insert_prefetch(request.paddr)
                issued.append(request)
        return issued

    def clflush(self, ctx: ThreadContext, vaddr: int) -> None:
        """Flush the line holding ``vaddr`` from the whole hierarchy."""
        paddr = ctx.space.translate(vaddr)
        self.hierarchy.clflush(paddr)
        self._charge(ctx, CLFLUSH_CYCLES)
        if self.tracer.enabled:
            self.tracer.emit(Clflush(cycle=self.cycles, vaddr=vaddr, paddr=paddr))

    def flush_buffer(self, ctx: ThreadContext, buffer: Buffer) -> None:
        """clflush every line of ``buffer`` (the Flush stage of F+R)."""
        for vaddr in buffer.lines():
            self.clflush(ctx, vaddr)

    def warm_tlb(self, ctx: ThreadContext, vaddr: int) -> None:
        """Install a translation without memory-system side effects."""
        self.tlb.warm(ctx.space, vaddr)

    def warm_buffer_tlb(self, ctx: ThreadContext, buffer: Buffer) -> None:
        """TLB-warm every page of ``buffer`` (the paper's threat-model state)."""
        for page in range(buffer.n_pages):
            self.warm_tlb(ctx, buffer.page_line_addr(page, 0))

    def advance(self, cycles: int) -> None:
        """Account for non-memory compute time."""
        if cycles < 0:
            raise ValueError(f"cannot advance by negative cycles: {cycles}")
        self.cycles += cycles
        if self.current is not None:
            self.current.cpu_cycles += cycles

    def _charge(self, ctx: ThreadContext, cycles: int) -> None:
        self.cycles += cycles
        ctx.cpu_cycles += cycles

    # ------------------------------------------------------------------ #
    # Context switching                                                   #
    # ------------------------------------------------------------------ #

    def context_switch(self, to_ctx: ThreadContext) -> None:
        """Switch the logical core to ``to_ctx``.

        Same-address-space switches (threads of one process) keep the TLB;
        cross-space switches flush non-global entries.  Both kinds run the
        kernel's switch path, whose loads pollute the caches and the
        prefetcher table.
        """
        from_ctx = self.current
        if from_ctx is to_ctx:
            return
        self.context_switches += 1
        self.cycles += CONTEXT_SWITCH_CYCLES
        cross_space = from_ctx is not None and not from_ctx.same_address_space(to_ctx)
        if cross_space:
            self.tlb.flush(keep_global=True)
        # Cross-process switches run the heavier mm-switch path with
        # data-dependent kernel activity; same-space (thread) switches only
        # replay the fixed switch code.
        variable_ips = self.params.noise.switch_variable_ips if cross_space else 0
        self._inject_switch_noise(variable_ips)
        if self.flush_prefetcher_on_switch:
            self.run_prefetcher_clear()
        self.current = to_ctx
        if self.tracer.enabled:
            self.tracer.emit(
                ContextSwitch(
                    cycle=self.cycles,
                    from_ctx=None if from_ctx is None else from_ctx.name,
                    to_ctx=to_ctx.name,
                    cross_space=cross_space,
                )
            )
        if self.sanitizer is not None:
            self.sanitizer.after_switch()

    def run_prefetcher_clear(self) -> None:
        """Execute the proposed privileged clear-ip-prefetcher instruction."""
        self.cycles += CLEAR_PREFETCHER_CYCLES_PER_ENTRY * self.params.prefetcher.n_entries
        self.ip_stride.clear()

    def _maybe_timer_interrupt(self) -> None:
        """Run the kernel timer-IRQ path when the tick has elapsed.

        The IRQ handler touches a few kernel lines and executes one load at
        an effectively random kernel IP; with probability 1/256 that IP
        aliases (and clobbers) a trained prefetcher entry.  A backlog of
        elapsed ticks (e.g. after a long ``advance``) fires only once: the
        table's disturbance saturates, and the entries the backlogged ticks
        would have clobbered are retrained before the next observation
        anyway.
        """
        if self.params.noise.switch_fixed_ips == 0:
            # Quiet machines (reverse-engineering benches) take no IRQs.
            self._next_timer = self.cycles + self.timer_period_cycles
            return
        if self.cycles < self._next_timer:
            return
        self.timer_interrupts += 1
        self._next_timer = self.cycles + self.timer_period_cycles
        n_lines = self._switch_noise.n_lines
        for _ in range(8):
            line = int(self._os_rng.integers(0, n_lines))
            self.hierarchy.access(self.kernel_space.translate(self._switch_noise.line_addr(line)))
        # Which IRQ handler ran is data-dependent: one variable-IP load.
        self._kernel_prefetcher_noise([int(self._os_rng.integers(0, 1 << 30))])

    def _inject_switch_noise(self, variable_ips: int) -> None:
        """Model the switch path's own memory traffic.

        Cache pollution: random lines of kernel memory are touched.
        Prefetcher pollution: the fixed switch-path IPs replay (occupying
        their slots, learning nothing — their data addresses vary), plus
        ``variable_ips`` loads at effectively random IPs, each with a 1/256
        chance of aliasing a trained entry.
        """
        noise = self.params.noise
        n_lines = self._switch_noise.n_lines
        for _ in range(noise.switch_cache_lines):
            line = int(self._os_rng.integers(0, n_lines))
            paddr = self.kernel_space.translate(self._switch_noise.line_addr(line))
            self.hierarchy.access(paddr)
        # Switch-path code loops over task/mm state, so each fixed IP issues
        # several loads per switch: a re-allocated fixed entry immediately
        # reaches confidence 1 and is no longer a preferred eviction victim.
        # (This is what makes a full-table covert channel lose ~6 of its 24
        # trained entries per switch — the paper's >25 % error rate, §7.2.)
        ips = [ip for ip in self._switch_path_ips for _ in range(2)] + [
            int(self._os_rng.integers(0, 1 << 30)) for _ in range(variable_ips)
        ]
        self._kernel_prefetcher_noise(ips)

    def _kernel_prefetcher_noise(self, ips: list[int]) -> None:
        """Kernel loads (random data lines) at the given IPs."""
        n_lines = self._switch_noise.n_lines
        for ip in ips:
            line = int(self._os_rng.integers(0, n_lines))
            vaddr = self._switch_noise.line_addr(line)
            event = LoadEvent(
                ip=ip,
                vaddr=vaddr,
                paddr=self.kernel_space.translate(vaddr),
                hit_level=MemoryLevel.LLC,
                asid=self.kernel_space.asid,
            )
            for request in self.ip_stride.observe(event, lambda _vaddr: None):
                if self.tracer.enabled:
                    self.tracer.emit(
                        PrefetchIssued(
                            cycle=self.cycles,
                            source=request.source,
                            paddr=request.paddr,
                            trigger_ip=ip,
                        )
                    )
                self.hierarchy.insert_prefetch(request.paddr)

    # ------------------------------------------------------------------ #
    # Observability                                                       #
    # ------------------------------------------------------------------ #

    def _clock(self) -> int:
        """Cycle source handed to instrumented components."""
        return self.cycles

    def span(self, name: str) -> Span:
        """Open a cycle-attribution span: ``with machine.span("train"): ...``

        The span always feeds ``machine.profile``; ``SpanBegin``/``SpanEnd``
        events are additionally emitted while tracing is enabled.
        """
        return Span(self.profile, name, machine=self)

    def metrics(self) -> MetricsRegistry:
        """Snapshot every component counter (see repro.obs.metrics)."""
        return snapshot(self)

    def reset_stats(self) -> None:
        """Zero every statistics counter across the machine.

        Symmetric by construction: the hierarchy (including prefetch-fill
        and accuracy counters), every cache level, the TLB, the IP-stride
        prefetcher and all noise prefetchers, the latency histogram, and
        the machine's own switch/IRQ counters all reset together.  The
        cycle clock and all learned µarch state survive — this resets
        *measurements*, not the machine.
        """
        self.hierarchy.reset_stats()
        self.tlb.reset_stats()
        self.ip_stride.reset_stats()
        for prefetcher in self.noise_prefetchers:
            prefetcher.reset_stats()
        self.latency_histogram.reset()
        self.context_switches = 0
        self.timer_interrupts = 0

    # ------------------------------------------------------------------ #
    # Inspection                                                          #
    # ------------------------------------------------------------------ #

    def cached_level(self, ctx: ThreadContext, vaddr: int) -> MemoryLevel | None:
        """Highest cache level holding ``vaddr`` (non-mutating debug helper)."""
        return self.hierarchy.contains(ctx.space.translate(vaddr))

    def is_cached(self, ctx: ThreadContext, vaddr: int) -> bool:
        return self.cached_level(ctx, vaddr) is not None

    def measured_latency(self, ideal: int) -> int:
        """Apply the timing-noise model to an ideal latency (for channels
        that time non-load operations, e.g. Flush+Flush)."""
        return self._timing.measured(ideal)

    def hit_threshold(self) -> int:
        """Measured-latency threshold separating cache hits from DRAM misses."""
        return self.params.llc_hit_threshold

    def seconds(self) -> float:
        """Wall-clock equivalent of the elapsed cycle count."""
        return self.cycles / self.params.frequency_hz

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Machine({self.params.name}, cycles={self.cycles})"


def line_of(vaddr: int) -> int:
    """Cache-line number of a virtual address (convenience for experiments)."""
    return vaddr // CACHE_LINE_SIZE
