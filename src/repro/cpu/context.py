"""Thread/process contexts."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.mmu.address_space import AddressSpace


@dataclass(slots=True)
class ThreadContext:
    """An execution context scheduled on the simulated logical core.

    Two threads of one process share an :class:`AddressSpace`; two processes
    have distinct spaces; the kernel context is privileged and uses the
    machine's kernel space with global pages.
    """

    name: str
    space: AddressSpace
    privileged: bool = False
    #: Cycles this context has been scheduled for (bookkeeping for benches).
    cpu_cycles: int = field(default=0, repr=False)

    def same_address_space(self, other: "ThreadContext") -> bool:
        return self.space is other.space
