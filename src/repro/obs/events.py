"""Typed trace events — the vocabulary of the observability layer.

Every event is a frozen, slotted dataclass stamped with the simulated
cycle at which it occurred.  The schema is deliberately flat and
JSON-friendly: ``to_dict()`` yields only ints, strings, bools, ``None``
and nested :class:`EntrySnapshot` dicts, so two same-seed runs serialize
to byte-identical JSONL streams (no wall-clock, no floats, no ids).

The event set mirrors the model's observable state changes:

===================== ==================================================
``LoadTraced``        one demand load retired (ip, address, level, latency)
``TlbMiss``           a translation walked the page table (§4.3 boundary)
``PrefetchIssued``    a prefetcher requested a line (with the trigger IP)
``PrefetchFill``      the hierarchy installed a prefetched line (into L2)
``TableTransition``   an IP-stride history-table entry changed state,
                      with before/after snapshots — the AfterImage signal
``ContextSwitch``     the logical core switched contexts
``Clflush``           a line was flushed from the whole hierarchy
``SanitizerViolation``a runtime invariant check failed (repro.sanitize)
``SpanBegin/SpanEnd`` cycle-attribution profiler scopes (repro.obs span)
===================== ==================================================
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Any, ClassVar


@dataclass(frozen=True, slots=True)
class EntrySnapshot:
    """Immutable copy of one IP-stride history-table entry (Figure 5)."""

    index: int
    last_vaddr: int
    last_paddr: int
    stride: int
    confidence: int

    @classmethod
    def of(cls, entry: Any) -> "EntrySnapshot":
        """Snapshot any object with the Figure-5 entry fields."""
        return cls(
            index=entry.index,
            last_vaddr=entry.last_vaddr,
            last_paddr=entry.last_paddr,
            stride=entry.stride,
            confidence=entry.confidence,
        )


@dataclass(frozen=True, slots=True)
class TraceEvent:
    """Base event: everything carries the simulated cycle."""

    kind: ClassVar[str] = "event"

    cycle: int

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready representation (kind + all fields, nested as dicts)."""
        payload = asdict(self)
        payload["kind"] = self.kind
        return payload


@dataclass(frozen=True, slots=True)
class LoadTraced(TraceEvent):
    """One demand load executed by :meth:`repro.cpu.machine.Machine.load`."""

    kind: ClassVar[str] = "LoadTraced"

    ip: int
    vaddr: int
    paddr: int
    level: int
    latency: int
    tlb_hit: bool
    fenced: bool
    asid: int


@dataclass(frozen=True, slots=True)
class TlbMiss(TraceEvent):
    """A translation missed the TLB and walked the page table."""

    kind: ClassVar[str] = "TlbMiss"

    asid: int
    vaddr: int
    vpage: int


@dataclass(frozen=True, slots=True)
class PrefetchIssued(TraceEvent):
    """A prefetcher asked for a line (before the hierarchy filled it)."""

    kind: ClassVar[str] = "PrefetchIssued"

    source: str
    paddr: int
    trigger_ip: int


@dataclass(frozen=True, slots=True)
class PrefetchFill(TraceEvent):
    """The hierarchy installed a prefetched line (L2 + LLC, never L1)."""

    kind: ClassVar[str] = "PrefetchFill"

    paddr: int


@dataclass(frozen=True, slots=True)
class TableTransition(TraceEvent):
    """An IP-stride history-table entry changed state.

    ``transition`` is one of ``allocate`` (``before`` is None), ``update``
    (both snapshots present; ``triggered`` tells whether this observation
    fired a prefetch), ``evict`` (``after`` is None, ``cause`` is
    ``confidence0`` or ``plru``) and ``clear`` (the §8.3 mitigation wiped
    the table; ``index``/``slot`` are -1 and ``evicted`` counts the loss).
    """

    kind: ClassVar[str] = "TableTransition"

    transition: str
    index: int
    slot: int
    before: EntrySnapshot | None
    after: EntrySnapshot | None
    cause: str | None = None
    triggered: bool = False
    evicted: int = 0


@dataclass(frozen=True, slots=True)
class ContextSwitch(TraceEvent):
    """The logical core switched to another context."""

    kind: ClassVar[str] = "ContextSwitch"

    from_ctx: str | None
    to_ctx: str
    cross_space: bool


@dataclass(frozen=True, slots=True)
class Clflush(TraceEvent):
    """A clflush removed one line from the whole hierarchy."""

    kind: ClassVar[str] = "Clflush"

    vaddr: int
    paddr: int


@dataclass(frozen=True, slots=True)
class SanitizerViolation(TraceEvent):
    """A repro.sanitize invariant check failed (emitted before the raise)."""

    kind: ClassVar[str] = "SanitizerViolation"

    component: str
    invariant: str
    message: str


@dataclass(frozen=True, slots=True)
class SpanBegin(TraceEvent):
    """A profiler span opened (``with machine.span(name)``)."""

    kind: ClassVar[str] = "SpanBegin"

    name: str


@dataclass(frozen=True, slots=True)
class SpanEnd(TraceEvent):
    """A profiler span closed; ``cycles`` is the simulated-cycle delta.

    Wall-clock time is deliberately *not* recorded on the event (it would
    break byte-identical traces); it lives in the profiler aggregate.
    """

    kind: ClassVar[str] = "SpanEnd"

    name: str
    cycles: int


#: Every concrete event type, for sinks and tests that enumerate the schema.
EVENT_TYPES: tuple[type[TraceEvent], ...] = (
    LoadTraced,
    TlbMiss,
    PrefetchIssued,
    PrefetchFill,
    TableTransition,
    ContextSwitch,
    Clflush,
    SanitizerViolation,
    SpanBegin,
    SpanEnd,
)
