"""Shared attack runner for the observability tooling.

`afterimage trace`, `afterimage metrics`, the bench harness
(``benchmarks/bench_obs.py``) and the CI smoke artifact all need the same
thing: construct a machine (optionally traced), run one named attack, and
report a scalar quality figure.  Since the :mod:`repro.attacks` registry
became the single source of truth this module is a thin compatibility
shim over :func:`repro.attacks.run_on_machine` — it no longer carries its
own dispatch table, so every registered attack (including ``sgx`` and
``switch-leak``, which the old hand-written table missed) is traceable
for free.  :class:`AttackRun` keeps the live machine for callers that
want to poke at its metrics/profile after the run; the full unified
result rides along as :attr:`AttackRun.batch`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from repro.attacks.registry import run_on_machine
from repro.attacks.trial import TrialBatch
from repro.params import DEFAULT_MACHINE, MachineParams

if TYPE_CHECKING:
    from repro.cpu.machine import Machine
    from repro.obs.tracer import Tracer


@dataclass
class AttackRun:
    """Outcome of one runner invocation."""

    name: str
    rounds: int
    quality: float
    detail: str
    machine: "Machine"
    batch: TrialBatch

    def as_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "rounds": self.rounds,
            "quality": self.quality,
            "detail": self.detail,
            "simulated_cycles": self.machine.cycles,
            "spans": self.machine.profile.as_dict(),
        }


def run_attack(
    name: str,
    params: MachineParams = DEFAULT_MACHINE,
    seed: int = 2023,
    rounds: int | None = None,
    trace: "Tracer | bool | None" = None,
    sanitize: bool | None = None,
    options: dict[str, Any] | None = None,
) -> AttackRun:
    """Run attack ``name`` on a fresh machine; returns the scored run."""
    from repro.cpu.machine import Machine

    machine = Machine(params, seed=seed, trace=trace, sanitize=sanitize)
    batch = run_on_machine(name, machine, seed=seed, rounds=rounds, options=options)
    return AttackRun(
        name=name,
        rounds=batch.rounds,
        quality=batch.quality,
        detail=batch.detail,
        machine=machine,
        batch=batch,
    )
