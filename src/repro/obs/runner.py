"""Shared attack runner for the observability tooling.

`afterimage trace`, `afterimage metrics`, the bench harness
(``benchmarks/bench_obs.py``) and the CI smoke artifact all need the same
thing: construct a machine (optionally traced), run one named attack for a
few rounds inside a ``total`` profiler span, and report a scalar quality
figure.  Centralizing it here keeps the CLI thin and the benchmark
comparable across sessions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from repro.params import DEFAULT_MACHINE, MachineParams
from repro.utils.rng import make_rng

if TYPE_CHECKING:
    from repro.cpu.machine import Machine
    from repro.obs.tracer import Tracer

#: Attacks the runner knows how to drive.
ATTACK_NAMES = ("variant1", "variant1-thread", "variant2", "covert", "rsa", "tracker")

#: Per-attack default round counts, sized so a full sweep stays interactive.
DEFAULT_ROUNDS = {
    "variant1": 40,
    "variant1-thread": 40,
    "variant2": 40,
    "covert": 40,
    "rsa": 16,
    "tracker": 3,
}

#: RSA key size for the runner's quick recovery (full-size keys belong to
#: the dedicated attack tests, not the observability smoke path).
RUNNER_RSA_KEY_BITS = 48


@dataclass
class AttackRun:
    """Outcome of one runner invocation."""

    name: str
    rounds: int
    quality: float
    detail: str
    machine: "Machine"

    def as_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "rounds": self.rounds,
            "quality": self.quality,
            "detail": self.detail,
            "simulated_cycles": self.machine.cycles,
            "spans": self.machine.profile.as_dict(),
        }


def run_attack(
    name: str,
    params: MachineParams = DEFAULT_MACHINE,
    seed: int = 2023,
    rounds: int | None = None,
    trace: "Tracer | bool | None" = None,
) -> AttackRun:
    """Run attack ``name`` on a fresh machine; returns the scored run."""
    from repro.cpu.machine import Machine

    if name not in ATTACK_NAMES:
        raise ValueError(f"unknown attack {name!r}; known: {', '.join(ATTACK_NAMES)}")
    if rounds is None:
        rounds = DEFAULT_ROUNDS[name]
    if rounds <= 0:
        raise ValueError(f"rounds must be positive, got {rounds}")
    machine = Machine(params, seed=seed, trace=trace)
    rng = make_rng(seed)
    with machine.span("total"):
        quality, detail = _RUNNERS[name](machine, rng, rounds)
    return AttackRun(name=name, rounds=rounds, quality=quality, detail=detail, machine=machine)


def _run_variant1(machine: "Machine", rng: Any, rounds: int) -> tuple[float, str]:
    from repro.core.variant1 import Variant1CrossProcess

    attack = Variant1CrossProcess(machine)
    wins = sum(
        attack.run_round(int(rng.integers(0, 2))).success for _ in range(rounds)
    )
    return wins / rounds, f"{wins}/{rounds} rounds leaked the branch bit"


def _run_variant1_thread(machine: "Machine", rng: Any, rounds: int) -> tuple[float, str]:
    from repro.core.variant1 import Variant1CrossThread

    attack = Variant1CrossThread(machine)
    wins = sum(
        attack.run_round(int(rng.integers(0, 2))).success for _ in range(rounds)
    )
    return wins / rounds, f"{wins}/{rounds} rounds leaked the branch bit"


def _run_variant2(machine: "Machine", rng: Any, rounds: int) -> tuple[float, str]:
    from repro.core.variant2 import Variant2UserKernel

    attack = Variant2UserKernel(machine, secret_source=lambda: int(rng.integers(0, 2)))
    search = attack.find_target_index()
    if search.index != attack.true_target_index:
        raise RuntimeError(
            f"IP search found index {search.index}, expected {attack.true_target_index}"
        )
    wins = sum(attack.run_round().success for _ in range(rounds))
    return wins / rounds, f"{wins}/{rounds} rounds leaked the kernel branch"


def _run_covert(machine: "Machine", rng: Any, rounds: int) -> tuple[float, str]:
    from repro.core.covert import MIN_CLEAN_STRIDE, CovertChannel

    channel = CovertChannel(machine, n_entries=1)
    symbols = [int(x) for x in rng.integers(MIN_CLEAN_STRIDE, 32, rounds)]
    report = channel.transmit(symbols)
    return (
        1.0 - report.error_rate,
        f"{report.bandwidth_bps:.0f} bps, {report.error_rate * 100:.1f}% symbol error",
    )


def _run_rsa(machine: "Machine", rng: Any, rounds: int) -> tuple[float, str]:
    from repro.core.tc_rsa_attack import TimingConstantRSAAttack
    from repro.crypto.primes import generate_keypair

    key = generate_keypair(RUNNER_RSA_KEY_BITS, rng)
    attack = TimingConstantRSAAttack(machine, key)
    n_bits = min(rounds, key.d.bit_length())
    recovery = attack.recover_key_bits(key.encrypt(0xBEEF), n_bits=n_bits)
    correct = len(recovery.true_bits) - recovery.bit_errors
    return (
        correct / len(recovery.true_bits),
        f"{correct}/{len(recovery.true_bits)} key bits recovered "
        f"in {recovery.passes} passes",
    )


def _run_tracker(machine: "Machine", rng: Any, rounds: int) -> tuple[float, str]:
    from repro.core.load_tracker import LoadTimingTracker, OpenSSLRSAVictim, VictimPhase

    detected = 0
    for i in range(rounds):
        victim_ctx = machine.new_thread(f"rsa-victim-{i}")
        victim = OpenSSLRSAVictim(machine, victim_ctx)
        tracker = LoadTimingTracker(machine, victim, target="key-load")
        samples = tracker.track()
        key_load_polls = [
            s for s in samples if s.victim_phase is VictimPhase.KEY_LOAD
        ]
        if any(not s.prefetcher_triggered for s in key_load_polls):
            detected += 1
    return detected / rounds, f"key-load slice localized in {detected}/{rounds} runs"


_RUNNERS = {
    "variant1": _run_variant1,
    "variant1-thread": _run_variant1_thread,
    "variant2": _run_variant2,
    "covert": _run_covert,
    "rsa": _run_rsa,
    "tracker": _run_tracker,
}
