"""Tracer: the dispatch point between instrumented components and sinks.

The hot-path contract is the whole design: every hook site in the model
guards its event construction with ``if self.tracer.enabled:`` — a single
attribute load — so the default :data:`NULL_TRACER` costs nothing beyond
that check and the quiet machine stays fast.

``Machine(trace=...)`` and the ``REPRO_TRACE`` environment variable mirror
the ``sanitize=`` / ``REPRO_SANITIZE`` convention from ``repro.sanitize``.
"""

from __future__ import annotations

import os

from repro.obs.events import TraceEvent
from repro.obs.sinks import RingBufferSink, Sink

ENV_VAR = "REPRO_TRACE"

_TRUTHY = {"1", "true", "yes", "on"}


def zero_clock() -> int:
    """Default cycle source for components not owned by a Machine."""
    return 0


def trace_enabled(explicit: bool | None = None) -> bool:
    """Resolve the tracing default: explicit flag wins, else ``REPRO_TRACE``."""
    if explicit is not None:
        return explicit
    return os.environ.get(ENV_VAR, "").strip().lower() in _TRUTHY


class Tracer:
    """Fan events out to one or more sinks.

    ``enabled`` is read by every hook site before building an event, so
    it is a plain attribute, not a property.
    """

    def __init__(self, sinks: list[Sink] | None = None) -> None:
        self.enabled = True
        self.sinks: list[Sink] = list(sinks) if sinks is not None else [RingBufferSink()]

    def emit(self, event: TraceEvent) -> None:
        for sink in self.sinks:
            sink.emit(event)

    def add_sink(self, sink: Sink) -> None:
        self.sinks.append(sink)

    def register_machine(self, machine: object) -> None:
        """Tell lane-aware sinks a new machine will emit through us.

        Sinks that label per-machine lanes (:class:`ChromeTraceSink`)
        expose ``register_machine``; everything else ignores the call.
        """
        for sink in self.sinks:
            register = getattr(sink, "register_machine", None)
            if register is not None:
                register(machine)

    def events(self, kind: str | None = None) -> list[TraceEvent]:
        """Events from the first ring-buffer sink (convenience for tests)."""
        for sink in self.sinks:
            if isinstance(sink, RingBufferSink):
                return sink.events(kind)
        return []

    def close(self) -> None:
        for sink in self.sinks:
            sink.close()


class NullTracer(Tracer):
    """Disabled tracer: ``enabled`` is False and ``emit`` is a no-op.

    Hook sites never reach ``emit`` (they check ``enabled`` first); the
    no-op is defense in depth for external callers.
    """

    def __init__(self) -> None:
        self.enabled = False
        self.sinks = []

    def emit(self, event: TraceEvent) -> None:
        pass

    def add_sink(self, sink: Sink) -> None:
        raise ValueError("NullTracer cannot accept sinks; construct a Tracer instead")

    def register_machine(self, machine: object) -> None:
        pass


#: Shared disabled tracer; safe to share because it holds no state.
NULL_TRACER = NullTracer()


def resolve_tracer(trace: "Tracer | bool | None") -> Tracer:
    """Map the ``Machine(trace=...)`` argument to a tracer instance.

    ``None`` consults ``REPRO_TRACE``; ``True`` builds a fresh ring-buffer
    tracer; ``False`` forces the null tracer; a :class:`Tracer` instance
    is used as-is.
    """
    if isinstance(trace, Tracer):
        return trace
    if trace_enabled(trace):
        return Tracer()
    return NULL_TRACER
