"""Metrics registry: cheap counters and histograms for a simulated machine.

Counters already live on the model components (cache hit/miss totals,
prefetcher issue/eviction counts, …); this module gives them one front
door: :func:`snapshot` walks a :class:`~repro.cpu.machine.Machine` and
returns a :class:`MetricsRegistry` that renders as text, markdown (for
``analysis/report.py``) or JSON (for ``afterimage metrics --format json``).

The one metric that needs live collection — the measured-latency
histogram straddling the paper's LLC-hit threshold (Fig. 6) — is owned by
the machine and fed on every load (one bisect over ~5 bounds), tracing
or not, so ``afterimage metrics`` sees it on an untraced run.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:
    from repro.cpu.machine import Machine
    from repro.params import MachineParams


def latency_bounds(params: "MachineParams") -> list[int]:
    """Histogram bucket bounds for measured load latencies.

    Derived from the machine's own latency ladder so the buckets straddle
    the LLC-hit threshold by construction: one bucket boundary sits exactly
    at ``llc_hit_threshold`` (the paper's hit/miss separator), with the
    cache-level latencies below it and the DRAM latency above.
    """
    return sorted(
        {
            params.l1d.latency,
            params.l2.latency,
            params.llc.latency,
            params.llc_hit_threshold,
            params.dram_latency,
        }
    )


class Histogram:
    """Fixed-bound integer histogram (bucket ``i`` counts values ≤ bounds[i])."""

    def __init__(self, bounds: list[int]) -> None:
        if bounds != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise ValueError(f"bounds must be strictly increasing, got {bounds}")
        self.bounds = list(bounds)
        self.counts = [0] * (len(bounds) + 1)
        self.total = 0

    def observe(self, value: int) -> None:
        self.counts[bisect_left(self.bounds, value)] += 1
        self.total += 1

    def as_dict(self) -> dict[str, int]:
        """Bucket labels → counts (``le:N`` buckets plus a ``gt:max`` tail)."""
        out: dict[str, int] = {}
        for bound, count in zip(self.bounds, self.counts):
            out[f"le:{bound}"] = count
        out[f"gt:{self.bounds[-1]}"] = self.counts[-1]
        out["total"] = self.total
        return out

    def reset(self) -> None:
        self.counts = [0] * (len(self.bounds) + 1)
        self.total = 0


class MetricsRegistry:
    """An ordered name → value mapping of counters and histograms."""

    def __init__(self) -> None:
        self._metrics: dict[str, int | float | Histogram] = {}

    def set(self, name: str, value: int | float | Histogram) -> None:
        self._metrics[name] = value

    def get(self, name: str) -> int | float | Histogram:
        return self._metrics[name]

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def names(self) -> list[str]:
        return list(self._metrics)

    def as_dict(self) -> dict[str, Any]:
        """JSON-ready mapping (histograms expand to bucket dicts)."""
        out: dict[str, Any] = {}
        for name, value in self._metrics.items():
            out[name] = value.as_dict() if isinstance(value, Histogram) else value
        return out

    def render_text(self) -> str:
        """Aligned ``name value`` lines for terminal output."""
        flat = self.as_dict()
        width = max((len(name) for name in flat), default=0)
        lines = []
        for name, value in flat.items():
            if isinstance(value, dict):
                lines.append(f"{name}:")
                for bucket, count in value.items():
                    lines.append(f"  {bucket:<{width}} {count}")
            elif isinstance(value, float):
                lines.append(f"{name:<{width}} {value:.4f}")
            else:
                lines.append(f"{name:<{width}} {value}")
        return "\n".join(lines)

    def render_markdown(self) -> str:
        """A two-column markdown table (used by ``analysis/report.py``)."""
        lines = ["| metric | value |", "|---|---|"]
        for name, value in self.as_dict().items():
            if isinstance(value, dict):
                rendered = ", ".join(f"{k}={v}" for k, v in value.items())
            elif isinstance(value, float):
                rendered = f"{value:.4f}"
            else:
                rendered = str(value)
            lines.append(f"| {name} | {rendered} |")
        return "\n".join(lines)


def snapshot(machine: "Machine") -> MetricsRegistry:
    """Collect every counter the machine and its components expose.

    Uses only public attributes, and tolerates replacement prefetchers
    (the tagged defense, the disable toggle) that lack the instrumented
    class's extended counters.
    """
    reg = MetricsRegistry()
    reg.set("machine.cycles", machine.cycles)
    reg.set("machine.context_switches", machine.context_switches)
    reg.set("machine.timer_interrupts", machine.timer_interrupts)

    h = machine.hierarchy
    reg.set("cache.l1.hits", h.l1.hits)
    reg.set("cache.l1.misses", h.l1.misses)
    reg.set("cache.l2.hits", h.l2.hits)
    reg.set("cache.l2.misses", h.l2.misses)
    reg.set("cache.llc.hits", sum(s.hits for s in h.llc))
    reg.set("cache.llc.misses", sum(s.misses for s in h.llc))
    reg.set("hierarchy.demand_accesses", h.demand_accesses)
    reg.set("hierarchy.prefetch_fills", h.prefetch_fills)
    reg.set("hierarchy.prefetch_useful", h.prefetch_useful)
    reg.set("hierarchy.prefetch_useless", h.prefetch_useless)
    judged = h.prefetch_useful + h.prefetch_useless
    reg.set("hierarchy.prefetch_accuracy", h.prefetch_useful / judged if judged else 0.0)

    reg.set("tlb.hits", machine.tlb.hits)
    reg.set("tlb.misses", machine.tlb.misses)

    ip = machine.ip_stride
    reg.set("ip_stride.prefetches_issued", getattr(ip, "prefetches_issued", 0))
    reg.set("ip_stride.allocations", getattr(ip, "allocations", 0))
    reg.set("ip_stride.evictions", getattr(ip, "evictions", 0))
    for cause, count in sorted(getattr(ip, "evictions_by_cause", {}).items()):
        reg.set(f"ip_stride.evictions.{cause}", count)
    reg.set("ip_stride.stride_rewrites", getattr(ip, "stride_rewrites", 0))
    reg.set(
        "ip_stride.dropped_page_cross", getattr(ip, "prefetches_dropped_page_cross", 0)
    )
    reg.set(
        "ip_stride.dropped_stride_cap", getattr(ip, "prefetches_dropped_stride_cap", 0)
    )
    reg.set("ip_stride.clears", getattr(ip, "clears", 0))

    for prefetcher in machine.noise_prefetchers:
        reg.set(
            f"prefetch.{prefetcher.name}.issued",
            getattr(prefetcher, "prefetches_issued", 0),
        )

    if machine.latency_histogram.total:
        reg.set("latency.measured", machine.latency_histogram)
    return reg
