"""repro.obs: structured tracing, metrics, and cycle-attribution profiling.

Three layers over the simulated machine:

* **Tracing** (`events`, `tracer`, `sinks`) — typed events emitted from
  hook points in the CPU, memory hierarchy, prefetcher, TLB and sanitizer,
  fanned out to ring-buffer / JSONL / Chrome-trace sinks.  Off by default:
  every hook site costs one attribute check against :data:`NULL_TRACER`.
* **Metrics** (`metrics`) — a snapshot of every component counter plus the
  measured-latency histogram straddling the LLC-hit threshold.
* **Profiling** (`profiler`) — ``with machine.span("train"): ...`` scopes
  attributing simulated cycles and wall-clock to attack phases; always on.
* **Cross-process telemetry** (`telemetry`) — per-worker wall windows
  captured inside pool workers, merged by the parent into a
  :class:`Timeline` that partitions the run's wall-clock into
  serialize/queue/compute/merge/serial buckets (``afterimage perf``).

Enable tracing per machine with ``Machine(trace=True)`` (or a configured
:class:`Tracer`), or globally with ``REPRO_TRACE=1`` — the same convention
as ``repro.sanitize``.  See docs/OBSERVABILITY.md.
"""

from repro.obs.events import (
    EVENT_TYPES,
    Clflush,
    ContextSwitch,
    EntrySnapshot,
    LoadTraced,
    PrefetchFill,
    PrefetchIssued,
    SanitizerViolation,
    SpanBegin,
    SpanEnd,
    TableTransition,
    TlbMiss,
    TraceEvent,
)
from repro.obs.metrics import Histogram, MetricsRegistry, latency_bounds, snapshot
from repro.obs.profiler import Span, SpanProfile, SpanStats
from repro.obs.runner import AttackRun, run_attack
from repro.obs.sinks import (
    ChromeTraceSink,
    ChromeTraceWriter,
    JsonlSink,
    RingBufferSink,
    Sink,
    event_json,
)
from repro.obs.telemetry import (
    BUCKETS,
    TaskRecord,
    TelemetryCollector,
    TelemetryEnvelope,
    Timeline,
    WorkerTelemetry,
    capture_worker,
)
from repro.obs.tracer import (
    ENV_VAR,
    NULL_TRACER,
    NullTracer,
    Tracer,
    resolve_tracer,
    trace_enabled,
)

__all__ = [
    "AttackRun",
    "BUCKETS",
    "ChromeTraceSink",
    "ChromeTraceWriter",
    "Clflush",
    "ContextSwitch",
    "ENV_VAR",
    "EVENT_TYPES",
    "EntrySnapshot",
    "Histogram",
    "JsonlSink",
    "LoadTraced",
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "PrefetchFill",
    "PrefetchIssued",
    "RingBufferSink",
    "SanitizerViolation",
    "Sink",
    "Span",
    "SpanBegin",
    "SpanEnd",
    "SpanProfile",
    "SpanStats",
    "TableTransition",
    "TaskRecord",
    "TelemetryCollector",
    "TelemetryEnvelope",
    "Timeline",
    "TlbMiss",
    "TraceEvent",
    "Tracer",
    "WorkerTelemetry",
    "event_json",
    "capture_worker",
    "latency_bounds",
    "resolve_tracer",
    "run_attack",
    "snapshot",
    "trace_enabled",
]
