"""Cross-process performance telemetry: worker timelines and attribution.

The single-process :mod:`repro.obs` layers (tracer, metrics, spans) die
with the pool worker that collected them, which made the parallel
:class:`~repro.attacks.executor.TrialExecutor` and the
:class:`~repro.campaign.runner.CampaignRunner` observability black holes:
``BENCH_attacks.json`` records a 0.911 "speedup" at ``--jobs 2`` and
nothing in the repo could say where the time went.  This module closes
that hole:

* :class:`WorkerTelemetry` is captured *inside* each worker (wall window,
  per-span host seconds from the machine profile, simulated cycles) and
  piggy-backed on the result via :class:`TelemetryEnvelope` — the batch
  or error itself is untouched, so same-seed aggregates stay
  byte-identical with telemetry on.
* :class:`TelemetryCollector` does the parent-side bookkeeping: pickled
  payload sizes both directions (measured with ``pickle.dumps``),
  dispatch timestamps, per-result receive latency, pool-window edges and
  the merge phase.
* :class:`Timeline` merges everything into per-worker lanes plus an
  overhead attribution that partitions the run's wall-clock into five
  named buckets — ``serialize`` / ``queue`` / ``compute`` / ``merge`` /
  ``serial`` — **by construction** (the buckets are a partition of the
  wall interval, so coverage is 100% up to clamping), rendered as text,
  JSON, or a Chrome ``trace_event`` file with labeled process lanes.

All timestamps are ``time.perf_counter()``: on Linux that is
``CLOCK_MONOTONIC``, which is system-wide, so timestamps taken inside a
forked worker are directly comparable to the parent's.
"""

from __future__ import annotations

import os
import pickle
from collections.abc import Iterator
from contextlib import contextmanager
from dataclasses import dataclass, field
from time import perf_counter  # repro: noqa[RL003] — telemetry measures host wall-clock
from typing import Any

#: The attribution bucket names, in rendering order.
BUCKETS = ("serialize", "queue", "compute", "merge", "serial")


@dataclass(frozen=True)
class WorkerTelemetry:
    """What one worker measured about itself, shipped back with the result.

    ``start``/``end`` bracket the worker's whole task (including machine
    construction); ``span_wall`` is the per-phase host-seconds view of the
    machine's span profile, and ``simulated_cycles``/``n_trials`` tie the
    wall window back to simulated work.  ``ok`` is False when the task
    produced a :class:`~repro.attacks.executor.TaskError`.
    """

    pid: int
    start: float
    end: float
    ok: bool
    simulated_cycles: int = 0
    n_trials: int = 0
    span_wall: dict[str, float] = field(default_factory=dict)

    @property
    def compute_seconds(self) -> float:
        return max(0.0, self.end - self.start)

    def as_dict(self) -> dict[str, Any]:
        return {
            "pid": self.pid,
            "start": self.start,
            "end": self.end,
            "ok": self.ok,
            "compute_seconds": self.compute_seconds,
            "simulated_cycles": self.simulated_cycles,
            "n_trials": self.n_trials,
            "span_wall": dict(self.span_wall),
        }


@dataclass(frozen=True)
class TelemetryEnvelope:
    """A worker result plus its telemetry, crossing the pool as one pickle.

    ``outcome`` is whatever the uninstrumented worker function returns (a
    ``TrialBatch``, a ``TaskError``, or the campaign's ``(key, batch,
    error)`` tuple) — callers unwrap it and the downstream result shape
    is identical to the telemetry-off path.
    """

    outcome: Any
    telemetry: WorkerTelemetry


def capture_worker(fn: Any, arg: Any, label_batch: bool = True) -> TelemetryEnvelope:
    """Run ``fn(arg)`` inside a worker, timing it into an envelope.

    The batch's span profile (if the outcome carries one) supplies the
    per-phase wall breakdown; an error outcome yields ``ok=False`` with
    an empty breakdown.
    """
    start = perf_counter()
    outcome = fn(arg)
    end = perf_counter()
    batch = outcome
    if isinstance(outcome, tuple):  # campaign (key, batch, error) triple
        batch = outcome[1]
    spans = getattr(batch, "spans", None) or {}
    return TelemetryEnvelope(
        outcome=outcome,
        telemetry=WorkerTelemetry(
            pid=os.getpid(),
            start=start,
            end=end,
            ok=batch is not None and not hasattr(batch, "error"),
            simulated_cycles=int(getattr(batch, "simulated_cycles", 0) or 0),
            n_trials=int(getattr(batch, "n_trials", 0) or 0),
            span_wall={
                str(name): float(stats.get("wall_seconds", 0.0))
                for name, stats in spans.items()
                if isinstance(stats, dict)
            },
        ),
    )


@dataclass
class TaskRecord:
    """Parent+worker bookkeeping for one dispatched task."""

    index: int
    label: str
    request_bytes: int = 0
    dispatch_ts: float = 0.0
    receive_ts: float = 0.0
    result_bytes: int = 0
    worker: WorkerTelemetry | None = None

    @property
    def queue_seconds(self) -> float:
        """Host seconds between dispatch and the worker picking it up."""
        if self.worker is None:
            return 0.0
        return max(0.0, self.worker.start - self.dispatch_ts)

    @property
    def result_latency(self) -> float:
        """Host seconds between the worker finishing and the parent seeing it."""
        if self.worker is None:
            return 0.0
        return max(0.0, self.receive_ts - self.worker.end)

    @property
    def compute_seconds(self) -> float:
        return self.worker.compute_seconds if self.worker is not None else 0.0

    def as_dict(self) -> dict[str, Any]:
        return {
            "index": self.index,
            "label": self.label,
            "request_bytes": self.request_bytes,
            "result_bytes": self.result_bytes,
            "dispatch_ts": self.dispatch_ts,
            "receive_ts": self.receive_ts,
            "queue_seconds": self.queue_seconds,
            "result_latency": self.result_latency,
            "compute_seconds": self.compute_seconds,
            "worker": self.worker.as_dict() if self.worker else None,
        }


def _interval_union(intervals: list[tuple[float, float]]) -> float:
    """Total measure of the union of ``[begin, end]`` intervals."""
    covered = 0.0
    cursor: float | None = None
    for begin, end in sorted(i for i in intervals if i[1] > i[0]):
        if cursor is None or begin > cursor:
            covered += end - begin
            cursor = end
        elif end > cursor:
            covered += end - cursor
            cursor = end
    return covered


class TelemetryCollector:
    """Parent-side accumulator shared by the executor and campaign runner.

    Usage shape::

        collector = TelemetryCollector(jobs=jobs)
        for i, task in enumerate(tasks):
            collector.add_request(i, label, task)   # pickles for size
        collector.window_begin()                    # dispatch timestamp
        for i, envelope in enumerate(pool.imap(worker, tasks)):
            outcome = collector.receive(i, envelope)
        collector.window_end()
        collector.measure_results(outcomes)         # pickles for size
        with collector.merge_phase():
            merged = ...
        timeline = collector.finish()
    """

    def __init__(self, jobs: int) -> None:
        self.jobs = jobs
        self.records: list[TaskRecord] = []
        self._by_index: dict[int, TaskRecord] = {}
        self.windows: list[tuple[float, float]] = []
        self.serialize_seconds = 0.0
        self.merge_seconds = 0.0
        self.origin = perf_counter()
        self._window_start: float | None = None

    # -- request side -------------------------------------------------- #

    def add_request(self, index: int, label: str, payload: Any) -> None:
        """Register one task, measuring its pickled request size."""
        start = perf_counter()
        nbytes = len(pickle.dumps(payload))
        self.serialize_seconds += perf_counter() - start
        record = TaskRecord(index=index, label=label, request_bytes=nbytes)
        self.records.append(record)
        self._by_index[index] = record

    def window_begin(self) -> None:
        """Mark pool dispatch: every registered task is queued from here."""
        now = perf_counter()
        self._window_start = now
        for record in self.records:
            if record.worker is None:
                record.dispatch_ts = now

    def receive(self, index: int, envelope: TelemetryEnvelope) -> Any:
        """Record one arriving envelope; returns the unwrapped outcome."""
        record = self._by_index[index]
        record.receive_ts = perf_counter()
        record.worker = envelope.telemetry
        return envelope.outcome

    def window_end(self) -> None:
        if self._window_start is not None:
            self.windows.append((self._window_start, perf_counter()))
            self._window_start = None

    def measure_results(self, outcomes: list[Any], start: int = 0) -> None:
        """Measure result pickle sizes (parent-side, outside the window).

        ``start`` offsets into the record list for callers that dispatch
        in several rounds (the campaign runner's retry loop).
        """
        for record, outcome in zip(self.records[start:], outcomes):
            start = perf_counter()
            try:
                record.result_bytes = len(pickle.dumps(outcome))
            except Exception:
                record.result_bytes = 0
            self.serialize_seconds += perf_counter() - start

    @contextmanager
    def merge_phase(self) -> Iterator[None]:
        """Context manager timing the merge bucket."""
        start = perf_counter()
        try:
            yield
        finally:
            self.merge_seconds += perf_counter() - start

    def finish(self, wall_seconds: float | None = None) -> "Timeline":
        if self._window_start is not None:  # tolerate a missing window_end
            self.window_end()
        wall = (
            wall_seconds
            if wall_seconds is not None
            else perf_counter() - self.origin
        )
        return Timeline(
            jobs=self.jobs,
            origin=self.origin,
            wall_seconds=wall,
            records=list(self.records),
            windows=list(self.windows),
            serialize_seconds=self.serialize_seconds,
            merge_seconds=self.merge_seconds,
        )


@dataclass
class Timeline:
    """Merged per-worker records plus the wall-clock attribution."""

    jobs: int
    origin: float
    wall_seconds: float
    records: list[TaskRecord]
    windows: list[tuple[float, float]]
    serialize_seconds: float
    merge_seconds: float

    # -- attribution ---------------------------------------------------- #

    def _clipped_busy(self) -> list[tuple[float, float]]:
        """Worker busy intervals clipped to the pool windows."""
        clipped: list[tuple[float, float]] = []
        for record in self.records:
            if record.worker is None:
                continue
            for w_begin, w_end in self.windows or [(self.origin, self.origin + self.wall_seconds)]:
                begin = max(record.worker.start, w_begin)
                end = min(record.worker.end, w_end)
                if end > begin:
                    clipped.append((begin, end))
        return clipped

    def buckets(self) -> dict[str, float]:
        """Partition the wall interval into the five named buckets.

        ``compute`` is the union of worker-busy time inside the pool
        windows; ``queue`` is the remaining window time (dispatch latency,
        IPC, result unpickling); ``serialize`` and ``merge`` are measured
        parent phases outside the windows; ``serial`` is everything else
        (setup, cache reads, bookkeeping).  The five sum to
        ``wall_seconds`` exactly unless clock skew forces the ``serial``
        remainder to clamp at zero.
        """
        window_len = sum(max(0.0, end - begin) for begin, end in self.windows)
        compute = min(_interval_union(self._clipped_busy()), window_len) if window_len else 0.0
        if not self.windows:  # serial path: busy intervals are the window
            compute = _interval_union(
                [
                    (r.worker.start, r.worker.end)
                    for r in self.records
                    if r.worker is not None
                ]
            )
        queue = max(0.0, window_len - compute)
        serialize = self.serialize_seconds
        merge = self.merge_seconds
        serial = max(0.0, self.wall_seconds - (serialize + queue + compute + merge))
        return {
            "serialize": serialize,
            "queue": queue,
            "compute": compute,
            "merge": merge,
            "serial": serial,
        }

    def attribution(self) -> dict[str, Any]:
        """Buckets with shares, plus coverage (attributed / wall)."""
        buckets = self.buckets()
        wall = self.wall_seconds
        attributed = sum(buckets.values())
        return {
            "wall_seconds": wall,
            "coverage": (min(attributed, wall) / wall) if wall > 0 else 1.0,
            "buckets": {
                name: {
                    "seconds": buckets[name],
                    "share": (buckets[name] / wall) if wall > 0 else 0.0,
                }
                for name in BUCKETS
            },
        }

    def dominant_overhead(self) -> str:
        """The non-compute bucket with the largest share."""
        buckets = self.buckets()
        overheads = {k: v for k, v in buckets.items() if k != "compute"}
        return max(overheads, key=lambda name: overheads[name])

    # -- lanes ----------------------------------------------------------- #

    def lanes(self) -> dict[int, list[TaskRecord]]:
        """Records grouped per worker pid, in dispatch order."""
        grouped: dict[int, list[TaskRecord]] = {}
        for record in self.records:
            pid = record.worker.pid if record.worker is not None else 0
            grouped.setdefault(pid, []).append(record)
        return grouped

    def utilization(self) -> float:
        """Worker-busy seconds over available worker-seconds in the windows."""
        window_len = sum(max(0.0, end - begin) for begin, end in self.windows)
        if window_len <= 0:
            return 1.0 if self.records else 0.0
        busy = sum(
            record.compute_seconds for record in self.records if record.worker
        )
        return min(1.0, busy / (window_len * self.jobs))

    # -- totals ----------------------------------------------------------- #

    def totals(self) -> dict[str, Any]:
        return {
            "tasks": len(self.records),
            "jobs": self.jobs,
            "wall_seconds": self.wall_seconds,
            "utilization": self.utilization(),
            "request_bytes": sum(r.request_bytes for r in self.records),
            "result_bytes": sum(r.result_bytes for r in self.records),
            "queue_seconds": sum(r.queue_seconds for r in self.records),
            "compute_seconds": sum(r.compute_seconds for r in self.records),
            "simulated_cycles": sum(
                r.worker.simulated_cycles for r in self.records if r.worker
            ),
        }

    # -- rendering -------------------------------------------------------- #

    def as_dict(self) -> dict[str, Any]:
        return {
            "attribution": self.attribution(),
            "totals": self.totals(),
            "lanes": {
                str(pid): [record.as_dict() for record in records]
                for pid, records in self.lanes().items()
            },
        }

    def render_text(self) -> str:
        attribution = self.attribution()
        lines = [
            f"timeline: {len(self.records)} tasks, jobs={self.jobs}, "
            f"wall {self.wall_seconds:.3f}s, "
            f"utilization {self.utilization() * 100:.0f}%, "
            f"coverage {attribution['coverage'] * 100:.1f}%"
        ]
        lines.append(f"{'bucket':<10}  {'seconds':>9}  {'share':>6}")
        for name in BUCKETS:
            entry = attribution["buckets"][name]
            lines.append(
                f"{name:<10}  {entry['seconds']:>9.3f}  {entry['share']:>6.1%}"
            )
        lines.append("")
        lines.append(
            f"{'worker':<10}  {'tasks':>5}  {'busy (s)':>9}  "
            f"{'queue (s)':>9}  {'in KiB':>8}  {'out KiB':>8}"
        )
        for pid, records in sorted(self.lanes().items()):
            busy = sum(record.compute_seconds for record in records)
            queue = sum(record.queue_seconds for record in records)
            nbytes_in = sum(record.request_bytes for record in records)
            nbytes_out = sum(record.result_bytes for record in records)
            lines.append(
                f"pid {pid:<6}  {len(records):>5}  {busy:>9.3f}  "
                f"{queue:>9.3f}  {nbytes_in / 1024:>8.1f}  {nbytes_out / 1024:>8.1f}"
            )
        return "\n".join(lines)

    def write_chrome(self, path: str) -> None:
        """Export the timeline as a Chrome ``trace_event`` file.

        One labeled process lane per worker pid (plus a parent lane for
        the serialize/merge phases), timestamps in microseconds relative
        to the collector's origin.
        """
        from repro.obs.sinks import ChromeTraceWriter

        writer = ChromeTraceWriter()
        parent_pid = writer.lane("executor (parent)", "dispatch/merge")

        def us(ts: float) -> float:
            return max(0.0, ts - self.origin) * 1e6

        serialize = self.serialize_seconds
        if serialize > 0:
            writer.slice(
                parent_pid, "serialize", us(self.origin), serialize * 1e6,
                cat="serialize", args={"seconds": serialize},
            )
        for w_begin, w_end in self.windows:
            writer.slice(
                parent_pid, "pool window", us(w_begin), (w_end - w_begin) * 1e6,
                cat="queue",
            )
        if self.merge_seconds > 0:
            end = self.origin + self.wall_seconds
            writer.slice(
                parent_pid, "merge", us(end - self.merge_seconds),
                self.merge_seconds * 1e6, cat="merge",
                args={"seconds": self.merge_seconds},
            )
        for pid, records in sorted(self.lanes().items()):
            lane_pid = writer.lane(f"worker pid {pid}", "trial compute")
            for record in records:
                if record.worker is None:
                    continue
                if record.queue_seconds > 0:
                    writer.slice(
                        lane_pid, f"queue:{record.label}",
                        us(record.dispatch_ts), record.queue_seconds * 1e6,
                        cat="queue",
                    )
                writer.slice(
                    lane_pid, record.label, us(record.worker.start),
                    record.compute_seconds * 1e6, cat="compute",
                    args={
                        "simulated_cycles": record.worker.simulated_cycles,
                        "n_trials": record.worker.n_trials,
                        "request_bytes": record.request_bytes,
                        "result_bytes": record.result_bytes,
                        "span_wall": record.worker.span_wall,
                    },
                )
                if record.result_latency > 0:
                    writer.slice(
                        lane_pid, f"result:{record.label}",
                        us(record.worker.end), record.result_latency * 1e6,
                        cat="serialize",
                    )
        writer.write(path)
