"""Event sinks: where a :class:`~repro.obs.tracer.Tracer` delivers events.

Three sinks cover the common workflows:

* :class:`RingBufferSink` — in-memory, bounded, for tests and programmatic
  consumers (repro.leakcheck reads ``TableTransition`` events from one).
* :class:`JsonlSink` — one compact JSON object per line; same-seed runs
  produce byte-identical files (events carry no wall-clock or floats).
* :class:`ChromeTraceSink` — Chrome ``trace_event`` / Perfetto JSON so a
  whole attack run can be opened in ``chrome://tracing`` or ui.perfetto.dev.
"""

from __future__ import annotations

import json
from collections import deque
from typing import IO, Iterator

from repro.obs.events import SpanBegin, SpanEnd, TraceEvent

DEFAULT_RING_CAPACITY = 65536


def event_json(event: TraceEvent) -> str:
    """Canonical compact JSON for one event (stable key order)."""
    return json.dumps(event.to_dict(), sort_keys=True, separators=(",", ":"))


class Sink:
    """Base sink: receives events one at a time; ``close()`` finalizes."""

    def emit(self, event: TraceEvent) -> None:
        raise NotImplementedError

    def close(self) -> None:
        """Flush/finalize; safe to call more than once."""


class RingBufferSink(Sink):
    """Keep the most recent events in memory.

    ``capacity=None`` makes the buffer unbounded (used when a consumer
    needs every event, e.g. the dynamic leak checker).
    """

    def __init__(self, capacity: int | None = DEFAULT_RING_CAPACITY) -> None:
        self.capacity = capacity
        self._events: deque[TraceEvent] = deque(maxlen=capacity)

    def emit(self, event: TraceEvent) -> None:
        self._events.append(event)

    def __len__(self) -> int:
        return len(self._events)

    def events(self, kind: str | None = None) -> list[TraceEvent]:
        """All buffered events, optionally filtered by ``kind``."""
        if kind is None:
            return list(self._events)
        return [e for e in self._events if e.kind == kind]

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(list(self._events))

    def clear(self) -> None:
        self._events.clear()


class JsonlSink(Sink):
    """Stream events to a file as JSON Lines (one object per line)."""

    def __init__(self, path: str) -> None:
        self.path = path
        self._fh: IO[str] | None = open(path, "w", encoding="utf-8")
        self.events_written = 0

    def emit(self, event: TraceEvent) -> None:
        if self._fh is None:
            raise ValueError(f"JsonlSink({self.path!r}) is closed")
        self._fh.write(event_json(event))
        self._fh.write("\n")
        self.events_written += 1

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None


class ChromeTraceSink(Sink):
    """Export a Chrome ``trace_event`` JSON file (Perfetto-compatible).

    Span begin/end events map to duration slices (``ph`` = ``B``/``E``)
    and everything else becomes an instant event (``ph`` = ``i``) whose
    ``args`` carry the full event payload.  Timestamps are simulated
    cycles converted to microseconds via ``cycles_per_us`` so the viewer
    timeline reads in simulated time, not wall-clock.
    """

    PID = 1
    TID = 1

    def __init__(self, path: str, cycles_per_us: float = 1.0) -> None:
        if cycles_per_us <= 0:
            raise ValueError("cycles_per_us must be positive")
        self.path = path
        self.cycles_per_us = cycles_per_us
        self._records: list[dict] = [
            {
                "name": "process_name",
                "ph": "M",
                "pid": self.PID,
                "tid": self.TID,
                "args": {"name": "afterimage simulated machine"},
            }
        ]
        self._closed = False

    def _ts(self, cycle: int) -> float:
        return cycle / self.cycles_per_us

    def emit(self, event: TraceEvent) -> None:
        if self._closed:
            raise ValueError(f"ChromeTraceSink({self.path!r}) is closed")
        base = {"pid": self.PID, "tid": self.TID, "ts": self._ts(event.cycle)}
        if isinstance(event, SpanBegin):
            self._records.append({**base, "name": event.name, "ph": "B", "cat": "span"})
        elif isinstance(event, SpanEnd):
            self._records.append(
                {
                    **base,
                    "name": event.name,
                    "ph": "E",
                    "cat": "span",
                    "args": {"cycles": event.cycles},
                }
            )
        else:
            self._records.append(
                {
                    **base,
                    "name": event.kind,
                    "ph": "i",
                    "s": "t",
                    "cat": event.kind,
                    "args": event.to_dict(),
                }
            )

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        with open(self.path, "w", encoding="utf-8") as fh:
            json.dump({"traceEvents": self._records}, fh, sort_keys=True)
            fh.write("\n")
