"""Event sinks: where a :class:`~repro.obs.tracer.Tracer` delivers events.

Three sinks cover the common workflows:

* :class:`RingBufferSink` — in-memory, bounded, for tests and programmatic
  consumers (repro.leakcheck reads ``TableTransition`` events from one).
* :class:`JsonlSink` — one compact JSON object per line; same-seed runs
  produce byte-identical files (events carry no wall-clock or floats).
* :class:`ChromeTraceSink` — Chrome ``trace_event`` / Perfetto JSON so a
  whole attack run can be opened in ``chrome://tracing`` or ui.perfetto.dev.
"""

from __future__ import annotations

import json
from collections import deque
from typing import IO, Iterator

from repro.obs.events import SpanBegin, SpanEnd, TraceEvent

DEFAULT_RING_CAPACITY = 65536


def event_json(event: TraceEvent) -> str:
    """Canonical compact JSON for one event (stable key order)."""
    return json.dumps(event.to_dict(), sort_keys=True, separators=(",", ":"))


class Sink:
    """Base sink: receives events one at a time; ``close()`` finalizes."""

    def emit(self, event: TraceEvent) -> None:
        raise NotImplementedError

    def close(self) -> None:
        """Flush/finalize; safe to call more than once."""


class RingBufferSink(Sink):
    """Keep the most recent events in memory.

    ``capacity=None`` makes the buffer unbounded (used when a consumer
    needs every event, e.g. the dynamic leak checker).
    """

    def __init__(self, capacity: int | None = DEFAULT_RING_CAPACITY) -> None:
        self.capacity = capacity
        self._events: deque[TraceEvent] = deque(maxlen=capacity)

    def emit(self, event: TraceEvent) -> None:
        self._events.append(event)

    def __len__(self) -> int:
        return len(self._events)

    def events(self, kind: str | None = None) -> list[TraceEvent]:
        """All buffered events, optionally filtered by ``kind``."""
        if kind is None:
            return list(self._events)
        return [e for e in self._events if e.kind == kind]

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(list(self._events))

    def clear(self) -> None:
        self._events.clear()


class JsonlSink(Sink):
    """Stream events to a file as JSON Lines (one object per line)."""

    def __init__(self, path: str) -> None:
        self.path = path
        self._fh: IO[str] | None = open(path, "w", encoding="utf-8")
        self.events_written = 0

    def emit(self, event: TraceEvent) -> None:
        if self._fh is None:
            raise ValueError(f"JsonlSink({self.path!r}) is closed")
        self._fh.write(event_json(event))
        self._fh.write("\n")
        self.events_written += 1

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None


class ChromeTraceWriter:
    """Builds Chrome ``trace_event`` records with labeled process lanes.

    Shared by :class:`ChromeTraceSink` (simulated-cycle timelines) and
    :class:`repro.obs.telemetry.Timeline` (wall-clock worker timelines).
    Each :meth:`lane` call allocates the next pid (allocation order is
    deterministic) and emits the ``process_name``/``thread_name``
    metadata events the trace viewers use to label lanes.
    """

    def __init__(self) -> None:
        self.records: list[dict] = []
        self._next_pid = 0

    def lane(self, process_name: str, thread_name: str = "main") -> int:
        """Allocate a labeled lane; returns its stable pid."""
        self._next_pid += 1
        pid = self._next_pid
        for meta, label in (("process_name", process_name), ("thread_name", thread_name)):
            self.records.append(
                {"name": meta, "ph": "M", "pid": pid, "tid": 1, "args": {"name": label}}
            )
        return pid

    def slice(
        self,
        pid: int,
        name: str,
        ts_us: float,
        dur_us: float,
        cat: str = "span",
        args: dict | None = None,
    ) -> None:
        """One complete (``ph=X``) slice on lane ``pid``."""
        record = {
            "pid": pid,
            "tid": 1,
            "name": name,
            "ph": "X",
            "ts": ts_us,
            "dur": max(0.0, dur_us),
            "cat": cat,
        }
        if args:
            record["args"] = args
        self.records.append(record)

    def write(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            json.dump({"traceEvents": self.records}, fh, sort_keys=True)
            fh.write("\n")


class ChromeTraceSink(Sink):
    """Export a Chrome ``trace_event`` JSON file (Perfetto-compatible).

    Span begin/end events map to duration slices (``ph`` = ``B``/``E``)
    and everything else becomes an instant event (``ph`` = ``i``) whose
    ``args`` carry the full event payload.  Timestamps are simulated
    cycles converted to microseconds via ``cycles_per_us`` so the viewer
    timeline reads in simulated time, not wall-clock.

    Each machine built against the owning tracer registers itself via
    :meth:`register_machine`, which allocates a fresh labeled lane
    (stable pid in registration order) and routes subsequent events
    there — so a multi-machine trace shows one named lane per machine
    instead of collapsing into a single unlabeled one.  Events emitted
    before any registration land on a default "machine" lane.
    """

    def __init__(self, path: str, cycles_per_us: float = 1.0) -> None:
        if cycles_per_us <= 0:
            raise ValueError("cycles_per_us must be positive")
        self.path = path
        self.cycles_per_us = cycles_per_us
        self._writer = ChromeTraceWriter()
        self._machines = 0
        self._pid: int | None = None
        self._closed = False

    @property
    def _records(self) -> list[dict]:
        return self._writer.records

    def register_machine(self, machine: object) -> int:
        """Open a new labeled lane for ``machine``; returns its pid.

        Machines in this codebase run to completion sequentially within a
        process, so routing by "most recently registered" is exact; the
        label carries the machine preset name and a registration ordinal.
        """
        self._machines += 1
        params = getattr(machine, "params", None)
        preset = getattr(params, "name", None) or "machine"
        self._pid = self._writer.lane(
            f"{preset} #{self._machines}", "simulated core"
        )
        return self._pid

    def _current_pid(self) -> int:
        if self._pid is None:
            self._pid = self._writer.lane("afterimage simulated machine", "simulated core")
        return self._pid

    def _ts(self, cycle: int) -> float:
        return cycle / self.cycles_per_us

    def emit(self, event: TraceEvent) -> None:
        if self._closed:
            raise ValueError(f"ChromeTraceSink({self.path!r}) is closed")
        base = {"pid": self._current_pid(), "tid": 1, "ts": self._ts(event.cycle)}
        if isinstance(event, SpanBegin):
            self._records.append({**base, "name": event.name, "ph": "B", "cat": "span"})
        elif isinstance(event, SpanEnd):
            self._records.append(
                {
                    **base,
                    "name": event.name,
                    "ph": "E",
                    "cat": "span",
                    "args": {"cycles": event.cycles},
                }
            )
        else:
            self._records.append(
                {
                    **base,
                    "name": event.kind,
                    "ph": "i",
                    "s": "t",
                    "cat": event.kind,
                    "args": event.to_dict(),
                }
            )

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._writer.write(self.path)
