"""Cycle-attribution profiler: scoped spans over the simulated clock.

``with machine.span("train"): ...`` attributes both simulated cycles and
wall-clock seconds to the named phase.  The aggregate lives on the machine
(``machine.profile``) and is *always* collected — spans are rare (a few
per attack round) so the cost is negligible — while the ``SpanBegin`` /
``SpanEnd`` trace events are only emitted when tracing is enabled.

Wall-clock time never enters the event stream (it would break the
byte-identical-trace guarantee); it is reported only through
:meth:`SpanProfile.as_dict`.
"""

from __future__ import annotations

from time import perf_counter  # repro: noqa[RL003] — profiler measures host time
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:
    from repro.cpu.machine import Machine


class SpanStats:
    """Accumulated totals for one span name."""

    def __init__(self) -> None:
        self.count = 0
        self.cycles = 0
        self.wall_seconds = 0.0

    def add(self, cycles: int, wall_seconds: float) -> None:
        self.count += 1
        self.cycles += cycles
        self.wall_seconds += wall_seconds

    def as_dict(self) -> dict[str, Any]:
        return {
            "count": self.count,
            "cycles": self.cycles,
            "wall_seconds": self.wall_seconds,
        }


class SpanProfile:
    """Per-name span aggregates for one machine (insertion-ordered)."""

    def __init__(self) -> None:
        self.spans: dict[str, SpanStats] = {}

    def add(self, name: str, cycles: int, wall_seconds: float) -> None:
        stats = self.spans.get(name)
        if stats is None:
            stats = self.spans[name] = SpanStats()
        stats.add(cycles, wall_seconds)

    def __contains__(self, name: str) -> bool:
        return name in self.spans

    def __getitem__(self, name: str) -> SpanStats:
        return self.spans[name]

    def as_dict(self) -> dict[str, Any]:
        return {name: stats.as_dict() for name, stats in self.spans.items()}

    def render_text(self) -> str:
        """Aligned per-span breakdown (cycles, share, wall time, count)."""
        if not self.spans:
            return "(no spans recorded)"
        total_cycles = sum(s.cycles for s in self.spans.values())
        width = max(len(name) for name in self.spans)
        lines = [
            f"{'span':<{width}}  {'cycles':>14}  {'share':>6}  {'wall (s)':>9}  {'count':>7}"
        ]
        for name, stats in self.spans.items():
            share = stats.cycles / total_cycles if total_cycles else 0.0
            lines.append(
                f"{name:<{width}}  {stats.cycles:>14,}  {share:>6.1%}  "
                f"{stats.wall_seconds:>9.3f}  {stats.count:>7}"
            )
        return "\n".join(lines)

    def reset(self) -> None:
        self.spans.clear()


class Span:
    """Context manager attributing one scope to ``profile[name]``.

    Reads the machine's simulated clock at entry and exit; emits
    ``SpanBegin``/``SpanEnd`` events only when the machine's tracer is
    enabled.  Reentrant use of the same name simply accumulates.
    """

    def __init__(self, profile: SpanProfile, name: str, machine: "Machine | None" = None) -> None:
        self.profile = profile
        self.name = name
        self.machine = machine
        self._start_cycles = 0
        self._start_wall = 0.0
        self._emitted_begin = False

    def __enter__(self) -> "Span":
        self._start_wall = perf_counter()
        if self.machine is not None:
            self._start_cycles = self.machine.cycles
            tracer = self.machine.tracer
            # Remember whether SpanBegin actually went out: __exit__ must
            # emit the matching SpanEnd even if ``tracer.enabled`` was
            # toggled off mid-span (or the body raised), so sinks never
            # see an unbalanced begin.
            self._emitted_begin = tracer.enabled
            if self._emitted_begin:
                from repro.obs.events import SpanBegin

                tracer.emit(SpanBegin(cycle=self.machine.cycles, name=self.name))
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        wall = perf_counter() - self._start_wall
        cycles = 0
        if self.machine is not None:
            cycles = self.machine.cycles - self._start_cycles
            if self._emitted_begin:
                from repro.obs.events import SpanEnd

                self.machine.tracer.emit(
                    SpanEnd(cycle=self.machine.cycles, name=self.name, cycles=cycles)
                )
        self.profile.add(self.name, cycles, wall)
