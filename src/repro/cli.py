"""Command-line interface: run any of the paper's experiments.

Installed as the ``afterimage`` console script::

    afterimage list
    afterimage fig06 [--machine i7-9700]
    afterimage table3 --rounds 200
    afterimage rsa --bits 128
    afterimage mitigation
    afterimage covert --entries 24
    afterimage lint src tests --format json
    afterimage leakcheck --suite
    afterimage leakcheck --scan src/
    afterimage trace sgx --out run.trace.json
    afterimage metrics switch-leak --format json
    afterimage run rsa --rounds 24
    afterimage run --suite --jobs 4
    afterimage campaign list
    afterimage campaign run attacks-vs-noise --jobs 4
    afterimage campaign run attacks-vs-noise --shard 0/2 --store worker-a
    afterimage campaign merge worker-a worker-b --store merged
    afterimage campaign status defense-matrix
    afterimage campaign report revng-table1 -o campaign.md
    afterimage campaign aggregate attacks-vs-noise --store merged
    afterimage serve merged --port 8314
    afterimage perf --suite --jobs 2 --format json
    afterimage bench compare BENCH_attacks.json BENCH_new.json

Each subcommand prints the corresponding figure/table series, like the
benchmark suite, but without pytest in the loop.  The attack subcommands
(``variant1``, ``covert``, ``rsa``, ...) are thin aliases over the
:mod:`repro.attacks` registry; ``run`` drives any registered attack —
or the whole suite, optionally fanned across ``--jobs`` workers.
"""

from __future__ import annotations

import argparse
import json
import sys
from collections.abc import Callable, Sequence

from repro.attacks.registry import attack_names
from repro.params import MachineParams, preset
from repro.utils.rng import make_rng


def _table(rows: list[tuple], header: tuple[str, ...]) -> None:
    widths = [
        max(len(str(header[i])), max((len(str(r[i])) for r in rows), default=0))
        for i in range(len(header))
    ]
    print("  ".join(str(h).ljust(w) for h, w in zip(header, widths)))
    for row in rows:
        print("  ".join(str(v).ljust(w) for v, w in zip(row, widths)))


# ---------------------------------------------------------------------- #
# Subcommands                                                             #
# ---------------------------------------------------------------------- #


def cmd_fig06(params: MachineParams, args: argparse.Namespace) -> None:
    from repro.revng.indexing import IndexingExperiment

    samples = IndexingExperiment(params, seed=args.seed).run()
    _table(
        [(s.matched_bits, s.access_time, "hit" if s.prefetched else "miss") for s in samples],
        ("matched_bits", "cycles", "class"),
    )


def cmd_fig07(params: MachineParams, args: argparse.Namespace) -> None:
    from repro.revng.stride_policy import StrideUpdateExperiment

    for label, offset in (("7a (random offset)", 3), ("7b (offset = st_2)", 5)):
        print(f"Figure {label}:")
        samples = StrideUpdateExperiment(params, seed=args.seed).run(offset_lines=offset)
        _table(
            [
                (s.iteration, "st1" if s.st1_triggered else "-", "st2" if s.st2_triggered else "-")
                for s in samples
            ],
            ("iteration", "stride7", "stride5"),
        )
        print()


def cmd_table1(params: MachineParams, args: argparse.Namespace) -> None:
    from repro.revng.page_boundary import PageBoundaryExperiment

    rows = PageBoundaryExperiment(params, seed=args.seed).run()
    _table(
        [
            (
                f"{r.virtual_page_offset} page",
                r.pool,
                "yes" if r.shares_physical_page else "no",
                "yes" if r.prefetchable else "no",
            )
            for r in rows
        ],
        ("virtual offset", "pool", "shares frame", "prefetchable"),
    )


def cmd_fig08(params: MachineParams, args: argparse.Namespace) -> None:
    from repro.revng.entries import EntryCountExperiment
    from repro.revng.replacement_policy import ReplacementPolicyExperiment

    entries = EntryCountExperiment(params, seed=args.seed)
    for n in (26, 30):
        evicted = entries.evicted_inputs(entries.run(n))
        print(f"Figure 8a, {n} inputs: evicted {evicted}")
    replacement = ReplacementPolicyExperiment(params, seed=args.seed)
    print(f"Figure 8b: evicted {replacement.evicted_inputs(replacement.run())}")


def cmd_variant1(params: MachineParams, args: argparse.Namespace) -> None:
    from repro.attacks import run_trials

    name = "variant1-thread" if args.mode == "thread" else "variant1"
    batch = run_trials(name, params, seed=args.seed, rounds=args.rounds)
    for trial in batch.trials[:10]:
        print(
            f"round {trial.index}: secret {trial.true_outcome} "
            f"-> leaked {trial.inferred_outcome}"
        )
    print(
        f"success rate: {batch.successes}/{batch.n_trials} "
        f"= {batch.success_rate * 100:.1f}%"
    )


def cmd_variant2(params: MachineParams, args: argparse.Namespace) -> None:
    from repro.attacks import run_trials

    batch = run_trials("variant2", params, seed=args.seed, rounds=args.rounds)
    notes = batch.notes
    if not notes["search_found"]:
        print("IP search failed; try another --seed")
        sys.exit(1)
    print(
        f"IP search: index {notes['search_index']:#04x} "
        f"(truth {notes['search_truth_index']:#04x}) "
        f"in {notes['search_syscalls']} syscalls"
    )
    print(
        f"success rate: {batch.successes}/{batch.n_trials} "
        f"= {batch.success_rate * 100:.1f}%"
    )


def cmd_covert(params: MachineParams, args: argparse.Namespace) -> None:
    from repro.attacks import run_trials

    batch = run_trials(
        "covert",
        params,
        seed=args.seed,
        rounds=args.rounds * args.entries,
        options={"entries": args.entries},
    )
    notes = batch.notes
    print(
        f"{args.entries}-entry channel: {notes['bandwidth_bps']:.0f} bps, "
        f"error rate {notes['error_rate'] * 100:.1f}% over {notes['n_symbols']} symbols"
    )


def cmd_rsa(params: MachineParams, args: argparse.Namespace) -> None:
    from repro.attacks import run_trials

    batch = run_trials(
        "rsa",
        params,
        seed=args.seed,
        rounds=args.bits,
        options={"bits": args.bits, "all_bits": True},
    )
    notes = batch.notes
    print(f"exponent bits: {notes['n_bits']}  passes: {notes['passes']}")
    print(f"PSC single-shot success: {notes['psc_single_shot'] * 100:.0f}% (paper: 82%)")
    print(f"bit errors: {notes['bit_errors']}  exact: {notes['exact']}")
    print(f"projected 1024-bit wall clock: {notes['projected_minutes']:.0f} min")


def cmd_sgx(params: MachineParams, args: argparse.Namespace) -> None:
    from repro.attacks import run_trials

    batch = run_trials("sgx", params, seed=args.seed, rounds=2)
    for trial in batch.trials:
        result = trial.payload
        print(
            f"secret {trial.true_outcome}: Time1 {result.time1} / Time2 {result.time2} "
            f"cycles -> inferred {trial.inferred_outcome}"
        )


def cmd_ttest(params: MachineParams, args: argparse.Namespace) -> None:
    from repro.analysis.ttest import TVLATest, tvla_sweep

    counts = [25, 50, 100, 200, 400, 800]
    accurate = tvla_sweep(TVLATest(seed=args.seed), counts, accurate_timing=True)
    random_t = tvla_sweep(TVLATest(seed=args.seed + 1), counts, accurate_timing=False)
    _table(
        [
            (a.n_plaintexts, round(a.t_value, 1), round(r.t_value, 1))
            for a, r in zip(accurate, random_t)
        ],
        ("#plaintexts", "t accurate", "t random"),
    )


def cmd_mitigation(params: MachineParams, args: argparse.Namespace) -> None:
    from repro.mitigation.analytical import MitigationCostModel
    from repro.mitigation.study import MitigationStudy

    print(f"analytic upper bound: {MitigationCostModel().overhead_percent():.2f}% (paper <7.3%)")
    study = MitigationStudy(params, n_instructions=args.instructions, seed=args.seed)
    results = study.run_suite()
    _table(
        [
            (r.name, f"{r.prefetch_speedup:.2f}x", f"{r.flush_overhead * 100:.2f}%")
            for r in results
        ],
        ("workload", "pf speedup", "flush overhead"),
    )
    top8 = study.top_prefetch_sensitive(results)
    print(f"top-8 average: {study.average_overhead(top8) * 100:.2f}% (paper 0.7%)")
    print(f"overall:       {study.average_overhead(results) * 100:.2f}% (paper 0.2%)")


def cmd_report(params: MachineParams, args: argparse.Namespace) -> None:
    from repro.analysis.report import generate_report

    markdown = generate_report(params, seed=args.seed, rounds=args.rounds, quick=args.quick)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(markdown)
        print(f"wrote {args.output}")
    else:
        print(markdown)


def cmd_tracker(params: MachineParams, args: argparse.Namespace) -> None:
    from repro.attacks import run_trials

    batch = run_trials(
        "tracker",
        params.quiet(),
        seed=args.seed,
        rounds=1,
        options={"target": args.target},
    )
    samples = batch.trials[0].payload
    _table(
        [(s.poll_index, s.latency, s.victim_phase.value) for s in samples],
        ("poll", "cycles", "phase"),
    )


def cmd_run(params: MachineParams, args: argparse.Namespace) -> None:
    from repro.attacks import TrialExecutor, build_matrix

    if args.suite:
        names: tuple[str, ...] = attack_names()
    elif args.attack is not None:
        names = (args.attack,)
    else:
        print("specify an attack name or --suite", file=sys.stderr)
        sys.exit(2)
    tasks = build_matrix(
        names,
        base_seed=args.seed,
        repeats=args.repeats,
        params=(params,),
        rounds=args.rounds,
    )
    result = TrialExecutor(jobs=args.jobs).run(tasks)
    if args.format == "json":
        print(json.dumps(result.as_dict(), indent=2))
    else:
        _table(
            [
                (name, f"{batch.quality:.3f}", batch.n_trials, batch.detail)
                for name, batch in result.merged.items()
            ],
            ("attack", "quality", "trials", "detail"),
        )
        print(
            f"{len(result.batches)} batches, jobs={result.jobs}, "
            f"wall {result.wall_seconds:.2f}s"
        )
    for error in result.errors:
        print(
            f"FAILED {error.task.attack} (seed {error.task.seed}): {error.summary}",
            file=sys.stderr,
        )
    if result.errors:
        sys.exit(1)


def cmd_perf(params: MachineParams, args: argparse.Namespace) -> None:
    """Run the suite through the instrumented executor; print the timeline."""
    from repro.attacks import TrialExecutor, build_matrix, get_attack

    if args.suite:
        names: tuple[str, ...] = attack_names()
    elif args.attack is not None:
        names = (args.attack,)
    else:
        print("specify an attack name or --suite", file=sys.stderr)
        sys.exit(2)
    tasks = build_matrix(
        names,
        base_seed=args.seed,
        repeats=args.repeats,
        params=(params,),
        rounds=args.rounds,
    )
    if args.rounds is None and args.rounds_scale is not None:
        import dataclasses

        tasks = [
            dataclasses.replace(
                task,
                rounds=max(
                    1, int(get_attack(task.attack).default_rounds * args.rounds_scale)
                ),
            )
            for task in tasks
        ]
    result = TrialExecutor(jobs=args.jobs, telemetry=True).run(tasks)
    timeline = result.telemetry
    assert timeline is not None
    if args.format == "json":
        document = {
            "jobs": result.jobs,
            "wall_seconds": result.wall_seconds,
            "n_tasks": len(tasks),
            "attacks": {
                name: {"quality": batch.quality, "n_trials": batch.n_trials}
                for name, batch in result.merged.items()
            },
            **timeline.as_dict(),
        }
        print(json.dumps(document, indent=2))
    elif args.format == "trace":
        timeline.write_chrome(args.out)
        print(
            f"wrote {args.out}: {len(timeline.records)} tasks across "
            f"{len(timeline.lanes())} lanes, wall {timeline.wall_seconds:.2f}s"
        )
    else:
        print(timeline.render_text())
    for error in result.errors:
        print(
            f"FAILED {error.task.attack} (seed {error.task.seed}): {error.summary}",
            file=sys.stderr,
        )
    if result.errors:
        sys.exit(1)


def cmd_bench(args: argparse.Namespace) -> int:
    """`afterimage bench compare`: the artifact regression gate
    (early dispatch: artifacts carry their own machine identity)."""
    from repro.bench import EXIT_INTERNAL, compare_files

    try:
        report = compare_files(
            args.baseline,
            args.current,
            tolerance=args.tolerance,
            allow_cross_machine=args.allow_cross_machine,
        )
    except Exception as exc:  # the gate must never crash the caller silently
        print(f"bench compare: internal error: {exc}", file=sys.stderr)
        return EXIT_INTERNAL
    if args.format == "json":
        print(json.dumps(report.as_dict(), indent=2))
    else:
        print(report.render_text())
    return report.exit_code


def _spec_overrides(args: argparse.Namespace) -> dict:
    """The ``--rounds``/``--repeats``/``--attacks``/``--base-seed`` shrinkers."""
    overrides: dict = {}
    if args.rounds is not None:
        overrides["rounds"] = args.rounds
    if args.repeats is not None:
        overrides["repeats"] = args.repeats
    if args.attacks is not None:
        overrides["attacks"] = tuple(
            part.strip() for part in args.attacks.split(",") if part.strip()
        )
    if args.base_seed is not None:
        overrides["base_seed"] = args.base_seed
    return overrides


def _resolve_campaign_spec(name: str, args: argparse.Namespace):
    """A builtin campaign by name, or a ``.toml``/``.json`` spec file,
    shrunk by any ``--rounds``/``--repeats``/``--attacks`` overrides."""
    import dataclasses

    from repro.campaign import builtin_campaign, load_spec

    if name.endswith((".toml", ".json")):
        spec = load_spec(name)
    else:
        spec = builtin_campaign(name)
    overrides = _spec_overrides(args)
    return dataclasses.replace(spec, **overrides) if overrides else spec


def _cmd_campaign_merge(args: argparse.Namespace) -> int:
    """`afterimage campaign merge <src>... --store <dest>`."""
    from repro.fleet.merge import MergeConflictError, merge_stores

    if not args.campaign:
        print("specify at least one source store to merge", file=sys.stderr)
        return 2
    try:
        report = merge_stores(args.store, list(args.campaign))
    except MergeConflictError as exc:
        print(f"campaign merge refused:\n{exc}", file=sys.stderr)
        return 1
    except ValueError as exc:
        print(f"campaign merge: {exc}", file=sys.stderr)
        return 2
    if args.format == "json":
        print(json.dumps(report.as_dict(), indent=2))
    else:
        print(report.render_text())
    return 0


def cmd_campaign(args: argparse.Namespace) -> int:
    """`afterimage campaign list|run|status|report|aggregate|merge` (early
    dispatch: specs name their own machines, so the global ``--machine``
    preset is unused)."""
    from repro.campaign import (
        BUILTIN_CAMPAIGNS,
        CampaignRunner,
        TrialStore,
        campaign_status,
        render_markdown,
        render_result,
        render_status,
    )

    if args.action == "list":
        _table(
            [
                (spec.name, spec.n_cells, spec.description)
                for spec in BUILTIN_CAMPAIGNS.values()
            ],
            ("campaign", "cells", "description"),
        )
        return 0
    if args.action == "merge":
        return _cmd_campaign_merge(args)
    if not args.campaign:
        print("specify a builtin campaign name or a spec file", file=sys.stderr)
        return 2
    if len(args.campaign) > 1:
        print(
            f"campaign {args.action} takes one campaign, got "
            f"{len(args.campaign)} (did you mean `campaign merge`?)",
            file=sys.stderr,
        )
        return 2
    spec = _resolve_campaign_spec(args.campaign[0], args)
    shard = None
    if args.shard is not None:
        if args.action not in ("run", "status"):
            print(
                "--shard applies to `run` and `status` only; aggregates and "
                "reports always cover the whole campaign",
                file=sys.stderr,
            )
            return 2
        from repro.fleet.partition import parse_shard

        try:
            shard = parse_shard(args.shard)
        except ValueError as exc:
            print(f"campaign --shard: {exc}", file=sys.stderr)
            return 2
    store = TrialStore(args.store)
    if args.action == "status":
        status = campaign_status(spec, store, shard=shard)
        if args.format == "json":
            print(json.dumps(status.as_dict(), indent=2))
        else:
            print(render_status(status))
        return 0
    if args.action in ("report", "aggregate"):
        # Read-only views: a partially filled store renders a misleading
        # (or empty) table, so refuse with the fill count instead.
        status = campaign_status(spec, store)
        if status.pending:
            print(
                f"campaign {spec.name}: {len(status.cached)}/{status.total} "
                "cells filled — run the campaign (or merge the workers' "
                "stores) before asking for a "
                f"{'report' if args.action == 'report' else 'aggregate'}",
                file=sys.stderr,
            )
            return 1
    runner = CampaignRunner(
        store,
        jobs=args.jobs,
        max_attempts=args.max_attempts,
        telemetry=args.telemetry,
    )
    result = runner.run(spec, shard=shard)
    if args.telemetry and args.action == "run" and result.telemetry is not None:
        import os

        timeline_path = os.path.join(args.store, "telemetry.json")
        trace_path = os.path.join(args.store, "telemetry.trace.json")
        with open(timeline_path, "w") as handle:
            json.dump(result.telemetry.as_dict(), handle, indent=2)
            handle.write("\n")
        result.telemetry.write_chrome(trace_path)
        print(f"wrote {timeline_path} and {trace_path}")
    if args.action == "aggregate":
        from repro.campaign import canonical_json

        text = canonical_json(result.aggregates())
        if args.output:
            with open(args.output, "w") as handle:
                handle.write(text + "\n")
            print(f"wrote {args.output}")
        else:
            print(text)
        return 0
    if args.action == "report":
        markdown = render_markdown(result)
        if args.output:
            with open(args.output, "w") as handle:
                handle.write(markdown + "\n")
            print(f"wrote {args.output}")
        else:
            print(markdown)
    elif args.format == "json":
        print(json.dumps(result.as_dict(), indent=2))
    else:
        print(render_result(result))
    return 0 if result.complete else 1


def cmd_serve(args: argparse.Namespace) -> int:
    """`afterimage serve <store>`: the fleet read-mostly HTTP daemon."""
    import asyncio

    from repro.campaign import BUILTIN_CAMPAIGNS, load_spec
    from repro.fleet.server import FleetServer

    import dataclasses

    overrides = _spec_overrides(args)
    campaigns = {}
    for spec in BUILTIN_CAMPAIGNS.values():
        campaigns[spec.name] = (
            dataclasses.replace(spec, **overrides) if overrides else spec
        )
    for path in args.spec or []:
        spec = load_spec(path)
        campaigns[spec.name] = (
            dataclasses.replace(spec, **overrides) if overrides else spec
        )
    try:
        server = FleetServer(
            args.store,
            campaigns=campaigns,
            host=args.host,
            port=args.port,
            cache_capacity=args.cache_size,
        )
    except ValueError as exc:
        print(f"serve: {exc}", file=sys.stderr)
        return 2

    async def _run() -> None:
        await server.start()
        print(
            f"serving {args.store} on http://{server.host}:{server.port} "
            f"({len(campaigns)} campaigns; /healthz /metrics /cells "
            "/cell/<key> /aggregate/<campaign> /report/<campaign>)"
        )
        await server.serve_forever()

    try:
        asyncio.run(_run())
    except KeyboardInterrupt:
        pass
    return 0


def cmd_trace(params: MachineParams, args: argparse.Namespace) -> None:
    from repro.obs.runner import run_attack
    from repro.obs.sinks import ChromeTraceSink, RingBufferSink
    from repro.obs.tracer import Tracer

    ring = RingBufferSink(capacity=None)
    chrome = ChromeTraceSink(args.out, cycles_per_us=params.frequency_hz / 1e6)
    tracer = Tracer([ring, chrome])
    run = run_attack(args.attack, params, seed=args.seed, rounds=args.rounds, trace=tracer)
    tracer.close()
    counts: dict[str, int] = {}
    for event in ring.events():
        counts[event.kind] = counts.get(event.kind, 0) + 1
    print(f"{run.name}: {run.detail}")
    _table(sorted(counts.items()), ("event", "count"))
    print(f"wrote {args.out}: {len(ring)} events over {run.machine.cycles} cycles")


def cmd_metrics(params: MachineParams, args: argparse.Namespace) -> None:
    from repro.obs.runner import run_attack

    run = run_attack(args.attack, params, seed=args.seed, rounds=args.rounds)
    registry = run.machine.metrics()
    if args.format == "json":
        print(json.dumps({"run": run.as_dict(), "metrics": registry.as_dict()}, indent=2))
        return
    print(f"{run.name}: {run.detail}")
    print()
    print(registry.render_text())
    print()
    print(run.machine.profile.render_text())


_COMMANDS: dict[str, tuple[Callable, str]] = {
    "fig06": (cmd_fig06, "Figure 6: IP indexing microbenchmark"),
    "fig07": (cmd_fig07, "Figure 7: stride update policy"),
    "table1": (cmd_table1, "Table 1: page-boundary behaviour"),
    "fig08": (cmd_fig08, "Figure 8: capacity and replacement"),
    "variant1": (cmd_variant1, "Variant 1 attack (--mode thread|process)"),
    "variant2": (cmd_variant2, "Variant 2 user-kernel attack with IP search"),
    "covert": (cmd_covert, "Covert channel (--entries 1..24)"),
    "rsa": (cmd_rsa, "TC-RSA key recovery via PSC"),
    "sgx": (cmd_sgx, "SGX control-flow extraction"),
    "tracker": (cmd_tracker, "Figure 15: OpenSSL load tracking"),
    "ttest": (cmd_ttest, "Figure 16: TVLA t-test"),
    "mitigation": (cmd_mitigation, "Section 8.3: mitigation cost study"),
    "report": (cmd_report, "Run headline experiments, emit a markdown report"),
    "trace": (cmd_trace, "Run an attack with tracing, write a Chrome trace_event file"),
    "metrics": (cmd_metrics, "Run an attack, dump the machine's metrics registry"),
    "run": (cmd_run, "Run any registered attack (or --suite) across --jobs workers"),
    "perf": (cmd_perf, "Executor telemetry: worker timeline + overhead attribution"),
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="afterimage", description="AfterImage (ASPLOS 2023) reproduction experiments"
    )
    parser.add_argument("--machine", default="i7-9700", help="i7-4770 or i7-9700")
    parser.add_argument("--seed", type=int, default=2023)
    sub = parser.add_subparsers(dest="command")
    sub.add_parser("list", help="list available experiments")
    lint = sub.add_parser("lint", help="static-analysis pass (repro.lint) over the tree")
    lint.add_argument("paths", nargs="*", default=["src"])
    lint.add_argument("--format", choices=("text", "json"), default="text")
    lint.add_argument("--select", default=None, help="comma-separated rule ids (e.g. RL001,RL006)")
    lint.add_argument(
        "--flow",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="CFG/dataflow pass: RL014-RL017 plus alias-aware RL001/RL003/RL008",
    )
    lint.add_argument("--changed", action="store_true", help="lint only files changed vs HEAD")
    lint.add_argument("--list-rules", action="store_true")
    leakcheck = sub.add_parser(
        "leakcheck", help="static AfterImage-leakage analysis (repro.leakcheck)"
    )
    leakcheck.add_argument("victims", nargs="*")
    leakcheck.add_argument(
        "--defense", choices=("none", "tagged", "flush-on-switch", "oblivious"), default="none"
    )
    leakcheck.add_argument("--format", choices=("text", "json"), default="text")
    leakcheck.add_argument("--list-victims", action="store_true")
    leakcheck.add_argument("--suite", action="store_true")
    leakcheck.add_argument(
        "--extract",
        nargs="+",
        metavar="FILE",
        help="statically compile and analyze candidate functions in files",
    )
    leakcheck.add_argument(
        "--scan",
        nargs="+",
        metavar="PATH",
        help="recursively extract and analyze every candidate under paths",
    )
    campaign = sub.add_parser(
        "campaign",
        help=(
            "declarative cached sweeps (repro.campaign): "
            "list|run|status|report|aggregate|merge"
        ),
    )
    campaign.add_argument(
        "action",
        choices=("list", "run", "status", "report", "aggregate", "merge"),
    )
    campaign.add_argument(
        "campaign",
        nargs="*",
        default=[],
        help=(
            "builtin campaign name or a .toml/.json spec file; "
            "for `merge`, one or more source store directories"
        ),
    )
    campaign.add_argument(
        "--store",
        default=".campaign-store",
        help="trial store directory (default: .campaign-store); `merge` destination",
    )
    campaign.add_argument(
        "--shard",
        default=None,
        metavar="I/N",
        help="fleet fill: run/status only this worker's slice of the cells",
    )
    campaign.add_argument("--jobs", type=int, default=1)
    campaign.add_argument("--max-attempts", type=int, default=3)
    campaign.add_argument("--rounds", type=int, default=None, help="override spec rounds")
    campaign.add_argument("--repeats", type=int, default=None, help="override spec repeats")
    campaign.add_argument(
        "--attacks", default=None, help="override spec attacks (comma-separated)"
    )
    campaign.add_argument("--base-seed", type=int, default=None)
    campaign.add_argument("--format", choices=("text", "json"), default="text")
    campaign.add_argument(
        "-o", "--output", default=None, help="report/aggregate output file"
    )
    campaign.add_argument(
        "--telemetry",
        action="store_true",
        help="collect cross-process telemetry; `run` writes a timeline next to the store",
    )
    serve = sub.add_parser(
        "serve",
        help="read-mostly HTTP daemon over a trial store (repro.fleet)",
    )
    serve.add_argument("store", help="trial store directory to serve")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8314)
    serve.add_argument(
        "--cache-size", type=int, default=256, help="LRU cache entries (default 256)"
    )
    serve.add_argument(
        "--spec",
        action="append",
        default=None,
        metavar="FILE",
        help="additional .toml/.json campaign spec files to serve (repeatable)",
    )
    serve.add_argument("--rounds", type=int, default=None, help="override spec rounds")
    serve.add_argument("--repeats", type=int, default=None, help="override spec repeats")
    serve.add_argument(
        "--attacks", default=None, help="override spec attacks (comma-separated)"
    )
    serve.add_argument("--base-seed", type=int, default=None)
    bench = sub.add_parser(
        "bench", help="benchmark artifact tools (repro.bench): compare"
    )
    bench.add_argument("action", choices=("compare",))
    bench.add_argument("baseline", help="baseline BENCH_*.json artifact")
    bench.add_argument("current", help="current BENCH_*.json artifact")
    bench.add_argument(
        "--tolerance",
        type=float,
        default=0.25,
        help="relative tolerance for wall-clock-derived numbers (default 0.25)",
    )
    bench.add_argument(
        "--allow-cross-machine",
        action="store_true",
        help="diff artifacts from different machines instead of refusing",
    )
    bench.add_argument("--format", choices=("text", "json"), default="text")
    for name, (_fn, help_text) in _COMMANDS.items():
        cmd = sub.add_parser(name, help=help_text)
        if name in ("variant1", "variant2", "covert"):
            cmd.add_argument("--rounds", type=int, default=100)
        if name == "variant1":
            cmd.add_argument("--mode", choices=("thread", "process"), default="process")
        if name == "covert":
            cmd.add_argument("--entries", type=int, default=1)
        if name == "rsa":
            cmd.add_argument("--bits", type=int, default=128)
        if name == "tracker":
            cmd.add_argument("--target", choices=("key-load", "decrypt"), default="key-load")
        if name == "mitigation":
            cmd.add_argument("--instructions", type=int, default=60_000)
        if name == "report":
            cmd.add_argument("--rounds", type=int, default=100)
            cmd.add_argument("--quick", action="store_true")
            cmd.add_argument("-o", "--output", default=None)
        if name in ("trace", "metrics"):
            cmd.add_argument("attack", choices=attack_names())
            cmd.add_argument("--rounds", type=int, default=None)
        if name == "trace":
            cmd.add_argument("--out", default="run.trace.json")
        if name == "metrics":
            cmd.add_argument("--format", choices=("text", "json"), default="text")
        if name == "run":
            cmd.add_argument("attack", nargs="?", default=None, choices=attack_names())
            cmd.add_argument("--suite", action="store_true")
            cmd.add_argument("--rounds", type=int, default=None)
            cmd.add_argument("--jobs", type=int, default=1)
            cmd.add_argument("--repeats", type=int, default=1)
            cmd.add_argument("--format", choices=("text", "json"), default="text")
        if name == "perf":
            cmd.add_argument("attack", nargs="?", default=None, choices=attack_names())
            cmd.add_argument("--suite", action="store_true")
            cmd.add_argument("--rounds", type=int, default=None)
            cmd.add_argument(
                "--rounds-scale",
                type=float,
                default=None,
                help="scale each attack's default rounds (ignored with --rounds)",
            )
            cmd.add_argument("--jobs", type=int, default=2)
            cmd.add_argument("--repeats", type=int, default=1)
            cmd.add_argument(
                "--format", choices=("text", "json", "trace"), default="text"
            )
            cmd.add_argument(
                "--out",
                default="perf.trace.json",
                help="Chrome trace output path for --format trace",
            )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        if args.command in (None, "list"):
            for name, (_fn, help_text) in _COMMANDS.items():
                print(f"{name:12s} {help_text}")
            return 0
        if args.command == "lint":
            # The linter takes no machine model; dispatch before preset lookup.
            from repro.lint.cli import main as lint_main

            lint_argv = list(args.paths) + ["--format", args.format]
            if args.select:
                lint_argv += ["--select", args.select]
            lint_argv.append("--flow" if args.flow else "--no-flow")
            if args.changed:
                lint_argv.append("--changed")
            if args.list_rules:
                lint_argv.append("--list-rules")
            return lint_main(lint_argv)
        if args.command == "campaign":
            # Campaign specs declare their own machines; early dispatch.
            return cmd_campaign(args)
        if args.command == "serve":
            # Serves stored results as-is; no machine model needed.
            return cmd_serve(args)
        if args.command == "bench":
            # Artifacts carry their own machine identity; early dispatch.
            return cmd_bench(args)
        if args.command == "leakcheck":
            # Pure static analysis, no machine model; same early dispatch.
            from repro.leakcheck.cli import main as leakcheck_main

            leakcheck_argv = list(args.victims) + ["--format", args.format]
            if args.defense != "none":
                leakcheck_argv += ["--defense", args.defense]
            if args.list_victims:
                leakcheck_argv.append("--list-victims")
            if args.suite:
                leakcheck_argv.append("--suite")
            if args.extract:
                leakcheck_argv += ["--extract", *args.extract]
            if args.scan:
                leakcheck_argv += ["--scan", *args.scan]
            return leakcheck_main(leakcheck_argv)
        params = preset(args.machine)
        _COMMANDS[args.command][0](params, args)
    except BrokenPipeError:  # e.g. `afterimage fig06 | head`
        return 0
    return 0


if __name__ == "__main__":
    sys.exit(main())
