"""Closed-form upper bound on the clear-ip-prefetcher cost (paper §8.3).

The paper models the worst case as::

    (C_clear + C_miss x 3 x 24) / Domain_Switch_Period

with ``C_clear = 24`` (one cycle per entry), ``C_miss ~ 300`` cycles, three
retraining misses for each of the 24 entries, and a ~100 us syscall period
on a 3 GHz machine — "less than 7.3%".
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class MitigationCostModel:
    """Parameters of the paper's upper-bound cost model."""

    clear_cycles: int = 24
    miss_penalty_cycles: int = 300
    n_entries: int = 24
    retrain_misses_per_entry: int = 3
    domain_switch_period_seconds: float = 100e-6
    frequency_hz: float = 3e9

    @property
    def cycles_per_switch(self) -> int:
        """Worst-case cycles added per domain switch."""
        return self.clear_cycles + (
            self.miss_penalty_cycles * self.retrain_misses_per_entry * self.n_entries
        )

    @property
    def period_cycles(self) -> float:
        return self.domain_switch_period_seconds * self.frequency_hz

    def overhead_fraction(self) -> float:
        """Upper-bound slowdown fraction (paper: < 7.3 %)."""
        return self.cycles_per_switch / self.period_cycles

    def overhead_percent(self) -> float:
        return 100.0 * self.overhead_fraction()
