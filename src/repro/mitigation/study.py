"""The §8.3 mitigation study: per-workload IPC with and without flushing."""

from __future__ import annotations

from dataclasses import dataclass

from repro.mitigation.champsim_lite import DEFAULT_FLUSH_PERIOD_CYCLES, ChampSimLite
from repro.mitigation.traces import SYNTHETIC_SUITE, TraceSpec, generate_trace
from repro.params import MachineParams
from repro.utils.stats import mean


@dataclass(frozen=True)
class WorkloadOverhead:
    """Per-benchmark result triple."""

    name: str
    ipc_no_prefetch: float
    ipc_baseline: float
    ipc_flushed: float

    @property
    def prefetch_speedup(self) -> float:
        """IPC uplift the IP-stride prefetcher provides (sensitivity)."""
        return self.ipc_baseline / self.ipc_no_prefetch

    @property
    def flush_overhead(self) -> float:
        """Normalized-IPC loss from periodic flushing (the paper's metric)."""
        return 1.0 - self.ipc_flushed / self.ipc_baseline


class MitigationStudy:
    """Run the synthetic suite through ChampSim-lite in three configs."""

    def __init__(
        self,
        params: MachineParams,
        n_instructions: int = 200_000,
        flush_period_cycles: int = DEFAULT_FLUSH_PERIOD_CYCLES,
        seed: int = 0,
    ) -> None:
        self.params = params
        self.n_instructions = n_instructions
        self.flush_period_cycles = flush_period_cycles
        self.seed = seed

    def run_workload(self, spec: TraceSpec) -> WorkloadOverhead:
        """Three runs (prefetch-off / baseline / flushed) of one benchmark."""
        ips, addrs = generate_trace(spec, self.n_instructions, seed=self.seed)
        off = ChampSimLite(self.params, prefetcher_enabled=False)
        base = ChampSimLite(self.params, prefetcher_enabled=True)
        flushed = ChampSimLite(
            self.params,
            prefetcher_enabled=True,
            flush_period_cycles=self.flush_period_cycles,
        )
        return WorkloadOverhead(
            name=spec.name,
            ipc_no_prefetch=off.run(spec.name, ips, addrs).ipc,
            ipc_baseline=base.run(spec.name, ips, addrs).ipc,
            ipc_flushed=flushed.run(spec.name, ips, addrs).ipc,
        )

    def run_suite(self, specs: tuple[TraceSpec, ...] = SYNTHETIC_SUITE) -> list[WorkloadOverhead]:
        return [self.run_workload(spec) for spec in specs]

    @staticmethod
    def average_overhead(results: list[WorkloadOverhead]) -> float:
        """Mean normalized-IPC reduction over ``results``."""
        return mean([r.flush_overhead for r in results])

    @staticmethod
    def top_prefetch_sensitive(
        results: list[WorkloadOverhead], n: int = 8
    ) -> list[WorkloadOverhead]:
        """The ``n`` workloads that benefit most from the prefetcher."""
        return sorted(results, key=lambda r: r.prefetch_speedup, reverse=True)[:n]
