"""The paper's §8.3 mitigation: a privileged ``clear-ip-prefetcher``
instruction executed on every domain switch.

Two cost evaluations, mirroring the paper:

* :mod:`repro.mitigation.analytical` — the closed-form upper bound
  (< 7.3 % at a 100 µs domain-switch period on a 3 GHz machine);
* :mod:`repro.mitigation.champsim_lite` — a trace-driven IPC simulator in
  the spirit of ChampSim, run over synthetic SPEC-like workloads
  (:mod:`repro.mitigation.traces`) with the prefetcher flushed every 10 µs,
  reproducing the measured 0.7 % (top-8 prefetch-sensitive) / 0.2 % (all
  applications) slowdowns.
"""

from repro.mitigation.analytical import MitigationCostModel
from repro.mitigation.champsim_lite import ChampSimLite, SimulationResult
from repro.mitigation.study import MitigationStudy, WorkloadOverhead
from repro.mitigation.traces import SYNTHETIC_SUITE, TraceSpec, generate_trace

__all__ = [
    "MitigationCostModel",
    "ChampSimLite",
    "SimulationResult",
    "MitigationStudy",
    "WorkloadOverhead",
    "TraceSpec",
    "SYNTHETIC_SUITE",
    "generate_trace",
]
