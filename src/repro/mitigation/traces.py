"""Synthetic SPEC-CPU-like memory traces.

SPEC CPU2006/2017 traces are not redistributable, so each benchmark is
replaced by a synthetic workload with the memory behaviour its family is
known for (DESIGN.md documents the substitution):

* **streaming** — a few load IPs walking large arrays with constant strides
  (IP-stride-prefetcher heaven; libquantum/bwaves/lbm-like);
* **pointer-chasing** — loads to uniformly random lines (mcf/omnetpp-like;
  the prefetcher can learn nothing);
* **hot-set** — loads within a small resident working set (gcc/perlbench-
  like; caches absorb everything, prefetching is irrelevant).

A trace is a pair of numpy arrays ``(ips, addrs)`` where ``addrs < 0``
marks a non-load instruction.  Addresses are *physical* (trace-driven
simulation of statically allocated, hugepage-backed arrays).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.params import CACHE_LINE_SIZE
from repro.utils.rng import make_rng, stable_seed


@dataclass(frozen=True)
class TraceSpec:
    """Recipe for one synthetic benchmark."""

    name: str
    suite: str  # "spec2006" or "spec2017"
    n_streams: int
    stride_lines: int
    load_fraction: float
    stream_share: float  # of loads: streaming
    pointer_share: float  # of loads: pointer-chasing (rest: hot-set)
    hot_set_kib: int = 24

    def __post_init__(self) -> None:
        if not 0.0 < self.load_fraction <= 1.0:
            raise ValueError("load_fraction must be in (0, 1]")
        if self.stream_share + self.pointer_share > 1.0:
            raise ValueError("stream and pointer shares exceed 1")


#: Synthetic stand-ins for the SPEC benchmarks the paper's §8.3 runs.
#: The first eight are the "top prefetching-sensitive" applications.
SYNTHETIC_SUITE: tuple[TraceSpec, ...] = (
    # -- prefetch-sensitive (streaming-dominated) ------------------------- #
    TraceSpec("libquantum-like", "spec2006", 2, 1, 0.35, 0.95, 0.00),
    TraceSpec("bwaves-like", "spec2006", 3, 2, 0.40, 0.90, 0.00),
    TraceSpec("lbm-like", "spec2006", 4, 1, 0.40, 0.90, 0.05),
    TraceSpec("milc-like", "spec2006", 2, 3, 0.35, 0.85, 0.05),
    TraceSpec("leslie3d-like", "spec2006", 3, 2, 0.35, 0.85, 0.05),
    TraceSpec("gemsfdtd-like", "spec2006", 4, 2, 0.40, 0.80, 0.10),
    TraceSpec("sphinx3-like", "spec2006", 2, 1, 0.30, 0.80, 0.05),
    TraceSpec("cactubssn-like", "spec2017", 3, 2, 0.35, 0.80, 0.10),
    # -- prefetch-insensitive --------------------------------------------- #
    TraceSpec("mcf-like", "spec2006", 1, 1, 0.35, 0.00, 0.85),
    TraceSpec("omnetpp-like", "spec2017", 1, 1, 0.30, 0.00, 0.75),
    TraceSpec("gcc-like", "spec2006", 1, 1, 0.30, 0.02, 0.15),
    TraceSpec("perlbench-like", "spec2017", 1, 1, 0.30, 0.02, 0.10),
    TraceSpec("xalancbmk-like", "spec2017", 1, 1, 0.30, 0.05, 0.30),
    TraceSpec("gobmk-like", "spec2006", 1, 1, 0.25, 0.02, 0.20),
    TraceSpec("namd-like", "spec2006", 1, 2, 0.25, 0.10, 0.10),
    TraceSpec("xz-like", "spec2017", 1, 1, 0.30, 0.08, 0.40),
    TraceSpec("astar-like", "spec2006", 1, 1, 0.30, 0.02, 0.55),
    TraceSpec("h264ref-like", "spec2006", 1, 2, 0.30, 0.10, 0.05),
    TraceSpec("povray-like", "spec2017", 1, 1, 0.20, 0.00, 0.05),
    TraceSpec("calculix-like", "spec2006", 1, 2, 0.25, 0.08, 0.05),
    TraceSpec("deepsjeng-like", "spec2017", 1, 1, 0.25, 0.00, 0.25),
    TraceSpec("leela-like", "spec2017", 1, 1, 0.25, 0.00, 0.15),
    TraceSpec("exchange2-like", "spec2017", 1, 1, 0.15, 0.00, 0.02),
    TraceSpec("roms-like", "spec2017", 2, 2, 0.30, 0.30, 0.05),
)


def suite_by_name(name: str) -> TraceSpec:
    """Look up a synthetic benchmark by name."""
    for spec in SYNTHETIC_SUITE:
        if spec.name == name:
            return spec
    raise KeyError(f"unknown synthetic benchmark {name!r}")


def top_prefetch_sensitive(n: int = 8) -> tuple[TraceSpec, ...]:
    """The first ``n`` (streaming-dominated) entries of the suite."""
    return SYNTHETIC_SUITE[:n]


def generate_trace(
    spec: TraceSpec, n_instructions: int, seed: int = 0
) -> tuple[np.ndarray, np.ndarray]:
    """Materialize ``n_instructions`` of the benchmark as (ips, addrs).

    ``addrs[i] < 0`` marks a non-load instruction; otherwise it is the
    physical byte address loaded by instruction ``i``.
    """
    if n_instructions <= 0:
        raise ValueError("n_instructions must be positive")
    # Builtin hash() is salted per process (PYTHONHASHSEED): the previous
    # `seed ^ hash(spec.name)` produced a different trace stream on every
    # run without failing any test.  stable_seed() is fully specified.
    rng = make_rng(seed ^ (stable_seed(spec.name) & 0x7FFF_FFFF))
    line = CACHE_LINE_SIZE

    ips = np.empty(n_instructions, dtype=np.int64)
    addrs = np.full(n_instructions, -1, dtype=np.int64)

    is_load = rng.random(n_instructions) < spec.load_fraction
    load_idx = np.flatnonzero(is_load)
    n_loads = load_idx.size

    # Non-load instructions get sequential code IPs (no prefetcher effect).
    ips[:] = 0x40_0000 + 4 * np.arange(n_instructions, dtype=np.int64)

    kind = rng.random(n_loads)
    stream_mask = kind < spec.stream_share
    pointer_mask = (~stream_mask) & (kind < spec.stream_share + spec.pointer_share)
    hot_mask = ~(stream_mask | pointer_mask)

    # Streaming loads: round-robin over the streams, each advancing its own
    # strided cursor through a large private array.
    stream_ids = np.arange(np.count_nonzero(stream_mask)) % spec.n_streams
    positions = np.zeros(spec.n_streams, dtype=np.int64)
    stream_addr = np.empty(np.count_nonzero(stream_mask), dtype=np.int64)
    stream_bases = (1 + np.arange(spec.n_streams, dtype=np.int64)) * (1 << 30)
    for i, sid in enumerate(stream_ids):
        stream_addr[i] = stream_bases[sid] + positions[sid] * spec.stride_lines * line
        positions[sid] += 1
    stream_ips = 0x61_0000 + 0x101 * stream_ids

    # Pointer-chasing loads: uniform over a 256 MiB heap, one IP.
    n_ptr = int(np.count_nonzero(pointer_mask))
    ptr_addr = (1 << 38) + rng.integers(0, (256 << 20) // line, n_ptr) * line
    # Hot-set loads: uniform over a small resident buffer, one IP.
    n_hot = int(np.count_nonzero(hot_mask))
    hot_addr = (1 << 39) + rng.integers(0, spec.hot_set_kib * 1024 // line, n_hot) * line

    load_addrs = np.empty(n_loads, dtype=np.int64)
    load_ips = np.empty(n_loads, dtype=np.int64)
    load_addrs[stream_mask] = stream_addr
    load_ips[stream_mask] = stream_ips
    load_addrs[pointer_mask] = ptr_addr
    load_ips[pointer_mask] = 0x62_0457
    load_addrs[hot_mask] = hot_addr
    load_ips[hot_mask] = 0x63_09A3

    addrs[load_idx] = load_addrs
    ips[load_idx] = load_ips
    return ips, addrs
