"""ChampSim-lite: a trace-driven IPC simulator for the §8.3 evaluation.

A deliberately small model of an out-of-order core in front of the
simulated cache hierarchy and IP-stride prefetcher:

* one instruction retires per cycle at best;
* a load stalls the pipeline by ``(latency - L1_latency) / mlp`` cycles —
  ``mlp`` models the memory-level parallelism with which an OoO window
  overlaps misses;
* when flushing is enabled, the IP-stride prefetcher is cleared every
  ``flush_period_cycles`` (the paper emulates a 10 µs period) at a cost of
  one cycle per entry.

The metric is the paper's: normalized IPC with and without the periodic
flush; the prefetcher-off configuration additionally measures each
workload's prefetch sensitivity.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.memsys.hierarchy import CacheHierarchy
from repro.params import MachineParams
from repro.prefetch.base import LoadEvent
from repro.prefetch.ip_stride import IPStridePrefetcher

#: 10 µs at 3 GHz — the flush period the paper emulates.
DEFAULT_FLUSH_PERIOD_CYCLES = 30_000


@dataclass(frozen=True)
class SimulationResult:
    """Outcome of one trace run."""

    name: str
    instructions: int
    cycles: int
    prefetches: int
    flushes: int

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles


class ChampSimLite:
    """In-order-retire, overlap-miss core over the shared memory model."""

    def __init__(
        self,
        params: MachineParams,
        prefetcher_enabled: bool = True,
        flush_period_cycles: int | None = None,
        mlp: float = 8.0,
    ) -> None:
        if mlp <= 0:
            raise ValueError("mlp must be positive")
        self.params = params
        self.hierarchy = CacheHierarchy(params)
        self.prefetcher_enabled = prefetcher_enabled
        self.prefetcher = IPStridePrefetcher(params.prefetcher)
        self.flush_period_cycles = flush_period_cycles
        self.mlp = mlp

    def run(self, name: str, ips: np.ndarray, addrs: np.ndarray) -> SimulationResult:
        """Execute one trace to completion."""
        if ips.shape != addrs.shape:
            raise ValueError("ips and addrs must have the same length")
        hierarchy = self.hierarchy
        prefetcher = self.prefetcher
        l1_latency = self.params.l1d.latency
        flush_period = self.flush_period_cycles
        clear_cost = self.params.prefetcher.n_entries
        mlp = self.mlp

        cycles = 0.0
        flushes = 0
        next_flush = flush_period if flush_period else None
        no_translate = lambda _vaddr: None  # noqa: E731 - tiny hot-path helper

        for ip, addr in zip(ips.tolist(), addrs.tolist()):
            cycles += 1.0
            if addr < 0:
                continue
            if next_flush is not None and cycles >= next_flush:
                prefetcher.clear()
                cycles += clear_cost
                flushes += 1
                next_flush = cycles + flush_period
            result = hierarchy.access(addr)
            if result.latency > l1_latency:
                cycles += (result.latency - l1_latency) / mlp
            if self.prefetcher_enabled:
                event = LoadEvent(ip=ip, vaddr=addr, paddr=addr, hit_level=result.level)
                for request in prefetcher.observe(event, no_translate):
                    hierarchy.insert_prefetch(request.paddr)

        return SimulationResult(
            name=name,
            instructions=int(ips.size),
            cycles=int(round(cycles)),
            prefetches=prefetcher.prefetches_issued,
            flushes=flushes,
        )
