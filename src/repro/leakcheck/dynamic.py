"""The simulator-backed oracle the static verdicts are tested against.

:func:`observe` mounts the paper's actual attacker machinery — one
:class:`~repro.channels.psc.PrefetcherStatusCheck` canary per victim index
(same aliasing IPs and strides as the static pretrained mode, via
:func:`~repro.leakcheck.analyzer.canary_plan`) plus a prefetch-footprint
probe over the victim's data regions (AfterImage-Cache) — against a victim
replaying ``spec.trace(secret)`` on a quiet :class:`~repro.cpu.Machine`.
:func:`dynamic_leaky` then asks the only question that matters for the
differential test: does the attacker's observation differ between the
analyzer's witness secrets?

The machine is seeded identically per secret, so for a genuinely
secret-independent victim the two runs are bit-for-bit identical and the
oracle reports safe with zero noise floor.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.channels.psc import PrefetcherStatusCheck
from repro.cpu.machine import Machine
from repro.leakcheck.analyzer import ATTACKER_CODE_BASE, canary_plan, region_bases
from repro.leakcheck.trace import VictimSpec
from repro.params import CACHE_LINE_SIZE, PAGE_SIZE, COFFEE_LAKE_I7_9700, MachineParams


@dataclass(frozen=True, slots=True)
class Observation:
    """Everything the attacker sees after one victim execution."""

    psc_triggered: tuple[bool, ...]
    footprints: tuple[tuple[str, frozenset[int]], ...]


def _oracle_params(params: MachineParams | None) -> MachineParams:
    """Quiet, spatial-prefetcher-free machine parameters.

    The DCU/adjacent/streamer prefetchers would add their own (fully
    deterministic, hence harmless) lines to the footprint; disabling them
    keeps the footprint readable as "IP-stride prefetches only".
    """
    if params is None:
        params = COFFEE_LAKE_I7_9700
    return replace(
        params.quiet(),
        enable_dcu_prefetcher=False,
        enable_adjacent_prefetcher=False,
        enable_streamer_prefetcher=False,
    )


def observe(
    spec: VictimSpec,
    secret: int,
    params: MachineParams | None = None,
    seed: int = 0,
) -> Observation:
    """Run attacker-train → victim-trace → attacker-read for one secret."""
    machine = Machine(_oracle_params(params), seed=seed)
    attacker = machine.new_thread("attacker")
    victim = machine.new_thread("victim")

    # Victim data regions, one buffer each (same ordering as the analyzer).
    buffers = {
        region: machine.new_buffer(
            victim.space, spec.region_pages[region] * PAGE_SIZE, name=f"victim-{region}"
        )
        for region in sorted(spec.region_pages)
    }

    # Attacker canaries: the PSC stride palette and aliasing IPs come from
    # the shared canary plan; PSC imposes its own per-page stride bound, so
    # convert bytes back to lines here.
    machine.context_switch(attacker)
    attacker_code = machine.code_region(ATTACKER_CODE_BASE, name="leakcheck-attacker")
    monitors = []
    for k, (train_ip, _base, stride_bytes) in enumerate(canary_plan(spec, machine.params.prefetcher)):
        local_ip = attacker_code.place_aliasing(f"canary{k}", train_ip)
        buffer = machine.new_buffer(
            attacker.space, 2 * PAGE_SIZE, name=f"psc-canary{k}"
        )
        monitor = PrefetcherStatusCheck(
            machine, attacker, local_ip, buffer, stride_bytes // CACHE_LINE_SIZE
        )
        monitor.train()
        monitors.append(monitor)

    # Victim replays its trace (every load TLB-resident, as in §4.3).
    machine.context_switch(victim)
    direct: dict[str, set[int]] = {region: set() for region in buffers}
    for load in spec.trace(secret):
        vaddr = buffers[load.region].addr(load.offset)
        machine.warm_tlb(victim, vaddr)
        machine.load(victim, spec.labels[load.label], vaddr)
        direct[load.region].add(load.offset // CACHE_LINE_SIZE)

    # AfterImage-Cache read: which victim lines are cached *without* having
    # been loaded directly — the prefetch footprint.
    footprints = []
    for region, buffer in sorted(buffers.items()):
        cached = {
            line
            for line in range(buffer.n_lines)
            if line not in direct[region]
            and machine.is_cached(victim, buffer.line_addr(line))
        }
        footprints.append((region, frozenset(cached)))

    # AfterImage-PSC read: poll every canary once.
    machine.context_switch(attacker)
    triggered = tuple(monitor.check().prefetcher_triggered for monitor in monitors)
    return Observation(psc_triggered=triggered, footprints=tuple(footprints))


def dynamic_leaky(
    spec: VictimSpec,
    params: MachineParams | None = None,
    seed: int = 0,
) -> bool:
    """True when the attacker's observation separates some witness pair."""
    cache: dict[int, Observation] = {}

    def observed(secret: int) -> Observation:
        if secret not in cache:
            cache[secret] = observe(spec, secret, params=params, seed=seed)
        return cache[secret]

    mask = (1 << spec.secret_bits) - 1
    for bit in range(spec.secret_bits):
        for base in spec.witness_bases:
            a = base & mask
            if observed(a) != observed(a ^ (1 << bit)):
                return True
    return False
