"""The simulator-backed oracle the static verdicts are tested against.

:func:`observe` mounts the paper's actual attacker machinery — one
:class:`~repro.channels.psc.PrefetcherStatusCheck` canary per victim index
(same aliasing IPs and strides as the static pretrained mode, via
:func:`~repro.leakcheck.analyzer.canary_plan`) plus a prefetch-footprint
probe over the victim's data regions (AfterImage-Cache) — against a victim
replaying ``spec.trace(secret)`` on a quiet :class:`~repro.cpu.Machine`.
:func:`dynamic_leaky` then asks the only question that matters for the
differential test: does the attacker's observation differ between the
analyzer's witness secrets?

The machine is seeded identically per secret, so for a genuinely
secret-independent victim the two runs are bit-for-bit identical and the
oracle reports safe with zero noise floor.

With ``via_trace=True`` the PSC read is answered from the machine's own
``TableTransition`` event stream (repro.obs) instead of polling the
canaries: the last transition touching each canary's index tells whether
the trained entry survived with its stride and confidence intact — the
exact condition under which a poll load would re-trigger.  Unlike a real
poll, reading the trace does not itself perturb the table, and it has no
page-boundary blind spot: a real poll whose progression would run off the
page first jumps to a fresh page and retrains
(:meth:`~repro.channels.psc.PrefetcherStatusCheck._ensure_capacity`),
which restores the entry and masks any victim disturbance for that one
observation.  The trace read therefore refines the poll — it can report
``False`` (victim executed) where a retraining poll reports ``True``,
never the reverse — while the differential :func:`dynamic_leaky` verdict
is preserved.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.channels.psc import PrefetcherStatusCheck
from repro.cpu.machine import Machine
from repro.leakcheck.analyzer import ATTACKER_CODE_BASE, canary_plan, region_bases
from repro.leakcheck.trace import VictimSpec
from repro.obs.events import TableTransition, TraceEvent
from repro.obs.sinks import RingBufferSink
from repro.obs.tracer import Tracer
from repro.params import CACHE_LINE_SIZE, PAGE_SIZE, COFFEE_LAKE_I7_9700, MachineParams
from repro.utils.bits import low_bits


@dataclass(frozen=True, slots=True)
class Observation:
    """Everything the attacker sees after one victim execution."""

    psc_triggered: tuple[bool, ...]
    footprints: tuple[tuple[str, frozenset[int]], ...]


def _oracle_params(params: MachineParams | None) -> MachineParams:
    """Quiet, spatial-prefetcher-free machine parameters.

    The DCU/adjacent/streamer prefetchers would add their own (fully
    deterministic, hence harmless) lines to the footprint; disabling them
    keeps the footprint readable as "IP-stride prefetches only".
    """
    if params is None:
        params = COFFEE_LAKE_I7_9700
    return replace(
        params.quiet(),
        enable_dcu_prefetcher=False,
        enable_adjacent_prefetcher=False,
        enable_streamer_prefetcher=False,
    )


def _trace_triggered(
    events: list[TraceEvent], index: int, expected_stride: int, threshold: int
) -> bool:
    """Would a PSC poll of ``index`` re-trigger, judging from the trace?

    ``events`` is the slice of the event stream covering the victim's
    execution.  A poll re-triggers exactly when the trained entry is still
    live at its index with the trained stride and confidence at or above
    the prefetch threshold — i.e. when the victim left it alone (no
    transition at all) or its last transition kept that state.  (A real
    poll additionally reads ``True`` whenever its progression crossed a
    page and retrained first; see the module docstring.)
    """
    last: TableTransition | None = None
    for event in events:
        if not isinstance(event, TableTransition):
            continue
        if event.transition == "clear" or event.index == index:
            last = event
    if last is None:
        return True
    if last.after is None:  # evicted or cleared away
        return False
    return last.after.stride == expected_stride and last.after.confidence >= threshold


def observe(
    spec: VictimSpec,
    secret: int,
    params: MachineParams | None = None,
    seed: int = 0,
    via_trace: bool = False,
) -> Observation:
    """Run attacker-train → victim-trace → attacker-read for one secret.

    ``via_trace=True`` derives the PSC verdicts from ``TableTransition``
    events instead of polling the canaries (see module docstring).
    """
    tracer = Tracer([RingBufferSink(capacity=None)]) if via_trace else None
    machine = Machine(_oracle_params(params), seed=seed, trace=tracer)
    attacker = machine.new_thread("attacker")
    victim = machine.new_thread("victim")

    # Victim data regions, one buffer each (same ordering as the analyzer).
    buffers = {
        region: machine.new_buffer(
            victim.space, spec.region_pages[region] * PAGE_SIZE, name=f"victim-{region}"
        )
        for region in sorted(spec.region_pages)
    }

    # Attacker canaries: the PSC stride palette and aliasing IPs come from
    # the shared canary plan; PSC imposes its own per-page stride bound, so
    # convert bytes back to lines here.
    machine.context_switch(attacker)
    attacker_code = machine.code_region(ATTACKER_CODE_BASE, name="leakcheck-attacker")
    monitors = []
    canary_indexes: list[tuple[int, int]] = []  # (table index, trained stride bytes)
    index_bits = machine.params.prefetcher.index_bits
    for k, (train_ip, _base, stride_bytes) in enumerate(canary_plan(spec, machine.params.prefetcher)):
        local_ip = attacker_code.place_aliasing(f"canary{k}", train_ip)
        buffer = machine.new_buffer(
            attacker.space, 2 * PAGE_SIZE, name=f"psc-canary{k}"
        )
        stride_lines = stride_bytes // CACHE_LINE_SIZE
        monitor = PrefetcherStatusCheck(machine, attacker, local_ip, buffer, stride_lines)
        monitor.train()
        monitors.append(monitor)
        canary_indexes.append((low_bits(local_ip, index_bits), stride_lines * CACHE_LINE_SIZE))

    # Victim replays its trace (every load TLB-resident, as in §4.3).
    machine.context_switch(victim)
    replay_start = len(machine.tracer.events()) if via_trace else 0
    direct: dict[str, set[int]] = {region: set() for region in buffers}
    for load in spec.trace(secret):
        vaddr = buffers[load.region].addr(load.offset)
        machine.warm_tlb(victim, vaddr)
        machine.load(victim, spec.labels[load.label], vaddr)
        direct[load.region].add(load.offset // CACHE_LINE_SIZE)

    # AfterImage-Cache read: which victim lines are cached *without* having
    # been loaded directly — the prefetch footprint.
    footprints = []
    for region, buffer in sorted(buffers.items()):
        cached = {
            line
            for line in range(buffer.n_lines)
            if line not in direct[region]
            and machine.is_cached(victim, buffer.line_addr(line))
        }
        footprints.append((region, frozenset(cached)))

    # AfterImage-PSC read: from the table-transition trace, or by polling
    # every canary once.
    if via_trace:
        replay_events = machine.tracer.events()[replay_start:]
        threshold = machine.params.prefetcher.prefetch_threshold
        triggered = tuple(
            _trace_triggered(replay_events, index, stride, threshold)
            for index, stride in canary_indexes
        )
    else:
        machine.context_switch(attacker)
        triggered = tuple(monitor.check().prefetcher_triggered for monitor in monitors)
    return Observation(psc_triggered=triggered, footprints=tuple(footprints))


def dynamic_leaky(
    spec: VictimSpec,
    params: MachineParams | None = None,
    seed: int = 0,
    via_trace: bool = False,
) -> bool:
    """True when the attacker's observation separates some witness pair."""
    cache: dict[int, Observation] = {}

    def observed(secret: int) -> Observation:
        if secret not in cache:
            cache[secret] = observe(spec, secret, params=params, seed=seed, via_trace=via_trace)
        return cache[secret]

    mask = (1 << spec.secret_bits) - 1
    for bit in range(spec.secret_bits):
        for base in spec.witness_bases:
            a = base & mask
            if observed(a) != observed(a ^ (1 << bit)):
                return True
    return False
