"""CLI driver: ``python -m repro.leakcheck`` / ``afterimage leakcheck``.

Exit codes mirror :mod:`repro.lint`: 0 when every analyzed victim is safe,
1 when any is leaky (a "finding"), 2 on usage errors, 3 when the scan
itself crashes — distinct from 1 so CI gates that tolerate "gadgets
found" cannot mistake a crashed run for findings.  ``--suite`` runs
the registered victims against the full defense matrix and instead returns
0 only when every verdict matches its expectation — the CI mode wired
into ``make check``.

Two static-extraction modes reuse the same exit-code contract:

* ``--extract FILE...`` compiles the candidate functions in specific
  files and analyzes them across all four defenses;
* ``--scan PATH...`` walks whole trees (``afterimage leakcheck --scan
  src/``) for repo-wide gadget discovery.

Both emit lint-shaped ``EX001``/``EX002``/``EX003`` findings (see
``docs/LEAKCHECK.md``, "Static extraction") and return 1 only for
``EX001`` — a victim leaky under ``defense=none``.
"""

from __future__ import annotations

import argparse
import sys
import traceback
from collections.abc import Sequence
from time import perf_counter  # repro: noqa[RL003] — CLI timing, not model code

from repro.leakcheck.analyzer import DEFENSES, analyze
from repro.leakcheck.extract.scan import render_scan, scan_paths
from repro.leakcheck.report import render_json, render_text
from repro.leakcheck.victims import get_victim, victim_names


def _run_suite() -> int:
    failures = 0
    for name in victim_names():
        registered = get_victim(name)
        cells = []
        for defense in DEFENSES:
            verdict = analyze(registered.spec, defense=defense).verdict
            expected = registered.expected.get(defense)
            ok = verdict == expected
            failures += not ok
            cells.append(f"{defense}={verdict}" + ("" if ok else f" (expected {expected})"))
        print(f"{name:24s} {'  '.join(cells)}")
    total = len(victim_names()) * len(DEFENSES)
    print(f"suite: {total - failures}/{total} verdicts as expected")
    return 1 if failures else 0


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.leakcheck",
        description="Static AfterImage-leakage analyzer over the Algorithm-1 state machine.",
    )
    parser.add_argument(
        "victims",
        nargs="*",
        help="victim names to analyze (default: all registered victims)",
    )
    parser.add_argument("--defense", choices=DEFENSES, default="none")
    parser.add_argument("--format", choices=("text", "json"), default="text")
    parser.add_argument(
        "--list-victims", action="store_true", help="print the victim registry and exit"
    )
    parser.add_argument(
        "--suite",
        action="store_true",
        help="check every victim against its expected verdict matrix (CI mode)",
    )
    parser.add_argument(
        "--extract",
        nargs="+",
        metavar="FILE",
        help="compile candidate functions in the given Python files and "
        "analyze them across all defenses",
    )
    parser.add_argument(
        "--scan",
        nargs="+",
        metavar="PATH",
        help="recursively extract and analyze every candidate under the "
        "given paths (repo-wide gadget discovery)",
    )
    args = parser.parse_args(argv)

    if args.list_victims:
        for name in victim_names():
            print(f"{name:24s} {get_victim(name).spec.description}")
        return 0
    if args.suite:
        return _run_suite()
    if args.extract or args.scan:
        if args.victims:
            print(
                "repro.leakcheck: victim names and --extract/--scan are exclusive",
                file=sys.stderr,
            )
            return 2
        try:
            result = scan_paths([*(args.extract or []), *(args.scan or [])])
        except Exception:  # noqa: BLE001 — crash must not alias exit code 1
            traceback.print_exc()
            print(
                "repro.leakcheck: internal error during extraction scan (exit 3)",
                file=sys.stderr,
            )
            return 3
        print(render_scan(result, args.format))
        return result.exit_code

    names = args.victims or victim_names()
    reports = []
    timings: dict[str, float] = {}
    try:
        for name in names:
            started = perf_counter()
            reports.append(analyze(get_victim(name).spec, defense=args.defense))
            timings[name] = perf_counter() - started
    except ValueError as error:
        print(f"repro.leakcheck: {error}", file=sys.stderr)
        return 2
    renderer = render_json if args.format == "json" else render_text
    print(renderer(reports, timings))
    return 1 if any(report.leaky for report in reports) else 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    sys.exit(main())
