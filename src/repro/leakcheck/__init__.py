"""Static AfterImage-leakage analyzer (``afterimage leakcheck``).

Every attack in the paper reduces to one question about the victim alone:
does a secret bit flow into the (stride, confidence, last-address) state of
one of the 24 IP-stride history-table entries that an attacker-aliased load
can later observe?  This package answers it *statically* — no
:class:`~repro.cpu.Machine`, no timing, no rounds — by abstractly
interpreting the paper's Algorithm-1 state machine over a victim's load
trace for a witness pair of secrets and diffing the resulting table states.

* :mod:`repro.leakcheck.trace` — the victim description (:class:`VictimSpec`:
  labeled load IPs + a secret-parameterized trace generator).
* :mod:`repro.leakcheck.table` — :class:`AbstractTable`, the taint-tracking
  transcription of Algorithm 1.
* :mod:`repro.leakcheck.analyzer` — :func:`analyze`, the witness-pair
  differencing pass, with the :mod:`repro.defenses` applied statically.
* :mod:`repro.leakcheck.report` — :class:`LeakReport` + text/JSON rendering.
* :mod:`repro.leakcheck.victims` — the paper's victims, pre-registered.
* :mod:`repro.leakcheck.dynamic` — the simulator-backed oracle the static
  verdicts are differentially tested against.
* :mod:`repro.leakcheck.extract` — the static victim front-end: compiles
  *arbitrary* Python functions into :class:`VictimSpec` traces for
  repo-wide gadget discovery (``afterimage leakcheck --scan src/``).

See docs/LEAKCHECK.md for the abstract domain and its soundness caveats.
"""

from repro.leakcheck.analyzer import DEFENSES, analyze
from repro.leakcheck.extract import ExtractError, compile_path, compile_source, scan_paths
from repro.leakcheck.report import SCHEMA_VERSION, LeakReport, LeakyEntry
from repro.leakcheck.table import AbstractEntry, AbstractPrefetch, AbstractTable
from repro.leakcheck.trace import TraceLoad, VictimSpec
from repro.leakcheck.victims import RegisteredVictim, get_victim, victim_names

__all__ = [
    "DEFENSES",
    "SCHEMA_VERSION",
    "AbstractEntry",
    "AbstractPrefetch",
    "AbstractTable",
    "ExtractError",
    "LeakReport",
    "LeakyEntry",
    "RegisteredVictim",
    "TraceLoad",
    "VictimSpec",
    "analyze",
    "compile_path",
    "compile_source",
    "get_victim",
    "scan_paths",
    "victim_names",
]
