"""Structured output of the static analyzer: ``LeakReport`` + renderers.

The shapes mirror :mod:`repro.lint.engine`'s ``Finding``/render split so
the two static passes compose in CI the same way: a machine-readable JSON
mode, a human text mode, and exit codes derived from the verdicts.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from collections.abc import Mapping, Sequence

#: Version of the leakcheck JSON payloads.  Bumped to 2 when the payload
#: gained ``schema_version`` itself plus per-victim ``timings``; consumers
#: should treat payloads without the field as version 1.
SCHEMA_VERSION = 2


@dataclass(frozen=True, slots=True)
class LeakyEntry:
    """One secret-dependent history-table entry.

    ``kinds`` says *how* the entry's state differs between the witness
    secrets (``existence``, ``stride``, ``confidence``, ``last-addr``,
    ``prefetch``); ``bits`` which secret bits drive it; ``labels`` the
    victim load instructions responsible (taint); ``attacker_ip`` a
    concrete aliasing IP an attacker gadget at the default base could use,
    or ``None`` when the defense makes the entry unreachable.
    """

    index: int
    labels: tuple[str, ...]
    ips: tuple[int, ...]
    kinds: tuple[str, ...]
    bits: tuple[int, ...]
    reachable: bool
    attacker_ip: int | None
    self_triggered: bool


@dataclass(frozen=True, slots=True)
class LeakReport:
    """The static verdict for one victim under one defense."""

    victim: str
    defense: str
    verdict: str  # "leaky" | "safe"
    severity: str  # "high" | "medium" | "none"
    secret_bits: int
    leaky_bits: tuple[int, ...]
    witness: tuple[int, int] | None
    entries: tuple[LeakyEntry, ...]
    notes: tuple[str, ...] = field(default=())

    @property
    def leaky(self) -> bool:
        return self.verdict == "leaky"


def render_text(
    reports: Sequence[LeakReport], timings: Mapping[str, float] | None = None
) -> str:
    lines: list[str] = []
    for report in reports:
        lines.append(
            f"{report.victim} [defense={report.defense}]: {report.verdict.upper()}"
            + (f" (severity {report.severity})" if report.leaky else "")
        )
        if report.witness is not None:
            a, b = report.witness
            lines.append(
                f"  witness secrets: {a:#x} vs {b:#x} "
                f"({len(report.leaky_bits)}/{report.secret_bits} bits leak)"
            )
        for entry in report.entries:
            kinds = ",".join(entry.kinds)
            labels = ",".join(entry.labels)
            alias = (
                f"aliased by attacker load at {entry.attacker_ip:#x}"
                if entry.reachable and entry.attacker_ip is not None
                else "not attacker-reachable under this defense"
            )
            lines.append(
                f"  entry {entry.index:#04x}: {kinds} divergence from [{labels}]; {alias}"
            )
        for note in report.notes:
            lines.append(f"  note: {note}")
    n_leaky = sum(report.leaky for report in reports)
    noun = "victim" if len(reports) == 1 else "victims"
    lines.append(f"{n_leaky} leaky / {len(reports)} {noun}")
    if timings:
        slowest = max(timings, key=timings.get)  # type: ignore[arg-type]
        lines.append(f"slowest victim: {slowest} ({timings[slowest]:.3f}s)")
    return "\n".join(lines)


def render_json(
    reports: Sequence[LeakReport], timings: Mapping[str, float] | None = None
) -> str:
    payload = {
        "schema_version": SCHEMA_VERSION,
        "victims_checked": len(reports),
        "leaky": sum(report.leaky for report in reports),
        "reports": [asdict(report) for report in reports],
    }
    if timings is not None:
        payload["timings"] = {
            name: round(seconds, 6) for name, seconds in sorted(timings.items())
        }
    return json.dumps(payload, indent=2)
