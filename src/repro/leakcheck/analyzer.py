"""The witness-pair differencing pass: ``analyze(spec) -> LeakReport``.

For each secret bit ``b`` and each witness base, the analyzer abstractly
executes the victim's load trace for the pair ``(s, s ^ (1 << b))`` on a
fresh :class:`~repro.leakcheck.table.AbstractTable` and diffs the outcomes:
final entry states (existence / stride / confidence / last address) and
per-entry prefetch footprints.  Any difference means a secret bit flowed
into attacker-observable prefetcher state — the exact precondition of
AfterImage-PSC (state readback, §6.1) and AfterImage-Cache (footprint
probing, §5).

Each pair is executed in two table modes:

* **cold** — empty table, catching divergences in what the victim itself
  trains (including self-triggered prefetch footprints);
* **pretrained** — attacker PSC canaries (saturated confidence, known
  stride, one per victim index) installed first, catching divergences a
  single victim load makes observable by disturbing a monitored entry.

Defenses are applied statically: ``tagged`` removes the aliasing
(entries become unreachable — paper §8.2's full-IP+ASID tag),
``flush-on-switch`` clears the table before the attacker can look
(§8.3), and ``oblivious`` analyzes the victim's secret-independent
rewrite (§8.2).
"""

from __future__ import annotations

from repro.cpu.code import match_low_bits
from repro.defenses.static_model import STATIC_DEFENSES
from repro.leakcheck.report import LeakReport, LeakyEntry
from repro.leakcheck.table import AbstractTable
from repro.leakcheck.trace import VictimSpec
from repro.params import CACHE_LINE_SIZE, PAGE_SIZE, IPStrideParams

#: Where the attacker's aliasing gadget is assumed to live (same default as
#: :class:`repro.core.gadget.TrainingGadget`) — used to materialize a
#: concrete witness IP for each leaky entry.
ATTACKER_CODE_BASE = 0x0060_0000

#: Abstract base of the attacker's PSC training buffers (pretrained mode).
ATTACKER_DATA_BASE = 0x00A0_0000

#: Abstract base / spacing of the victim's named data regions.
VICTIM_DATA_BASE = 0x0100_0000
REGION_SPACING = 0x0010_0000

#: PSC canary strides, in lines (the paper trains with 7/11/13: prime, and
#: beyond the 4-line reach of the spatial prefetchers, §7.1).
CANARY_STRIDE_LINES = (7, 11, 13)

DEFENSES = tuple(STATIC_DEFENSES)


def region_bases(spec: VictimSpec) -> dict[str, int]:
    """Page-aligned abstract base address for each named data region."""
    bases = {}
    offset = 0
    for region in sorted(spec.region_pages):
        bases[region] = VICTIM_DATA_BASE + offset
        offset += max(REGION_SPACING, spec.region_pages[region] * PAGE_SIZE)
    return bases


def canary_plan(
    spec: VictimSpec, params: IPStrideParams
) -> list[tuple[int, int, int]]:
    """(train_ip, buffer_base, stride_bytes) per distinct victim index.

    Shared by the static pretrained mode and the dynamic oracle
    (:mod:`repro.leakcheck.dynamic`), so both attackers monitor the same
    entries with the same strides.
    """
    plan = []
    for k, (index, labels) in enumerate(sorted(spec.indexes(params.index_bits).items())):
        train_ip = match_low_bits(
            ATTACKER_CODE_BASE, spec.labels[labels[0]], params.index_bits
        )
        stride = CANARY_STRIDE_LINES[k % len(CANARY_STRIDE_LINES)] * CACHE_LINE_SIZE
        plan.append((train_ip, ATTACKER_DATA_BASE + k * PAGE_SIZE, stride))
    return plan


def _run_trace(
    spec: VictimSpec, secret: int, params: IPStrideParams, pretrained: bool
) -> AbstractTable:
    table = AbstractTable(params)
    bases = region_bases(spec)
    if pretrained:
        for train_ip, buffer_base, stride in canary_plan(spec, params):
            table.pretrain(train_ip, buffer_base, stride)
    for load in spec.trace(secret):
        table.observe(
            spec.labels[load.label], bases[load.region] + load.offset, load.taint
        )
    return table


def _diff(
    t0: AbstractTable, t1: AbstractTable
) -> dict[int, tuple[set[str], set[str]]]:
    """index → (divergence kinds, responsible taint) between two runs."""
    indexes = set(t0.entries()) | set(t1.entries())
    indexes |= {p.index for p in t0.prefetches} | {p.index for p in t1.prefetches}
    result: dict[int, tuple[set[str], set[str]]] = {}
    for index in indexes:
        e0, e1 = t0.entry(index), t1.entry(index)
        kinds: set[str] = set()
        if (e0 is None) != (e1 is None):
            kinds.add("existence")
        elif e0 is not None and e1 is not None:
            if e0.stride != e1.stride:
                kinds.add("stride")
            if e0.confidence != e1.confidence:
                kinds.add("confidence")
            if e0.last_paddr != e1.last_paddr:
                kinds.add("last-addr")
        if t0.prefetch_targets(index) != t1.prefetch_targets(index):
            kinds.add("prefetch")
        if not kinds:
            continue
        taint: set[str] = set()
        for entry in (e0, e1):
            if entry is not None:
                taint |= entry.taint
        for table in (t0, t1):
            for prefetch in table.prefetches:
                if prefetch.index == index:
                    taint |= prefetch.taint
        result[index] = (kinds, taint)
    return result


def analyze(
    spec: VictimSpec,
    defense: str = "none",
    params: IPStrideParams | None = None,
) -> LeakReport:
    """Statically classify one victim under one defense."""
    if defense not in STATIC_DEFENSES:
        raise ValueError(f"unknown defense {defense!r} (one of {', '.join(DEFENSES)})")
    model = STATIC_DEFENSES[defense]
    if params is None:
        params = IPStrideParams()

    notes: list[str] = []
    target = spec
    if model.rewrites_victim:
        target = spec.oblivious()
        if target is None:
            raise ValueError(
                f"victim {spec.name!r} defines no oblivious rewrite to analyze"
            )
        notes.append("analyzed the oblivious (secret-independent) rewrite")

    # Accumulated divergence: index → kinds / taint / bits / cold-prefetch flag.
    kinds_by_index: dict[int, set[str]] = {}
    taint_by_index: dict[int, set[str]] = {}
    bits_by_index: dict[int, set[int]] = {}
    cold_prefetch: set[int] = set()
    leaky_bits: list[int] = []
    witness: tuple[int, int] | None = None
    mask = (1 << target.secret_bits) - 1

    for bit in range(target.secret_bits):
        bit_diverges = False
        for base in target.witness_bases:
            a = base & mask
            b = a ^ (1 << bit)
            for pretrained in (False, True):
                diff = _diff(
                    _run_trace(target, a, params, pretrained),
                    _run_trace(target, b, params, pretrained),
                )
                for index, (kinds, taint) in diff.items():
                    kinds_by_index.setdefault(index, set()).update(kinds)
                    taint_by_index.setdefault(index, set()).update(taint)
                    bits_by_index.setdefault(index, set()).add(bit)
                    if not pretrained and "prefetch" in kinds:
                        cold_prefetch.add(index)
                if diff:
                    bit_diverges = True
                    if witness is None:
                        witness = (a, b)
        if bit_diverges:
            leaky_bits.append(bit)

    index_labels = target.indexes(params.index_bits)
    reachable = not model.blocks_readback
    entries = []
    for index in sorted(kinds_by_index):
        labels = sorted(taint_by_index[index] | set(index_labels.get(index, [])))
        victim_ips = tuple(
            sorted(target.labels[label] for label in labels if label in target.labels)
        )
        attacker_ip = (
            match_low_bits(ATTACKER_CODE_BASE, victim_ips[0], params.index_bits)
            if reachable and victim_ips
            else None
        )
        entries.append(
            LeakyEntry(
                index=index,
                labels=tuple(labels),
                ips=victim_ips,
                kinds=tuple(sorted(kinds_by_index[index])),
                bits=tuple(sorted(bits_by_index[index])),
                reachable=reachable,
                attacker_ip=attacker_ip,
                self_triggered=index in cold_prefetch,
            )
        )

    if reachable:
        verdict = "leaky" if leaky_bits else "safe"
    else:
        verdict = "safe"
        if model.removes_aliasing:
            notes.append(
                "full-IP + ASID entry tags remove the low-8-bit aliasing; "
                "secret-dependent entries exist but no attacker load can reach them"
            )
        else:
            notes.append(
                "history table is cleared on every domain switch; trained state "
                "never survives into the attacker's time slice"
            )
        if cold_prefetch:
            notes.append(
                "self-triggered prefetch footprints remain secret-dependent — a "
                "generic cache side channel outside AfterImage's aliasing model"
            )

    if verdict == "leaky":
        severity = "high" if len(leaky_bits) == target.secret_bits else "medium"
    else:
        severity = "none"
    return LeakReport(
        victim=spec.name,
        defense=defense,
        verdict=verdict,
        severity=severity,
        secret_bits=target.secret_bits,
        leaky_bits=tuple(leaky_bits),
        witness=witness if verdict == "leaky" else None,
        entries=tuple(entries),
        notes=tuple(notes),
    )
