"""The paper's victims, described as :class:`VictimSpec`\\ s.

Each spec mirrors the load structure of an existing simulator victim —
same image bases, same instruction offsets, same per-step operand
addressing — so the static verdict and the dynamic success rate talk about
the same program.  Every registered victim also carries its *expected*
verdict per defense; ``afterimage leakcheck --suite`` checks the whole
matrix and is wired into ``make check``.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Mapping

from repro.core.variant1 import VICTIM_ELSE_OFFSET, VICTIM_IF_OFFSET, VICTIM_TEXT_BASE
from repro.crypto.rsa import SquareAndMultiplyVictim, TimingConstantLadderVictim
from repro.crypto.ttable import TTABLE_LOAD_OFFSET, ttable_offsets
from repro.kernel.patterns import BatteryPropertySyscall, BluetoothTxSyscall
from repro.kernel.syscalls import KERNEL_TEXT_BASE
from repro.leakcheck.trace import TraceLoad, VictimSpec
from repro.params import CACHE_LINE_SIZE

#: Fixed known plaintext for the AES spec (the attacker's chosen input).
AES_PLAINTEXT = bytes(range(16))

#: All leaky victims flip to safe under every modeled defense.
_LEAKY = {"none": "leaky", "tagged": "safe", "flush-on-switch": "safe", "oblivious": "safe"}
_SAFE = {"none": "safe", "tagged": "safe", "flush-on-switch": "safe", "oblivious": "safe"}


@dataclass(frozen=True)
class RegisteredVictim:
    """A spec plus the verdict matrix the suite asserts."""

    spec: VictimSpec
    expected: Mapping[str, str]


def _bits_msb_first(secret: int, n_bits: int) -> list[tuple[int, int]]:
    """(bit position, bit value) pairs in processing (MSB-first) order."""
    return [(i, (secret >> i) & 1) for i in range(n_bits - 1, -1, -1)]


# --------------------------------------------------------------------- #
# Listing 1: the two-armed branch victim (Variant 1)                     #
# --------------------------------------------------------------------- #


def _branch_load_spec() -> VictimSpec:
    labels = {
        "victim_if_load": VICTIM_TEXT_BASE + VICTIM_IF_OFFSET,
        "victim_else_load": VICTIM_TEXT_BASE + VICTIM_ELSE_OFFSET,
    }

    def trace(secret: int) -> list[TraceLoad]:
        label = "victim_if_load" if secret else "victim_else_load"
        return [TraceLoad(label=label, region="data", offset=0)]

    def oblivious() -> VictimSpec:
        return _oblivious_branch_spec()

    return VictimSpec(
        name="branch-load",
        description="Listing 1: one load in each branch direction (Variant 1 victim)",
        secret_bits=1,
        labels=labels,
        region_pages={"data": 1},
        trace_fn=trace,
        oblivious_fn=oblivious,
    )


def _oblivious_branch_spec() -> VictimSpec:
    labels = {
        "victim_if_load": VICTIM_TEXT_BASE + VICTIM_IF_OFFSET,
        "victim_else_load": VICTIM_TEXT_BASE + VICTIM_ELSE_OFFSET,
    }

    def trace(_secret: int) -> list[TraceLoad]:
        return [
            TraceLoad(label="victim_if_load", region="data", offset=0),
            TraceLoad(label="victim_else_load", region="data", offset=0),
        ]

    return VictimSpec(
        name="oblivious-branch",
        description="Listing 1 rewritten obliviously: both loads run, a mask selects",
        secret_bits=1,
        labels=labels,
        region_pages={"data": 1},
        trace_fn=trace,
        # Already oblivious: the rewrite is itself.
        oblivious_fn=_oblivious_branch_spec,
    )


# --------------------------------------------------------------------- #
# RSA modular exponentiation (paper Figures 3-4, 8-bit exponent window)  #
# --------------------------------------------------------------------- #

_RSA_LABELS = {
    "rsa_if_load": VICTIM_TEXT_BASE + SquareAndMultiplyVictim.IF_LOAD_OFFSET,
    "rsa_else_load": VICTIM_TEXT_BASE + SquareAndMultiplyVictim.ELSE_LOAD_OFFSET,
}
_RSA_SIGN_LABELS = {
    "rsa_sign_if_load": VICTIM_TEXT_BASE + TimingConstantLadderVictim.SIGN_IF_OFFSET,
    "rsa_sign_else_load": VICTIM_TEXT_BASE + TimingConstantLadderVictim.SIGN_ELSE_OFFSET,
}
_RSA_BITS = 8


def _operand(step: int) -> int:
    """Byte offset of the operand line touched at exponent step ``step``."""
    return step * CACHE_LINE_SIZE


def _rsa_spec(name, description, per_bit, labels, oblivious_per_bit) -> VictimSpec:
    def trace(secret: int) -> list[TraceLoad]:
        loads: list[TraceLoad] = []
        for step, (position, bit) in enumerate(_bits_msb_first(secret, _RSA_BITS)):
            taint = frozenset({f"exp-bit{position}"})
            for label in per_bit(bit):
                loads.append(
                    TraceLoad(
                        label=label,
                        region="operands",
                        offset=_operand(step),
                        taint=taint | {label},
                    )
                )
        return loads

    def oblivious() -> VictimSpec:
        def oblivious_trace(_secret: int) -> list[TraceLoad]:
            return [
                TraceLoad(label=label, region="operands", offset=_operand(step))
                for step in range(_RSA_BITS)
                for label in oblivious_per_bit
            ]

        return VictimSpec(
            name=f"{name}(oblivious)",
            description=f"{description} — oblivious rewrite (all arms every bit)",
            secret_bits=_RSA_BITS,
            labels=labels,
            region_pages={"operands": 1},
            trace_fn=oblivious_trace,
        )

    return VictimSpec(
        name=name,
        description=description,
        secret_bits=_RSA_BITS,
        labels=labels,
        region_pages={"operands": 1},
        trace_fn=trace,
        oblivious_fn=oblivious,
    )


def _square_multiply_spec() -> VictimSpec:
    return _rsa_spec(
        "rsa-square-multiply",
        "square-and-multiply modexp: the multiply's operand load runs only for 1-bits",
        per_bit=lambda bit: ["rsa_if_load"] if bit else [],
        labels=_RSA_LABELS,
        oblivious_per_bit=("rsa_if_load", "rsa_else_load"),
    )


def _montgomery_ladder_spec() -> VictimSpec:
    return _rsa_spec(
        "rsa-montgomery-ladder",
        "Figure 3: both ladder directions multiply, each behind its own operand load",
        per_bit=lambda bit: ["rsa_if_load" if bit else "rsa_else_load"],
        labels=_RSA_LABELS,
        oblivious_per_bit=("rsa_if_load", "rsa_else_load"),
    )


def _timing_constant_spec() -> VictimSpec:
    return _rsa_spec(
        "rsa-timing-constant",
        "Figure 4: the ladder plus the X->s = ±s sign fix-up load per bit",
        per_bit=lambda bit: (
            ["rsa_if_load", "rsa_sign_if_load"]
            if bit
            else ["rsa_else_load", "rsa_sign_else_load"]
        ),
        labels={**_RSA_LABELS, **_RSA_SIGN_LABELS},
        oblivious_per_bit=(
            "rsa_if_load",
            "rsa_else_load",
            "rsa_sign_if_load",
            "rsa_sign_else_load",
        ),
    )


# --------------------------------------------------------------------- #
# AES T-table: data-dependent address at a fixed IP                      #
# --------------------------------------------------------------------- #


def _aes_ttable_spec() -> VictimSpec:
    labels = {"ttable_lookup": VICTIM_TEXT_BASE + TTABLE_LOAD_OFFSET}
    key_taint = frozenset({f"key-bit{j}" for j in range(8)} | {"ttable_lookup"})
    table_lines = 256 * 4 // CACHE_LINE_SIZE

    def trace(secret: int) -> list[TraceLoad]:
        key = bytes([secret]) * len(AES_PLAINTEXT)
        return [
            TraceLoad(label="ttable_lookup", region="ttable", offset=offset, taint=key_taint)
            for offset in ttable_offsets(key, AES_PLAINTEXT)
        ]

    def oblivious() -> VictimSpec:
        def scan(_secret: int) -> list[TraceLoad]:
            # Constant-time table scan: touch every line, in order.
            return [
                TraceLoad(
                    label="ttable_lookup", region="ttable", offset=line * CACHE_LINE_SIZE
                )
                for line in range(table_lines)
            ]

        return VictimSpec(
            name="aes-ttable(oblivious)",
            description="first-round lookups replaced by a full-table scan",
            secret_bits=8,
            labels=labels,
            region_pages={"ttable": 1},
            trace_fn=scan,
        )

    return VictimSpec(
        name="aes-ttable",
        description="table AES first round: 16 lookups at (pt[i]^k)*4 from one IP",
        secret_bits=8,
        labels=labels,
        region_pages={"ttable": 1},
        trace_fn=trace,
        oblivious_fn=oblivious,
    )


# --------------------------------------------------------------------- #
# Kernel switch patterns (paper Figures 1-2)                             #
# --------------------------------------------------------------------- #


def _kernel_switch_spec(name, description, arms, text_offset, region) -> VictimSpec:
    labels = {
        arm: KERNEL_TEXT_BASE + text_offset + 0x40 * slot
        for slot, arm in enumerate(arms)
    }

    def trace(secret: int) -> list[TraceLoad]:
        slot = secret % len(arms)
        return [
            TraceLoad(
                label=arms[slot], region=region, offset=slot * CACHE_LINE_SIZE
            )
        ]

    def oblivious() -> VictimSpec:
        def all_arms(_secret: int) -> list[TraceLoad]:
            return [
                TraceLoad(label=arm, region=region, offset=slot * CACHE_LINE_SIZE)
                for slot, arm in enumerate(arms)
            ]

        return VictimSpec(
            name=f"{name}(oblivious)",
            description=f"{description} — every arm's load runs each call",
            secret_bits=2,
            labels=labels,
            region_pages={region: 1},
            trace_fn=all_arms,
        )

    return VictimSpec(
        name=name,
        description=description,
        secret_bits=2,
        labels=labels,
        region_pages={region: 1},
        trace_fn=trace,
        oblivious_fn=oblivious,
    )


def _bluetooth_spec() -> VictimSpec:
    return _kernel_switch_spec(
        "kernel-bluetooth",
        "Figure 1: hci_send_frame switch, one stat-counter load per packet type",
        BluetoothTxSyscall.PACKET_TYPES,
        0x2470,
        "hdev-stat",
    )


def _battery_spec() -> VictimSpec:
    return _kernel_switch_spec(
        "kernel-battery",
        "Figure 2: power-supply property getter, one val-field load per property",
        BatteryPropertySyscall.PROPERTIES,
        0x5310,
        "psy-val",
    )


# --------------------------------------------------------------------- #
# Registry                                                               #
# --------------------------------------------------------------------- #

VICTIMS: dict[str, RegisteredVictim] = {
    spec.name: RegisteredVictim(spec=spec, expected=expected)
    for spec, expected in (
        (_branch_load_spec(), _LEAKY),
        (_oblivious_branch_spec(), _SAFE),
        (_square_multiply_spec(), _LEAKY),
        (_montgomery_ladder_spec(), _LEAKY),
        (_timing_constant_spec(), _LEAKY),
        (_aes_ttable_spec(), _LEAKY),
        (_bluetooth_spec(), _LEAKY),
        (_battery_spec(), _LEAKY),
    )
}


def victim_names() -> list[str]:
    """Registered victim names, in registration order."""
    return list(VICTIMS)


def get_victim(name: str) -> RegisteredVictim:
    if name not in VICTIMS:
        raise ValueError(
            f"unknown victim {name!r} (known: {', '.join(victim_names())})"
        )
    return VICTIMS[name]
