"""Concolic value domain for the static victim front-end.

The extractor executes victim functions *concretely* (the analyzer replays
real witness secrets, so every run has one concrete secret) while carrying
a light *symbolic* shadow that answers two questions the concrete value
cannot:

* **how wide is the secret?** — the shapes below record which secret bit
  positions a value depends on, so masking (``& 0xFF``), shifting
  (``>> i``) and modular reduction (``% 3``) turn into *bit demands* the
  builder folds into ``VictimSpec.secret_bits``;
* **which bits taint this load?** — :func:`taint_labels` renders a shadow
  into the ``bit3``-style strings :class:`~repro.leakcheck.trace.TraceLoad`
  attributes leaky entries to.

The domain is deliberately tiny: ``secret >> s`` stays precise
(:class:`SecretExpr`), a single extracted bit stays precise
(:class:`BitExpr`), linear combinations stay walkable
(:class:`AffineExpr`), and everything else collapses to :class:`MixExpr`
with a (possibly unknown) bit set.  Precision only matters where it feeds
demands and labels — divergence itself is detected downstream by
``analyze()``'s witness-pair differencing, not by the symbols.

Besides the symbolic shadow, the interpreter's runtime values use two
reference shapes: :class:`Opaque` for objects it cannot look inside
(parameters, ``self``-rooted configuration) and :class:`Addr` for modeled
virtual addresses (``buffer.line_addr(k)`` results).
"""

from __future__ import annotations

from dataclasses import dataclass


class SymExpr:
    """Base class of the symbolic shadow attached to tainted values."""

    __slots__ = ()


@dataclass(frozen=True, slots=True)
class SecretExpr(SymExpr):
    """``secret >> shift`` — the secret itself, possibly right-shifted."""

    shift: int = 0


@dataclass(frozen=True, slots=True)
class BitExpr(SymExpr):
    """``(secret >> index) & 1`` — one extracted secret bit."""

    index: int


@dataclass(frozen=True, slots=True)
class AffineExpr(SymExpr):
    """``scale * inner + offset`` over another shadow (loop-scaled bits)."""

    inner: SymExpr
    scale: int
    offset: int


@dataclass(frozen=True, slots=True)
class MixExpr(SymExpr):
    """An opaque combination of secret bits; ``bits`` is ``None`` when the
    dependent positions are unknown (treated as *all* of them)."""

    bits: frozenset[int] | None = None


def bits_of(expr: SymExpr, secret_bits: int) -> frozenset[int]:
    """The secret bit positions ``expr`` may depend on, given the width."""
    if isinstance(expr, SecretExpr):
        return frozenset(range(min(expr.shift, secret_bits), secret_bits))
    if isinstance(expr, BitExpr):
        return frozenset({expr.index} if expr.index < secret_bits else ())
    if isinstance(expr, AffineExpr):
        return bits_of(expr.inner, secret_bits)
    if isinstance(expr, MixExpr):
        if expr.bits is None:
            return frozenset(range(secret_bits))
        return frozenset(b for b in expr.bits if b < secret_bits)
    raise TypeError(f"unknown symbolic shape {expr!r}")


def taint_labels(expr: SymExpr | None, secret_bits: int) -> frozenset[str]:
    """``bit<i>`` labels for a shadow (empty for untainted values)."""
    if expr is None:
        return frozenset()
    return frozenset(f"bit{i}" for i in sorted(bits_of(expr, secret_bits)))


def mix(*exprs: SymExpr | None) -> SymExpr | None:
    """Join shadows from several operands (``None`` operands are untainted)."""
    live = [expr for expr in exprs if expr is not None]
    if not live:
        return None
    if len(live) == 1:
        return live[0]
    sets = []
    for expr in live:
        if isinstance(expr, MixExpr) and expr.bits is None:
            return MixExpr(None)
        if isinstance(expr, SecretExpr):
            return MixExpr(None)  # unbounded upward: width decides later
        if isinstance(expr, BitExpr):
            sets.append(frozenset({expr.index}))
        elif isinstance(expr, MixExpr):
            sets.append(expr.bits or frozenset())
        else:  # AffineExpr
            inner = mix(expr.inner)
            if isinstance(inner, MixExpr) and inner.bits is not None:
                sets.append(inner.bits)
            elif isinstance(inner, BitExpr):
                sets.append(frozenset({inner.index}))
            else:
                return MixExpr(None)
    return MixExpr(frozenset().union(*sets))


def shift_right(expr: SymExpr, amount: int) -> SymExpr:
    """Shadow of ``value >> amount``."""
    if isinstance(expr, SecretExpr):
        return SecretExpr(expr.shift + amount)
    if isinstance(expr, BitExpr):
        return BitExpr(expr.index) if amount == 0 else MixExpr(frozenset())
    return MixExpr(None) if not isinstance(expr, MixExpr) else expr


def mask(expr: SymExpr, value: int) -> SymExpr:
    """Shadow of ``value_expr & mask`` for a constant mask."""
    if isinstance(expr, SecretExpr):
        if value == 1:
            return BitExpr(expr.shift)
        return MixExpr(
            frozenset(range(expr.shift, expr.shift + value.bit_length()))
        )
    if isinstance(expr, BitExpr):
        return expr if value & 1 else MixExpr(frozenset())
    return MixExpr(None)


def affine(expr: SymExpr, scale: int = 1, offset: int = 0) -> SymExpr:
    """Shadow of ``scale * value + offset`` for constant scale/offset."""
    if scale == 1 and offset == 0:
        return expr
    if isinstance(expr, AffineExpr):
        return AffineExpr(expr.inner, expr.scale * scale, expr.offset * scale + offset)
    return AffineExpr(expr, scale, offset)


@dataclass(frozen=True, slots=True)
class Value:
    """One runtime value: a concrete Python object plus its shadow."""

    concrete: object
    sym: SymExpr | None = None

    @property
    def tainted(self) -> bool:
        return self.sym is not None


@dataclass(frozen=True, slots=True)
class Opaque:
    """A reference the interpreter cannot look inside.

    ``kind`` splits the two roles unknowable objects play in a victim:

    * ``"config"`` — ``self``/``cls``-rooted machine plumbing (code
      regions, IP attributes, the modeled :class:`~repro.cpu.machine.Machine`).
      Reading its attributes is *not* a memory access of interest; its
      method calls are matched against the modeled-load vocabulary.
    * ``"data"`` — any other unknown parameter: a table, an operand
      buffer, a state struct.  Subscript/attribute *reads* on it are the
      load sites the extractor records.

    ``path`` is the dotted access chain from the root parameter; it
    doubles as the provenance string that distinguishes load sites fed
    with different configuration IPs (``self.if_ip`` vs ``self.else_ip``).
    """

    path: str
    kind: str  # "config" | "data"


@dataclass(frozen=True, slots=True)
class Addr:
    """A modeled virtual address: byte ``offset`` into named ``region``."""

    region: str
    offset: int
    sym: SymExpr | None = None


def describe(value: object) -> str:
    """Provenance string for site identity (stable across runs)."""
    if isinstance(value, Opaque):
        return value.path
    if isinstance(value, Addr):
        return f"&{value.region}"
    if isinstance(value, Value):
        if value.tainted:
            return f"ip={value.concrete:#x}" if isinstance(value.concrete, int) else "ip=?"
        return "ip"
    return "ip"
