"""Seeded positive control for the extraction scan.

``make check`` and the CI ``leakcheck-extract`` job point
``afterimage leakcheck --extract`` at this file and assert the planted
gadget below is flagged ``EX001`` (leaky under ``defense=none``) and
safe under ``tagged``/``flush-on-switch``/``oblivious`` — proving the
scan can find a secret-dependent load *nobody registered by hand*.

Like :mod:`repro.leakcheck.extract.victim_sources`, nothing here is ever
executed; the class exists only to be compiled by the extractor.
"""

from __future__ import annotations


class PlantedGadgetFixture:
    """An unregistered Listing-1-style gadget: the low two secret bits
    pick which cache line of a per-connection table one fixed load
    instruction touches."""

    def lookup(self, secret):
        row = secret & 0x3
        vaddr = self.table.line_addr(row)
        self.machine.warm_tlb(self.ctx, vaddr)
        return self.machine.load(self.ctx, self.gadget_ip, vaddr)

    def fold_bits(self, bits):
        # A candidate with no modeled loads: the scan must count it as
        # pure/skipped, not report it.
        total = 0
        for shift in (0, 1, 2, 3):
            total = (total + (bits >> shift)) % 255
        return total
