"""Whole-repo gadget discovery: compile candidates, analyze, report.

``afterimage leakcheck --scan src/`` walks a tree, compiles every
candidate function (:mod:`repro.leakcheck.extract.builder`) and pushes
each compiled :class:`VictimSpec` through the witness-pair analyzer
across all four static defenses.  Findings are lint-shaped — a code, a
``path:line`` anchor, a message — so CI consumes the two static passes
identically:

* ``EX001`` — the extracted victim is *leaky* under ``defense=none``:
  an attacker gadget aliasing the history table can read secret bits.
  The only code that affects the exit status.
* ``EX002`` — informational: history-table divergence persists under a
  blocking defense (``tagged``), but readback is blocked.  The gadget is
  one defense-bypass away from EX001.
* ``EX003`` — informational: a candidate function could not be compiled
  (dynamic dispatch, ``try``/``except``, byte-string secrets, …).  The
  scan is *not* claiming these are safe.

Functions that compile to *zero* load sites are pure computations the
prefetcher cannot see; they are counted as skipped, not reported.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from collections.abc import Iterable
from time import perf_counter  # repro: noqa[RL003] — scan timing, not model code

from repro.leakcheck.analyzer import DEFENSES, analyze
from repro.leakcheck.extract.builder import Extraction, compile_path
from repro.leakcheck.extract.interp import ExtractError
from repro.leakcheck.report import SCHEMA_VERSION
from repro.lint.engine import iter_python_files

#: Finding codes emitted by the static extraction scan, with the one-line
#: meanings ``docs/LEAKCHECK.md`` documents (the docs-sync test keys off
#: this table).
EXTRACT_CODES: dict[str, str] = {
    "EX001": "extracted victim leaks secret bits via the prefetcher under defense=none",
    "EX002": "residual history-table divergence under a blocking defense (informational)",
    "EX003": "candidate function could not be compiled into a load trace (informational)",
}


@dataclass(frozen=True, slots=True)
class ScanFinding:
    """One lint-shaped scan result, anchored at the candidate's def."""

    code: str
    path: str
    line: int
    qualname: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: {self.code} {self.qualname}: {self.message}"


@dataclass(frozen=True, slots=True)
class VictimRow:
    """Per-compiled-victim summary for the JSON payload."""

    name: str
    path: str
    line: int
    qualname: str
    secret_bits: int
    sites: int
    verdicts: dict[str, str]


@dataclass
class ScanResult:
    """Everything one scan run produced."""

    findings: list[ScanFinding] = field(default_factory=list)
    victims: list[VictimRow] = field(default_factory=list)
    files: int = 0
    candidates: int = 0
    compiled: int = 0
    pure: int = 0
    failed: int = 0
    timings: dict[str, float] = field(default_factory=dict)

    @property
    def leaky(self) -> int:
        return sum(finding.code == "EX001" for finding in self.findings)

    @property
    def exit_code(self) -> int:
        return 1 if self.leaky else 0


def scan_paths(paths: Iterable[str]) -> ScanResult:
    """Compile and analyze every candidate under ``paths``."""
    result = ScanResult()
    for path in iter_python_files(paths):
        result.files += 1
        try:
            extractions = compile_path(str(path))
        except SyntaxError:
            continue  # unparseable files are the lint pass's problem
        for extraction in extractions:
            _fold_extraction(result, extraction)
    result.findings.sort(key=lambda f: (f.path, f.line, f.code))
    return result


def _fold_extraction(result: ScanResult, extraction: Extraction) -> None:
    result.candidates += 1
    started = perf_counter()
    try:
        if extraction.error is not None:
            result.failed += 1
            result.findings.append(
                ScanFinding(
                    code="EX003",
                    path=extraction.path,
                    line=extraction.line,
                    qualname=extraction.qualname,
                    message=extraction.error,
                )
            )
            return
        if extraction.pure or extraction.spec is None:
            result.pure += 1
            return
        try:
            _analyze_spec(result, extraction)
        except (ValueError, ExtractError) as error:
            # A spec that compiled but cannot be analyzed (replay escaped
            # the probed closure, spec validation rejected a trace, …) is
            # a per-candidate extraction failure, not a scan abort: fold
            # it into EX003 so one bad candidate cannot take down — or
            # silently pass — a whole-tree run.
            result.failed += 1
            result.findings.append(
                ScanFinding(
                    code="EX003",
                    path=extraction.path,
                    line=extraction.line,
                    qualname=extraction.qualname,
                    message=f"analysis of the extracted spec failed: {error}",
                )
            )
            return
        result.compiled += 1
    finally:
        key = f"{extraction.path}::{extraction.qualname}"
        result.timings[key] = perf_counter() - started


def _analyze_spec(result: ScanResult, extraction: Extraction) -> None:
    spec = extraction.spec
    verdicts: dict[str, str] = {}
    reports = {}
    for defense in DEFENSES:
        if defense == "oblivious" and spec.oblivious_fn is None:
            verdicts[defense] = "unavailable"
            continue
        report = analyze(spec, defense=defense)
        verdicts[defense] = report.verdict
        reports[defense] = report
    result.victims.append(
        VictimRow(
            name=spec.name,
            path=extraction.path,
            line=extraction.line,
            qualname=extraction.qualname,
            secret_bits=spec.secret_bits,
            sites=len(spec.labels),
            verdicts=verdicts,
        )
    )
    none_report = reports.get("none")
    if none_report is not None and none_report.leaky:
        bits = ",".join(str(bit) for bit in none_report.leaky_bits)
        result.findings.append(
            ScanFinding(
                code="EX001",
                path=extraction.path,
                line=extraction.line,
                qualname=extraction.qualname,
                message=(
                    f"secret bits [{bits}] of {spec.secret_bits} leak through "
                    f"the prefetcher history table (severity {none_report.severity}; "
                    f"secret parameter `{extraction.secret_param}`)"
                ),
            )
        )
    tagged = reports.get("tagged")
    if tagged is not None and not tagged.leaky and tagged.leaky_bits:
        result.findings.append(
            ScanFinding(
                code="EX002",
                path=extraction.path,
                line=extraction.line,
                qualname=extraction.qualname,
                message=(
                    "secret-dependent history-table divergence persists under "
                    "defense=tagged; only the blocked readback prevents a leak"
                ),
            )
        )


# --------------------------------------------------------------------- #
# Renderers                                                              #
# --------------------------------------------------------------------- #


def render_scan_text(result: ScanResult) -> str:
    lines = [finding.render() for finding in result.findings]
    noun = "file" if result.files == 1 else "files"
    lines.append(
        f"scanned {result.files} {noun}: {result.candidates} candidates, "
        f"{result.compiled} compiled, {result.pure} pure (skipped), "
        f"{result.failed} not extractable; {result.leaky} leaky"
    )
    if result.timings:
        slowest = max(result.timings, key=result.timings.get)  # type: ignore[arg-type]
        lines.append(
            f"slowest victim: {slowest} ({result.timings[slowest]:.3f}s)"
        )
    return "\n".join(lines)


def render_scan_json(result: ScanResult) -> str:
    payload = {
        "schema_version": SCHEMA_VERSION,
        "mode": "extract-scan",
        "files_checked": result.files,
        "summary": {
            "candidates": result.candidates,
            "compiled": result.compiled,
            "pure": result.pure,
            "failed": result.failed,
            "leaky": result.leaky,
        },
        "findings": [asdict(finding) for finding in result.findings],
        "victims": [asdict(row) for row in result.victims],
        "codes": EXTRACT_CODES,
        "timings": {
            name: round(seconds, 6)
            for name, seconds in sorted(result.timings.items())
        },
    }
    return json.dumps(payload, indent=2)


def render_scan(result: ScanResult, fmt: str) -> str:
    return render_scan_json(result) if fmt == "json" else render_scan_text(result)
