"""``repro.leakcheck.extract`` — static victim front-end.

Compiles arbitrary Python functions into :class:`~repro.leakcheck.trace.VictimSpec`
load traces so the witness-pair analyzer can judge *unregistered* code:

* :mod:`~repro.leakcheck.extract.domain` — the concolic value domain
  (concrete execution + a symbolic shadow for bit demands and taint);
* :mod:`~repro.leakcheck.extract.interp` — the abstract interpreter over
  function bodies, with interprocedural inlining via the shared
  :mod:`repro.lint.flow.callgraph` machinery;
* :mod:`~repro.leakcheck.extract.builder` — the probe/freeze pipeline
  that turns one candidate function into a pure, replayable spec;
* :mod:`~repro.leakcheck.extract.scan` — whole-tree gadget discovery
  with lint-shaped ``EX001``/``EX002``/``EX003`` findings;
* :mod:`~repro.leakcheck.extract.victim_sources` /
  :mod:`~repro.leakcheck.extract.fixtures` — never-executed Python read
  by the differential test and the CI positive control.

See ``docs/LEAKCHECK.md`` ("Static extraction").
"""

from __future__ import annotations

from repro.leakcheck.extract.builder import (
    Candidate,
    Extraction,
    MAX_SITES,
    candidates,
    compile_candidate,
    compile_path,
    compile_source,
    module_info,
)
from repro.leakcheck.extract.interp import (
    ExtractError,
    Interpreter,
    ModuleInfo,
    RecordedLoad,
    RunResult,
    SiteKey,
    SlotTable,
    is_secret_param,
)
from repro.leakcheck.extract.scan import (
    EXTRACT_CODES,
    ScanFinding,
    ScanResult,
    VictimRow,
    render_scan,
    render_scan_json,
    render_scan_text,
    scan_paths,
)

__all__ = [
    "Candidate",
    "EXTRACT_CODES",
    "ExtractError",
    "Extraction",
    "Interpreter",
    "MAX_SITES",
    "ModuleInfo",
    "RecordedLoad",
    "RunResult",
    "ScanFinding",
    "ScanResult",
    "SiteKey",
    "SlotTable",
    "VictimRow",
    "candidates",
    "compile_candidate",
    "compile_path",
    "compile_source",
    "is_secret_param",
    "module_info",
    "render_scan",
    "render_scan_json",
    "render_scan_text",
    "scan_paths",
]
