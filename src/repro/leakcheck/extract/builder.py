"""Compile Python victim functions into :class:`VictimSpec` load traces.

The pipeline per candidate function:

1. **CFG sanity** — every definition in the function's inlining closure
   (:func:`repro.lint.flow.callgraph.closure_defs`, the PR-6 machinery)
   must have a CFG-reachable exit; a provably non-terminating victim is
   rejected before any execution.
2. **Width fixpoint** — probe runs over the witness closure collect *bit
   demands* (masks, shifts, comparisons — see
   :mod:`repro.leakcheck.extract.domain`) until ``secret_bits``
   stabilizes.  The closure is exactly the secret set ``analyze()``
   replays (``base`` and ``base ^ (1 << bit)`` for both default witness
   bases), so every site and slot a replay can reach is probed here.
3. **Oblivious synthesis** — the same closure re-runs in ``"oblivious"``
   mode (both branch arms, swept addresses); failure (secret-dependent
   trip counts) downgrades the spec to ``oblivious_fn=None`` instead of
   failing the compile.
4. **Freeze** — named-slot offsets and the site universe are frozen;
   labels get IPs ``VICTIM_TEXT_BASE + 4 * ordinal`` in sorted site
   order (≤ :data:`MAX_SITES` sites keeps low-8-bit IP indexes distinct,
   matching the prefetcher's index width).

The compiled ``trace_fn`` is a *pure* replay: each call builds a fresh
:class:`~repro.leakcheck.extract.interp.Interpreter` against the frozen
slot table, so ``analyze()`` can diff witness pairs safely.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass

from repro.core.variant1 import VICTIM_TEXT_BASE
from repro.leakcheck.extract.domain import taint_labels
from repro.leakcheck.extract.interp import (
    ExtractError,
    Interpreter,
    ModuleInfo,
    RecordedLoad,
    RunResult,
    SiteKey,
    SlotTable,
    is_secret_param,
)
from repro.leakcheck.trace import TraceLoad, VictimSpec
from repro.lint.flow.callgraph import closure_defs, function_defs
from repro.lint.flow.cfg import build_cfg
from repro.params import PAGE_SIZE

#: Hard cap on distinct load sites: with 4-byte IP spacing this keeps the
#: low 8 bits of every site IP distinct, the width the modeled prefetcher
#: indexes its history table by.
MAX_SITES = 64

#: secret_bits defaults to a byte when no operation constrains the width.
_DEFAULT_SECRET_BITS = 8
_MAX_SECRET_BITS = 16
_WIDTH_ROUNDS = 6

_FUNC_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)


@dataclass(frozen=True, slots=True)
class Candidate:
    """One extractable function: a def with a secret-named parameter."""

    qualname: str
    func: ast.FunctionDef | ast.AsyncFunctionDef
    secret_param: str


@dataclass(frozen=True, slots=True)
class Extraction:
    """The outcome of compiling one candidate."""

    qualname: str
    path: str
    line: int
    secret_param: str
    spec: VictimSpec | None
    error: str | None  # ExtractError reason when compilation failed
    pure: bool  # True when the function performs no modeled loads
    oblivious_note: str | None  # why no oblivious rewrite, when spec has none


def module_info(source: str, path: str) -> ModuleInfo:
    """Parse a module once for all candidates it contains."""
    tree = ast.parse(source, filename=path)
    constants: dict[str, object] = {}
    for stmt in tree.body:
        targets: list[ast.expr] = []
        value: ast.expr | None = None
        if isinstance(stmt, ast.Assign):
            targets, value = stmt.targets, stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets, value = [stmt.target], stmt.value
        if value is None:
            continue
        try:
            literal = ast.literal_eval(value)
        except ValueError:
            continue
        for target in targets:
            if isinstance(target, ast.Name):
                constants[target.id] = literal
    return ModuleInfo(
        path=path, tree=tree, constants=constants, defs=function_defs(tree)
    )


def candidates(module: ModuleInfo) -> list[Candidate]:
    """Module- and class-level defs with a secret-named parameter.

    Dunders are skipped; so are functions whose secret travels through a
    parameter name outside :data:`~.interp.SECRET_PARAM_STEMS` (the
    kernel dispatch handlers keyed by *string* secrets are the canonical
    documented miss).
    """
    found: list[Candidate] = []
    for stmt in module.tree.body:
        if isinstance(stmt, _FUNC_NODES):
            _add_candidate(found, stmt, stmt.name)
        elif isinstance(stmt, ast.ClassDef):
            for inner in stmt.body:
                if isinstance(inner, _FUNC_NODES):
                    _add_candidate(found, inner, f"{stmt.name}.{inner.name}")
    return found


def _add_candidate(
    out: list[Candidate],
    func: ast.FunctionDef | ast.AsyncFunctionDef,
    qualname: str,
) -> None:
    if func.name.startswith("__") and func.name.endswith("__"):
        return
    spec = func.args
    for arg in spec.posonlyargs + spec.args + spec.kwonlyargs:
        if is_secret_param(arg.arg):
            out.append(Candidate(qualname=qualname, func=func, secret_param=arg.arg))
            return


def _check_cfgs(module: ModuleInfo, func: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
    """Reject functions whose inlining closure contains a def that can
    never reach its exit (CFG-proven non-termination)."""
    for definition in closure_defs(module.defs, func):
        cfg = build_cfg(definition.body)
        if not cfg.blocks[cfg.exit].reachable:
            raise ExtractError(
                f"`{definition.name}` (line {definition.lineno}) cannot reach "
                "its exit: non-terminating control flow"
            )


def _witness_closure(secret_bits: int) -> list[int]:
    """The exact secrets ``analyze()`` replays for the default bases."""
    mask = (1 << secret_bits) - 1
    secrets: list[int] = []
    for base in (0, mask):
        for value in (base, *(base ^ (1 << bit) for bit in range(secret_bits))):
            if value not in secrets:
                secrets.append(value)
    return secrets


def _clamp_width(demands: set[int]) -> int:
    width = max(demands, default=_DEFAULT_SECRET_BITS)
    return max(1, min(width, _MAX_SECRET_BITS))


def compile_candidate(module: ModuleInfo, candidate: Candidate) -> Extraction:
    """Run the full pipeline for one candidate function."""
    base = dict(
        qualname=candidate.qualname,
        path=module.path,
        line=candidate.func.lineno,
        secret_param=candidate.secret_param,
    )
    try:
        spec, pure, oblivious_note = _compile(module, candidate)
    except ExtractError as error:
        return Extraction(
            **base, spec=None, error=str(error), pure=False, oblivious_note=None
        )
    return Extraction(
        **base, spec=spec, error=None, pure=pure, oblivious_note=oblivious_note
    )


def _compile(
    module: ModuleInfo, candidate: Candidate
) -> tuple[VictimSpec | None, bool, str | None]:
    func = candidate.func
    _check_cfgs(module, func)
    slots = SlotTable()

    def probe(secret: int) -> RunResult:
        interp = Interpreter(
            module, func, secret_param=candidate.secret_param, slots=slots
        )
        return interp.run(secret)

    # Phase 2: fixpoint over the secret width.
    secret_bits = 1
    results: dict[int, RunResult] = {}
    for _ in range(_WIDTH_ROUNDS):
        results = {secret: probe(secret) for secret in _witness_closure(secret_bits)}
        demands: set[int] = set()
        for result in results.values():
            demands |= result.demands
        width = _clamp_width(demands)
        if width == secret_bits:
            break
        secret_bits = width
    else:
        raise ExtractError("secret width did not converge")

    sites: set[SiteKey] = set()
    max_offsets: dict[str, int] = {}
    for result in results.values():
        _fold_loads(result.loads, sites, max_offsets)
    if not sites:
        return None, True, None  # pure: nothing for the prefetcher to see

    # Phase 3: oblivious synthesis over the same closure.
    sweep_spans = {
        region: (offset // PAGE_SIZE + 1) * PAGE_SIZE
        for region, offset in max_offsets.items()
    }
    oblivious_note: str | None = None
    canonical: list[RecordedLoad] | None = None
    try:
        for secret in _witness_closure(secret_bits):
            interp = Interpreter(
                module,
                func,
                secret_param=candidate.secret_param,
                mode="oblivious",
                slots=slots,
                sweep_regions=sweep_spans,
            )
            result = interp.run(secret)
            _fold_loads(result.loads, sites, max_offsets)
            if canonical is None:
                canonical = result.loads
            elif _site_sequences(result.loads) != _site_sequences(canonical):
                # The canonical trace is only a sound stand-in for every
                # secret if the synthesized rewrite really is secret-
                # independent.  Any residual divergence means a secret
                # dependency escaped the taint tracking (e.g. element
                # shadows dropped by an aggregating builtin), so claiming
                # "safe under oblivious" would be a false verdict.
                raise ExtractError(
                    f"synthesized rewrite still diverges for secret "
                    f"{secret:#x} (a secret dependency escaped the taint "
                    "tracking)"
                )
    except ExtractError as error:
        oblivious_note = str(error)
        canonical = None

    if len(sites) > MAX_SITES:
        raise ExtractError(
            f"{len(sites)} distinct load sites exceed the {MAX_SITES}-site cap "
            "(IP low-bit aliasing would fold sites together)"
        )

    # Phase 4: freeze identities.
    slots.freeze()
    ordered = sorted(sites, key=lambda site: (site.line, site.col, site.prov))
    site_label = {
        site: f"{site.prov}@{site.line}:{site.col}" for site in ordered
    }
    labels = {
        site_label[site]: VICTIM_TEXT_BASE + 4 * ordinal
        for ordinal, site in enumerate(ordered)
    }
    region_pages = {
        region: offset // PAGE_SIZE + 1 for region, offset in sorted(max_offsets.items())
    }
    name = f"{module.path}::{candidate.qualname}"
    width = secret_bits

    def trace_fn(secret: int) -> list[TraceLoad]:
        interp = Interpreter(
            module, func, secret_param=candidate.secret_param, slots=slots
        )
        return [_to_trace_load(load, site_label, width) for load in interp.run(secret).loads]

    oblivious_fn = None
    if canonical is not None:
        frozen = tuple(
            _to_trace_load(load, site_label, width) for load in canonical
        )

        def oblivious_fn() -> VictimSpec:
            return VictimSpec(
                name=f"{name}(oblivious)",
                description=f"oblivious rewrite synthesized from {candidate.qualname}",
                secret_bits=width,
                labels=labels,
                region_pages=region_pages,
                # The rewrite is secret-independent by construction, so the
                # canonical (secret=0) trace stands in for every secret.
                trace_fn=lambda _secret: list(frozen),
            )

    spec = VictimSpec(
        name=name,
        description=(
            f"extracted from {candidate.qualname} "
            f"(secret parameter `{candidate.secret_param}`)"
        ),
        secret_bits=width,
        labels=labels,
        region_pages=region_pages,
        trace_fn=trace_fn,
        oblivious_fn=oblivious_fn,
    )
    return spec, False, oblivious_note


def _site_sequences(
    loads: list[RecordedLoad],
) -> dict[SiteKey, list[tuple[str, int]]]:
    """Per-site address sequences, the prefetcher's view of a trace.

    Each site owns one history-table entry (the builder keeps low-8-bit
    IPs distinct), so comparing per-site sequences catches every
    divergence that entry could observe while ignoring cross-site
    interleaving — which the oblivious walker perturbs by executing the
    concretely-taken arm before the sandboxed one.
    """
    sequences: dict[SiteKey, list[tuple[str, int]]] = {}
    for load in loads:
        sequences.setdefault(load.site, []).append((load.region, load.offset))
    return sequences


def _fold_loads(
    loads: list[RecordedLoad],
    sites: set[SiteKey],
    max_offsets: dict[str, int],
) -> None:
    for load in loads:
        sites.add(load.site)
        previous = max_offsets.get(load.region, 0)
        if load.offset > previous:
            max_offsets[load.region] = load.offset
        else:
            max_offsets.setdefault(load.region, previous)


def _to_trace_load(
    load: RecordedLoad, site_label: dict[SiteKey, str], secret_bits: int
) -> TraceLoad:
    label = site_label.get(load.site)
    if label is None:
        raise ExtractError(
            f"replay reached unprobed load site {load.site!r}; the witness "
            "closure should cover every replayed secret"
        )
    taint = frozenset()
    if load.sym is not None:
        taint = taint_labels(load.sym, secret_bits) | {label}
    return TraceLoad(label=label, region=load.region, offset=load.offset, taint=taint)


def compile_source(source: str, path: str) -> list[Extraction]:
    """Compile every candidate in one module's source text."""
    module = module_info(source, path)
    return [compile_candidate(module, candidate) for candidate in candidates(module)]


def compile_path(path: str) -> list[Extraction]:
    """Compile every candidate in one file on disk."""
    with open(path, encoding="utf-8") as handle:
        return compile_source(handle.read(), path)
