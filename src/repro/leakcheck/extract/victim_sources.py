"""The eight registered victims, re-expressed as ordinary Python.

These classes are *never executed*.  They exist to be read by the static
extractor: each method below is a natural-Python rendering of one victim
in :mod:`repro.leakcheck.victims`, and the differential test
(``tests/test_leakcheck_extract_differential.py``) asserts that compiling
them with :func:`repro.leakcheck.extract.builder.compile_path` reproduces
the registered victim's verdict matrix across all four static defenses.

They intentionally use nothing but the modeled-machine vocabulary the
interpreter understands (``self.machine.load``, ``*.line_addr``,
``*.addr``, ``warm_tlb``) plus plain arithmetic and control flow — the
same shapes the real simulator victims in ``src/repro/crypto`` and
``src/repro/kernel`` use.
"""

from __future__ import annotations

#: Exponent window width shared by the three RSA sources (paper Figs. 3-4).
RSA_EXPONENT_BITS = 8

#: The attacker-chosen known plaintext of the AES source (one first round).
AES_PLAINTEXT = (0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15)

#: T-table entry width in bytes.
TTABLE_ENTRY_BYTES = 4

#: Switch fan-outs of the two kernel sources (Figures 1-2).
BLUETOOTH_PACKET_SLOTS = 3
BATTERY_PROPERTY_SLOTS = 4

#: Extractor qualname → registered victim name, for the differential test.
REGISTRY_EQUIVALENTS = {
    "BranchLoadSource.run": "branch-load",
    "ObliviousBranchSource.run": "oblivious-branch",
    "SquareMultiplySource.modexp": "rsa-square-multiply",
    "MontgomeryLadderSource.ladder": "rsa-montgomery-ladder",
    "TimingConstantSource.ladder": "rsa-timing-constant",
    "TTableSource.first_round": "aes-ttable",
    "BluetoothTxSource.send": "kernel-bluetooth",
    "BatteryPropertySource.read": "kernel-battery",
}


class BranchLoadSource:
    """Listing 1: one load instruction in each branch direction."""

    def run(self, secret_bit):
        vaddr = self.data.line_addr(0)
        self.machine.warm_tlb(self.ctx, vaddr)
        if secret_bit:
            self.machine.load(self.ctx, self.if_ip, vaddr)
        else:
            self.machine.load(self.ctx, self.else_ip, vaddr)


class ObliviousBranchSource:
    """Listing 1 rewritten: both loads always run, a mask selects."""

    def run(self, secret_bit):
        vaddr = self.data.line_addr(0)
        taken = self.machine.load(self.ctx, self.if_ip, vaddr)
        spurned = self.machine.load(self.ctx, self.else_ip, vaddr)
        keep = -secret_bit
        return (taken & keep) | (spurned & ~keep)


class SquareMultiplySource:
    """Square-and-multiply modexp: the multiply runs only for 1-bits."""

    def modexp(self, exponent):
        acc = 1
        for step in range(RSA_EXPONENT_BITS):
            position = RSA_EXPONENT_BITS - 1 - step
            bit = (exponent >> position) & 1
            acc = acc * acc % self.modulus
            if bit:
                vaddr = self.operands.line_addr(step)
                self.machine.warm_tlb(self.ctx, vaddr)
                self.machine.load(self.ctx, self.multiply_ip, vaddr)
                acc = acc * self.base % self.modulus
        return acc


class MontgomeryLadderSource:
    """Figure 3: both ladder directions multiply, behind distinct IPs."""

    def ladder(self, exponent):
        for step in range(RSA_EXPONENT_BITS):
            position = RSA_EXPONENT_BITS - 1 - step
            bit = (exponent >> position) & 1
            if bit:
                self._ladder_multiply(step, self.if_ip)
            else:
                self._ladder_multiply(step, self.else_ip)

    def _ladder_multiply(self, step, ip):
        vaddr = self.operands.line_addr(step)
        self.machine.warm_tlb(self.ctx, vaddr)
        self.machine.load(self.ctx, ip, vaddr)


class TimingConstantSource:
    """Figure 4: the ladder plus a per-bit sign fix-up load."""

    def ladder(self, exponent):
        for step in range(RSA_EXPONENT_BITS):
            position = RSA_EXPONENT_BITS - 1 - step
            bit = (exponent >> position) & 1
            if bit:
                self._tc_multiply(step, self.if_ip)
                self._tc_multiply(step, self.sign_if_ip)
            else:
                self._tc_multiply(step, self.else_ip)
                self._tc_multiply(step, self.sign_else_ip)

    def _tc_multiply(self, step, ip):
        vaddr = self.operands.line_addr(step)
        self.machine.warm_tlb(self.ctx, vaddr)
        self.machine.load(self.ctx, ip, vaddr)


class TTableSource:
    """Table AES first round: 16 lookups at ``(pt[i] ^ k) * 4``, one IP."""

    def first_round(self, key):
        for plain in AES_PLAINTEXT:
            index = (plain ^ key) & 0xFF
            vaddr = self.table.addr(index * TTABLE_ENTRY_BYTES)
            self.machine.warm_tlb(self.ctx, vaddr)
            self.machine.load(self.ctx, self.lookup_ip, vaddr)


class BluetoothTxSource:
    """Figure 1: hci_send_frame switch, one stat-counter load per type."""

    def send(self, secret):
        slot = secret % BLUETOOTH_PACKET_SLOTS
        vaddr = self.stats.line_addr(slot)
        self.machine.warm_tlb(self.kctx, vaddr)
        self.machine.load(self.kctx, self.case_ips[slot], vaddr)


class BatteryPropertySource:
    """Figure 2: power-supply property getter, one val-field load each."""

    def read(self, secret):
        slot = secret % BATTERY_PROPERTY_SLOTS
        vaddr = self.values.line_addr(slot)
        self.machine.warm_tlb(self.kctx, vaddr)
        self.machine.load(self.kctx, self.case_ips[slot], vaddr)
