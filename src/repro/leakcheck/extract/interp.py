"""Concolic abstract interpreter: one victim function → one load trace.

The interpreter executes a Python function for one *concrete* secret and
records every modeled memory access as a :class:`RecordedLoad`.  The
builder (:mod:`repro.leakcheck.extract.builder`) replays it for each
witness secret ``analyze()`` asks about, which is what makes a compiled
``trace_fn`` pure: all state lives inside one :meth:`Interpreter.run`.

What counts as a load (the site vocabulary):

* subscript/attribute *reads* on ``data``-opaque objects (non-secret,
  non-``self`` parameters) — tables, operand buffers, state structs;
* calls to the modeled machine: ``*.load(ctx, ip, vaddr)`` records a
  load whose site identity includes the *provenance* of the IP argument
  (``self.if_ip`` vs ``self.else_ip`` are different instructions even
  though they flow through one call expression);
* ``*.line_addr(k)`` / ``*.addr(off)`` produce :class:`~.domain.Addr`
  values; ``warm_tlb``/``advance``-style calls are modeled no-ops.

Two modes share the walker:

* ``"trace"`` — plain concrete execution: secret-conditioned branches
  take their concrete arm, so witness-pair differencing downstream sees
  the per-arm IP divergence (the paper's Listing-1 pattern);
* ``"oblivious"`` — synthesizes the §8.2 developer rewrite: tainted
  branches execute *every* arm (untaken arms run against a sandboxed
  copy of the environment, keeping their loads, discarding their
  writes), and tainted load addresses become full-region sweeps.
  Secret-dependent trip counts cannot be rewritten and raise.

Bounded loops are summarized by unrolling: the loop body re-executes per
concrete iteration, which for the canonical ``for i in range(n_bits)``
exponentiation loops *is* the per-bit-position unrolling — each
iteration's shadow narrows to ``BitExpr(position)`` via the shift/mask
rules in :mod:`repro.leakcheck.extract.domain`.
"""

from __future__ import annotations

import ast
import copy
from dataclasses import dataclass, field

from repro.leakcheck.extract.domain import (
    Addr,
    MixExpr,
    Opaque,
    SecretExpr,
    BitExpr,
    SymExpr,
    Value,
    affine,
    describe,
    mask,
    mix,
    shift_right,
)
from repro.params import CACHE_LINE_SIZE, PAGE_SIZE

#: Modeled machine calls that have no memory-trace effect.
NOOP_METHODS = frozenset(
    {"warm_tlb", "warm_buffer_tlb", "advance", "sched_yield", "flush", "clflush"}
)

#: Parameter names treated as the secret input of a candidate function.
#: A name matches when it equals a stem or extends it with ``_`` (so
#: ``secret``, ``secret_bit`` and ``key`` match; ``packet_type`` does not —
#: string-valued dispatch secrets are a documented blind spot).
SECRET_PARAM_STEMS = ("secret", "key", "exponent", "exp", "bit", "bits")

_MAX_CALL_DEPTH = 16
_MAX_LOOP_ITERATIONS = 65_536

#: Module-constant values that can be handed out by reference; anything
#: else (lists, dicts, tuples holding them, …) is deep-copied per run so
#: in-place stores never reach the shared :class:`ModuleInfo` object.
_IMMUTABLE_CONSTANTS = (int, float, complex, bool, str, bytes, type(None))


class ExtractError(Exception):
    """The function cannot be compiled into a load trace; str() says why."""


@dataclass(frozen=True, slots=True)
class SiteKey:
    """Stable identity of one load site: position plus IP provenance."""

    line: int
    col: int
    prov: str


@dataclass(frozen=True, slots=True)
class RecordedLoad:
    """One dynamic load: which site ran, touching which region byte."""

    site: SiteKey
    region: str
    offset: int
    sym: SymExpr | None


@dataclass
class RunResult:
    """Everything one concrete execution tells the builder."""

    loads: list[RecordedLoad]
    demands: set[int]
    tainted_loop: bool
    aborted: bool


class SlotTable:
    """Deterministic region-relative offsets for *named* accesses.

    Integer subscripts map straight to ``index * CACHE_LINE_SIZE``;
    attribute reads and string keys get one cache line each, assigned in
    first-probe order.  The builder freezes the table after probing, so
    replays inside ``analyze()`` can only ever look up existing slots —
    a missing slot at replay time would mean the replay escaped the
    probed witness closure, which is a bug, not an input condition.
    """

    def __init__(self) -> None:
        self._slots: dict[str, dict[tuple[str, object], int]] = {}
        self._frozen = False

    def freeze(self) -> None:
        self._frozen = True

    def offset(self, region: str, key: tuple[str, object]) -> int:
        slots = self._slots.setdefault(region, {})
        if key not in slots:
            if self._frozen:
                raise ExtractError(
                    f"replay reached unprobed slot {key!r} in region {region!r}"
                )
            slots[key] = len(slots) * CACHE_LINE_SIZE
        return slots[key]


def is_secret_param(name: str) -> bool:
    """Does this parameter name mark the function's secret input?"""
    for stem in SECRET_PARAM_STEMS:
        if name == stem or name.startswith(stem + "_"):
            return True
    return False


def region_name(path: str) -> str:
    """Region a data path maps to: last dotted component, underscores
    stripped for readability (``self._stats`` → ``stats``)."""
    base = path.split("(")[0].split("[")[0]
    leaf = base.split(".")[-1]
    return leaf.lstrip("_") or leaf


@dataclass(frozen=True, slots=True)
class ModuleInfo:
    """Pre-parsed module context shared by every compile in a file."""

    path: str
    tree: ast.Module
    constants: dict[str, object]
    defs: dict[str, list[ast.FunctionDef | ast.AsyncFunctionDef]]


class _Return(Exception):
    def __init__(self, value: object) -> None:
        self.value = value


class _Break(Exception):
    pass


class _Continue(Exception):
    pass


class _Abort(Exception):
    """The victim raised: the trace ends here (loads so far are kept)."""


@dataclass
class _State:
    """Mutable per-run state the sandboxed-arm machinery snapshots."""

    stores: dict[str, dict[tuple[str, object], object]] = field(default_factory=dict)


class Interpreter:
    """Walks one function definition for one concrete secret."""

    def __init__(
        self,
        module: ModuleInfo,
        func: ast.FunctionDef | ast.AsyncFunctionDef,
        *,
        secret_param: str,
        mode: str = "trace",
        slots: SlotTable | None = None,
        sweep_regions: dict[str, int] | None = None,
        op_budget: int = 200_000,
    ) -> None:
        if mode not in ("trace", "oblivious"):
            raise ValueError(f"unknown interpreter mode {mode!r}")
        self.module = module
        self.func = func
        self.secret_param = secret_param
        self.mode = mode
        self.slots = slots if slots is not None else SlotTable()
        #: region → sweep size in bytes, for oblivious address flattening.
        self.sweep_regions = sweep_regions or {}
        self.op_budget = op_budget
        # Per-run state, reset by run().
        self.loads: list[RecordedLoad] = []
        self.demands: set[int] = set()
        self.tainted_loop = False
        self._state = _State()
        self._const_copies: dict[str, object] = {}
        self._ops = 0
        self._depth = 0

    # ------------------------------------------------------------------ #
    # entry point                                                        #
    # ------------------------------------------------------------------ #

    def run(self, secret: int) -> RunResult:
        """Execute the target function for one concrete secret."""
        self.loads = []
        self.demands = set()
        self.tainted_loop = False
        self._state = _State()
        self._const_copies = {}
        self._ops = 0
        self._depth = 0
        env = self._bind_root(secret)
        aborted = False
        try:
            self._exec_block(self.func.body, env)
        except _Return:
            pass
        except _Abort:
            aborted = True
        except RecursionError as error:  # deep AST recursion, not a loop
            raise ExtractError("expression nesting too deep") from error
        return RunResult(
            loads=list(self.loads),
            demands=set(self.demands),
            tainted_loop=self.tainted_loop,
            aborted=aborted,
        )

    def _bind_root(self, secret: int) -> dict[str, object]:
        args = self.func.args
        if args.vararg or args.kwarg:
            raise ExtractError("*args/**kwargs parameters are not supported")
        env: dict[str, object] = {}
        for index, arg in enumerate(args.posonlyargs + args.args + args.kwonlyargs):
            name = arg.arg
            if name == self.secret_param:
                env[name] = Value(secret, SecretExpr(0))
            elif index == 0 and name in ("self", "cls"):
                env[name] = Opaque("self", "config")
            else:
                env[name] = Opaque(name, "data")
        return env

    def _module_constant(self, name: str) -> object:
        """The run-local view of one module-level constant.

        Mutable constants (``STATE = [0]`` counters and friends) are
        deep-copied once per :meth:`run` so subscript/attribute stores
        land in the copy: the shared :class:`ModuleInfo` value is never
        mutated, which is what keeps a compiled ``trace_fn`` pure across
        probe and replay runs.  Within one run every mention aliases the
        same copy, preserving ordinary read-after-write semantics.
        """
        raw = self.module.constants[name]
        if isinstance(raw, _IMMUTABLE_CONSTANTS):
            return raw
        if name not in self._const_copies:
            self._const_copies[name] = copy.deepcopy(raw)
        return self._const_copies[name]

    # ------------------------------------------------------------------ #
    # bookkeeping                                                        #
    # ------------------------------------------------------------------ #

    def _tick(self, node: ast.AST) -> None:
        self._ops += 1
        if self._ops > self.op_budget:
            raise ExtractError(
                f"operation budget exceeded at line {getattr(node, 'lineno', '?')} "
                "(possibly unbounded loop)"
            )

    def _demand(self, sym: SymExpr | None, width: int = 1) -> None:
        """Record that ``width`` secret bits above the shadow's shift are used."""
        if sym is None:
            return
        if isinstance(sym, SecretExpr):
            self.demands.add(sym.shift + width)
        elif isinstance(sym, BitExpr):
            self.demands.add(sym.index + 1)
        elif isinstance(sym, MixExpr) and sym.bits:
            self.demands.add(max(sym.bits) + 1)
        else:
            self.demands.add(width)

    def _record(
        self, node: ast.AST, prov: str, region: str, offset: int, sym: SymExpr | None
    ) -> None:
        if offset < 0:
            raise ExtractError(
                f"negative load offset {offset} at line {node.lineno} "
                f"(region {region!r})"
            )
        site = SiteKey(line=node.lineno, col=node.col_offset, prov=prov)
        if self.mode == "oblivious" and sym is not None:
            # §8.2 flattening: a secret-addressed load becomes a sweep of
            # the whole region, so the address no longer carries the bits.
            span = self.sweep_regions.get(region, PAGE_SIZE)
            for swept in range(0, span, CACHE_LINE_SIZE):
                self.loads.append(RecordedLoad(site, region, swept, None))
            return
        self.loads.append(RecordedLoad(site, region, offset, sym))

    # ------------------------------------------------------------------ #
    # statements                                                         #
    # ------------------------------------------------------------------ #

    def _exec_block(self, stmts: list[ast.stmt], env: dict[str, object]) -> None:
        for stmt in stmts:
            self._exec(stmt, env)

    def _exec(self, stmt: ast.stmt, env: dict[str, object]) -> None:
        self._tick(stmt)
        if isinstance(stmt, ast.Assign):
            value = self._eval(stmt.value, env)
            for target in stmt.targets:
                self._assign(target, value, env)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self._assign(stmt.target, self._eval(stmt.value, env), env)
        elif isinstance(stmt, ast.AugAssign):
            current = self._eval_load_target(stmt.target, env)
            combined = self._binop(stmt.op, current, self._eval(stmt.value, env), stmt)
            self._assign(stmt.target, combined, env)
        elif isinstance(stmt, ast.Expr):
            self._eval(stmt.value, env)
        elif isinstance(stmt, ast.If):
            self._exec_if(stmt, env)
        elif isinstance(stmt, ast.While):
            self._exec_while(stmt, env)
        elif isinstance(stmt, ast.For):
            self._exec_for(stmt, env)
        elif isinstance(stmt, ast.Return):
            raise _Return(
                self._eval(stmt.value, env) if stmt.value is not None else Value(None)
            )
        elif isinstance(stmt, ast.Raise):
            raise _Abort()
        elif isinstance(stmt, ast.Assert):
            if stmt.test is not None:
                self._eval(stmt.test, env)
        elif isinstance(stmt, (ast.Pass, ast.Global, ast.Nonlocal)):
            pass
        elif isinstance(stmt, ast.Break):
            raise _Break()
        elif isinstance(stmt, ast.Continue):
            raise _Continue()
        elif isinstance(stmt, ast.With):
            for item in stmt.items:
                managed = self._eval(item.context_expr, env)
                if item.optional_vars is not None:
                    self._assign(item.optional_vars, managed, env)
            self._exec_block(stmt.body, env)
        elif isinstance(stmt, ast.Try):
            raise ExtractError(
                f"try/except at line {stmt.lineno} is not modeled "
                "(exceptional control flow)"
            )
        else:
            raise ExtractError(
                f"unsupported statement {type(stmt).__name__} at line {stmt.lineno}"
            )

    def _exec_if(self, stmt: ast.If, env: dict[str, object]) -> None:
        cond = self._eval(stmt.test, env)
        sym = self._sym_of(cond)
        taken = stmt.body if self._truth(cond) else stmt.orelse
        if sym is None:
            self._exec_block(taken, env)
            return
        self._demand(sym)
        if self.mode != "oblivious":
            self._exec_block(taken, env)
            return
        untaken = stmt.orelse if taken is stmt.body else stmt.body
        # The untaken arm must record its loads even when the taken arm
        # returns/breaks early — the §8.2 rewrite executes both arms
        # unconditionally, so the control-flow signal is re-raised only
        # after the sandboxed arm has run.
        try:
            self._exec_block(taken, env)
        except (_Return, _Break, _Continue, _Abort):
            self._exec_sandboxed(untaken, env)
            raise
        self._exec_sandboxed(untaken, env)

    def _exec_sandboxed(self, stmts: list[ast.stmt], env: dict[str, object]) -> None:
        """Run an untaken arm for its loads; discard every other effect.

        The snapshot is deep (one shared memo, so aliasing between the
        environment, opaque stores and constant copies survives the
        restore): the arm may mutate concrete lists/dicts in place, and a
        shallow copy would let those writes leak past the restore.
        """
        memo: dict[int, object] = {}
        saved_env = _snapshot(env, memo)
        saved_stores = _snapshot(self._state.stores, memo)
        saved_consts = _snapshot(self._const_copies, memo)
        try:
            self._exec_block(stmts, env)
        except (_Return, _Break, _Continue, _Abort):
            pass
        finally:
            env.clear()
            env.update(saved_env)
            self._state.stores = saved_stores
            self._const_copies = saved_consts

    def _exec_while(self, stmt: ast.While, env: dict[str, object]) -> None:
        iterations = 0
        while True:
            cond = self._eval(stmt.test, env)
            if self._sym_of(cond) is not None:
                self._demand(self._sym_of(cond))
                self.tainted_loop = True
                if self.mode == "oblivious":
                    raise ExtractError(
                        f"secret-dependent while condition at line {stmt.lineno} "
                        "cannot be made oblivious (trip count carries the secret)"
                    )
            if not self._truth(cond):
                break
            iterations += 1
            if iterations > _MAX_LOOP_ITERATIONS:
                raise ExtractError(f"loop at line {stmt.lineno} exceeds iteration cap")
            try:
                self._exec_block(stmt.body, env)
            except _Break:
                return
            except _Continue:
                continue
        self._exec_block(stmt.orelse, env)

    def _exec_for(self, stmt: ast.For, env: dict[str, object]) -> None:
        iterable = self._eval(stmt.iter, env)
        if isinstance(iterable, Opaque):
            raise ExtractError(
                f"iteration over opaque object `{iterable.path}` at line {stmt.lineno}"
            )
        if not isinstance(iterable, Value):
            raise ExtractError(f"uniterable loop source at line {stmt.lineno}")
        iter_sym = iterable.sym
        if iter_sym is not None:
            self._demand(iter_sym)
            self.tainted_loop = True
            if self.mode == "oblivious":
                raise ExtractError(
                    f"secret-dependent trip count at line {stmt.lineno} "
                    "cannot be made oblivious"
                )
        try:
            items = list(iterable.concrete)  # type: ignore[arg-type]
        except TypeError as error:
            raise ExtractError(
                f"loop source at line {stmt.lineno} is not iterable: {error}"
            ) from error
        if len(items) > _MAX_LOOP_ITERATIONS:
            raise ExtractError(f"loop at line {stmt.lineno} exceeds iteration cap")
        for item in items:
            self._tick(stmt)
            self._assign(stmt.target, self._wrap(item, iter_sym), env)
            try:
                self._exec_block(stmt.body, env)
            except _Break:
                return
            except _Continue:
                continue
        self._exec_block(stmt.orelse, env)

    # ------------------------------------------------------------------ #
    # assignment targets                                                 #
    # ------------------------------------------------------------------ #

    def _assign(self, target: ast.expr, value: object, env: dict[str, object]) -> None:
        if isinstance(target, ast.Name):
            env[target.id] = value
        elif isinstance(target, (ast.Tuple, ast.List)):
            items = self._unpack(value, len(target.elts), target)
            for element, item in zip(target.elts, items):
                self._assign(element, item, env)
        elif isinstance(target, ast.Attribute):
            base = self._eval(target.value, env)
            if isinstance(base, Opaque):
                self._state.stores.setdefault(base.path, {})[
                    ("attr", target.attr)
                ] = value
            else:
                raise ExtractError(
                    f"attribute store on non-opaque value at line {target.lineno}"
                )
        elif isinstance(target, ast.Subscript):
            base = self._eval(target.value, env)
            key = self._eval(target.slice, env)
            if isinstance(base, Opaque):
                self._state.stores.setdefault(base.path, {})[
                    self._store_key(key, target)
                ] = value
            elif isinstance(base, Value) and isinstance(base.concrete, (list, dict)):
                base.concrete[self._concrete_key(key, target)] = value  # type: ignore[index]
            else:
                raise ExtractError(f"subscript store at line {target.lineno}")
        else:
            raise ExtractError(
                f"unsupported assignment target {type(target).__name__} "
                f"at line {target.lineno}"
            )

    def _unpack(self, value: object, count: int, node: ast.AST) -> list[object]:
        if isinstance(value, Value) and isinstance(value.concrete, (tuple, list)):
            items = [self._wrap(item, value.sym) for item in value.concrete]
            if len(items) == count:
                return items
        if isinstance(value, (tuple, list)) and len(value) == count:
            return list(value)
        raise ExtractError(f"cannot unpack value at line {getattr(node, 'lineno', '?')}")

    def _store_key(self, key: object, node: ast.AST) -> tuple[str, object]:
        concrete = self._concrete_key(key, node)
        if isinstance(concrete, int):
            return ("idx", concrete)
        return ("key", concrete)

    def _concrete_key(self, key: object, node: ast.AST) -> object:
        if isinstance(key, Value) and isinstance(key.concrete, (int, str, bool)):
            return key.concrete
        raise ExtractError(
            f"unsupported subscript key at line {getattr(node, 'lineno', '?')}"
        )

    # ------------------------------------------------------------------ #
    # expressions                                                        #
    # ------------------------------------------------------------------ #

    def _eval(self, node: ast.expr, env: dict[str, object]) -> object:
        self._tick(node)
        if isinstance(node, ast.Constant):
            return Value(node.value)
        if isinstance(node, ast.Name):
            if node.id in env:
                return env[node.id]
            if node.id in self.module.constants:
                return Value(self._module_constant(node.id))
            raise ExtractError(f"unknown name `{node.id}` at line {node.lineno}")
        if isinstance(node, (ast.Tuple, ast.List)):
            items = [self._eval(element, env) for element in node.elts]
            return Value(tuple(items) if isinstance(node, ast.Tuple) else list(items))
        if isinstance(node, ast.BinOp):
            return self._binop(
                node.op, self._eval(node.left, env), self._eval(node.right, env), node
            )
        if isinstance(node, ast.UnaryOp):
            return self._unaryop(node, env)
        if isinstance(node, ast.BoolOp):
            return self._boolop(node, env)
        if isinstance(node, ast.Compare):
            return self._compare(node, env)
        if isinstance(node, ast.IfExp):
            return self._ifexp(node, env)
        if isinstance(node, ast.Subscript):
            return self._subscript_load(node, env)
        if isinstance(node, ast.Attribute):
            return self._attribute_load(node, env)
        if isinstance(node, ast.Call):
            return self._call(node, env)
        raise ExtractError(
            f"unsupported expression {type(node).__name__} at line {node.lineno}"
        )

    def _eval_load_target(self, target: ast.expr, env: dict[str, object]) -> object:
        """Read the current value of an AugAssign target (records loads)."""
        if isinstance(target, ast.Name):
            if target.id not in env:
                raise ExtractError(f"unknown name `{target.id}` at line {target.lineno}")
            return env[target.id]
        if isinstance(target, (ast.Attribute, ast.Subscript)):
            return self._eval(target, env)
        raise ExtractError(f"unsupported augmented target at line {target.lineno}")

    def _wrap(self, raw: object, sym: SymExpr | None = None) -> object:
        if isinstance(raw, (Value, Opaque, Addr)):
            if sym is not None and isinstance(raw, Value):
                return Value(raw.concrete, mix(raw.sym, sym))
            return raw
        return Value(raw, sym)

    def _sym_of(self, value: object) -> SymExpr | None:
        if isinstance(value, Value):
            return value.sym
        if isinstance(value, Addr):
            return value.sym
        return None

    def _truth(self, value: object) -> bool:
        if isinstance(value, Value):
            return bool(value.concrete)
        return True  # opaque objects and addresses are truthy

    def _as_number(self, value: object, node: ast.AST) -> int | float:
        if isinstance(value, Value) and isinstance(value.concrete, (int, float)):
            return value.concrete
        if isinstance(value, Opaque):
            return 1  # neutral stand-in for unknowable numeric configuration
        raise ExtractError(
            f"non-numeric operand at line {getattr(node, 'lineno', '?')}"
        )

    # -- operators ------------------------------------------------------ #

    def _binop(self, op: ast.operator, left: object, right: object, node: ast.AST) -> object:
        if isinstance(left, Addr) or isinstance(right, Addr):
            return self._addr_arith(op, left, right, node)
        lsym, rsym = self._sym_of(left), self._sym_of(right)
        lval = self._as_operand(left, node)
        rval = self._as_operand(right, node)
        try:
            concrete = _APPLY[type(op)](lval, rval)
        except KeyError as error:
            raise ExtractError(
                f"unsupported operator {type(op).__name__} at line "
                f"{getattr(node, 'lineno', '?')}"
            ) from error
        except ZeroDivisionError:
            concrete = 0  # neutral stand-ins can hit x % 1 style edges
        except TypeError as error:
            raise ExtractError(
                f"untypeable operation at line {getattr(node, 'lineno', '?')}: {error}"
            ) from error
        if lsym is None and rsym is None:
            return Value(concrete)
        if lsym is not None and rsym is not None:
            return Value(concrete, mix(lsym, rsym))
        sym, const = (lsym, rval) if lsym is not None else (rsym, lval)
        return Value(concrete, self._shadow_with_const(op, sym, const, lsym is not None))

    def _shadow_with_const(
        self, op: ast.operator, sym: SymExpr, const: object, sym_on_left: bool
    ) -> SymExpr:
        """Shadow of (tainted op constant), recording bit demands."""
        if not isinstance(const, int) or isinstance(const, bool):
            self._demand(sym)
            return MixExpr(None)
        if isinstance(op, ast.RShift) and sym_on_left:
            self._demand(sym, const + 1 if not isinstance(sym, SecretExpr) else const + 1)
            return shift_right(sym, const)
        if isinstance(op, ast.BitAnd):
            self._demand(sym, max(1, const.bit_length()))
            return mask(sym, const)
        if isinstance(op, ast.Mod) and sym_on_left and const > 0:
            width = max(1, (const - 1).bit_length())
            self._demand(sym, width)
            return mask(sym, (1 << width) - 1)
        if isinstance(op, ast.Add):
            return affine(sym, 1, const)
        if isinstance(op, ast.Sub):
            return affine(sym, 1, -const) if sym_on_left else affine(sym, -1, const)
        if isinstance(op, ast.Mult):
            return affine(sym, const, 0)
        if isinstance(op, ast.LShift) and sym_on_left:
            return affine(sym, 1 << const, 0)
        if isinstance(op, ast.FloorDiv) and sym_on_left and const > 0:
            if const & (const - 1) == 0:  # power of two: exact shift
                return shift_right(sym, const.bit_length() - 1)
            return MixExpr(None)
        if isinstance(op, (ast.BitXor, ast.BitOr)):
            if isinstance(sym, BitExpr):
                return MixExpr(frozenset({sym.index}))
            return MixExpr(None)
        return MixExpr(None)

    def _as_operand(self, value: object, node: ast.AST) -> object:
        if isinstance(value, Opaque):
            return 1
        if isinstance(value, Value):
            return value.concrete
        raise ExtractError(
            f"unsupported operand at line {getattr(node, 'lineno', '?')}"
        )

    def _addr_arith(self, op: ast.operator, left: object, right: object, node: ast.AST) -> Addr:
        if isinstance(left, Addr) and not isinstance(right, Addr):
            delta = self._as_number(right, node)
            sign = 1 if isinstance(op, ast.Add) else -1 if isinstance(op, ast.Sub) else None
        elif isinstance(right, Addr) and not isinstance(left, Addr):
            left, right = right, left
            delta = self._as_number(right, node)
            sign = 1 if isinstance(op, ast.Add) else None
        else:
            sign = None
            delta = 0
        if sign is None:
            raise ExtractError(
                f"unsupported address arithmetic at line {getattr(node, 'lineno', '?')}"
            )
        addr = left
        return Addr(addr.region, addr.offset + sign * int(delta), mix(addr.sym, self._sym_of(right)))  # type: ignore[union-attr]

    def _unaryop(self, node: ast.UnaryOp, env: dict[str, object]) -> object:
        operand = self._eval(node.operand, env)
        sym = self._sym_of(operand)
        if isinstance(node.op, ast.Not):
            if sym is not None:
                self._demand(sym)
            return Value(not self._truth(operand), MixExpr(None) if sym else None)
        number = self._as_number(operand, node)
        if isinstance(node.op, ast.USub):
            return Value(-number, affine(sym, -1, 0) if sym is not None else None)
        if isinstance(node.op, ast.UAdd):
            return Value(number, sym)
        if isinstance(node.op, ast.Invert):
            return Value(~int(number), MixExpr(None) if sym is not None else None)
        raise ExtractError(f"unsupported unary operator at line {node.lineno}")

    def _boolop(self, node: ast.BoolOp, env: dict[str, object]) -> object:
        result: object = Value(True)
        syms: list[SymExpr | None] = []
        for value_node in node.values:
            result = self._eval(value_node, env)
            syms.append(self._sym_of(result))
            truth = self._truth(result)
            if isinstance(node.op, ast.And) and not truth:
                break
            if isinstance(node.op, ast.Or) and truth:
                break
        joined = mix(*syms)
        if joined is not None:
            self._demand(joined)
        if isinstance(result, Value):
            return Value(result.concrete, mix(result.sym, joined) if joined else result.sym)
        return result

    def _compare(self, node: ast.Compare, env: dict[str, object]) -> Value:
        left = self._eval(node.left, env)
        result = True
        syms: list[SymExpr | None] = [self._sym_of(left)]
        for op, comparator_node in zip(node.ops, node.comparators):
            right = self._eval(comparator_node, env)
            syms.append(self._sym_of(right))
            self._compare_demand(left, right)
            result = result and self._compare_pair(op, left, right, node)
            left = right
        joined = mix(*syms)
        return Value(result, MixExpr(None) if joined is not None else None)

    def _compare_demand(self, left: object, right: object) -> None:
        """Tainted-vs-constant comparisons reveal the constant's width."""
        for tainted, other in ((left, right), (right, left)):
            sym = self._sym_of(tainted)
            if sym is None or self._sym_of(other) is not None:
                continue
            if isinstance(other, Value) and isinstance(other.concrete, int):
                self._demand(sym, max(1, int(other.concrete).bit_length()))
            elif isinstance(other, Value) and isinstance(other.concrete, (tuple, list)):
                widths = [
                    int(item).bit_length()
                    for item in other.concrete
                    if isinstance(item, int)
                ]
                self._demand(sym, max(1, max(widths, default=1)))
            else:
                self._demand(sym)

    def _compare_pair(self, op: ast.cmpop, left: object, right: object, node: ast.AST) -> bool:
        lval = self._plain(left)
        rval = self._plain(right)
        try:
            return _COMPARE[type(op)](lval, rval)
        except KeyError as error:
            raise ExtractError(
                f"unsupported comparison {type(op).__name__} at line {node.lineno}"
            ) from error
        except TypeError as error:
            raise ExtractError(
                f"untypeable comparison at line {node.lineno}: {error}"
            ) from error

    def _plain(self, value: object) -> object:
        if isinstance(value, Value):
            if isinstance(value.concrete, (tuple, list)):
                return type(value.concrete)(self._plain(v) for v in value.concrete)
            return value.concrete
        if isinstance(value, Opaque):
            return 1
        return value

    def _ifexp(self, node: ast.IfExp, env: dict[str, object]) -> object:
        cond = self._eval(node.test, env)
        sym = self._sym_of(cond)
        if sym is not None:
            self._demand(sym)
        if self.mode == "oblivious" and sym is not None:
            chosen_node = node.body if self._truth(cond) else node.orelse
            other_node = node.orelse if self._truth(cond) else node.body
            chosen = self._eval(chosen_node, env)
            self._eval(other_node, env)  # both branches run for their loads
        else:
            chosen = self._eval(node.body if self._truth(cond) else node.orelse, env)
        if sym is not None and isinstance(chosen, Value):
            return Value(chosen.concrete, mix(chosen.sym, MixExpr(None)))
        return chosen

    # -- memory accesses ------------------------------------------------ #

    def _subscript_load(self, node: ast.Subscript, env: dict[str, object]) -> object:
        base = self._eval(node.value, env)
        key = self._eval(node.slice, env)
        if isinstance(base, Opaque):
            if base.kind == "data":
                return self._data_subscript(node, base, key)
            key_sym = self._sym_of(key)
            if self.mode == "oblivious" and key_sym is not None:
                # Site-selection analogue of the §8.2 address sweep: a
                # secret-chosen config entry (e.g. the per-case IP of a
                # kernel switch) collapses to one canonical placeholder,
                # modeling a rewrite whose instruction choice no longer
                # depends on the secret.
                self._demand(key_sym)
                return Opaque(f"{base.path}[<swept>]", "config")
            concrete = self._concrete_key(key, node)
            store = self._state.stores.get(base.path, {})
            stored = store.get(self._store_key(key, node))
            if stored is not None:
                return stored
            return Opaque(f"{base.path}[{concrete!r}]", "config")
        if isinstance(base, Value) and isinstance(
            base.concrete, (list, tuple, str, bytes, dict, range)
        ):
            key_sym = self._sym_of(key)
            concrete_key = self._concrete_key(key, node)
            if key_sym is not None and not isinstance(base.concrete, dict):
                try:
                    length = len(base.concrete)  # type: ignore[arg-type]
                except TypeError:
                    length = 0
                if length:
                    self._demand(key_sym, max(1, (length - 1).bit_length()))
            try:
                element = base.concrete[concrete_key]  # type: ignore[index]
            except (KeyError, IndexError, TypeError) as error:
                raise ExtractError(
                    f"subscript failed at line {node.lineno}: {error}"
                ) from error
            joined = mix(base.sym, MixExpr(None) if key_sym is not None else None)
            return self._wrap(element, joined)
        raise ExtractError(f"unsupported subscript base at line {node.lineno}")

    def _data_subscript(self, node: ast.Subscript, base: Opaque, key: object) -> object:
        region = region_name(base.path)
        concrete = self._concrete_key(key, node)
        key_sym = self._sym_of(key)
        if isinstance(concrete, bool):
            concrete = int(concrete)
        if isinstance(concrete, int):
            offset = concrete * CACHE_LINE_SIZE
        else:
            offset = self.slots.offset(region, ("key", concrete))
        prov = f"{base.path}[]"
        self._record(node, prov, region, offset, key_sym)
        stored = self._state.stores.get(base.path, {}).get(self._store_key(key, node))
        return stored if stored is not None else Value(1)

    def _attribute_load(self, node: ast.Attribute, env: dict[str, object]) -> object:
        base = self._eval(node.value, env)
        if isinstance(base, Opaque):
            path = f"{base.path}.{node.attr}"
            stored = self._state.stores.get(base.path, {}).get(("attr", node.attr))
            if base.kind == "config":
                return stored if stored is not None else Opaque(path, "config")
            region = region_name(base.path)
            offset = self.slots.offset(region, ("attr", node.attr))
            self._record(node, path, region, offset, None)
            return stored if stored is not None else Value(1)
        if isinstance(base, Value):
            return _BoundMethod(base, node.attr)
        raise ExtractError(
            f"unsupported attribute access `{node.attr}` at line {node.lineno}"
        )

    # -- calls ----------------------------------------------------------- #

    def _call(self, node: ast.Call, env: dict[str, object]) -> object:
        args = [self._eval(arg, env) for arg in node.args]
        kwargs = {
            keyword.arg: self._eval(keyword.value, env)
            for keyword in node.keywords
            if keyword.arg is not None
        }
        if any(keyword.arg is None for keyword in node.keywords):
            raise ExtractError(f"**kwargs call at line {node.lineno}")
        if isinstance(node.func, ast.Name):
            return self._call_name(node, node.func.id, args, kwargs)
        if isinstance(node.func, ast.Attribute):
            base = self._eval(node.func.value, env)
            return self._call_attr(node, base, node.func.attr, args, kwargs)
        raise ExtractError(f"unsupported call target at line {node.lineno}")

    def _call_name(
        self,
        node: ast.Call,
        name: str,
        args: list[object],
        kwargs: dict[str, object],
    ) -> object:
        if name == "super":
            raise ExtractError(
                f"super() at line {node.lineno}: dynamic dispatch cannot be "
                "resolved statically"
            )
        builtin = _BUILTINS.get(name)
        if builtin is not None:
            return builtin(self, node, args)
        candidates = self.module.defs.get(name, [])
        if len(candidates) == 1:
            return self._inline(node, candidates[0], args, kwargs)
        if len(candidates) > 1:
            raise ExtractError(
                f"call to `{name}` at line {node.lineno} is dynamic dispatch "
                f"({len(candidates)} definitions share the name)"
            )
        raise ExtractError(f"call to unknown function `{name}` at line {node.lineno}")

    def _call_attr(
        self,
        node: ast.Call,
        base: object,
        name: str,
        args: list[object],
        kwargs: dict[str, object],
    ) -> object:
        if isinstance(base, Opaque):
            candidates = self.module.defs.get(name, [])
            if len(candidates) == 1:
                return self._inline(node, candidates[0], [base, *args], kwargs)
            if len(candidates) > 1:
                raise ExtractError(
                    f"method call `.{name}` at line {node.lineno} is dynamic "
                    f"dispatch ({len(candidates)} definitions share the name)"
                )
            if name == "load":
                return self._machine_load(node, args)
            if name == "line_addr":
                k = self._as_number(args[0], node) if args else 0
                return Addr(
                    region_name(base.path),
                    int(k) * CACHE_LINE_SIZE,
                    self._sym_of(args[0]) if args else None,
                )
            if name == "addr":
                off = self._as_number(args[0], node) if args else 0
                return Addr(
                    region_name(base.path),
                    int(off),
                    self._sym_of(args[0]) if args else None,
                )
            if name in NOOP_METHODS:
                return Value(None)
            # Permissive fallback: unknown plumbing returns fresh opacity.
            # Loads hidden behind unmodeled methods are a documented blind
            # spot (docs/LEAKCHECK.md, "static extraction").
            return Opaque(f"{base.path}.{name}()", base.kind)
        if isinstance(base, _BoundMethod):
            raise ExtractError(f"chained method call at line {node.lineno}")
        if isinstance(base, Value):
            return self._concrete_method(node, base, name, args)
        raise ExtractError(f"unsupported method call at line {node.lineno}")

    def _machine_load(self, node: ast.Call, args: list[object]) -> Value:
        vaddr = args[-1] if args else None
        ip = args[-2] if len(args) >= 2 else None
        prov = f"load({describe(ip)})"
        if isinstance(vaddr, Addr):
            self._record(node, prov, vaddr.region, vaddr.offset, vaddr.sym)
        elif isinstance(vaddr, Opaque):
            self._record(node, prov, region_name(vaddr.path), 0, None)
        elif isinstance(vaddr, Value) and isinstance(vaddr.concrete, int):
            self._record(node, prov, "mem", vaddr.concrete % PAGE_SIZE, vaddr.sym)
        else:
            raise ExtractError(f"unintelligible load address at line {node.lineno}")
        return Value(1)

    def _concrete_method(
        self, node: ast.Call, base: Value, name: str, args: list[object]
    ) -> Value:
        if name == "bit_length" and isinstance(base.concrete, int):
            return Value(
                base.concrete.bit_length(),
                MixExpr(None) if base.sym is not None else None,
            )
        if name == "index" and isinstance(base.concrete, (tuple, list)):
            target = self._plain(args[0]) if args else None
            plain = self._plain(base)
            try:
                found = plain.index(target)  # type: ignore[union-attr]
            except ValueError as error:
                raise ExtractError(
                    f".index() missed at line {node.lineno}: {error}"
                ) from error
            arg_sym = self._sym_of(args[0]) if args else None
            if arg_sym is not None:
                self._demand(arg_sym, max(1, (len(plain) - 1).bit_length()))  # type: ignore[arg-type]
            return Value(found, MixExpr(None) if arg_sym is not None else None)
        raise ExtractError(
            f"unsupported method `.{name}` on concrete value at line {node.lineno}"
        )

    def _inline(
        self,
        node: ast.Call,
        func: ast.FunctionDef | ast.AsyncFunctionDef,
        args: list[object],
        kwargs: dict[str, object],
    ) -> object:
        if self._depth >= _MAX_CALL_DEPTH:
            raise ExtractError(
                f"call depth exceeds {_MAX_CALL_DEPTH} at line {node.lineno} "
                "(recursive victim?)"
            )
        spec = func.args
        if spec.vararg or spec.kwarg:
            raise ExtractError(
                f"callee `{func.name}` uses *args/**kwargs (line {node.lineno})"
            )
        params = [arg.arg for arg in spec.posonlyargs + spec.args]
        env: dict[str, object] = {}
        defaults = spec.defaults
        for name, default in zip(params[len(params) - len(defaults):], defaults):
            try:
                env[name] = Value(ast.literal_eval(default))
            except ValueError:
                env[name] = Value(None)
        for name, value in zip(params, args):
            env[name] = value
        if len(args) > len(params):
            raise ExtractError(
                f"too many arguments for `{func.name}` at line {node.lineno}"
            )
        for name, value in kwargs.items():
            if name not in params and name not in {a.arg for a in spec.kwonlyargs}:
                raise ExtractError(
                    f"unknown keyword `{name}` for `{func.name}` at line {node.lineno}"
                )
            env[name] = value
        missing = [name for name in params if name not in env]
        if missing:
            raise ExtractError(
                f"missing argument(s) {missing} for `{func.name}` at line {node.lineno}"
            )
        self._depth += 1
        try:
            self._exec_block(func.body, env)
        except _Return as signal:
            return signal.value
        finally:
            self._depth -= 1
        return Value(None)


@dataclass(frozen=True, slots=True)
class _BoundMethod:
    """Transient ``value.method`` reference, consumed only by _call_attr."""

    base: Value
    name: str


def _snapshot(obj: object, memo: dict[int, object]) -> object:
    """Deep-copy the mutable parts of an interpreter value graph.

    Hand-rolled instead of :func:`copy.deepcopy` because the frozen
    slotted dataclasses (:class:`~.domain.Value` etc.) don't deep-copy on
    Python 3.10; the wrappers are rebuilt around snapshotted payloads.
    The shared ``memo`` keeps aliases aliased across the whole snapshot.
    """
    key = id(obj)
    if key in memo:
        return memo[key]
    if isinstance(obj, Value):
        copied = Value(_snapshot(obj.concrete, memo), obj.sym)
        memo[key] = copied
        return copied
    if isinstance(obj, _BoundMethod):
        copied = _BoundMethod(_snapshot(obj.base, memo), obj.name)  # type: ignore[arg-type]
        memo[key] = copied
        return copied
    if isinstance(obj, list):
        out_list: list[object] = []
        memo[key] = out_list
        out_list.extend(_snapshot(item, memo) for item in obj)
        return out_list
    if isinstance(obj, dict):
        out_dict: dict[object, object] = {}
        memo[key] = out_dict
        for k, v in obj.items():
            out_dict[k] = _snapshot(v, memo)
        return out_dict
    if isinstance(obj, tuple):
        copied = tuple(_snapshot(item, memo) for item in obj)
        memo[key] = copied
        return copied
    if isinstance(obj, set):
        copied = {_snapshot(item, memo) for item in obj}
        memo[key] = copied
        return copied
    # Opaque/Addr/SymExpr are immutable all the way down; scalars, ranges
    # and AST nodes are never mutated by the interpreter.
    return obj


# -- builtin table ------------------------------------------------------- #


def _builtin_range(interp: Interpreter, node: ast.Call, args: list[object]) -> Value:
    numbers = [int(interp._as_number(arg, node)) for arg in args]
    sym = mix(*(interp._sym_of(arg) for arg in args))
    if sym is not None:
        interp._demand(sym)
    try:
        return Value(range(*numbers), sym)
    except (TypeError, ValueError) as error:
        raise ExtractError(f"range() failed at line {node.lineno}: {error}") from error


def _builtin_len(interp: Interpreter, node: ast.Call, args: list[object]) -> Value:
    if not args:
        raise ExtractError(f"len() without argument at line {node.lineno}")
    target = args[0]
    if isinstance(target, Value):
        try:
            return Value(len(target.concrete), target.sym)  # type: ignore[arg-type]
        except TypeError as error:
            raise ExtractError(
                f"len() of a secret-derived scalar at line {node.lineno} "
                f"(bytes/str secrets are not modeled): {error}"
            ) from error
    raise ExtractError(f"len() of opaque object at line {node.lineno}")


def _builtin_numeric(fn):
    def call(interp: Interpreter, node: ast.Call, args: list[object]) -> Value:
        plain = [interp._plain(arg) for arg in args]
        sym = mix(*(interp._sym_of(arg) for arg in args))
        try:
            return Value(fn(*plain), MixExpr(None) if sym is not None else None)
        except (TypeError, ValueError) as error:
            raise ExtractError(
                f"builtin failed at line {node.lineno}: {error}"
            ) from error

    return call


def _builtin_enumerate(interp: Interpreter, node: ast.Call, args: list[object]) -> Value:
    if not args or not isinstance(args[0], Value):
        raise ExtractError(f"enumerate() of opaque object at line {node.lineno}")
    source = args[0]
    start = int(interp._as_number(args[1], node)) if len(args) > 1 else 0
    try:
        pairs = [
            (Value(i), interp._wrap(item, source.sym))
            for i, item in enumerate(source.concrete, start)  # type: ignore[arg-type]
        ]
    except TypeError as error:
        raise ExtractError(
            f"enumerate() of uniterable at line {node.lineno}: {error}"
        ) from error
    return Value(pairs, source.sym)


def _builtin_zip(interp: Interpreter, node: ast.Call, args: list[object]) -> Value:
    columns = []
    syms = []
    for arg in args:
        if not isinstance(arg, Value):
            raise ExtractError(f"zip() of opaque object at line {node.lineno}")
        syms.append(arg.sym)
        try:
            columns.append([interp._wrap(item, arg.sym) for item in arg.concrete])  # type: ignore[arg-type]
        except TypeError as error:
            raise ExtractError(
                f"zip() of uniterable at line {node.lineno}: {error}"
            ) from error
    return Value(list(zip(*columns)), mix(*syms))


_BUILTINS = {
    "range": _builtin_range,
    "len": _builtin_len,
    "enumerate": _builtin_enumerate,
    "zip": _builtin_zip,
    "min": _builtin_numeric(min),
    "max": _builtin_numeric(max),
    "abs": _builtin_numeric(abs),
    "sum": _builtin_numeric(sum),
    "int": _builtin_numeric(int),
    "bool": _builtin_numeric(bool),
}

_APPLY = {
    ast.Add: lambda a, b: a + b,
    ast.Sub: lambda a, b: a - b,
    ast.Mult: lambda a, b: a * b,
    ast.FloorDiv: lambda a, b: a // b,
    ast.Mod: lambda a, b: a % b,
    ast.Pow: lambda a, b: a**b,
    ast.LShift: lambda a, b: a << b,
    ast.RShift: lambda a, b: a >> b,
    ast.BitAnd: lambda a, b: a & b,
    ast.BitOr: lambda a, b: a | b,
    ast.BitXor: lambda a, b: a ^ b,
    ast.Div: lambda a, b: a / b,
}

_COMPARE = {
    ast.Eq: lambda a, b: a == b,
    ast.NotEq: lambda a, b: a != b,
    ast.Lt: lambda a, b: a < b,
    ast.LtE: lambda a, b: a <= b,
    ast.Gt: lambda a, b: a > b,
    ast.GtE: lambda a, b: a >= b,
    ast.In: lambda a, b: a in b,
    ast.NotIn: lambda a, b: a not in b,
    ast.Is: lambda a, b: a is b,
    ast.IsNot: lambda a, b: a is not b,
}
