"""``python -m repro.leakcheck`` entry point."""

import sys

from repro.leakcheck.cli import main

sys.exit(main())
