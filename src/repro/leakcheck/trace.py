"""Victim descriptions for the static analyzer.

A victim is a set of *labeled load instructions* (label → IP, exactly the
:class:`~repro.cpu.code.CodeRegion` vocabulary the simulator uses) plus a
pure function from the secret to the sequence of loads the victim executes:
each :class:`TraceLoad` names which instruction ran and which byte of which
data region it touched.  That is all the IP-stride prefetcher can see of a
program — IPs and address deltas — so it is all the analyzer needs.

Data regions are named, page-counted blobs; the analyzer assigns each one a
page-aligned abstract base address.  Keeping every region within the pages
it declares is what makes the identity virtual→physical translation of the
abstract domain sound (docs/LEAKCHECK.md, "soundness caveats").
"""

from __future__ import annotations

from collections.abc import Callable, Mapping, Sequence
from dataclasses import dataclass

from repro.params import PAGE_SIZE
from repro.utils.bits import low_bits


@dataclass(frozen=True, slots=True)
class TraceLoad:
    """One retired, TLB-resident load: instruction ``label`` touched
    ``region[offset]``.

    ``taint`` names which secret bits (by convention ``"bit3"``-style
    strings, but any labels work) influenced *this load's existence or
    address*; it defaults to the instruction label and is what the report
    attributes leaky entries to.
    """

    label: str
    region: str
    offset: int
    taint: frozenset[str] = frozenset()


@dataclass(frozen=True)
class VictimSpec:
    """A victim program, described to the analyzer.

    ``trace_fn`` must be a *pure* function of the secret (an integer of
    ``secret_bits`` bits): the analyzer replays it for several witness
    secrets and diffs the outcomes, so any hidden state would corrupt the
    comparison.

    ``oblivious_fn``, when given, returns the secret-independent rewrite of
    the victim (paper §8.2's developer-side defense) so ``--defense
    oblivious`` can be applied statically.
    """

    name: str
    description: str
    secret_bits: int
    labels: Mapping[str, int]
    region_pages: Mapping[str, int]
    trace_fn: Callable[[int], Sequence[TraceLoad]]
    oblivious_fn: Callable[[], "VictimSpec"] | None = None
    witness_bases: tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if self.secret_bits <= 0:
            raise ValueError(f"secret_bits must be positive, got {self.secret_bits}")
        if not self.labels:
            raise ValueError(f"victim {self.name!r} declares no load instructions")
        for region, pages in self.region_pages.items():
            if pages <= 0:
                raise ValueError(f"region {region!r} must span at least one page")
        if not self.witness_bases:
            # Default witness bases: all-zeros and all-ones, so each bit is
            # flipped against both backgrounds.
            object.__setattr__(
                self, "witness_bases", (0, (1 << self.secret_bits) - 1)
            )

    def trace(self, secret: int) -> list[TraceLoad]:
        """The validated load trace for one concrete secret."""
        if not 0 <= secret < (1 << self.secret_bits):
            raise ValueError(
                f"secret {secret:#x} out of range for {self.secret_bits} bits"
            )
        loads = []
        for load in self.trace_fn(secret):
            if load.label not in self.labels:
                raise ValueError(
                    f"victim {self.name!r} trace uses unknown label {load.label!r}"
                )
            if load.region not in self.region_pages:
                raise ValueError(
                    f"victim {self.name!r} trace uses unknown region {load.region!r}"
                )
            limit = self.region_pages[load.region] * PAGE_SIZE
            if not 0 <= load.offset < limit:
                raise ValueError(
                    f"offset {load.offset:#x} outside region {load.region!r} "
                    f"({limit:#x} bytes)"
                )
            if not load.taint:
                load = TraceLoad(
                    label=load.label,
                    region=load.region,
                    offset=load.offset,
                    taint=frozenset({load.label}),
                )
            loads.append(load)
        return loads

    def oblivious(self) -> "VictimSpec | None":
        """The secret-independent rewrite, when the victim defines one."""
        return self.oblivious_fn() if self.oblivious_fn is not None else None

    def indexes(self, index_bits: int = 8) -> dict[int, list[str]]:
        """Prefetcher index → labels that map there (the aliasing targets)."""
        by_index: dict[int, list[str]] = {}
        for label in sorted(self.labels):
            by_index.setdefault(low_bits(self.labels[label], index_bits), []).append(label)
        return by_index
