"""The abstract IP-stride history table: Algorithm 1 with taint tracking.

This is a deliberate re-transcription of
:class:`repro.prefetch.ip_stride.IPStridePrefetcher` over a simpler event
alphabet — ``(ip, paddr, taint)`` instead of full :class:`LoadEvent`\\ s —
with two additions the dynamic model has no use for:

* every entry carries a **taint set**, the union of the taints of all loads
  that have touched it since allocation (surviving stride rewrites and
  confidence resets, because the *fact* that a tainted load disturbed the
  entry is itself secret-dependent information);
* every issued prefetch is **logged** with the entry state that produced
  it, so two runs can be diffed on their prefetch footprints as well as
  their final table states.

The concrete rules — low-``index_bits`` untagged indexing, the
threshold-2 unconditional trigger *before* the stride comparison (the
paper's "key component"), stride rewrite + confidence := 1 on mismatch,
the ``sign_extend(Δ, 13)`` distance register, the 2 KiB issue cap, the
physical-frame boundary check, and Bit-PLRU with confidence-0 victim
preference — are kept line-for-line in sync with ``ip_stride.py``;
``tests/test_leakcheck.py`` checks the two against each other on random
load streams.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.memsys.replacement import make_policy
from repro.params import PAGE_SIZE, IPStrideParams
from repro.utils.bits import low_bits, sign_extend


@dataclass(frozen=True, slots=True)
class AbstractEntry:
    """One abstract history-table entry (immutable; updates replace it)."""

    index: int
    last_paddr: int
    stride: int = 0
    confidence: int = 0
    taint: frozenset[str] = frozenset()


@dataclass(frozen=True, slots=True)
class AbstractPrefetch:
    """One issued prefetch, with the taint of the entry that fired it."""

    index: int
    target: int
    taint: frozenset[str]


class AbstractTable:
    """Taint-tracking abstract interpreter state for the history table."""

    def __init__(self, params: IPStrideParams) -> None:
        self.params = params
        self._slots: list[AbstractEntry | None] = [None] * params.n_entries
        self._index_to_slot: dict[int, int] = {}
        self._policy = make_policy(params.replacement, params.n_entries)
        self.prefetches: list[AbstractPrefetch] = []

    # ------------------------------------------------------------------ #
    # Algorithm 1                                                         #
    # ------------------------------------------------------------------ #

    def observe(self, ip: int, paddr: int, taint: frozenset[str] = frozenset()) -> None:
        """Digest one TLB-resident load (virtual = physical in this domain)."""
        index = low_bits(ip, self.params.index_bits)
        slot = self._index_to_slot.get(index)
        if slot is None:
            self._allocate(index, paddr, taint)
            return

        entry = self._slots[slot]
        if entry is None:
            raise RuntimeError(f"slot map points at empty slot {slot}")
        self._policy.touch(slot)

        taint = entry.taint | taint
        distance = sign_extend(paddr - entry.last_paddr, self.params.stride_bits)
        stride, confidence = entry.stride, entry.confidence
        if confidence >= self.params.prefetch_threshold:
            # The "key component": trigger unconditionally before updating.
            self._issue(index, paddr, stride, taint)
            if distance != stride:
                stride, confidence = distance, 1
            elif confidence != self.params.confidence_max:
                confidence += 1
        else:
            if distance != stride:
                stride, confidence = distance, 1
            else:
                confidence += 1
                if confidence == self.params.prefetch_threshold:
                    self._issue(index, paddr, stride, taint)
        self._slots[slot] = replace(
            entry, last_paddr=paddr, stride=stride, confidence=confidence, taint=taint
        )

    def pretrain(self, ip: int, paddr: int, stride: int) -> None:
        """Install an attacker-trained entry: saturated confidence, known
        stride, untainted.

        This models the PSC preparation phase (paper §6.1): the attacker's
        own strided loads are secret-independent, so the canary entry starts
        with an empty taint set, and anything that later disturbs it shows
        up both in its state and in its taint.
        """
        if stride == 0:
            raise ValueError("a pretrained entry needs a non-zero stride")
        index = low_bits(ip, self.params.index_bits)
        slot = self._index_to_slot.get(index)
        if slot is None:
            self._allocate(index, paddr, frozenset())
            slot = self._index_to_slot[index]
        entry = self._slots[slot]
        if entry is None:
            raise RuntimeError(f"slot map points at empty slot {slot}")
        self._slots[slot] = replace(
            entry,
            last_paddr=paddr,
            stride=stride,
            confidence=self.params.confidence_max,
            taint=frozenset(),
        )
        self._policy.touch(slot)

    def _issue(self, index: int, paddr: int, stride: int, taint: frozenset[str]) -> None:
        """Log ``paddr + stride`` unless zero, capped, or frame-crossing."""
        if stride == 0:
            return
        if abs(stride) > self.params.max_stride_bytes:
            return
        target = paddr + stride
        if target // PAGE_SIZE != paddr // PAGE_SIZE:
            return
        self.prefetches.append(AbstractPrefetch(index=index, target=target, taint=taint))

    def _allocate(self, index: int, paddr: int, taint: frozenset[str]) -> None:
        """Create_New_Entry with the free → confidence-0 → Bit-PLRU victim
        preference of the concrete model."""
        try:
            slot = self._slots.index(None)
        except ValueError:
            slot = self._victim_slot()
            victim = self._slots[slot]
            if victim is None:
                raise RuntimeError(f"victim policy chose empty slot {slot}") from None
            del self._index_to_slot[victim.index]
        self._slots[slot] = AbstractEntry(index=index, last_paddr=paddr, taint=taint)
        self._index_to_slot[index] = slot
        self._policy.fill(slot)

    def _victim_slot(self) -> int:
        for slot, entry in enumerate(self._slots):
            if entry is not None and entry.confidence == 0:
                return slot
        return self._policy.victim()

    # ------------------------------------------------------------------ #
    # Introspection                                                       #
    # ------------------------------------------------------------------ #

    def entry(self, index: int) -> AbstractEntry | None:
        slot = self._index_to_slot.get(index)
        return None if slot is None else self._slots[slot]

    def entries(self) -> dict[int, AbstractEntry]:
        """Live entries, keyed by table index."""
        return {
            entry.index: entry for entry in self._slots if entry is not None
        }

    def prefetch_targets(self, index: int) -> frozenset[int]:
        """All prefetch targets the entry at ``index`` has issued."""
        return frozenset(p.target for p in self.prefetches if p.index == index)
