"""Runtime µarch sanitizer: invariant auditing for the simulated machine.

Companion to the :mod:`repro.lint` static pass — the linter catches
convention violations at rest, this package catches state corruption in
motion.  See ``docs/LINT.md`` for the invariant catalogue.

Usage::

    machine = Machine(params, seed=7, sanitize=True)   # per machine
    REPRO_SANITIZE=1 python -m pytest ...              # globally

Violations raise :class:`InvariantViolation` with the component, the
broken invariant's name, the simulated cycle, and a state snapshot.
"""

from repro.sanitize.checkers import HierarchyChecker, PrefetcherChecker, TLBChecker
from repro.sanitize.sanitizer import ENV_VAR, Sanitizer, sanitize_enabled
from repro.sanitize.violations import InvariantViolation

__all__ = [
    "ENV_VAR",
    "HierarchyChecker",
    "InvariantViolation",
    "PrefetcherChecker",
    "Sanitizer",
    "TLBChecker",
    "sanitize_enabled",
]
