"""Structured invariant-violation errors raised by the sanitizer."""

from __future__ import annotations

from typing import Any


class InvariantViolation(AssertionError):
    """A µarch model invariant was broken.

    Carries enough structure for a test (or a user staring at a traceback)
    to see *which* component broke *which* documented invariant, at what
    simulated cycle, with a snapshot of the offending state — instead of a
    bare assert deep inside a model class.
    """

    def __init__(
        self,
        component: str,
        invariant: str,
        message: str,
        cycle: int | None = None,
        snapshot: dict[str, Any] | None = None,
    ) -> None:
        self.component = component
        self.invariant = invariant
        self.message = message
        self.cycle = cycle
        self.snapshot = dict(snapshot or {})
        detail = f"[{component}] {invariant}: {message}"
        if cycle is not None:
            detail += f" (cycle {cycle})"
        for key, value in self.snapshot.items():
            detail += f"\n    {key} = {value!r}"
        super().__init__(detail)
