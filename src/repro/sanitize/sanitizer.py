"""The sanitizer: runtime invariant auditing for a whole `Machine`.

Modeled on compiler sanitizers: completely absent from the hot path when
disabled (the machine holds ``sanitizer = None`` and pays one ``is None``
test per load), and exhaustive when enabled.  Enable it per machine with
``Machine(..., sanitize=True)`` or globally with ``REPRO_SANITIZE=1``.

Cost model: every load runs the cheap checks (the 24-entry prefetcher
table, the TLB bookkeeping, single-line inclusivity of the touched line);
a full inclusivity walk over every resident cache line runs once per
``full_scan_interval`` loads and on every context switch, where the
interesting cross-domain corruption would land.  The walk touches every
set of every cache level, so the interval trades detection latency for
throughput; ``check_all()`` runs it on demand.
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING

from repro.sanitize.checkers import HierarchyChecker, PrefetcherChecker, TLBChecker
from repro.sanitize.violations import InvariantViolation

if TYPE_CHECKING:
    from repro.cpu.machine import Machine
    from repro.mmu.address_space import AddressSpace
    from repro.mmu.tlb import TranslationResult
    from repro.prefetch.base import LoadEvent, PrefetchRequest

#: Environment variable that switches the sanitizer on for every Machine.
ENV_VAR = "REPRO_SANITIZE"

_TRUTHY = {"1", "true", "yes", "on"}


def sanitize_enabled(explicit: bool | None = None) -> bool:
    """Resolve the effective sanitize setting.

    An explicit ``Machine(sanitize=...)`` argument wins; ``None`` defers to
    the ``REPRO_SANITIZE`` environment variable.
    """
    if explicit is not None:
        return explicit
    return os.environ.get(ENV_VAR, "").strip().lower() in _TRUTHY


class Sanitizer:
    """Composes the per-component checkers over one machine."""

    def __init__(self, machine: Machine, full_scan_interval: int = 4096) -> None:
        if full_scan_interval <= 0:
            raise ValueError(f"full_scan_interval must be positive, got {full_scan_interval}")
        self.machine = machine
        self.full_scan_interval = full_scan_interval
        self.prefetcher = PrefetcherChecker(machine.ip_stride)
        self.hierarchy = HierarchyChecker(machine.hierarchy)
        self.tlb = TLBChecker(machine.tlb)
        self._spaces: dict[int, AddressSpace] = {}
        self._loads_checked = 0
        self._switches_checked = 0
        self.checks_run = 0

    def register_space(self, space: AddressSpace) -> None:
        """Make ``space``'s page table available for TLB cross-checking."""
        self._spaces[space.asid] = space

    def after_load(
        self,
        event: LoadEvent | None,
        translation: TranslationResult,
        issued: list[PrefetchRequest],
    ) -> None:
        """Audit state after one load retires (the machine's main hook).

        ``event`` is ``None`` for fenced loads, which by definition did not
        touch the prefetchers; the cache and TLB checks still apply.
        """
        self._loads_checked += 1
        self.checks_run += 1
        cycle = self.machine.cycles
        try:
            self.prefetcher.check(cycle)
            self.tlb.check_fast(cycle)
            self.hierarchy.check_line(translation.paddr, cycle)
            if event is not None:
                for request in issued:
                    if request.source == "ip-stride":
                        self.prefetcher.check_request(event, request, cycle)
            if self._loads_checked % self.full_scan_interval == 0:
                self.tlb.check(self._spaces, cycle)
                self.hierarchy.check_inclusive(cycle)
        except InvariantViolation as violation:
            self._trace_violation(violation)
            raise

    def after_switch(self) -> None:
        """Audit state after a context switch injected its noise.

        The TLB flush and the switch path's prefetcher pollution make this
        the natural boundary for the full TLB/page-table cross-check; the
        costly whole-hierarchy walk runs on every 64th switch (attack loops
        switch thousands of times per round).
        """
        self.checks_run += 1
        self._switches_checked += 1
        cycle = self.machine.cycles
        try:
            self.prefetcher.check(cycle)
            self.tlb.check(self._spaces, cycle)
            if self._switches_checked % 64 == 0:
                self.hierarchy.check_inclusive(cycle)
        except InvariantViolation as violation:
            self._trace_violation(violation)
            raise

    def check_all(self) -> None:
        """Run every checker, including the full inclusivity walk."""
        self.checks_run += 1
        cycle = self.machine.cycles
        try:
            self.prefetcher.check(cycle)
            self.tlb.check(self._spaces, cycle)
            self.hierarchy.check_inclusive(cycle)
        except InvariantViolation as violation:
            self._trace_violation(violation)
            raise

    def _trace_violation(self, violation: InvariantViolation) -> None:
        """Mirror a violation into the machine's trace before it propagates."""
        tracer = self.machine.tracer
        if tracer.enabled:
            from repro.obs.events import SanitizerViolation

            tracer.emit(
                SanitizerViolation(
                    cycle=self.machine.cycles,
                    component=violation.component,
                    invariant=violation.invariant,
                    message=violation.message,
                )
            )
