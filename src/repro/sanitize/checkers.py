"""Invariant checkers for the individual µarch components.

Each checker validates the *documented* invariants of one model class —
the properties the paper's reverse engineering pins down (§4.2, §4.3,
Table 1, Fig. 8) plus the structural bookkeeping those classes rely on.
The checkers deliberately read the components' private state: they are
the sanitizer, auditing representation invariants from outside so the hot
paths stay assertion-free.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.memsys.replacement import BitPLRU
from repro.params import PAGE_SIZE
from repro.sanitize.violations import InvariantViolation

if TYPE_CHECKING:
    from repro.memsys.cache import Cache
    from repro.memsys.hierarchy import CacheHierarchy
    from repro.mmu.address_space import AddressSpace
    from repro.mmu.tlb import TLB
    from repro.prefetch.base import LoadEvent, PrefetchRequest
    from repro.prefetch.ip_stride import IPStridePrefetcher


class PrefetcherChecker:
    """Invariants of the IP-stride history table (§4.2, Fig. 8).

    * the table never exceeds its ``n_entries`` capacity;
    * ``_index_to_slot`` and ``_slots`` form a bijection over live entries;
    * every entry index fits in ``index_bits`` (Fig. 6: low-IP-bits, no tag);
    * confidence stays within the 2-bit counter range;
    * strides stay within the sign + 12-bit field (§4.2);
    * Bit-PLRU MRU bits never saturate (all-set would make ``victim()``
      meaningless — the generation reset must have fired, Fig. 8b).
    """

    def __init__(self, prefetcher: IPStridePrefetcher) -> None:
        self.prefetcher = prefetcher

    def check(self, cycle: int | None = None) -> None:
        pf = self.prefetcher
        params = pf.params
        n = params.n_entries
        if len(pf._slots) != n:
            raise InvariantViolation(
                "ip-stride",
                "table-capacity",
                f"slot array has {len(pf._slots)} slots, expected {n}",
                cycle,
                {"n_slots": len(pf._slots)},
            )
        live = {slot for slot, entry in enumerate(pf._slots) if entry is not None}
        if pf.occupancy > n or len(live) > n:
            raise InvariantViolation(
                "ip-stride",
                "table-capacity",
                f"occupancy {pf.occupancy} exceeds {n} entries (Fig. 8a)",
                cycle,
                {"occupancy": pf.occupancy},
            )
        if set(pf._index_to_slot.values()) != live or len(pf._index_to_slot) != len(live):
            raise InvariantViolation(
                "ip-stride",
                "index-map",
                "_index_to_slot and _slots disagree about which slots are live",
                cycle,
                {"mapped_slots": sorted(pf._index_to_slot.values()), "live_slots": sorted(live)},
            )
        for index, slot in pf._index_to_slot.items():
            entry = pf._slots[slot]
            if entry is None or entry.index != index:
                raise InvariantViolation(
                    "ip-stride",
                    "index-map",
                    f"index {index:#x} maps to slot {slot} holding "
                    f"{'nothing' if entry is None else f'index {entry.index:#x}'}",
                    cycle,
                    {"index": index, "slot": slot},
                )
        stride_min = -(1 << (params.stride_bits - 1))
        stride_max = (1 << (params.stride_bits - 1)) - 1
        for slot in live:
            entry = pf._slots[slot]
            assert entry is not None
            if not 0 <= entry.index < (1 << params.index_bits):
                raise InvariantViolation(
                    "ip-stride",
                    "index-width",
                    f"entry index {entry.index:#x} does not fit in "
                    f"{params.index_bits} bits (Fig. 6)",
                    cycle,
                    {"slot": slot, "index": entry.index},
                )
            if not 0 <= entry.confidence <= params.confidence_max:
                raise InvariantViolation(
                    "ip-stride",
                    "confidence-range",
                    f"confidence {entry.confidence} outside "
                    f"[0, {params.confidence_max}] (§4.2: 2-bit counter)",
                    cycle,
                    {"slot": slot, "index": entry.index, "confidence": entry.confidence},
                )
            if not stride_min <= entry.stride <= stride_max:
                raise InvariantViolation(
                    "ip-stride",
                    "stride-width",
                    f"stride {entry.stride} outside the sign+{params.stride_bits - 1}-bit "
                    f"field [{stride_min}, {stride_max}] (§4.2)",
                    cycle,
                    {"slot": slot, "index": entry.index, "stride": entry.stride},
                )
        policy = pf._policy
        if isinstance(policy, BitPLRU):
            if len(policy._mru) != n:
                raise InvariantViolation(
                    "ip-stride",
                    "bit-plru",
                    f"MRU bitvector has {len(policy._mru)} bits, expected {n}",
                    cycle,
                    {"n_bits": len(policy._mru)},
                )
            if all(policy._mru):
                raise InvariantViolation(
                    "ip-stride",
                    "bit-plru",
                    "all MRU bits set: the generation reset must fire before "
                    "saturation (Fig. 8b would show no eviction runs)",
                    cycle,
                    {"mru": list(policy._mru)},
                )

    def check_request(
        self, event: LoadEvent, request: PrefetchRequest, cycle: int | None = None
    ) -> None:
        """§4.3 / Table 1: an issued prefetch never leaves the triggering
        access's physical frame."""
        if request.paddr // PAGE_SIZE != event.paddr // PAGE_SIZE:
            raise InvariantViolation(
                "ip-stride",
                "page-boundary",
                f"prefetch of {request.paddr:#x} crosses the frame of the "
                f"triggering access {event.paddr:#x} (§4.3, Table 1)",
                cycle,
                {"trigger_paddr": event.paddr, "request_paddr": request.paddr},
            )


class HierarchyChecker:
    """Invariants of the inclusive cache hierarchy.

    Inclusivity (L1 ⊆ LLC and L2 ⊆ LLC) is load-bearing for Prime+Probe
    (§5.1): an LLC eviction must back-invalidate the core caches, or the
    probe would read a stale hit.  ``check_line`` is the cheap per-access
    form; ``check_inclusive`` walks every resident line.
    """

    def __init__(self, hierarchy: CacheHierarchy) -> None:
        self.hierarchy = hierarchy

    def check_line(self, paddr: int, cycle: int | None = None) -> None:
        h = self.hierarchy
        in_core = h.l1.contains(paddr) or h.l2.contains(paddr)
        if in_core and not h.llc_slice(paddr).contains(paddr):
            raise InvariantViolation(
                "hierarchy",
                "inclusivity",
                f"line {paddr:#x} is core-cache resident but absent from its "
                "LLC slice (back-invalidation missed, §5.1)",
                cycle,
                {"paddr": paddr, "in_l1": h.l1.contains(paddr), "in_l2": h.l2.contains(paddr)},
            )

    def check_inclusive(self, cycle: int | None = None) -> None:
        h = self.hierarchy
        for name, cache in (("L1", h.l1), ("L2", h.l2)):
            self._check_set_consistency(name, cache, cycle)
            for line in cache.resident_lines():
                if not h.llc_slice(line).contains(line):
                    raise InvariantViolation(
                        "hierarchy",
                        "inclusivity",
                        f"{name} line {line:#x} is absent from its LLC slice",
                        cycle,
                        {"level": name, "line": line},
                    )
        for slice_id, llc in enumerate(h.llc):
            self._check_set_consistency(f"LLC[{slice_id}]", llc, cycle)

    @staticmethod
    def _check_set_consistency(name: str, cache: Cache, cycle: int | None) -> None:
        for index, cache_set in enumerate(cache._sets):
            valid = cache_set.ways - cache_set.tags.count(None)
            if valid != cache_set.occupancy():
                raise InvariantViolation(
                    "hierarchy",
                    "set-bookkeeping",
                    f"{name} set {index}: {valid} valid ways but "
                    f"occupancy {cache_set.occupancy()}",
                    cycle,
                    {"cache": name, "set": index},
                )
            for tag, way in cache_set._tag_to_way.items():
                if cache_set.tags[way] != tag:
                    raise InvariantViolation(
                        "hierarchy",
                        "set-bookkeeping",
                        f"{name} set {index}: tag map says way {way} holds "
                        f"{tag:#x} but the way holds {cache_set.tags[way]!r}",
                        cycle,
                        {"cache": name, "set": index, "way": way},
                    )


class TLBChecker:
    """Invariants of the ASID-tagged TLB and its page-table agreement.

    The §4.3 rule (TLB-missing loads are invisible to the prefetcher) makes
    TLB residency part of the attack surface, so a TLB whose cached frame
    disagrees with the page table would silently corrupt every experiment.
    """

    def __init__(self, tlb: TLB) -> None:
        self.tlb = tlb

    def check_fast(self, cycle: int | None = None) -> None:
        """O(1) per-load checks: capacity and LRU-list length agreement."""
        tlb = self.tlb
        if len(tlb._entries) > tlb._n_entries:
            raise InvariantViolation(
                "tlb",
                "capacity",
                f"{len(tlb._entries)} entries exceed capacity {tlb._n_entries}",
                cycle,
                {"occupancy": len(tlb._entries)},
            )
        if len(tlb._order) != len(tlb._entries):
            raise InvariantViolation(
                "tlb",
                "lru-bookkeeping",
                f"LRU list has {len(tlb._order)} keys for {len(tlb._entries)} entries",
                cycle,
                {"n_order": len(tlb._order), "n_entries": len(tlb._entries)},
            )

    def check(self, spaces: dict[int, AddressSpace], cycle: int | None = None) -> None:
        tlb = self.tlb
        self.check_fast(cycle)
        if sorted(tlb._order) != sorted(tlb._entries):
            raise InvariantViolation(
                "tlb",
                "lru-bookkeeping",
                "_order and _entries disagree (duplicate or orphaned LRU key)",
                cycle,
                {"n_order": len(tlb._order), "n_entries": len(tlb._entries)},
            )
        if not tlb._global_keys <= set(tlb._entries):
            raise InvariantViolation(
                "tlb",
                "lru-bookkeeping",
                "global-key set references evicted entries",
                cycle,
                {"orphans": sorted(tlb._global_keys - set(tlb._entries))},
            )
        for (asid, vpage), frame in tlb._entries.items():
            space = spaces.get(asid)
            if space is None:
                continue
            true_frame = space.page_table.frame_of(vpage)
            if true_frame != frame:
                raise InvariantViolation(
                    "tlb",
                    "page-table-agreement",
                    f"cached frame {frame:#x} for vpage {vpage:#x} (asid {asid}) "
                    f"disagrees with the page table ({true_frame!r:.32})",
                    cycle,
                    {"asid": asid, "vpage": vpage, "cached": frame, "true": true_frame},
                )
