"""Cross-process covert channel over the IP-stride prefetcher (paper §5.3).

The stride *is* the message: the sender trains an entry (whose index the
receiver aliases) with a stride encoding up to 5 secret bits — strides are
observed at cache-line granularity and capped at 2 KiB = 32 lines (paper
footnote 5).  The receiver then accesses one line of the shared page and
reloads the page; the distance from its access to the extra hit is the
transmitted value.

Bandwidth model (§7.2): a symbol round is dominated not by the handful of
loads but by the sender/receiver rendezvous — tens of ~100 µs scheduling
periods per round on a real CFS kernel.  With the paper's observed ~6 ms
round the single-entry channel carries 5 bits/round ≈ 833 bps; training all
24 entries per round lifts the ceiling to ≈ 20 kbps but exposes every entry
to the switch traffic, pushing the error rate past 25 % (the switch path's
IP allocations evict trained entries from the full table).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.channels.flush_reload import FlushReload
from repro.core.gadget import non_aliasing_ip
from repro.cpu.machine import Machine
from repro.cpu.scheduler import DEFAULT_QUANTUM_CYCLES
from repro.params import LINES_PER_PAGE, PAGE_SIZE
from repro.utils.bits import low_bits

#: Scheduling periods consumed per symbol round by the sender/receiver
#: rendezvous (sched_yield ping-pong + retry margin) — calibrated to the
#: artifact's observed ~6 ms round; see DESIGN.md §5.
RENDEZVOUS_QUANTA = 60

#: Smallest usable stride: 1..4-line strides collide with the reach of the
#: DCU/adjacent/streamer prefetchers (§7.1), so the 5-bit alphabet is 5..31
#: for noise-free operation; the full 1..31 alphabet is allowed but noisy.
MIN_CLEAN_STRIDE = 5


@dataclass
class CovertRoundResult:
    """One transmitted symbol."""

    sent_value: int
    received_value: int | None
    hot_lines: list[int] = field(default_factory=list)

    @property
    def correct(self) -> bool:
        return self.received_value == self.sent_value


@dataclass
class CovertChannelReport:
    """Aggregate statistics over a transmission."""

    rounds: list[CovertRoundResult]
    cycles: int
    frequency_hz: float
    bits_per_round: int = 5

    @property
    def n_rounds(self) -> int:
        return len(self.rounds)

    @property
    def error_rate(self) -> float:
        if not self.rounds:
            return 0.0
        return sum(1 for r in self.rounds if not r.correct) / len(self.rounds)

    @property
    def seconds(self) -> float:
        return self.cycles / self.frequency_hz

    @property
    def bandwidth_bps(self) -> float:
        if self.cycles == 0:
            return 0.0
        return self.bits_per_round * self.n_rounds / self.seconds


def encode_text(message: str) -> list[int]:
    """Pack text into the channel's clean 5-bit alphabet.

    Base-27 coding: ``a``-``z`` → 5-30, space → 31 — all within the
    [5, 31] range that clears the companion prefetchers' reach.
    """
    symbols = []
    for ch in message.lower():
        if ch == " ":
            symbols.append(31)
        elif "a" <= ch <= "z":
            symbols.append(MIN_CLEAN_STRIDE + ord(ch) - ord("a"))
        else:
            raise ValueError(f"unencodable character {ch!r} (a-z and space only)")
    return symbols


def decode_text(symbols: list[int | None]) -> str:
    """Inverse of :func:`encode_text`; lost symbols decode to ``?``."""
    out = []
    for value in symbols:
        if value == 31:
            out.append(" ")
        elif value is not None and MIN_CLEAN_STRIDE <= value <= 30:
            out.append(chr(ord("a") + value - MIN_CLEAN_STRIDE))
        else:
            out.append("?")
    return "".join(out)


class CovertChannel:
    """Sender/receiver pair in separate processes sharing one page."""

    def __init__(
        self,
        machine: Machine,
        n_entries: int = 1,
        sender_code_base: int = 0x0066_0000,
    ) -> None:
        if not 1 <= n_entries <= machine.params.prefetcher.n_entries:
            raise ValueError(
                f"n_entries must be in [1, {machine.params.prefetcher.n_entries}]"
            )
        self.machine = machine
        self.n_entries = n_entries
        self.sender_ctx = machine.new_thread("covert-sender")
        self.receiver_ctx = machine.new_thread("covert-receiver")
        shared = machine.new_buffer(
            self.sender_ctx.space, n_entries * PAGE_SIZE, name="covert-shared"
        )
        self.shared_sender = shared
        self.shared_receiver = machine.share_buffer(
            shared, self.receiver_ctx.space, name="covert-shared"
        )
        base = machine.aslr.randomize_base(sender_code_base)
        # 0x101 spacing: distinct low-8 index per entry, realistic gaps.
        self.entry_ips = [base + 0x101 * k for k in range(n_entries)]
        index_bits = machine.params.prefetcher.index_bits
        self._entry_indexes = {low_bits(ip, index_bits) for ip in self.entry_ips}
        if len(self._entry_indexes) != n_entries:
            raise ValueError("entry IPs must not alias each other")
        reload_ip = non_aliasing_ip(base + 0x10_0000, self._entry_indexes, index_bits)
        self.flush_reload = FlushReload(
            machine,
            self.receiver_ctx,
            self.shared_receiver,
            reload_ip,
            avoid_ip_indexes=self._entry_indexes,
        )
        # Receiver-side trigger loads: one per entry, aliasing the sender's.
        self.trigger_ips = list(self.entry_ips)
        machine.warm_buffer_tlb(self.sender_ctx, self.shared_sender)
        machine.warm_buffer_tlb(self.receiver_ctx, self.shared_receiver)

    # ------------------------------------------------------------------ #

    def send_symbols(self, values: list[int]) -> None:
        """Sender: train one entry per value (stride = value, in lines)."""
        if len(values) != self.n_entries:
            raise ValueError(f"need {self.n_entries} symbols, got {len(values)}")
        for value in values:
            if not 1 <= value < 32:
                raise ValueError(f"symbol {value} outside the 5-bit alphabet [1, 31]")
        for k, value in enumerate(values):
            self.machine.warm_tlb(self.sender_ctx, self.shared_sender.page_line_addr(k, 0))
            for i in range(3):
                vaddr = self.shared_sender.page_line_addr(k, (i * value) % LINES_PER_PAGE)
                self.machine.load(self.sender_ctx, self.entry_ips[k], vaddr)

    def receive_symbols(self, trigger_line: int = 0) -> list[tuple[int | None, list[int]]]:
        """Receiver: flush, trigger each entry once, locate the stride."""
        results: list[tuple[int | None, list[int]]] = []
        for k in range(self.n_entries):
            page_first = k * LINES_PER_PAGE
            self.flush_reload.flush(page=k)
            vaddr = self.shared_receiver.page_line_addr(k, trigger_line)
            self.machine.warm_tlb(self.receiver_ctx, vaddr)
            self.machine.load(self.receiver_ctx, self.trigger_ips[k], vaddr)
            hits = [
                line - page_first for line in self.flush_reload.hit_lines(page=k)
            ]
            value = self._decode(hits, trigger_line)
            results.append((value, hits))
        return results

    @staticmethod
    def _decode(hits: list[int], trigger_line: int) -> int | None:
        """Distance from the trigger line to the (non-adjacent) extra hit."""
        candidates = [
            line - trigger_line
            for line in hits
            if line != trigger_line and abs(line - trigger_line) > 2
        ]
        if len(candidates) == 1 and 1 <= candidates[0] < 32:
            return candidates[0]
        return None

    # ------------------------------------------------------------------ #

    def transmit_reliable(
        self, symbols: list[int], repetitions: int = 3
    ) -> CovertChannelReport:
        """Repetition-coded transmission for the error-prone configurations.

        The paper notes the 24-entry channel's error rate exceeds 25 %
        (§7.2); a simple repetition code trades its raw ~20 kbps for
        dependable goodput.  Losses are *slot-correlated* — the switch path
        evicts a deterministic (Bit-PLRU) subset of the trained entries —
        so each repetition interleaves: the symbol stream is rotated, which
        maps every symbol to a different entry each time.  Decoding is a
        majority over the successful receptions (erasures don't vote).
        The returned report's bandwidth is the *net* goodput: decoded bits
        over total simulated time.
        """
        if repetitions < 1:
            raise ValueError("repetitions must be positive")
        start_cycles = self.machine.cycles
        votes: list[list[int]] = [[] for _ in symbols]
        for repetition in range(repetitions):
            shift = (repetition * 11) % len(symbols)
            rotated = symbols[shift:] + symbols[:shift]
            raw = self.transmit(rotated)
            for position, round_result in enumerate(raw.rounds):
                original = (position + shift) % len(symbols)
                if round_result.received_value is not None:
                    votes[original].append(round_result.received_value)
        rounds = []
        for sent, received_votes in zip(symbols, votes):
            if received_votes:
                decoded = max(set(received_votes), key=received_votes.count)
            else:
                decoded = None
            rounds.append(
                CovertRoundResult(sent_value=sent, received_value=decoded)
            )
        return CovertChannelReport(
            rounds=rounds,
            cycles=self.machine.cycles - start_cycles,
            frequency_hz=self.machine.params.frequency_hz,
        )

    def transmit(self, symbols: list[int]) -> CovertChannelReport:
        """Full transmission: symbols are sent ``n_entries`` per round."""
        if len(symbols) % self.n_entries:
            raise ValueError(f"symbol count must be a multiple of {self.n_entries}")
        start_cycles = self.machine.cycles
        rounds: list[CovertRoundResult] = []
        for start in range(0, len(symbols), self.n_entries):
            batch = symbols[start : start + self.n_entries]
            self.machine.context_switch(self.sender_ctx)
            with self.machine.span("send"):
                self.send_symbols(batch)
            self.machine.context_switch(self.receiver_ctx)
            with self.machine.span("receive"):
                received = self.receive_symbols()
            for sent, (value, hits) in zip(batch, received):
                rounds.append(
                    CovertRoundResult(sent_value=sent, received_value=value, hot_lines=hits)
                )
            # Rendezvous overhead: the dominant cost of a round (§7.2).
            with self.machine.span("rendezvous"):
                self.machine.advance(RENDEZVOUS_QUANTA * DEFAULT_QUANTUM_CYCLES)
        return CovertChannelReport(
            rounds=rounds,
            cycles=self.machine.cycles - start_cycles,
            frequency_hz=self.machine.params.frequency_hz,
        )
