"""The AfterImage training gadget (paper Listing 6).

Local load instructions whose IPs are NOP-padded to alias the victim's
loads in the prefetcher's 8-bit index, each trained with its own
distinctive stride.  After training, every monitored prefetcher entry sits
at saturated confidence, so whichever victim load executes triggers a
prefetch at *its* stride — encoding the branch direction in the cache
(AfterImage-Cache) or in the entry's subsequent state (AfterImage-PSC).

:class:`MultiTargetTrainingGadget` is the general N-entry form (the
leakcheck dynamic oracle and the kernel-switch attacks monitor one entry
per case arm); :class:`TrainingGadget` keeps Listing 6's two-armed
if/else shape on top of it.
"""

from __future__ import annotations

from collections.abc import Collection, Sequence

from repro.channels.thresholds import classify_hit
from repro.cpu.code import CodeRegion
from repro.cpu.context import ThreadContext
from repro.cpu.machine import Machine
from repro.params import CACHE_LINE_SIZE, PAGE_SIZE
from repro.utils.bits import low_bits

#: Default strides, in cache lines.  The paper trains with 7, 11 and 13:
#: larger than the 4-line reach of the DCU/adjacent/streamer prefetchers and
#: uncommon (prime) so they stand out against noise (§7.1).
DEFAULT_S1 = 7
DEFAULT_S2 = 13


def non_aliasing_ip(base: int, avoid_indexes: Collection[int], index_bits: int) -> int:
    """Smallest IP at or above ``base`` whose prefetcher index avoids
    ``avoid_indexes``.

    Every measurement load (Flush+Reload's reload, Prime+Probe's probe,
    the PSC check) must not alias a monitored entry, or the measurement
    itself would retrain the state it is reading — each deployment used to
    carry its own copy of this scan.
    """
    ip = base
    while low_bits(ip, index_bits) in avoid_indexes:
        ip += 1
    return ip


class MultiTargetTrainingGadget:
    """Mistrain one IP-stride entry per victim load, each with its own stride.

    ``targets`` is a sequence of ``(victim_ip, stride_lines)`` pairs; the
    gadget places one aliasing local load per target and trains each entry
    on its own private page.  :meth:`check_entry` then reads one entry back
    PSC-style (§6.1): continue that entry's progression by one load and
    time the would-be prefetch target — a hit means the entry survived
    undisturbed, a miss means a victim load aliased it.
    """

    def __init__(
        self,
        machine: Machine,
        ctx: ThreadContext,
        targets: Sequence[tuple[int, int]],
        gadget_base: int = 0x0060_0000,
        labels: Sequence[str] | None = None,
        buffer_names: Sequence[str] | None = None,
    ) -> None:
        if not targets:
            raise ValueError("need at least one (victim_ip, stride_lines) target")
        index_bits = machine.params.prefetcher.index_bits
        indexes = [low_bits(ip, index_bits) for ip, _stride in targets]
        if len(set(indexes)) != len(indexes):
            raise ValueError(
                "two targets alias the same prefetcher entry; "
                "their strides cannot be distinguished"
            )
        for _ip, stride in targets:
            if not 0 < stride * CACHE_LINE_SIZE <= machine.params.prefetcher.max_stride_bytes:
                raise ValueError(f"stride of {stride} lines is outside the prefetcher's range")
        if labels is None:
            labels = [f"gadget_load{k}" for k in range(len(targets))]
        if buffer_names is None:
            buffer_names = [f"gadget-train{k}" for k in range(len(targets))]

        self.machine = machine
        self.ctx = ctx
        self.strides = tuple(stride for _ip, stride in targets)
        self.code = CodeRegion(gadget_base, aslr=machine.aslr, name="gadget")
        self.ips = tuple(
            self.code.place_aliasing(label, ip, index_bits)
            for label, (ip, _stride) in zip(labels, targets)
        )
        # One private page per load keeps the training sequences from
        # interfering (and from confusing the streamer prefetcher).
        self.buffers = tuple(
            machine.new_buffer(ctx.space, PAGE_SIZE, name=name) for name in buffer_names
        )
        for buffer in self.buffers:
            machine.warm_buffer_tlb(ctx, buffer)
        # The PSC probe load must not alias any monitored entry.
        probe_offset = (
            non_aliasing_ip(gadget_base + 0x10_0000, set(indexes), index_bits)
            - gadget_base
        )
        self.probe_ip = self.code.place("gadget_probe", probe_offset)
        self._next_line = [0] * len(targets)

    @property
    def monitored_indexes(self) -> frozenset[int]:
        """Prefetcher indexes this gadget occupies (others must avoid them)."""
        index_bits = self.machine.params.prefetcher.index_bits
        return frozenset(low_bits(ip, index_bits) for ip in self.ips)

    def train(self, iterations: int = 3) -> None:
        """Execute the Listing 6 loop: strided loads for every entry.

        Three iterations are the minimum to reach the prefetch threshold
        (confidence 2); the paper uses 3–4 (§9.2 contrasts this with the
        ~26000-cycle BPU mistraining of Spectre).
        """
        if iterations < 3:
            raise ValueError("need at least 3 iterations to reach the prefetch threshold")
        max_iterations = (self.buffers[0].n_lines - 1) // max(self.strides) + 1
        if iterations > max_iterations:
            raise ValueError(
                f"{iterations} iterations would wrap the training page and break "
                f"the stride; maximum here is {max_iterations}"
            )
        # A process switch flushed our TLB; re-touch the training pages so
        # every training load is visible to the prefetcher (a TLB-missing
        # load would be skipped per §4.3).
        for buffer in self.buffers:
            self.machine.warm_tlb(self.ctx, buffer.base)
        for i in range(iterations):
            for k, (ip, buffer, stride) in enumerate(
                zip(self.ips, self.buffers, self.strides)
            ):
                self.machine.load(self.ctx, ip, buffer.line_addr(i * stride))
                self._next_line[k] = (i + 1) * stride

    def check_entry(self, k: int) -> bool:
        """PSC-read entry ``k``: continue its stride by one load, time the
        would-be prefetch target.  True = hit = entry undisturbed."""
        if not 0 <= k < len(self.ips):
            raise ValueError(f"no target {k}; gadget monitors {len(self.ips)} entries")
        stride = self.strides[k]
        line = self._next_line[k]
        buffer = self.buffers[k]
        if line + stride >= buffer.n_lines:
            raise RuntimeError(
                "training page exhausted; retrain before checking this entry again"
            )
        vaddr = buffer.line_addr(line)
        target = vaddr + stride * CACHE_LINE_SIZE
        self.machine.warm_tlb(self.ctx, vaddr)
        self.machine.warm_tlb(self.ctx, target)
        # The target must be uncached beforehand, or a stale line would
        # masquerade as a prefetch.
        self.machine.clflush(self.ctx, target)
        self.machine.load(self.ctx, self.ips[k], vaddr)
        self._next_line[k] = line + stride
        latency = self.machine.load(self.ctx, self.probe_ip, target, fenced=True)
        return classify_hit(latency, self.machine.hit_threshold())

    def confidences(self) -> tuple[int | None, ...]:
        """Per-entry confidence — white-box helper for tests."""
        pf = self.machine.ip_stride
        values = []
        for ip in self.ips:
            entry = pf.entry_for_ip(ip)
            values.append(entry.confidence if entry is not None else None)
        return tuple(values)


class TrainingGadget(MultiTargetTrainingGadget):
    """Listing 6's two-armed form: if-path stride S1, else-path stride S2."""

    def __init__(
        self,
        machine: Machine,
        ctx: ThreadContext,
        if_target_ip: int,
        else_target_ip: int,
        s1_lines: int = DEFAULT_S1,
        s2_lines: int = DEFAULT_S2,
        gadget_base: int = 0x0060_0000,
    ) -> None:
        index_bits = machine.params.prefetcher.index_bits
        if low_bits(if_target_ip, index_bits) == low_bits(else_target_ip, index_bits):
            raise ValueError(
                "victim's if/else loads alias the same prefetcher entry; "
                "the two directions cannot be distinguished"
            )
        if s1_lines == s2_lines:
            raise ValueError("S1 and S2 must differ to encode the branch direction")
        super().__init__(
            machine,
            ctx,
            [(if_target_ip, s1_lines), (else_target_ip, s2_lines)],
            gadget_base=gadget_base,
            labels=("gadget_if_load", "gadget_else_load"),
            buffer_names=("gadget-train-if", "gadget-train-else"),
        )
        self.s1_lines = s1_lines
        self.s2_lines = s2_lines
        self.if_ip, self.else_ip = self.ips
        self.train_if, self.train_else = self.buffers
