"""The AfterImage training gadget (paper Listing 6).

Two local load instructions whose IPs are NOP-padded to alias the victim's
if-path and else-path loads in the prefetcher's 8-bit index, each trained
with its own distinctive stride (S1 / S2).  After training, both prefetcher
entries sit at saturated confidence, so whichever victim load executes
triggers a prefetch at *its* stride — encoding the branch direction in the
cache (AfterImage-Cache) or in the entry's subsequent state
(AfterImage-PSC).
"""

from __future__ import annotations

from repro.cpu.code import CodeRegion
from repro.cpu.context import ThreadContext
from repro.cpu.machine import Machine
from repro.params import CACHE_LINE_SIZE, PAGE_SIZE
from repro.utils.bits import low_bits

#: Default strides, in cache lines.  The paper trains with 7, 11 and 13:
#: larger than the 4-line reach of the DCU/adjacent/streamer prefetchers and
#: uncommon (prime) so they stand out against noise (§7.1).
DEFAULT_S1 = 7
DEFAULT_S2 = 13


class TrainingGadget:
    """Mistrain the IP-stride prefetcher for a victim's two branch loads."""

    def __init__(
        self,
        machine: Machine,
        ctx: ThreadContext,
        if_target_ip: int,
        else_target_ip: int,
        s1_lines: int = DEFAULT_S1,
        s2_lines: int = DEFAULT_S2,
        gadget_base: int = 0x0060_0000,
    ) -> None:
        index_bits = machine.params.prefetcher.index_bits
        if low_bits(if_target_ip, index_bits) == low_bits(else_target_ip, index_bits):
            raise ValueError(
                "victim's if/else loads alias the same prefetcher entry; "
                "the two directions cannot be distinguished"
            )
        if s1_lines == s2_lines:
            raise ValueError("S1 and S2 must differ to encode the branch direction")
        for stride in (s1_lines, s2_lines):
            if not 0 < stride * CACHE_LINE_SIZE <= machine.params.prefetcher.max_stride_bytes:
                raise ValueError(f"stride of {stride} lines is outside the prefetcher's range")

        self.machine = machine
        self.ctx = ctx
        self.s1_lines = s1_lines
        self.s2_lines = s2_lines
        self.code = CodeRegion(gadget_base, aslr=machine.aslr, name="gadget")
        self.if_ip = self.code.place_aliasing("gadget_if_load", if_target_ip, index_bits)
        self.else_ip = self.code.place_aliasing("gadget_else_load", else_target_ip, index_bits)
        # One private page per load keeps the two training sequences from
        # interfering (and from confusing the streamer prefetcher).
        self.train_if = machine.new_buffer(ctx.space, PAGE_SIZE, name="gadget-train-if")
        self.train_else = machine.new_buffer(ctx.space, PAGE_SIZE, name="gadget-train-else")
        machine.warm_buffer_tlb(ctx, self.train_if)
        machine.warm_buffer_tlb(ctx, self.train_else)

    @property
    def monitored_indexes(self) -> frozenset[int]:
        """Prefetcher indexes this gadget occupies (others must avoid them)."""
        index_bits = self.machine.params.prefetcher.index_bits
        return frozenset({low_bits(self.if_ip, index_bits), low_bits(self.else_ip, index_bits)})

    def train(self, iterations: int = 3) -> None:
        """Execute the Listing 6 loop: strided loads for both entries.

        Three iterations are the minimum to reach the prefetch threshold
        (confidence 2); the paper uses 3–4 (§9.2 contrasts this with the
        ~26000-cycle BPU mistraining of Spectre).
        """
        if iterations < 3:
            raise ValueError("need at least 3 iterations to reach the prefetch threshold")
        max_iterations = (self.train_if.n_lines - 1) // max(self.s1_lines, self.s2_lines) + 1
        if iterations > max_iterations:
            raise ValueError(
                f"{iterations} iterations would wrap the training page and break "
                f"the stride; maximum here is {max_iterations}"
            )
        # A process switch flushed our TLB; re-touch the training pages so
        # every training load is visible to the prefetcher (a TLB-missing
        # load would be skipped per §4.3).
        self.machine.warm_tlb(self.ctx, self.train_if.base)
        self.machine.warm_tlb(self.ctx, self.train_else.base)
        for i in range(iterations):
            self.machine.load(self.ctx, self.if_ip, self.train_if.line_addr(i * self.s1_lines))
            self.machine.load(self.ctx, self.else_ip, self.train_else.line_addr(i * self.s2_lines))

    def confidences(self) -> tuple[int | None, int | None]:
        """(if-entry, else-entry) confidence — white-box helper for tests."""
        pf = self.machine.ip_stride
        if_entry = pf.entry_for_ip(self.if_ip)
        else_entry = pf.entry_for_ip(self.else_ip)
        return (
            if_entry.confidence if if_entry is not None else None,
            else_entry.confidence if else_entry is not None else None,
        )
