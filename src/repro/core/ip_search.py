"""IP search (paper §5.2): locating a hidden victim load's prefetcher index.

Syscall IPs are unknown to the user and KASLR-slid — but slides are
page-granular, and the prefetcher index is only the low 8 IP bits, so the
search space is exactly 256 indexes.  The attacker:

1. trains a *group* of candidate indexes simultaneously (24 at a time — the
   history-table capacity, §4.4), each on its own page with one common
   stride;
2. triggers the victim (the syscall) on shared memory;
3. reloads the shared page: a hit at ``demand_line + stride`` means some
   trained index aliased the victim's load;
4. narrows the positive group by halving until one index remains.

Because the victim's branch may be untaken on a given call (Listing 7 uses
a random secret), every group test retries several times before concluding
"negative" — the paper's "this process can be repeated multiple times...
in case of too many not taken branches".
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass, field

from repro.channels.flush_reload import FlushReload
from repro.core.detect import hot_pairs
from repro.cpu.context import ThreadContext
from repro.cpu.machine import Machine
from repro.mmu.buffer import Buffer
from repro.params import PAGE_SIZE
from repro.utils.bits import low_bits


@dataclass
class IPSearchResult:
    """Outcome of an IP search."""

    index: int | None
    syscalls_used: int = 0
    groups_tested: int = 0
    history: list[tuple[tuple[int, ...], bool]] = field(default_factory=list)

    @property
    def found(self) -> bool:
        return self.index is not None


class IPSearcher:
    """Group-train-and-test search over the 256 possible entry indexes."""

    #: History-table capacity — one group fills the table exactly (§5.2).
    GROUP_SIZE = 24

    def __init__(
        self,
        machine: Machine,
        attacker_ctx: ThreadContext,
        trigger: Callable[[int], None],
        shared: Buffer,
        flush_reload: FlushReload,
        stride_lines: int = 11,
        attempts_per_test: int = 2,
        search_code_base: int = 0x0078_0000,
    ) -> None:
        self.machine = machine
        self.ctx = attacker_ctx
        self.trigger = trigger
        self.shared = shared
        self.flush_reload = flush_reload
        self.stride_lines = stride_lines
        self.attempts_per_test = attempts_per_test
        self._code_base = machine.aslr.randomize_base(search_code_base)
        # One private training page per slot in a group.
        self._train_pages = [
            machine.new_buffer(attacker_ctx.space, PAGE_SIZE, name=f"ipsearch-train-{i}")
            for i in range(self.GROUP_SIZE)
        ]
        for page in self._train_pages:
            machine.warm_buffer_tlb(attacker_ctx, page)
        self._syscalls = 0
        self._groups = 0
        self._history: list[tuple[tuple[int, ...], bool]] = []

    def search(self, demand_line: int = 20, sweeps: int = 3) -> IPSearchResult:
        """Find the victim load's index; ``demand_line`` is the shared-page
        line whose address is passed to the victim.

        Up to ``sweeps`` full passes are made — "this process can be
        repeated multiple times until the IP is found in case of too many
        not taken branches" (§5.2).
        """
        for _ in range(sweeps):
            index = self._search_once(demand_line)
            if index is not None:
                return self._result(index)
        return self._result(None)

    def _search_once(self, demand_line: int) -> int | None:
        reserved = {
            low_bits(self.flush_reload.reload_ip, self.machine.params.prefetcher.index_bits)
        }
        candidates = [index for index in range(256) if index not in reserved]
        positive_group: list[int] | None = None
        for start in range(0, len(candidates), self.GROUP_SIZE):
            group = candidates[start : start + self.GROUP_SIZE]
            if self._test_group(group, demand_line):
                positive_group = group
                break
        if positive_group is None:
            return None

        # Halve the positive group until a single index survives.  Both
        # halves are tested explicitly: inferring "right half" from a
        # negative left-half test would silently follow a false negative.
        group = positive_group
        while len(group) > 1:
            left = group[: len(group) // 2]
            right = group[len(group) // 2 :]
            if self._test_group(left, demand_line):
                group = left
            elif self._test_group(right, demand_line):
                group = right
            else:
                return None
        # Confirm the final candidate on its own.
        if not self._test_group(group, demand_line):
            return None
        return group[0]

    # ------------------------------------------------------------------ #

    def _test_group(self, group: Sequence[int], demand_line: int) -> bool:
        """True when some index in ``group`` aliases the victim's load.

        The syscall path's own loads re-allocate their prefetcher slots and
        evict most freshly trained candidates before the victim load runs
        (Bit-PLRU evicts them in allocation order, so *which* candidates
        survive is a deterministic suffix of the training order).  The test
        therefore rotates the training order through every position —
        guaranteeing each candidate is among the survivors in some attempt —
        and tries each rotation ``attempts_per_test`` times to cover the
        victim's randomly-untaken branch (Listing 7).
        """
        self._groups += 1
        group = list(group)
        # Small groups offer few rotations, so give each a couple of extra
        # tries against the victim's coin-flip branch.
        tries = self.attempts_per_test + (2 if len(group) <= 6 else 0)
        for shift in range(len(group)):
            rotated = group[shift:] + group[:shift]
            for _ in range(tries):
                self._train_group(rotated)
                self.flush_reload.flush()
                self.trigger(demand_line)
                self._syscalls += 1
                hits = self.flush_reload.hit_lines()
                if hot_pairs(hits, self.stride_lines):
                    self._history.append((tuple(group), True))
                    return True
        self._history.append((tuple(group), False))
        return False

    def _train_group(self, group: Sequence[int]) -> None:
        """Train one entry per index, each on its own page, common stride."""
        if len(group) > self.GROUP_SIZE:
            raise ValueError(f"group of {len(group)} exceeds table capacity {self.GROUP_SIZE}")
        ips = [self.ip_for_index(index) for index in group]
        for slot in range(len(ips)):
            self.machine.warm_tlb(self.ctx, self._train_pages[slot].base)
        for iteration in range(3):
            for slot, ip in enumerate(ips):
                page = self._train_pages[slot]
                self.machine.load(
                    self.ctx, ip, page.line_addr(iteration * self.stride_lines)
                )

    def ip_for_index(self, index: int) -> int:
        """An attacker-code IP whose low 8 bits equal ``index``."""
        base = self._code_base
        return base + ((index - base) % 256)

    def _result(self, index: int | None) -> IPSearchResult:
        return IPSearchResult(
            index=index,
            syscalls_used=self._syscalls,
            groups_tested=self._groups,
            history=list(self._history),
        )
