"""AfterImage — the paper's primary contribution.

Attack building blocks and end-to-end attacks:

* :class:`TrainingGadget` — the Listing 6 mistraining gadget.
* :class:`Variant1CrossThread` / :class:`Variant1CrossProcess` — §5.1
  control-flow leakage via Prime+Probe / Flush+Reload.
* :class:`Variant2UserKernel` + :class:`IPSearcher` — §5.2 user→kernel
  leakage with the 8-bit IP-search technique.
* :class:`CovertChannel` — §5.3 cross-process covert channel.
* :class:`SGXControlFlowAttack` — §5.4 enclave secret extraction.
* :class:`TimingConstantRSAAttack` — §6.2 end-to-end key recovery via PSC.
* :class:`LoadTimingTracker` — §6.3 load-operation timing for power attacks.
"""

from repro.core.covert import CovertChannel, CovertRoundResult, decode_text, encode_text
from repro.core.detect import detect_stride, detect_stride_pairs, hot_pairs
from repro.core.gadget import MultiTargetTrainingGadget, TrainingGadget
from repro.core.ip_search import IPSearcher, IPSearchResult
from repro.core.load_tracker import LoadTimingTracker, OpenSSLRSAVictim, TrackerSample
from repro.core.sgx_attack import SGXControlFlowAttack, SGXCovertChannel
from repro.core.switch_leak import SwitchCaseLeak, SwitchLeakResult
from repro.core.tc_rsa_attack import BitObservation, TimingConstantRSAAttack
from repro.core.variant1 import (
    BranchLoadVictim,
    RoundResult,
    Variant1CrossProcess,
    Variant1CrossThread,
)
from repro.core.variant2 import Variant2UserKernel

__all__ = [
    "MultiTargetTrainingGadget",
    "TrainingGadget",
    "BranchLoadVictim",
    "RoundResult",
    "Variant1CrossThread",
    "Variant1CrossProcess",
    "Variant2UserKernel",
    "IPSearcher",
    "IPSearchResult",
    "CovertChannel",
    "CovertRoundResult",
    "encode_text",
    "decode_text",
    "SGXControlFlowAttack",
    "SGXCovertChannel",
    "SwitchCaseLeak",
    "SwitchLeakResult",
    "TimingConstantRSAAttack",
    "BitObservation",
    "LoadTimingTracker",
    "OpenSSLRSAVictim",
    "TrackerSample",
    "detect_stride",
    "detect_stride_pairs",
    "hot_pairs",
]
