"""AfterImage Variant 1 (paper §5.1): cross-thread / cross-process leakage.

Observation 1 of the paper: an IP-stride entry trained by IP1 is triggered
by any IP2 sharing its low 8 bits — even across threads or processes on the
same logical core, and even when IP2 presents a brand-new stride.

The attacker mistrains the prefetcher with the Listing 6 gadget (stride S1
aliasing the victim's if-path load, S2 aliasing the else-path load), lets
the victim execute its secret-dependent branch, and recovers the branch
direction from which stride's footprint appears:

* cross-thread (same address space): Prime+Probe over the 64 cache sets of
  the victim's data page — Figures 13a/13b;
* cross-process: Flush+Reload over a shared page — Figure 13c.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.channels.eviction_sets import EvictionSetBuilder
from repro.channels.flush_reload import FlushReload
from repro.channels.prime_probe import PrimeProbe, ProbeSample
from repro.core.detect import detect_stride
from repro.core.gadget import TrainingGadget, non_aliasing_ip
from repro.cpu.context import ThreadContext
from repro.cpu.machine import Machine
from repro.mmu.buffer import Buffer
from repro.params import LINES_PER_PAGE, PAGE_SIZE
from repro.utils.bits import low_bits
from repro.utils.rng import derive_rng

#: Default victim image base (pre-ASLR).
VICTIM_TEXT_BASE = 0x0040_0000

#: Offsets of the two branch-direction loads in the victim image
#: (arbitrary, but with distinct low-8 IP bits).
VICTIM_IF_OFFSET = 0x8E6
VICTIM_ELSE_OFFSET = 0x93A

#: Probe/prime delta (cycles) treated as "this set was touched by the
#: victim".  A genuine victim (or prefetch) insertion cascades through the
#: primed set's LRU stack, re-missing most of its ways (~12 x the
#: DRAM-vs-LLC gap >> 2000 cycles), while measurement spikes only shift a
#: set's total by a few hundred cycles; the threshold sits between the two.
PROBE_DELTA_THRESHOLD = 1000


class BranchLoadVictim:
    """The paper's Listing 1: one branch-dependent load per invocation.

    ``run(secret_bit, line)`` models::

        if (secret) char temp0 = array[address];   // load at if_ip
        else        char temp1 = array[address];   // load at else_ip
    """

    def __init__(self, machine: Machine, ctx: ThreadContext, data: Buffer) -> None:
        self.machine = machine
        self.ctx = ctx
        self.data = data
        code = machine.code_region(VICTIM_TEXT_BASE, name="victim-text")
        self.if_ip = code.place("victim_if_load", VICTIM_IF_OFFSET)
        self.else_ip = code.place("victim_else_load", VICTIM_ELSE_OFFSET)
        index_bits = machine.params.prefetcher.index_bits
        assert low_bits(self.if_ip, index_bits) != low_bits(self.else_ip, index_bits)

    def run(self, secret_bit: int, line: int) -> None:
        """Execute the branch for ``secret_bit``, loading ``data[line]``.

        The data page is TLB-warmed first — the paper's threat model
        assumes victim pages are TLB-resident (§2.2), as they are for
        streaming applications.
        """
        if secret_bit not in (0, 1):
            raise ValueError(f"secret bit must be 0 or 1, got {secret_bit}")
        vaddr = self.data.line_addr(line)
        self.machine.warm_tlb(self.ctx, vaddr)
        ip = self.if_ip if secret_bit else self.else_ip
        self.machine.load(self.ctx, ip, vaddr)


@dataclass
class RoundResult:
    """Outcome of one attack round."""

    true_bit: int
    inferred_bit: int | None
    victim_line: int
    hot_lines: list[int] = field(default_factory=list)
    probe_samples: list[ProbeSample] | None = None

    @property
    def success(self) -> bool:
        return self.inferred_bit == self.true_bit


class _Variant1Base:
    """Shared round bookkeeping for the two Variant 1 deployments."""

    def __init__(self, machine: Machine, s1_lines: int, s2_lines: int) -> None:
        self.machine = machine
        self.s1_lines = s1_lines
        self.s2_lines = s2_lines
        self._line_rng = derive_rng(machine.rng, "variant1-lines")

    def _pick_line(self, line: int | None) -> int:
        """Victim line for this round, leaving room for the larger stride."""
        limit = LINES_PER_PAGE - max(self.s1_lines, self.s2_lines) - 1
        if line is None:
            return int(self._line_rng.integers(0, limit))
        if not 0 <= line <= limit:
            raise ValueError(f"victim line must be in [0, {limit}]")
        return line

    def _infer(self, hot_lines: list[int]) -> int | None:
        stride = detect_stride(hot_lines, [self.s1_lines, self.s2_lines])
        if stride == self.s1_lines:
            return 1
        if stride == self.s2_lines:
            return 0
        return None


class Variant1CrossThread(_Variant1Base):
    """Same address space, Prime+Probe extraction (Figures 13a/13b).

    The attacker sandbox-executes in the victim's address space (the
    paper's first case, also assumed by many transient-execution attacks),
    so it can compute eviction sets for the victim page directly.
    """

    def __init__(
        self,
        machine: Machine,
        s1_lines: int = 7,
        s2_lines: int = 13,
        es_pool_pages: int = 12288,
    ) -> None:
        super().__init__(machine, s1_lines, s2_lines)
        space = machine.new_address_space("victim-process")
        self.victim_ctx = machine.new_thread("victim-thread", space)
        self.attacker_ctx = machine.new_thread("attacker-thread", space)
        data = machine.new_buffer(space, PAGE_SIZE, name="victim-array")
        self.victim = BranchLoadVictim(machine, self.victim_ctx, data)
        machine.context_switch(self.attacker_ctx)
        self.gadget = TrainingGadget(
            machine, self.attacker_ctx, self.victim.if_ip, self.victim.else_ip,
            s1_lines, s2_lines,
        )
        builder = EvictionSetBuilder(machine, self.attacker_ctx, pool_pages=es_pool_pages)
        eviction_sets = builder.build_for_page(self.attacker_ctx, data.base)
        probe_ip = non_aliasing_ip(
            0x0070_0000,
            self.gadget.monitored_indexes,
            machine.params.prefetcher.index_bits,
        )
        for es in eviction_sets:
            for vaddr in es.addresses:
                machine.warm_tlb(self.attacker_ctx, vaddr)
        self.prime_probe = PrimeProbe(machine, self.attacker_ctx, eviction_sets, probe_ip)

    def run_round(self, secret_bit: int, line: int | None = None) -> RoundResult:
        """One observation round: train → prime → victim → probe → classify."""
        line = self._pick_line(line)
        self.machine.context_switch(self.attacker_ctx)
        with self.machine.span("train"):
            self.gadget.train()
        with self.machine.span("prime"):
            self.prime_probe.prime()
        self.machine.context_switch(self.victim_ctx)
        with self.machine.span("victim"):
            self.victim.run(secret_bit, line)
        self.machine.context_switch(self.attacker_ctx)
        with self.machine.span("probe"):
            samples = self.prime_probe.probe()
        hot = [s.set_ordinal for s in samples if s.delta >= PROBE_DELTA_THRESHOLD]
        return RoundResult(
            true_bit=secret_bit,
            inferred_bit=self._infer(hot),
            victim_line=line,
            hot_lines=hot,
            probe_samples=samples,
        )


class Variant1CrossProcess(_Variant1Base):
    """Separate address spaces, Flush+Reload over a shared page (Fig. 13c).

    The shared page models a shared library page (the paper creates it with
    ``mmap(MAP_SHARED)``, §7.1).  Prime+Probe is *not* used here: the paper
    found context-switch noise touches over half the eviction sets (§5.1);
    the same effect is visible in this model if one swaps the channel.
    """

    def __init__(self, machine: Machine, s1_lines: int = 7, s2_lines: int = 13) -> None:
        super().__init__(machine, s1_lines, s2_lines)
        self.victim_ctx = machine.new_thread("victim-process")
        self.attacker_ctx = machine.new_thread("attacker-process")
        shared_victim = machine.new_buffer(
            self.victim_ctx.space, PAGE_SIZE, name="shared-lib-page"
        )
        self.shared_attacker = machine.share_buffer(
            Buffer(shared_victim.mapping), self.attacker_ctx.space, name="shared-lib-page"
        )
        self.victim = BranchLoadVictim(machine, self.victim_ctx, shared_victim)
        machine.context_switch(self.attacker_ctx)
        self.gadget = TrainingGadget(
            machine, self.attacker_ctx, self.victim.if_ip, self.victim.else_ip,
            s1_lines, s2_lines,
        )
        reload_ip = non_aliasing_ip(
            0x0071_0000,
            self.gadget.monitored_indexes,
            machine.params.prefetcher.index_bits,
        )
        self.flush_reload = FlushReload(
            machine,
            self.attacker_ctx,
            self.shared_attacker,
            reload_ip,
            avoid_ip_indexes=self.gadget.monitored_indexes,
        )
        machine.warm_buffer_tlb(self.attacker_ctx, self.shared_attacker)

    def run_round(self, secret_bit: int, line: int | None = None) -> RoundResult:
        """One observation round: train → flush → victim → reload → classify."""
        line = self._pick_line(line)
        self.machine.context_switch(self.attacker_ctx)
        with self.machine.span("train"):
            self.gadget.train()
        with self.machine.span("flush"):
            self.flush_reload.flush()
        self.machine.context_switch(self.victim_ctx)
        with self.machine.span("victim"):
            self.victim.run(secret_bit, line)
        self.machine.context_switch(self.attacker_ctx)
        with self.machine.span("reload"):
            hot = self.flush_reload.hit_lines()
        return RoundResult(
            true_bit=secret_bit,
            inferred_bit=self._infer(hot),
            victim_line=line,
            hot_lines=hot,
        )

    def reload_samples(self, secret_bit: int, line: int | None = None):
        """Run a round but return the raw reload samples (Figure 13c data)."""
        line = self._pick_line(line)
        self.machine.context_switch(self.attacker_ctx)
        with self.machine.span("train"):
            self.gadget.train()
        with self.machine.span("flush"):
            self.flush_reload.flush()
        self.machine.context_switch(self.victim_ctx)
        with self.machine.span("victim"):
            self.victim.run(secret_bit, line)
        self.machine.context_switch(self.attacker_ctx)
        with self.machine.span("reload"):
            return self.flush_reload.reload()
