"""End-to-end key recovery from timing-constant RSA via PSC (paper §6.2).

The victim is the Montgomery-ladder engine (MbedTLS shape, Figure 3): both
branch directions perform the same number of multiplies and loads, so the
classic timing attack is blocked — but the operand loads of the two
directions sit at *different IPs*, which AfterImage distinguishes.

Per key bit (Figure 12's timeline):

1. the attacker (re)trains the prefetcher entry aliasing the *if-path* load
   with a private stride, then calls ``sched_yield()``;
2. the victim advances its decryption by one ladder step and yields back;
3. the attacker performs the PSC check: a **miss** on its would-be prefetch
   target means the victim's if-path load rewrote the entry → the key bit
   is 1; a **hit** means the entry survived → bit 0.

Each bit is observed over several decryption passes and majority-voted —
the paper needs at most 5 iterations per bit at PSC's 82 % single-shot
success rate (§7.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.channels.psc import PrefetcherStatusCheck
from repro.cpu.machine import Machine
from repro.crypto.primes import RSAKey
from repro.crypto.rsa import MontgomeryLadderVictim, TimingConstantLadderVictim
from repro.params import PAGE_SIZE
from repro.utils.bits import low_bits
from repro.utils.rng import derive_rng

#: Wall-clock the artifact observes per observation iteration (≈2.2 s:
#: victim decryption + scheduler synchronization; the paper reports "at
#: most 5 iterations (about 10 seconds) to leak one bit").  Used only to
#: *project* the paper's 188-minute full-key figure; see EXPERIMENTS.md.
ARTIFACT_SECONDS_PER_ITERATION = 2.2


@dataclass
class BitObservation:
    """PSC observations for one key-bit position."""

    bit_index: int
    votes: list[int] = field(default_factory=list)
    latencies: list[int] = field(default_factory=list)
    erasures: int = 0

    @property
    def attempts(self) -> int:
        """Observation iterations spent on this bit (incl. discarded ones)."""
        return len(self.votes) + self.erasures

    @property
    def decided_bit(self) -> int:
        if not self.votes:
            raise ValueError("no usable votes recorded")
        return 1 if sum(self.votes) * 2 >= len(self.votes) else 0


@dataclass
class KeyRecoveryResult:
    """Outcome of a full private-exponent recovery."""

    recovered_bits: list[int]
    true_bits: list[int]
    observations: list[BitObservation]
    passes: int
    simulated_seconds: float

    @property
    def bit_errors(self) -> int:
        return sum(1 for r, t in zip(self.recovered_bits, self.true_bits) if r != t)

    @property
    def exact(self) -> bool:
        return self.bit_errors == 0

    @property
    def recovered_exponent(self) -> int:
        value = 0
        for bit in self.recovered_bits:
            value = (value << 1) | bit
        return value

    def projected_minutes_for_bits(self, n_bits: int = 1024, iters_per_bit: int = 5) -> float:
        """Project the paper's wall-clock using the artifact's per-iteration
        latency (the paper: 1024 bits × ≤5 iterations ≈ 188 minutes)."""
        return n_bits * iters_per_bit * ARTIFACT_SECONDS_PER_ITERATION / 60.0


class TimingConstantRSAAttack:
    """Attacker thread recovering a ladder victim's exponent bit-by-bit."""

    #: Probability that a ``sched_yield()`` hand-off slips a slot and the
    #: victim advances two ladder steps before the attacker's next check.
    #: The attacker detects the slip (the victim's turn visibly lasted two
    #: quanta) and discards the observation for both covered bits.  This is
    #: the dominant noise of the real attack — PSC itself is nearly
    #: deterministic — and calibrates the single-shot success rate to the
    #: paper's 82 % (§7.3), which is why multiple iterations per bit are
    #: needed.
    DEFAULT_SYNC_SLIP_PROB = 0.10

    def __init__(
        self,
        machine: Machine,
        key: RSAKey,
        stride_lines: int = 7,
        timing_constant: bool = True,
        sync_slip_prob: float | None = None,
    ) -> None:
        self.machine = machine
        self.key = key
        self.sync_slip_prob = (
            self.DEFAULT_SYNC_SLIP_PROB if sync_slip_prob is None else sync_slip_prob
        )
        self._slip_rng = derive_rng(machine.rng, "rsa-sync")
        space = machine.new_address_space("rsa-process")
        self.victim_ctx = machine.new_thread("rsa-victim", space)
        self.attacker_ctx = machine.new_thread("rsa-attacker")
        operands = machine.new_buffer(space, 4 * PAGE_SIZE, name="rsa-operands")
        victim_cls = TimingConstantLadderVictim if timing_constant else MontgomeryLadderVictim
        code = machine.code_region(0x0040_0000, name="mbedtls-bignum")
        self.victim = victim_cls(machine, self.victim_ctx, code, operands)

        machine.context_switch(self.attacker_ctx)
        train_buffer = machine.new_buffer(
            self.attacker_ctx.space, 16 * PAGE_SIZE, name="psc-train"
        )
        # The attacker's training IP aliases the victim's if-path load
        # (obtained by objdump in the paper; here from the code region).
        train_ip = 0x0068_0000
        index_bits = machine.params.prefetcher.index_bits
        train_ip += (self.victim.if_load_ip - train_ip) % (1 << index_bits)
        assert low_bits(train_ip, index_bits) == low_bits(self.victim.if_load_ip, index_bits)
        self.psc = PrefetcherStatusCheck(
            machine, self.attacker_ctx, train_ip, train_buffer, stride_lines
        )

    # ------------------------------------------------------------------ #

    def observe_pass(
        self, ciphertext: int, n_bits: int | None = None
    ) -> list[tuple[int | None, int]]:
        """One full decryption with a PSC observation per ladder step.

        Returns ``(vote, latency)`` per bit, MSB first; a vote of ``None``
        is an erasure — the scheduler slipped and the check covered two
        ladder steps, so the attacker discards it.  ``n_bits`` limits the
        observation to the first bits (for figures and quick tests).
        """
        self.machine.context_switch(self.victim_ctx)
        self.victim.start(ciphertext, self.key.d, self.key.n)
        votes: list[tuple[int, int]] = []
        while self.victim.running:
            if n_bits is not None and len(votes) >= n_bits:
                # Let the victim finish without observation.
                self.machine.context_switch(self.victim_ctx)
                self.victim.run_to_completion()
                break
            self.machine.context_switch(self.attacker_ctx)
            with self.machine.span("train"):
                self.psc.train()
            self.machine.context_switch(self.victim_ctx)  # sched_yield()
            steps = 1
            if self._slip_rng.random() < self.sync_slip_prob and self.victim.running:
                # Scheduler slip: the victim gets two slices back-to-back.
                steps = 2
            consumed = 0
            with self.machine.span("victim"):
                for _ in range(steps):
                    if not self.victim.running:
                        break
                    self.victim.step()
                    consumed += 1
            self.machine.context_switch(self.attacker_ctx)  # victim yields back
            with self.machine.span("check"):
                observation = self.psc.check()
            # A slipped observation covers two ladder steps; the attacker
            # notices the double-length victim turn and discards the vote.
            vote: int | None
            if consumed == 1:
                vote = 1 if observation.victim_executed else 0
            else:
                vote = None
            for _ in range(consumed):
                votes.append((vote, observation.latency))
        return votes

    def recover_key_bits(
        self,
        ciphertext: int,
        n_bits: int | None = None,
        passes: int = 3,
        max_passes: int = 11,
        margin: int = 2,
    ) -> KeyRecoveryResult:
        """Majority-vote recovery with adaptive repetition.

        At least ``passes`` decryptions are observed; extra passes (up to
        ``max_passes``) run while any bit's vote lead is below ``margin`` —
        the paper's "multiple iterations per bit are needed because the
        success rate of AfterImage-PSC (82 %) is slightly lower than
        AfterImage-Cache" (§7.3).
        """
        if passes < 1:
            raise ValueError("need at least one pass")
        if max_passes < passes:
            raise ValueError("max_passes must be >= passes")
        start_cycles = self.machine.cycles
        true_bits = self._true_bits(n_bits)
        observations = [BitObservation(bit_index=i) for i in range(len(true_bits))]
        done_passes = 0
        while done_passes < max_passes:
            for obs, (vote, latency) in zip(
                observations, self.observe_pass(ciphertext, n_bits=len(true_bits))
            ):
                if vote is None:
                    obs.erasures += 1
                else:
                    obs.votes.append(vote)
                obs.latencies.append(latency)
            done_passes += 1
            if done_passes >= passes and all(
                obs.votes and abs(2 * sum(obs.votes) - len(obs.votes)) >= margin
                for obs in observations
            ):
                break
        recovered = [obs.decided_bit for obs in observations]
        return KeyRecoveryResult(
            recovered_bits=recovered,
            true_bits=true_bits,
            observations=observations,
            passes=done_passes,
            simulated_seconds=(self.machine.cycles - start_cycles)
            / self.machine.params.frequency_hz,
        )

    def _true_bits(self, n_bits: int | None) -> list[int]:
        d = self.key.d
        bits = [(d >> i) & 1 for i in range(d.bit_length() - 1, -1, -1)]
        if n_bits is not None:
            bits = bits[:n_bits]
        return bits
