"""Stride detection in channel observations.

After the victim runs, the attacker's channel yields a set of "hot" lines
(cache hits for Flush+Reload, high probe-prime deltas for Prime+Probe).
The secret is encoded as the *distance* between the victim's demand line
and its prefetched companion; these helpers find that distance, tolerant of
stray noise lines.
"""

from __future__ import annotations

from collections.abc import Sequence


def hot_pairs(hot_lines: Sequence[int], stride: int) -> list[tuple[int, int]]:
    """All pairs of hot lines exactly ``stride`` apart."""
    if stride <= 0:
        raise ValueError(f"stride must be positive, got {stride}")
    present = set(hot_lines)
    return [(line, line + stride) for line in sorted(present) if line + stride in present]


def detect_stride(hot_lines: Sequence[int], candidate_strides: Sequence[int]) -> int | None:
    """The candidate stride best supported by ``hot_lines``.

    Scoring exploits the full microarchitectural signature of a victim
    access at line ``a``: the demand line ``a`` itself, the prefetched line
    ``a + stride`` and — because the demand access missed to DRAM — the
    buddy line ``a ^ 1`` fetched by the adjacent (DPL) prefetcher.  An
    anchored triple scores higher than a bare pair, so stray noise pairs
    (context-switch traffic that happens to land ``stride`` lines apart)
    lose against the real pattern.  Returns ``None`` when no candidate
    matches or the best score is tied — callers treat that as a failed
    round and retry, as the paper's repeated rounds do.
    """
    present = set(hot_lines)
    best_stride: int | None = None
    best_score = 0
    tie = False
    for stride in candidate_strides:
        score = 0
        for a, _b in hot_pairs(hot_lines, stride):
            pair_score = 2 + (1 if (a ^ 1) in present else 0)
            score = max(score, pair_score)
        if score > best_score:
            best_stride, best_score, tie = stride, score, False
        elif score == best_score and score > 0:
            tie = True
    if tie or best_score == 0:
        return None
    return best_stride


def detect_stride_pairs(
    hot_lines: Sequence[int], candidate_strides: Sequence[int]
) -> dict[int, list[tuple[int, int]]]:
    """Map of candidate stride → its matching hot-line pairs (diagnostics)."""
    return {s: hot_pairs(hot_lines, s) for s in candidate_strides}
