"""Tracking load-operation timing in OpenSSL-RSA via PSC (paper §6.3).

Power attacks need to know *when* the interesting operation (key load, AES
S-box, RSA multiply-add) happens so the power trace can be sampled at the
right cycle.  AfterImage provides that marker: the attacker trains the
entry aliasing the interesting load once, then polls the prefetcher status
at fine granularity (one ``sched_yield()`` per victim work slice).  The
poll latency stream (Figure 15) is flat-low while the victim is idle and
shows a characteristic double miss when the monitored load executes — one
miss for the clobbered entry, one more because the entry needs a full
retraining step before it triggers again (§4.2's update policy).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.channels.psc import PrefetcherStatusCheck
from repro.cpu.context import ThreadContext
from repro.cpu.machine import Machine
from repro.params import PAGE_SIZE
from repro.utils.bits import low_bits


class VictimPhase(enum.Enum):
    """Lifecycle of one OpenSSL-RSA decryption."""

    IDLE = "idle"
    KEY_LOAD = "key-load"
    DECRYPT = "decrypt"
    DONE = "done"


class OpenSSLRSAVictim:
    """Phased RSA victim: idle → key load → decrypt → idle.

    ``work_slice()`` advances one scheduling slice; the key-load slice
    performs the byte-wise private-key loads (one IP), and each decrypt
    slice performs one multiply-add's operand load (another IP).  Those two
    IPs are the §6.3 tracking targets.
    """

    KEY_LOAD_OFFSET = 0x31C6
    DECRYPT_OFFSET = 0x3852

    def __init__(
        self,
        machine: Machine,
        ctx: ThreadContext,
        idle_slices: int = 6,
        decrypt_slices: int = 8,
        key_lines: int = 16,
    ) -> None:
        self.machine = machine
        self.ctx = ctx
        code = machine.code_region(0x0041_0000, name="openssl-libcrypto")
        self.key_load_ip = code.place("rsa_key_load", self.KEY_LOAD_OFFSET)
        self.decrypt_ip = code.place("rsa_multiply_add_load", self.DECRYPT_OFFSET)
        self.key_buffer = machine.new_buffer(ctx.space, PAGE_SIZE, name="rsa-key")
        self.work_buffer = machine.new_buffer(ctx.space, PAGE_SIZE, name="rsa-work")
        self.idle_slices = idle_slices
        self.decrypt_slices = decrypt_slices
        self.key_lines = key_lines
        self._slice = 0
        self.phase_log: list[VictimPhase] = []

    @property
    def total_slices(self) -> int:
        return 2 * self.idle_slices + 1 + self.decrypt_slices

    def phase_of_slice(self, index: int) -> VictimPhase:
        if index < self.idle_slices:
            return VictimPhase.IDLE
        if index == self.idle_slices:
            return VictimPhase.KEY_LOAD
        if index <= self.idle_slices + self.decrypt_slices:
            return VictimPhase.DECRYPT
        if index < self.total_slices:
            return VictimPhase.IDLE
        return VictimPhase.DONE

    def work_slice(self) -> VictimPhase:
        """Run one scheduling slice of victim work."""
        phase = self.phase_of_slice(self._slice)
        self.phase_log.append(phase)
        if phase is VictimPhase.KEY_LOAD:
            for i in range(self.key_lines):
                vaddr = self.key_buffer.line_addr(i)
                self.machine.warm_tlb(self.ctx, vaddr)
                self.machine.load(self.ctx, self.key_load_ip, vaddr)
        elif phase is VictimPhase.DECRYPT:
            step = self._slice - self.idle_slices - 1
            vaddr = self.work_buffer.line_addr((5 * step) % self.work_buffer.n_lines)
            self.machine.warm_tlb(self.ctx, vaddr)
            self.machine.load(self.ctx, self.decrypt_ip, vaddr)
        else:
            self.machine.advance(20_000)  # idle compute
        self._slice += 1
        return phase


@dataclass(frozen=True)
class TrackerSample:
    """One PSC poll of the tracker."""

    poll_index: int
    latency: int
    prefetcher_triggered: bool
    victim_phase: VictimPhase


class LoadTimingTracker:
    """Fine-grained PSC polling of one victim load IP (Figure 15)."""

    def __init__(
        self,
        machine: Machine,
        victim: OpenSSLRSAVictim,
        target: str = "key-load",
        stride_lines: int = 7,
    ) -> None:
        if target not in ("key-load", "decrypt"):
            raise ValueError(f"target must be 'key-load' or 'decrypt', got {target!r}")
        self.machine = machine
        self.victim = victim
        self.target = target
        target_ip = victim.key_load_ip if target == "key-load" else victim.decrypt_ip
        self.attacker_ctx = machine.new_thread("tracker-attacker")
        machine.context_switch(self.attacker_ctx)
        train_buffer = machine.new_buffer(
            self.attacker_ctx.space, 32 * PAGE_SIZE, name="tracker-train"
        )
        index_bits = machine.params.prefetcher.index_bits
        train_ip = 0x0069_0000
        train_ip += (target_ip - train_ip) % (1 << index_bits)
        assert low_bits(train_ip, index_bits) == low_bits(target_ip, index_bits)
        self.psc = PrefetcherStatusCheck(
            machine, self.attacker_ctx, train_ip, train_buffer, stride_lines
        )

    def track(self) -> list[TrackerSample]:
        """Poll once per victim slice for a full victim run.

        §6.3: "instead of training the prefetcher before each detection, we
        solely mistrain it before the victim runs" — the poll loads keep the
        entry alive by construction; only the victim's target load disturbs
        it.
        """
        self.machine.context_switch(self.attacker_ctx)
        with self.machine.span("train"):
            self.psc.train()
        samples: list[TrackerSample] = []
        for poll in range(self.victim.total_slices):
            self.machine.context_switch(self.victim.ctx)  # sched_yield()
            with self.machine.span("victim"):
                phase = self.victim.work_slice()
            self.machine.context_switch(self.attacker_ctx)
            with self.machine.span("check"):
                observation = self.psc.check()
            samples.append(
                TrackerSample(
                    poll_index=poll,
                    latency=observation.latency,
                    prefetcher_triggered=observation.prefetcher_triggered,
                    victim_phase=phase,
                )
            )
        return samples
