"""AfterImage against SGX (paper §5.4, Figure 10, §A.8).

The enclave's secret selects its loop stride (3 vs 5 lines over a buffer it
shares with the untrusted zone).  The untrusted attacker flushes the
buffer, performs the ECALL, then times exactly two lines:

* line 24 = 3 × 8 — the last prefetch if the stride was 3,
* line 40 = 5 × 8 — the last prefetch if the stride was 5.

Neither line is demand-touched by the other stride's loop (24 is not a
multiple of 5 within reach; 40 is not a multiple of 3 within reach), so
whichever is cached names the stride — and hence the secret.  The same
mechanism with the branch removed is the SGX covert channel.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.channels.thresholds import classify_hit
from repro.core.gadget import non_aliasing_ip
from repro.cpu.machine import Machine
from repro.params import PAGE_SIZE
from repro.sgx.enclave import StrideSecretEnclave
from repro.utils.bits import low_bits


@dataclass(frozen=True)
class SGXRoundResult:
    """One enclave observation (Figure 10's Time1/Time2)."""

    time1: int  # latency of line stride_if_set * 8
    time2: int  # latency of line stride_if_clear * 8
    inferred_secret: int | None
    true_secret: int

    @property
    def success(self) -> bool:
        return self.inferred_secret == self.true_secret


class SGXCovertChannel:
    """The §5.4 covert variant: the enclave *wants* to exfiltrate.

    "The in-enclave thread can train the prefetcher with two alternative
    strides to represent 1 or 0.  The receiver in the untrusted zone can
    access the prefetched cache line to determine if the relevant stride
    (X1 or X2 in Figure 10) is triggered."  Implemented by rebuilding the
    sender enclave per bit; the receiving side is identical to the side
    channel's check.
    """

    def __init__(self, machine: Machine, seed_base: int = 0) -> None:
        self.machine = machine
        self._seed_base = seed_base
        self._bits_sent = 0

    def send_and_receive(self, bit: int) -> int | None:
        """Transmit one bit out of the enclave; returns the received bit."""
        if bit not in (0, 1):
            raise ValueError(f"bit must be 0 or 1, got {bit}")
        attack = SGXControlFlowAttack(self.machine, secret=bit)
        self._bits_sent += 1
        result = attack.run_round()
        return result.inferred_secret

    def transmit(self, bits: list[int]) -> list[int | None]:
        """Transmit a bit string; returns what the untrusted zone decoded."""
        return [self.send_and_receive(bit) for bit in bits]


class SGXControlFlowAttack:
    """Untrusted-zone attacker against :class:`StrideSecretEnclave`."""

    def __init__(self, machine: Machine, secret: int) -> None:
        self.machine = machine
        self.enclave = StrideSecretEnclave(machine, secret=secret)
        self.attacker_ctx = machine.new_thread("untrusted-zone")
        machine.context_switch(self.attacker_ctx)
        self.buffer = machine.new_buffer(
            self.attacker_ctx.space, PAGE_SIZE, name="sgx-shared-buffer"
        )
        machine.warm_buffer_tlb(self.attacker_ctx, self.buffer)
        index_bits = machine.params.prefetcher.index_bits
        enclave_index = low_bits(self.enclave.load_ip, index_bits)
        self.probe_ip = non_aliasing_ip(0x0073_0000, {enclave_index}, index_bits)
        s_if = StrideSecretEnclave.STRIDE_IF_SECRET_SET
        s_else = StrideSecretEnclave.STRIDE_IF_SECRET_CLEAR
        n = StrideSecretEnclave.N_TRAIN_LOADS
        self.check_line_if_set = s_if * n  # 24
        self.check_line_if_clear = s_else * n  # 40

    def run_round(self) -> SGXRoundResult:
        """Flush → ECALL → time the two candidate prefetched lines."""
        self.machine.context_switch(self.attacker_ctx)
        for line in range(self.buffer.n_lines):
            self.machine.clflush(self.attacker_ctx, self.buffer.line_addr(line))
        self.enclave.run(self.attacker_ctx, self.buffer)
        # The EEXIT switch flushed our TLB; re-warm so the timed probes
        # measure cache residency, not a page walk.
        self.machine.warm_buffer_tlb(self.attacker_ctx, self.buffer)
        time1 = self.machine.load(
            self.attacker_ctx,
            self.probe_ip,
            self.buffer.line_addr(self.check_line_if_set),
            fenced=True,
        )
        time2 = self.machine.load(
            self.attacker_ctx,
            self.probe_ip + 8,
            self.buffer.line_addr(self.check_line_if_clear),
            fenced=True,
        )
        threshold = self.machine.hit_threshold()
        hit1 = classify_hit(time1, threshold)
        hit2 = classify_hit(time2, threshold)
        if hit1 and not hit2:
            inferred: int | None = 1
        elif hit2 and not hit1:
            inferred = 0
        else:
            inferred = None
        return SGXRoundResult(
            time1=time1,
            time2=time2,
            inferred_secret=inferred,
            true_secret=self.enclave.secret,
        )
