"""AfterImage Variant 2 (paper §5.2): leaking kernel branches to user space.

Observation 2 of the paper: trained IP-stride entries are retained across
user/kernel privilege switches.  The attacker:

1. finds the prefetcher index of the syscall's branch-guarded load with
   :class:`~repro.core.ip_search.IPSearcher` (KASLR does not disturb the
   low 8 bits);
2. trains that index with a recognizable stride (the paper uses 11);
3. flushes the shared ``memory_space``, invokes the syscall, and reloads:
   a hit pair at the trained stride means the kernel took the branch.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field

from repro.channels.flush_reload import FlushReload
from repro.core.detect import hot_pairs
from repro.core.ip_search import IPSearcher, IPSearchResult
from repro.cpu.machine import Machine
from repro.kernel.syscalls import Kernel, VulnerableSyscall
from repro.params import PAGE_SIZE
from repro.utils.bits import low_bits


@dataclass
class KernelRoundResult:
    """One user→kernel observation round."""

    true_taken: bool
    inferred_taken: bool
    demand_line: int
    hot_lines: list[int] = field(default_factory=list)

    @property
    def success(self) -> bool:
        return self.inferred_taken == self.true_taken


class Variant2UserKernel:
    """End-to-end Variant 2 against the Listing 7 vulnerable syscall."""

    def __init__(
        self,
        machine: Machine,
        secret_source: Callable[[], int],
        stride_lines: int = 11,
    ) -> None:
        self.machine = machine
        self.stride_lines = stride_lines
        self.kernel = Kernel(machine)
        self.syscall = VulnerableSyscall(self.kernel, secret_source)
        self.attacker_ctx = machine.new_thread("attacker-process")
        machine.context_switch(self.attacker_ctx)
        # The memory_space the attacker passes into the kernel.
        self.memory_space = machine.new_buffer(
            self.attacker_ctx.space, PAGE_SIZE, name="memory_space"
        )
        machine.warm_buffer_tlb(self.attacker_ctx, self.memory_space)
        self.syscall.share_user_buffer(self.memory_space)

        reload_ip = 0x0072_0000
        self.flush_reload = FlushReload(
            machine, self.attacker_ctx, self.memory_space, reload_ip
        )
        self.searcher = IPSearcher(
            machine,
            self.attacker_ctx,
            trigger=self._trigger_syscall,
            shared=self.memory_space,
            flush_reload=self.flush_reload,
            stride_lines=stride_lines,
        )
        self._train_page = machine.new_buffer(
            self.attacker_ctx.space, PAGE_SIZE, name="v2-train"
        )
        machine.warm_buffer_tlb(self.attacker_ctx, self._train_page)
        self._target_index: int | None = None
        self._search_result: IPSearchResult | None = None

    # ------------------------------------------------------------------ #

    def _trigger_syscall(self, demand_line: int) -> None:
        self.syscall.invoke(self.attacker_ctx, self.memory_space, demand_line)

    def find_target_index(self, demand_line: int = 20) -> IPSearchResult:
        """Run the §5.2 IP search; caches the found index for run_round."""
        with self.machine.span("ip-search"):
            result = self.searcher.search(demand_line)
        self._search_result = result
        self._target_index = result.index
        return result

    @property
    def true_target_index(self) -> int:
        """Ground truth (white-box) — used by tests to validate the search."""
        return low_bits(self.syscall.load_ip, self.machine.params.prefetcher.index_bits)

    def use_target_index(self, index: int) -> None:
        """Pin the index to train — the white-box fallback for harnesses
        that must run measurement rounds even on seeds where the §5.2
        search comes up empty."""
        self._target_index = index

    def run_round(self, demand_line: int = 20) -> KernelRoundResult:
        """One attack round against the live syscall.

        The syscall decides its own secret (Listing 7's ``num = random()``);
        ground truth is taken from the kernel's execution log for scoring.
        """
        if self._target_index is None:
            raise RuntimeError("run find_target_index() before attacking")
        self.machine.context_switch(self.attacker_ctx)
        with self.machine.span("train"):
            self._train_target()
        with self.machine.span("flush"):
            self.flush_reload.flush()
        with self.machine.span("syscall"):
            self._trigger_syscall(demand_line)
        with self.machine.span("reload"):
            hits = self.flush_reload.hit_lines()
        inferred = bool(hot_pairs(hits, self.stride_lines))
        return KernelRoundResult(
            true_taken=self.syscall.executions[-1],
            inferred_taken=inferred,
            demand_line=demand_line,
            hot_lines=hits,
        )

    def reload_samples_after_round(self, demand_line: int = 20):
        """Raw reload samples for one round (the Figure 14a series)."""
        if self._target_index is None:
            raise RuntimeError("run find_target_index() before attacking")
        self.machine.context_switch(self.attacker_ctx)
        self._train_target()
        self.flush_reload.flush()
        self._trigger_syscall(demand_line)
        return self.flush_reload.reload()

    def _train_target(self) -> None:
        assert self._target_index is not None
        ip = self.searcher.ip_for_index(self._target_index)
        self.machine.warm_tlb(self.attacker_ctx, self._train_page.base)
        for i in range(3):
            self.machine.load(
                self.attacker_ctx, ip, self._train_page.line_addr(i * self.stride_lines)
            )
