"""Leaking N-way control flow (switch statements) via PSC.

The paper's motivating kernel examples are not two-way branches but
*switches*: the Bluetooth TX path (Figure 1, three arms) and the battery
property getter (Figure 2, four arms), each arm performing a load at its
own IP.  AfterImage generalizes naturally: train one prefetcher entry per
arm, let the victim run, and the single disturbed entry names the arm —
log2(N) bits per observation instead of one.

This module packages that pattern as :class:`SwitchCaseLeak`, usable
against any victim exposing per-arm load IPs (the
:mod:`repro.kernel.patterns` syscalls, or any user-space dispatch table).
"""

from __future__ import annotations

from collections.abc import Callable, Mapping
from dataclasses import dataclass, field

from repro.cpu.context import ThreadContext
from repro.cpu.machine import Machine
from repro.params import PAGE_SIZE
from repro.utils.bits import low_bits

#: Strides assigned to successive arms: primes above the companion
#: prefetchers' reach (§7.1), pairwise distinct.
ARM_STRIDES = (7, 11, 13, 17, 19, 23, 29, 31)


@dataclass
class SwitchLeakResult:
    """One observation of the victim's switch."""

    true_arm: str | None
    inferred_arm: str | None
    disturbed_arms: list[str] = field(default_factory=list)

    @property
    def success(self) -> bool:
        return self.true_arm is not None and self.inferred_arm == self.true_arm


class SwitchCaseLeak:
    """Train one aliasing entry per switch arm; the clobbered one leaks.

    ``case_ips`` maps arm names to the victim's per-arm load IPs.  All arms
    must land on distinct prefetcher indexes (true for compiler-emitted
    switch arms, whose loads are distinct instructions); otherwise the
    colliding arms are indistinguishable and the constructor refuses.
    """

    def __init__(
        self,
        machine: Machine,
        attacker_ctx: ThreadContext,
        case_ips: Mapping[str, int],
        gadget_base: int = 0x0067_0000,
    ) -> None:
        if not case_ips:
            raise ValueError("need at least one switch arm")
        if len(case_ips) > len(ARM_STRIDES):
            raise ValueError(f"at most {len(ARM_STRIDES)} arms supported")
        index_bits = machine.params.prefetcher.index_bits
        indexes = {low_bits(ip, index_bits) for ip in case_ips.values()}
        if len(indexes) != len(case_ips):
            raise ValueError("switch arms alias each other in the prefetcher index")
        self.machine = machine
        self.ctx = attacker_ctx
        base = machine.aslr.randomize_base(gadget_base)
        self._arms: dict[str, tuple[int, int, object]] = {}
        for (name, target_ip), stride in zip(case_ips.items(), ARM_STRIDES):
            train_ip = base + ((target_ip - base) % (1 << index_bits))
            while any(train_ip == ip for ip, _s, _b in self._arms.values()):
                train_ip += 1 << index_bits
            buffer = machine.new_buffer(attacker_ctx.space, PAGE_SIZE, name=f"arm-{name}")
            self._arms[name] = (train_ip, stride, buffer)

    @property
    def arms(self) -> list[str]:
        return list(self._arms)

    def train(self) -> None:
        """Saturate one entry per arm (3 strided loads each)."""
        for train_ip, stride, buffer in self._arms.values():
            self.machine.warm_tlb(self.ctx, buffer.base)
            for i in range(3):
                self.machine.load(self.ctx, train_ip, buffer.line_addr(i * stride))

    def observe(self) -> list[str]:
        """PSC over every arm's entry; returns the disturbed arms."""
        disturbed = []
        for name, (train_ip, _stride, _buffer) in self._arms.items():
            entry = self.machine.ip_stride.entry_for_ip(train_ip)
            if entry is None or entry.confidence < self.machine.params.prefetcher.prefetch_threshold:
                disturbed.append(name)
        return disturbed

    def run_round(
        self, run_victim: Callable[[], str | None], retrain: bool = True
    ) -> SwitchLeakResult:
        """Train → victim → observe.  ``run_victim`` executes the victim's
        switch and returns the ground-truth arm (for scoring)."""
        if retrain:
            self.train()
        true_arm = run_victim()
        disturbed = self.observe()
        inferred = disturbed[0] if len(disturbed) == 1 else None
        return SwitchLeakResult(
            true_arm=true_arm, inferred_arm=inferred, disturbed_arms=disturbed
        )

    def run_with_retries(
        self, run_victim: Callable[[], str | None], attempts: int = 3
    ) -> SwitchLeakResult:
        """Repeat the observation and intersect the disturbed sets.

        With N trained entries the kernel path's data-dependent loads also
        clobber arms occasionally (each variable-IP load aliases a given
        arm with probability 1/256); the victim's arm is disturbed in
        *every* repeat, the noise arms vary.  Appropriate whenever the
        victim re-executes the same switch (polled battery properties,
        per-packet Bluetooth statistics).
        """
        if attempts < 1:
            raise ValueError("need at least one attempt")
        surviving: set[str] | None = None
        true_arm: str | None = None
        last: SwitchLeakResult | None = None
        for _ in range(attempts):
            last = self.run_round(run_victim)
            true_arm = last.true_arm
            observed = set(last.disturbed_arms)
            surviving = observed if surviving is None else (surviving & observed)
            if len(surviving) == 1:
                break
        assert last is not None and surviving is not None
        inferred = next(iter(surviving)) if len(surviving) == 1 else None
        return SwitchLeakResult(
            true_arm=true_arm, inferred_arm=inferred, disturbed_arms=sorted(surviving)
        )
