"""``python -m repro``: the ``afterimage`` CLI without the console script.

Useful from a bare checkout (``PYTHONPATH=src python -m repro ...``) and
in CI jobs that never ``pip install`` the package.
"""

import sys

from repro.cli import main

if __name__ == "__main__":
    sys.exit(main())
