"""Programmatic reproduction report: run the headline experiments and
render a paper-vs-measured markdown table (the `afterimage report`
command).  A lighter, automated companion to EXPERIMENTS.md.

Attack rows are driven by the :mod:`repro.attacks` registry through the
declarative :data:`ATTACK_ROWS` table — one entry per registered attack,
kept in sync with :func:`repro.attacks.attack_names` by a test — so a
newly registered attack shows up here (or fails the sync test) instead of
being silently missing.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass
from typing import Any

from repro.attacks.trial import TrialBatch
from repro.params import MachineParams


@dataclass(frozen=True)
class ReportRow:
    """One reproduced result."""

    experiment: str
    paper: str
    measured: str
    in_band: bool


@dataclass(frozen=True)
class AttackRow:
    """How one registered attack renders as a report row."""

    experiment: str
    paper: str
    rounds: Callable[[int, bool], int]
    options: Callable[[bool], dict[str, Any]]
    measured: Callable[[TrialBatch], str]
    in_band: Callable[[TrialBatch], bool]


def _no_options(quick: bool) -> dict[str, Any]:
    return {}


def _rate(batch: TrialBatch) -> str:
    return f"{batch.quality * 100:.0f}%"


#: One row per registered attack, in report order.  The sync test asserts
#: this table covers exactly ``repro.attacks.attack_names()``.
ATTACK_ROWS: dict[str, AttackRow] = {
    "variant1-thread": AttackRow(
        "V1 cross-thread success (Table 3)",
        "99%",
        rounds=lambda r, q: r,
        options=_no_options,
        measured=_rate,
        in_band=lambda b: b.quality >= 0.9,
    ),
    "variant1": AttackRow(
        "V1 cross-process success (Table 3)",
        "97%",
        rounds=lambda r, q: r,
        options=_no_options,
        measured=_rate,
        in_band=lambda b: b.quality >= 0.9,
    ),
    "variant2": AttackRow(
        "V2 user-to-kernel success (Table 3)",
        "91%",
        rounds=lambda r, q: r,
        options=_no_options,
        measured=_rate,
        in_band=lambda b: b.quality >= 0.75,
    ),
    "covert": AttackRow(
        "covert channel, 1 entry (§7.2)",
        "833 bps, <6% err",
        rounds=lambda r, q: r,
        options=_no_options,
        measured=lambda b: (
            f"{b.notes['bandwidth_bps']:.0f} bps, "
            f"{b.notes['error_rate'] * 100:.1f}% err"
        ),
        in_band=lambda b: (
            700 <= b.notes["bandwidth_bps"] <= 950 and b.notes["error_rate"] < 0.06
        ),
    ),
    "sgx": AttackRow(
        "SGX control-flow extraction (Fig. 10)",
        "Time1/Time2 separable",
        rounds=lambda r, q: 8,
        options=_no_options,
        measured=_rate,
        in_band=lambda b: b.quality >= 0.9,
    ),
    "switch-leak": AttackRow(
        "kernel switch-arm leak (Figs. 1-2)",
        "arm named via PSC",
        rounds=lambda r, q: 12,
        options=_no_options,
        measured=_rate,
        in_band=lambda b: b.quality >= 0.85,
    ),
    "rsa": AttackRow(
        "TC-RSA key recovery (§7.3)",
        "82% PSC, key in 188 min",
        rounds=lambda r, q: r,
        options=lambda quick: {"bits": 64 if quick else 128, "all_bits": True},
        measured=lambda b: (
            f"{b.notes['psc_single_shot'] * 100:.0f}% PSC, "
            f"{b.notes['bit_errors']} bit errors, "
            f"{b.notes['projected_minutes']:.0f} min projected"
        ),
        in_band=lambda b: b.notes["bit_errors"] <= 1,
    ),
    "tracker": AttackRow(
        "OpenSSL load tracking (Fig. 15)",
        "key load localized",
        rounds=lambda r, q: 3,
        options=_no_options,
        measured=_rate,
        in_band=lambda b: b.quality >= 0.66,
    ),
}


def format_rows(
    rows: list[ReportRow], title: str | None = "# AfterImage reproduction report"
) -> str:
    """Render report rows as the paper-vs-measured markdown table.

    Public because :mod:`repro.campaign.render` reuses the exact same row
    schema and formatting for campaign sections (``title=None`` omits the
    heading so the section supplies its own).
    """
    lines = [title, ""] if title else []
    lines += [
        "| experiment | paper | measured | verdict |",
        "|---|---|---|---|",
    ]
    for r in rows:
        verdict = "reproduced" if r.in_band else "**out of band**"
        lines.append(f"| {r.experiment} | {r.paper} | {r.measured} | {verdict} |")
    lines.append("")
    return "\n".join(lines)


def generate_report(
    params: MachineParams,
    seed: int = 2023,
    rounds: int = 100,
    quick: bool = False,
    extra_sections: list[str] | None = None,
) -> str:
    """Run the headline experiments; returns the markdown report.

    ``quick=True`` shrinks round counts for smoke runs.  ``extra_sections``
    are pre-rendered markdown blocks appended after the built-in sections —
    the hook ``afterimage campaign report`` uses to graft campaign grids
    onto the same document.
    """
    from repro.analysis.ttest import TVLATest
    from repro.mitigation.analytical import MitigationCostModel
    from repro.obs.runner import run_attack
    from repro.revng.entries import EntryCountExperiment
    from repro.revng.indexing import IndexingExperiment

    if quick:
        rounds = min(rounds, 30)
    rows: list[ReportRow] = []

    # Indexing.
    samples = IndexingExperiment(params, seed=seed).run(max_bits=10)
    boundary = next(s.matched_bits for s in samples if s.prefetched)
    rows.append(
        ReportRow("prefetcher index width (Fig. 6)", "8 bits", f"{boundary} bits", boundary == 8)
    )

    # Capacity.
    entries = EntryCountExperiment(params, seed=seed)
    survivors = sum(s.triggered for s in entries.run(30))
    rows.append(
        ReportRow("history-table capacity (Fig. 8a)", "24", f"~{survivors + 1}", 22 <= survivors <= 24)
    )

    # The eight registered attacks, each on its own machine with its own
    # derived seed (offset by table position, so rows stay independent).
    attack_runs = {}
    for offset, (name, row) in enumerate(ATTACK_ROWS.items()):
        run = run_attack(
            name,
            params,
            seed=seed + offset,
            rounds=row.rounds(rounds, quick),
            options=row.options(quick),
        )
        attack_runs[name] = run
        rows.append(
            ReportRow(row.experiment, row.paper, row.measured(run.batch), row.in_band(run.batch))
        )

    # t-test.
    t_acc = TVLATest(seed=seed).run(200 if quick else 600, accurate_timing=True)
    t_rnd = TVLATest(seed=seed + 1).run(200 if quick else 600, accurate_timing=False)
    rows.append(
        ReportRow(
            "t-test w/ vs w/o marker (Fig. 16)",
            "-18.8 vs ~-2",
            f"{t_acc.t_value:.1f} vs {t_rnd.t_value:.1f}",
            t_acc.leaks and not t_rnd.leaks,
        )
    )

    # Mitigation bound.
    bound = MitigationCostModel().overhead_percent()
    rows.append(
        ReportRow("mitigation upper bound (§8.3)", "<7.3%", f"{bound:.2f}%", bound < 7.3)
    )

    # Static leakage analysis (repro.leakcheck): the paper's victims must
    # classify as leaky, and flip to safe under the tagged prefetcher.
    from repro.leakcheck import analyze, get_victim

    rsa_static = analyze(get_victim("rsa-square-multiply").spec)
    rows.append(
        ReportRow(
            "leakcheck: RSA square-and-multiply",
            "leaky (all exponent bits)",
            f"{rsa_static.verdict}, {len(rsa_static.leaky_bits)}/{rsa_static.secret_bits} bits",
            rsa_static.leaky and len(rsa_static.leaky_bits) == rsa_static.secret_bits,
        )
    )
    tagged_static = analyze(get_victim("rsa-square-multiply").spec, defense="tagged")
    aes_static = analyze(get_victim("aes-ttable").spec)
    rows.append(
        ReportRow(
            "leakcheck: AES T-table / tagged defense",
            "leaky / safe",
            f"{aes_static.verdict} / {tagged_static.verdict}",
            aes_static.leaky and not tagged_static.leaky,
        )
    )

    # Machine metrics (repro.obs): the cross-thread Variant 1 machine's
    # counter snapshot after its measurement rounds — the same numbers
    # `afterimage metrics` prints, inlined so a report archives them.
    ct = attack_runs["variant1-thread"]
    sections = [
        format_rows(rows),
        "## Machine metrics",
        "",
        "Variant 1 cross-thread machine after its "
        f"{ct.rounds} measurement rounds (seed {seed}):",
        "",
        ct.machine.metrics().render_markdown(),
        "",
    ]
    sections.extend(extra_sections or [])
    return "\n".join(sections)
