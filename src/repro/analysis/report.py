"""Programmatic reproduction report: run the headline experiments and
render a paper-vs-measured markdown table (the `afterimage report`
command).  A lighter, automated companion to EXPERIMENTS.md."""

from __future__ import annotations

from dataclasses import dataclass

from repro.params import MachineParams
from repro.utils.rng import make_rng


@dataclass(frozen=True)
class ReportRow:
    """One reproduced result."""

    experiment: str
    paper: str
    measured: str
    in_band: bool


def _fmt(rows: list[ReportRow]) -> str:
    lines = [
        "# AfterImage reproduction report",
        "",
        "| experiment | paper | measured | verdict |",
        "|---|---|---|---|",
    ]
    for r in rows:
        verdict = "reproduced" if r.in_band else "**out of band**"
        lines.append(f"| {r.experiment} | {r.paper} | {r.measured} | {verdict} |")
    lines.append("")
    return "\n".join(lines)


def generate_report(
    params: MachineParams, seed: int = 2023, rounds: int = 100, quick: bool = False
) -> str:
    """Run the headline experiments; returns the markdown report.

    ``quick=True`` shrinks round counts for smoke runs.
    """
    from repro.analysis.ttest import TVLATest
    from repro.core.covert import CovertChannel
    from repro.core.tc_rsa_attack import TimingConstantRSAAttack
    from repro.core.variant1 import Variant1CrossProcess, Variant1CrossThread
    from repro.cpu.machine import Machine
    from repro.crypto.primes import generate_keypair
    from repro.mitigation.analytical import MitigationCostModel
    from repro.revng.entries import EntryCountExperiment
    from repro.revng.indexing import IndexingExperiment

    if quick:
        rounds = min(rounds, 30)
    rows: list[ReportRow] = []

    # Indexing.
    samples = IndexingExperiment(params, seed=seed).run(max_bits=10)
    boundary = next(s.matched_bits for s in samples if s.prefetched)
    rows.append(
        ReportRow("prefetcher index width (Fig. 6)", "8 bits", f"{boundary} bits", boundary == 8)
    )

    # Capacity.
    entries = EntryCountExperiment(params, seed=seed)
    survivors = sum(s.triggered for s in entries.run(30))
    rows.append(
        ReportRow("history-table capacity (Fig. 8a)", "24", f"~{survivors + 1}", 22 <= survivors <= 24)
    )

    # Variant 1 rates.
    rng = make_rng(seed)
    ct = Variant1CrossThread(Machine(params, seed=seed))
    ct_rate = sum(ct.run_round(int(rng.integers(0, 2))).success for _ in range(rounds)) / rounds
    rows.append(
        ReportRow("V1 cross-thread success (Table 3)", "99%", f"{ct_rate * 100:.0f}%", ct_rate >= 0.93)
    )
    cp = Variant1CrossProcess(Machine(params, seed=seed + 1))
    cp_rate = sum(cp.run_round(int(rng.integers(0, 2))).success for _ in range(rounds)) / rounds
    rows.append(
        ReportRow("V1 cross-process success (Table 3)", "97%", f"{cp_rate * 100:.0f}%", cp_rate >= 0.9)
    )

    # Covert channel.
    channel = CovertChannel(Machine(params, seed=seed + 2), n_entries=1)
    symbols = [int(x) for x in rng.integers(5, 32, rounds)]
    report = channel.transmit(symbols)
    rows.append(
        ReportRow(
            "covert channel, 1 entry (§7.2)",
            "833 bps, <6% err",
            f"{report.bandwidth_bps:.0f} bps, {report.error_rate * 100:.1f}% err",
            700 <= report.bandwidth_bps <= 950 and report.error_rate < 0.06,
        )
    )

    # TC-RSA.
    key = generate_keypair(64 if quick else 128, make_rng(seed))
    attack = TimingConstantRSAAttack(Machine(params, seed=seed + 3), key)
    recovery = attack.recover_key_bits(key.encrypt(0xBEEF))
    usable = sum(len(o.votes) for o in recovery.observations)
    total = sum(o.attempts for o in recovery.observations)
    rows.append(
        ReportRow(
            "TC-RSA key recovery (§7.3)",
            "82% PSC, key in 188 min",
            f"{usable / total * 100:.0f}% PSC, {recovery.bit_errors} bit errors, "
            f"{recovery.projected_minutes_for_bits():.0f} min projected",
            recovery.bit_errors <= 1,
        )
    )

    # t-test.
    t_acc = TVLATest(seed=seed).run(200 if quick else 600, accurate_timing=True)
    t_rnd = TVLATest(seed=seed + 1).run(200 if quick else 600, accurate_timing=False)
    rows.append(
        ReportRow(
            "t-test w/ vs w/o marker (Fig. 16)",
            "-18.8 vs ~-2",
            f"{t_acc.t_value:.1f} vs {t_rnd.t_value:.1f}",
            t_acc.leaks and not t_rnd.leaks,
        )
    )

    # Mitigation bound.
    bound = MitigationCostModel().overhead_percent()
    rows.append(
        ReportRow("mitigation upper bound (§8.3)", "<7.3%", f"{bound:.2f}%", bound < 7.3)
    )

    # Static leakage analysis (repro.leakcheck): the paper's victims must
    # classify as leaky, and flip to safe under the tagged prefetcher.
    from repro.leakcheck import analyze, get_victim

    rsa_static = analyze(get_victim("rsa-square-multiply").spec)
    rows.append(
        ReportRow(
            "leakcheck: RSA square-and-multiply",
            "leaky (all exponent bits)",
            f"{rsa_static.verdict}, {len(rsa_static.leaky_bits)}/{rsa_static.secret_bits} bits",
            rsa_static.leaky and len(rsa_static.leaky_bits) == rsa_static.secret_bits,
        )
    )
    tagged_static = analyze(get_victim("rsa-square-multiply").spec, defense="tagged")
    aes_static = analyze(get_victim("aes-ttable").spec)
    rows.append(
        ReportRow(
            "leakcheck: AES T-table / tagged defense",
            "leaky / safe",
            f"{aes_static.verdict} / {tagged_static.verdict}",
            aes_static.leaky and not tagged_static.leaky,
        )
    )

    # Machine metrics (repro.obs): the cross-thread Variant 1 machine's
    # counter snapshot after its measurement rounds — the same numbers
    # `afterimage metrics` prints, inlined so a report archives them.
    sections = [
        _fmt(rows),
        "## Machine metrics",
        "",
        "Variant 1 cross-thread machine after its "
        f"{rounds} measurement rounds (seed {seed}):",
        "",
        ct.machine.metrics().render_markdown(),
        "",
    ]
    return "\n".join(sections)
