"""Success-rate harness for the paper's §7.2 evaluation (Table 3 bands)."""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field


@dataclass
class SuccessRateReport:
    """Aggregate of repeated attack rounds."""

    name: str
    successes: int = 0
    failures: int = 0
    undecided: int = 0
    details: list[object] = field(default_factory=list)

    @property
    def rounds(self) -> int:
        return self.successes + self.failures + self.undecided

    @property
    def success_rate(self) -> float:
        if self.rounds == 0:
            raise ValueError("no rounds recorded")
        return self.successes / self.rounds

    def record(self, success: bool | None, detail: object = None) -> None:
        if success is None:
            self.undecided += 1
        elif success:
            self.successes += 1
        else:
            self.failures += 1
        if detail is not None:
            self.details.append(detail)

    def summary(self) -> str:
        return (
            f"{self.name}: {self.success_rate * 100:.1f}% "
            f"({self.successes}/{self.rounds} rounds, {self.undecided} undecided)"
        )


def measure_success_rate(
    name: str,
    run_round: Callable[[int], bool | None],
    rounds: int = 200,
) -> SuccessRateReport:
    """Run ``run_round(round_index)`` ``rounds`` times (the paper uses 200)."""
    if rounds <= 0:
        raise ValueError("rounds must be positive")
    report = SuccessRateReport(name=name)
    for index in range(rounds):
        report.record(run_round(index))
    return report
