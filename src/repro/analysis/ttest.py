"""TVLA fixed-vs-random t-test on simulated power traces (paper Figure 16).

The t-test (Schneider & Moradi, CHES 2015) is PASS/FAIL: |t| above the
threshold (4.5) at any sample means data-dependent leakage is exploitable.
The paper's point (§6.3, §7.4): the test only comes out strongly when the
trace is sampled at the *right* cycle — which is exactly the information
AfterImage's load-timing tracking provides.  With accurate timing the paper
measures t ≈ −18.8; with randomly picked timing, t fluctuates around −2.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.aes import AES128
from repro.crypto.power_model import PowerModel, PowerTraceParams
from repro.utils.stats import welch_t_statistic
from repro.utils.rng import make_rng

#: The TVLA PASS/FAIL threshold the paper uses (negative side: -4.5).
LEAKAGE_THRESHOLD = 4.5


@dataclass(frozen=True)
class TTestResult:
    """t statistic for one plaintext-count budget."""

    n_plaintexts: int
    t_value: float
    timing: str  # "accurate" or "random"

    @property
    def leaks(self) -> bool:
        return abs(self.t_value) >= LEAKAGE_THRESHOLD


class TVLATest:
    """Fixed-vs-random t-test against the simulated AES power traces."""

    def __init__(
        self,
        key: bytes = bytes(range(16)),
        params: PowerTraceParams | None = None,
        seed: int = 0,
    ) -> None:
        self.aes = AES128(key)
        self.params = params if params is not None else PowerTraceParams()
        self._rng = make_rng(seed)
        self.model = PowerModel(self.aes, self.params, self._rng)
        self.fixed_plaintext = self.model.low_weight_plaintext()

    def run(self, n_plaintexts: int, accurate_timing: bool) -> TTestResult:
        """Collect ``n_plaintexts`` traces per class and test one sample.

        ``accurate_timing=True`` samples every trace at the S-box cycle
        (the AfterImage-provided marker); ``False`` samples each trace at a
        uniformly random cycle — the attacker without a marker.
        """
        if n_plaintexts < 2:
            raise ValueError("need at least two traces per class")
        fixed_samples = []
        random_samples = []
        for _ in range(n_plaintexts):
            fixed_trace = self.model.trace(self.fixed_plaintext)
            random_trace = self.model.trace(self.model.random_plaintext())
            if accurate_timing:
                cycle_f = cycle_r = self.params.sbox_cycle
            else:
                cycle_f = int(self._rng.integers(0, self.params.n_samples))
                cycle_r = int(self._rng.integers(0, self.params.n_samples))
            fixed_samples.append(float(fixed_trace[cycle_f]))
            random_samples.append(float(random_trace[cycle_r]))
        t_value = welch_t_statistic(fixed_samples, random_samples)
        return TTestResult(
            n_plaintexts=n_plaintexts,
            t_value=t_value,
            timing="accurate" if accurate_timing else "random",
        )


def tvla_sweep(
    test: TVLATest, counts: list[int], accurate_timing: bool
) -> list[TTestResult]:
    """One t-test per plaintext budget — a Figure 16 series."""
    return [test.run(count, accurate_timing) for count in counts]
