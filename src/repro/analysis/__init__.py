"""Analysis utilities: TVLA leakage t-test and attack success-rate harness."""

from repro.analysis.success_rate import SuccessRateReport, measure_success_rate
from repro.analysis.ttest import TTestResult, TVLATest, tvla_sweep

__all__ = [
    "TVLATest",
    "TTestResult",
    "tvla_sweep",
    "SuccessRateReport",
    "measure_success_rate",
]
