"""AfterImage (ASPLOS 2023) reproduction library.

Leaking control-flow data and tracking load operations via the (simulated)
Intel IP-stride hardware prefetcher — Chen, Pei & Carlson, ASPLOS 2023.

Quick start::

    from repro import Machine, COFFEE_LAKE_I7_9700
    from repro.core import Variant1CrossProcess

    machine = Machine(COFFEE_LAKE_I7_9700, seed=1)
    attack = Variant1CrossProcess(machine)
    result = attack.run_round(secret_bit=1)
    assert result.inferred_bit == 1

Package map (see DESIGN.md for the full inventory):

============  =======================================================
``params``    machine presets (paper Table 2) and model knobs
``memsys``    caches, replacement policies, sliced LLC
``mmu``       page tables, TLB, ASLR, buffers
``prefetch``  IP-stride prefetcher (paper §4) + DCU/adjacent/streamer
``cpu``       the simulated machine, contexts, scheduler
``kernel``    syscalls, privilege domain, victim patterns
``sgx``       enclave model
``channels``  Flush+Reload, Prime+Probe, eviction sets, PSC
``crypto``    RSA (ladder / timing-constant), AES, power model
``core``      the AfterImage attacks (variants 1/2, covert, SGX,
              TC-RSA key recovery, load-timing tracker)
``revng``     reverse-engineering microbenchmarks (Figs 6-8, Table 1)
``analysis``  TVLA t-test, success-rate harness
``mitigation``  clear-ip-prefetcher cost models (§8.3)
``lint``      static-analysis pass over the repo's own conventions
``sanitize``  runtime µarch invariant auditing (``Machine(sanitize=True)``)
============  =======================================================
"""

from repro.cpu.machine import Machine
from repro.params import (
    CACHE_LINE_SIZE,
    COFFEE_LAKE_I7_9700,
    DEFAULT_MACHINE,
    HASWELL_I7_4770,
    LINES_PER_PAGE,
    PAGE_SIZE,
    MachineParams,
    preset,
)

__version__ = "1.0.0"

__all__ = [
    "Machine",
    "MachineParams",
    "preset",
    "HASWELL_I7_4770",
    "COFFEE_LAKE_I7_9700",
    "DEFAULT_MACHINE",
    "CACHE_LINE_SIZE",
    "PAGE_SIZE",
    "LINES_PER_PAGE",
    "__version__",
]
