"""The tagged-history-table hardware fix (paper §8.2).

"Augmenting the history table with extra tags that include execution
context-specific information such as the process ID prevents hardware
sharing."  This prefetcher keys each entry on ``(asid, full IP)``:

* a gadget load can no longer alias a victim load — the full-IP tag kills
  Variant 1's masquerading;
* entries are private to an address space — nothing leaks across process,
  kernel or enclave boundaries, and nothing needs flushing on a switch.

The cost the paper notes ("hardware modification and an increased hardware
budget") is the wider tag storage; the *performance* behaviour for the
legitimate owner is unchanged, which `tests/test_defenses.py` checks.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cpu.machine import Machine
from repro.memsys.replacement import make_policy
from repro.params import PAGE_SIZE, IPStrideParams
from repro.prefetch.base import LoadEvent, Prefetcher, PrefetchRequest, TranslateFn
from repro.utils.bits import sign_extend


@dataclass
class TaggedEntry:
    """History entry with a full (asid, IP) tag."""

    asid: int
    ip: int
    last_vaddr: int
    last_paddr: int
    stride: int = 0
    confidence: int = 0


class TaggedIPStridePrefetcher(Prefetcher):
    """IP-stride prefetcher whose entries are (asid, full-IP)-tagged.

    Same capacity, confidence/stride policy, page rules and replacement as
    the stock :class:`~repro.prefetch.ip_stride.IPStridePrefetcher`; only
    the lookup key differs — which is the entire defense.
    """

    name = "ip-stride-tagged"

    def __init__(self, params: IPStrideParams | None = None) -> None:
        self.params = params if params is not None else IPStrideParams()
        self._slots: list[TaggedEntry | None] = [None] * self.params.n_entries
        self._key_to_slot: dict[tuple[int, int], int] = {}
        self._policy = make_policy(self.params.replacement, self.params.n_entries)
        self.prefetches_issued = 0
        self.evictions = 0

    def reset_stats(self) -> None:
        """Zero statistics counters; the tagged table is untouched."""
        self.prefetches_issued = 0
        self.evictions = 0

    def observe(self, event: LoadEvent, translate: TranslateFn) -> list[PrefetchRequest]:
        key = (event.asid, event.ip)
        slot = self._key_to_slot.get(key)
        if slot is None:
            self._allocate(key, event)
            return []
        entry = self._slots[slot]
        assert entry is not None
        self._policy.touch(slot)

        requests: list[PrefetchRequest] = []
        distance = sign_extend(event.paddr - entry.last_paddr, self.params.stride_bits)
        if entry.confidence >= self.params.prefetch_threshold:
            self._issue(event.paddr, entry.stride, requests)
            if distance != entry.stride:
                entry.stride = distance
                entry.confidence = 1
            elif entry.confidence != self.params.confidence_max:
                entry.confidence += 1
        else:
            if distance != entry.stride:
                entry.stride = distance
                entry.confidence = 1
            else:
                entry.confidence += 1
                if entry.confidence == self.params.prefetch_threshold:
                    self._issue(event.paddr, entry.stride, requests)
        entry.last_vaddr = event.vaddr
        entry.last_paddr = event.paddr
        return requests

    def observe_tlb_miss(self, event: LoadEvent) -> list[PrefetchRequest]:
        """Next-page carry-over still works — but only for the owner."""
        slot = self._key_to_slot.get((event.asid, event.ip))
        if slot is None:
            return []
        entry = self._slots[slot]
        assert entry is not None
        requests: list[PrefetchRequest] = []
        if (
            event.vaddr // PAGE_SIZE == entry.last_vaddr // PAGE_SIZE + 1
            and entry.confidence >= self.params.prefetch_threshold
        ):
            self._issue(event.paddr, entry.stride, requests)
        return requests

    def entry_for(self, asid: int, ip: int) -> TaggedEntry | None:
        slot = self._key_to_slot.get((asid, ip))
        return self._slots[slot] if slot is not None else None

    def entry_for_ip(self, ip: int) -> TaggedEntry | None:
        """Duck-type compatibility: full-IP match in *any* space.

        Unlike the stock prefetcher this never aliases on low bits, so an
        attacker-controlled IP can only resolve its own entries.
        """
        for entry in self._slots:
            if entry is not None and entry.ip == ip:
                return entry
        return None

    @property
    def occupancy(self) -> int:
        return len(self._key_to_slot)

    def clear(self) -> None:
        self._slots = [None] * self.params.n_entries
        self._key_to_slot.clear()
        self._policy.reset()

    def _issue(self, paddr: int, stride: int, out: list[PrefetchRequest]) -> None:
        if stride == 0 or abs(stride) > self.params.max_stride_bytes:
            return
        target = paddr + stride
        if target // PAGE_SIZE != paddr // PAGE_SIZE:
            return
        self.prefetches_issued += 1
        out.append(PrefetchRequest(paddr=target, source=self.name))

    def _allocate(self, key: tuple[int, int], event: LoadEvent) -> None:
        try:
            slot = self._slots.index(None)
        except ValueError:
            slot = self._victim_slot()
            victim = self._slots[slot]
            assert victim is not None
            del self._key_to_slot[(victim.asid, victim.ip)]
            self.evictions += 1
        self._slots[slot] = TaggedEntry(
            asid=event.asid, ip=event.ip, last_vaddr=event.vaddr, last_paddr=event.paddr
        )
        self._key_to_slot[key] = slot
        self._policy.fill(slot)

    def _victim_slot(self) -> int:
        for slot, entry in enumerate(self._slots):
            if entry is not None and entry.confidence == 0:
                return slot
        return self._policy.victim()


def harden_machine(machine: Machine) -> TaggedIPStridePrefetcher:
    """Swap the machine's IP-stride prefetcher for the tagged variant.

    Returns the new prefetcher.  Existing attack objects keep working but
    stop leaking — the point of the exercise.
    """
    tagged = TaggedIPStridePrefetcher(machine.params.prefetcher)
    machine.ip_stride = tagged  # type: ignore[assignment]
    return tagged
