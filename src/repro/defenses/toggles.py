"""Blunt defenses: turning prefetchers off (paper §8.2's first option)."""

from __future__ import annotations

from repro.cpu.machine import Machine
from repro.params import IPStrideParams
from repro.prefetch.base import LoadEvent, Prefetcher, PrefetchRequest, TranslateFn


class _NullPrefetcher(Prefetcher):
    """A disabled IP-stride prefetcher: observes nothing, fetches nothing."""

    name = "ip-stride-disabled"

    def __init__(self, params: IPStrideParams) -> None:
        self.params = params
        self.prefetches_issued = 0

    def observe(self, event: LoadEvent, translate: TranslateFn) -> list[PrefetchRequest]:
        return []

    def observe_tlb_miss(self, event: LoadEvent) -> list[PrefetchRequest]:
        return []

    def entry_for_ip(self, ip: int):
        return None

    @property
    def occupancy(self) -> int:
        return 0

    def clear(self) -> None:
        pass


def disable_ip_stride_prefetcher(machine: Machine) -> None:
    """§8.2: "A straightforward defense is to disable the IP-stride
    prefetcher to prevent possible security risks with high performance
    overhead."  The overhead side is quantified by the prefetch-off
    configuration of :mod:`repro.mitigation.champsim_lite` (3-6x IPC loss
    on streaming workloads)."""
    machine.ip_stride = _NullPrefetcher(machine.params.prefetcher)  # type: ignore[assignment]
