"""Static semantics of each defense, for the leakcheck analyzer.

The dynamic defense implementations in this package (tagged prefetcher,
oblivious victims, flush-on-switch in the core model) each admit a
one-line *static* characterization — what they do to the attacker's view
of the history table — and that is all :mod:`repro.leakcheck` needs to
flip a verdict:

* **tagged** — entries gain a full-IP + ASID tag
  (:class:`~repro.defenses.tagged_prefetcher.TaggedIPStridePrefetcher`):
  the low-8-bit aliasing disappears, so secret-dependent entries still
  exist but no attacker load can reach them.
* **flush-on-switch** — ``Machine.flush_prefetcher_on_switch`` /
  the §8.3 ``clear-ip-prefetcher`` instruction: trained state never
  survives a domain switch into the attacker's time slice.
* **oblivious** — the developer rewrote the victim
  (:class:`~repro.defenses.oblivious.ObliviousBranchVictim`): analyze the
  rewrite; the table itself is unchanged.
* **none** — the baseline: any divergent entry is attacker-reachable.

New defenses only need a descriptor here (plus, for ``rewrites_victim``
ones, an ``oblivious_fn`` on the victim specs) to become analyzable.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class StaticDefenseModel:
    """How one defense changes the attacker's view, statically."""

    name: str
    description: str
    #: Entry tags make aliased attacker loads miss (tagged prefetcher).
    removes_aliasing: bool = False
    #: The table is cleared before the attacker runs (flush-on-switch).
    clears_on_switch: bool = False
    #: Analyze the victim's secret-independent rewrite instead.
    rewrites_victim: bool = False

    @property
    def blocks_readback(self) -> bool:
        """Attacker cannot observe the victim's trained state at all."""
        return self.removes_aliasing or self.clears_on_switch


STATIC_DEFENSES: dict[str, StaticDefenseModel] = {
    model.name: model
    for model in (
        StaticDefenseModel(
            name="none",
            description="baseline: untagged, never-flushed history table",
        ),
        StaticDefenseModel(
            name="tagged",
            description="full-IP + ASID entry tags (TaggedIPStridePrefetcher)",
            removes_aliasing=True,
        ),
        StaticDefenseModel(
            name="flush-on-switch",
            description="clear-ip-prefetcher on every domain switch (paper §8.3)",
            clears_on_switch=True,
        ),
        StaticDefenseModel(
            name="oblivious",
            description="secret-independent victim rewrite (paper §8.2)",
            rewrites_victim=True,
        ),
    )
}
