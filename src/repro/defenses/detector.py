"""Performance-counter-based detection and why it misses AfterImage (§8.1).

"Leveraging performance counters, the defender might be able to identify
abnormalities in vulnerable hardware components during runtime.  However,
the sampling frequency of the Intel performance monitor may not be enough
to capture the prefetcher training event, since AfterImage requires just
two to three iterations of training at a minimum."

:class:`PerformanceCounterDetector` samples the prefetcher's cumulative
issue/allocation counters at a fixed period and flags bursts.  With a
realistic (10 µs+) sampling period, a 3-load training burst is invisible
against background prefetcher activity; only an unrealistically fast
sampler catches it — exactly the paper's argument, now measurable.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cpu.machine import Machine


@dataclass
class DetectorReport:
    """Samples and alarms from one monitoring window."""

    sampling_period_cycles: int
    threshold_allocations_per_sample: int
    samples: list[tuple[int, int]] = field(default_factory=list)  # (cycles, allocs)
    alarms: list[int] = field(default_factory=list)  # sample indexes

    @property
    def fired(self) -> bool:
        return bool(self.alarms)


class PerformanceCounterDetector:
    """Periodic sampler over the IP-stride prefetcher's counters."""

    def __init__(
        self,
        machine: Machine,
        sampling_period_cycles: int = 30_000,  # ~10 µs: an optimistic PMU rate
        threshold_allocations_per_sample: int = 8,
    ) -> None:
        if sampling_period_cycles <= 0:
            raise ValueError("sampling period must be positive")
        self.machine = machine
        self.sampling_period_cycles = sampling_period_cycles
        self.threshold = threshold_allocations_per_sample
        self._last_cycles = machine.cycles
        self._last_allocations = machine.ip_stride.allocations
        self._report = DetectorReport(
            sampling_period_cycles=sampling_period_cycles,
            threshold_allocations_per_sample=threshold_allocations_per_sample,
        )

    def poll(self) -> None:
        """Take all samples whose period boundaries have elapsed.

        Call this from the monitoring loop; it models a PMU interrupt
        firing every ``sampling_period_cycles``.
        """
        while self.machine.cycles - self._last_cycles >= self.sampling_period_cycles:
            self._last_cycles += self.sampling_period_cycles
            allocations = self.machine.ip_stride.allocations
            delta = allocations - self._last_allocations
            self._last_allocations = allocations
            index = len(self._report.samples)
            self._report.samples.append((self._last_cycles, delta))
            if delta >= self.threshold:
                self._report.alarms.append(index)

    def finish(self) -> DetectorReport:
        """Flush a final partial sample and return the report."""
        allocations = self.machine.ip_stride.allocations
        delta = allocations - self._last_allocations
        self._last_allocations = allocations
        index = len(self._report.samples)
        self._report.samples.append((self.machine.cycles, delta))
        if delta >= self.threshold:
            self._report.alarms.append(index)
        return self._report
