"""Defense options from the paper's §8.1-§8.2, implemented as ablations.

The paper's §8.3 flush-on-switch mitigation lives in the core model
(:attr:`repro.cpu.Machine.flush_prefetcher_on_switch` +
:mod:`repro.mitigation`).  This package implements the *other* options the
paper discusses, so their security/performance trade-offs can be measured
rather than argued:

* :class:`TaggedIPStridePrefetcher` — augment the history table with a
  full-IP tag and a process-context (ASID) tag: no aliasing, no sharing.
* :func:`disable_ip_stride_prefetcher` — the blunt instrument; its
  performance cost is measured with ChampSim-lite.
* :class:`ObliviousBranchVictim` — rewrite the victim so both branch
  directions execute the same loads (developer-side defense).
* :class:`PerformanceCounterDetector` — a sampling detector watching for
  prefetcher-training bursts; demonstrates §8.1's point that realistic
  sampling periods miss AfterImage's 3-4-load training.
"""

from repro.defenses.detector import DetectorReport, PerformanceCounterDetector
from repro.defenses.oblivious import ObliviousBranchVictim
from repro.defenses.static_model import STATIC_DEFENSES, StaticDefenseModel
from repro.defenses.tagged_prefetcher import TaggedIPStridePrefetcher, harden_machine
from repro.defenses.toggles import disable_ip_stride_prefetcher

__all__ = [
    "STATIC_DEFENSES",
    "StaticDefenseModel",
    "TaggedIPStridePrefetcher",
    "harden_machine",
    "disable_ip_stride_prefetcher",
    "ObliviousBranchVictim",
    "PerformanceCounterDetector",
    "DetectorReport",
]
