"""Developer-side defense: secret-independent load structure (paper §8.2).

"Redesigning the application by the developer to avoid secret-dependent
branches can also prevent this issue.  Similarly, oblivious execution
removes any control flow and most data dependencies."

:class:`ObliviousBranchVictim` is the Listing 1 victim rewritten that way:
*both* direction loads execute on every invocation, and the result is
selected arithmetically.  AfterImage sees both entries disturbed every
round regardless of the secret — zero information.  The costs the paper
notes (extra work per call) are visible in the cycle count.
"""

from __future__ import annotations

from repro.cpu.context import ThreadContext
from repro.cpu.machine import Machine
from repro.mmu.buffer import Buffer
from repro.core.variant1 import VICTIM_ELSE_OFFSET, VICTIM_IF_OFFSET, VICTIM_TEXT_BASE


class ObliviousBranchVictim:
    """Listing 1, obliviously rewritten: both loads run, a mask selects.

    Drop-in replacement for
    :class:`~repro.core.variant1.BranchLoadVictim`; the same attack
    infrastructure runs against it and learns nothing.
    """

    def __init__(self, machine: Machine, ctx: ThreadContext, data: Buffer) -> None:
        self.machine = machine
        self.ctx = ctx
        self.data = data
        code = machine.code_region(VICTIM_TEXT_BASE, name="oblivious-victim")
        self.if_ip = code.place("victim_if_load", VICTIM_IF_OFFSET)
        self.else_ip = code.place("victim_else_load", VICTIM_ELSE_OFFSET)

    def run(self, secret_bit: int, line: int) -> None:
        """Execute *both* loads; the secret only selects the result."""
        if secret_bit not in (0, 1):
            raise ValueError(f"secret bit must be 0 or 1, got {secret_bit}")
        vaddr = self.data.line_addr(line)
        self.machine.warm_tlb(self.ctx, vaddr)
        # temp0 = array[address]; temp1 = array[address];
        # result = (-secret & temp0) | ((secret - 1) & temp1)
        self.machine.load(self.ctx, self.if_ip, vaddr)
        self.machine.load(self.ctx, self.else_ip, vaddr)
        self.machine.advance(4)  # the constant-time select arithmetic
