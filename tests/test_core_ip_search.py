"""Focused unit tests for the IP searcher, with a controllable victim."""

import pytest

from repro.channels.flush_reload import FlushReload
from repro.core.ip_search import IPSearcher
from repro.cpu.machine import Machine
from repro.params import COFFEE_LAKE_I7_9700, PAGE_SIZE
from repro.utils.rng import make_rng


class FakeVictim:
    """A user-space stand-in for the kernel: loads the demanded line of the
    shared buffer at a fixed hidden IP, with a configurable take rate."""

    def __init__(self, machine, ctx, shared, hidden_ip, take_rate=1.0, seed=0):
        self.machine = machine
        self.ctx = ctx
        self.shared = shared
        self.hidden_ip = hidden_ip
        self.take_rate = take_rate
        self._rng = make_rng(seed)
        self.invocations = 0

    def __call__(self, demand_line: int) -> None:
        self.invocations += 1
        if self._rng.random() >= self.take_rate:
            return
        vaddr = self.shared.line_addr(demand_line)
        self.machine.warm_tlb(self.ctx, vaddr)
        self.machine.load(self.ctx, self.hidden_ip, vaddr)


@pytest.fixture
def searcher_setup():
    machine = Machine(COFFEE_LAKE_I7_9700.quiet(), seed=220)
    attacker = machine.new_thread("attacker")
    machine.context_switch(attacker)
    shared = machine.new_buffer(attacker.space, PAGE_SIZE, name="shared")
    machine.warm_buffer_tlb(attacker, shared)
    fr = FlushReload(machine, attacker, shared, reload_ip=0x720000)
    return machine, attacker, shared, fr


def make_searcher(machine, attacker, shared, fr, victim):
    return IPSearcher(
        machine, attacker, trigger=victim, shared=shared, flush_reload=fr, stride_lines=11
    )


class TestSearch:
    @pytest.mark.parametrize("hidden_index", [0x07, 0x80, 0xFE])
    def test_finds_arbitrary_hidden_index(self, searcher_setup, hidden_index):
        machine, attacker, shared, fr = searcher_setup
        victim = FakeVictim(machine, attacker, shared, 0x99_0000 + hidden_index)
        searcher = make_searcher(machine, attacker, shared, fr, victim)
        result = searcher.search()
        assert result.index == hidden_index

    def test_flaky_victim_still_found(self, searcher_setup):
        """The Listing 7 victim takes its branch randomly; retries cover it."""
        machine, attacker, shared, fr = searcher_setup
        victim = FakeVictim(
            machine, attacker, shared, 0x99_0042, take_rate=0.5, seed=1
        )
        searcher = make_searcher(machine, attacker, shared, fr, victim)
        result = searcher.search()
        assert result.index == 0x42

    def test_absent_victim_yields_none(self, searcher_setup):
        machine, attacker, shared, fr = searcher_setup
        victim = FakeVictim(machine, attacker, shared, 0x99_0042, take_rate=0.0)
        searcher = make_searcher(machine, attacker, shared, fr, victim)
        result = searcher.search(sweeps=1)
        assert result.index is None
        assert not result.found

    def test_syscall_budget_accounted(self, searcher_setup):
        machine, attacker, shared, fr = searcher_setup
        victim = FakeVictim(machine, attacker, shared, 0x99_0007)
        searcher = make_searcher(machine, attacker, shared, fr, victim)
        result = searcher.search()
        assert result.syscalls_used == victim.invocations
        assert result.groups_tested >= 1

    def test_oversized_group_rejected(self, searcher_setup):
        machine, attacker, shared, fr = searcher_setup
        victim = FakeVictim(machine, attacker, shared, 0x99_0007)
        searcher = make_searcher(machine, attacker, shared, fr, victim)
        with pytest.raises(ValueError):
            searcher._train_group(list(range(25)))

    def test_reload_index_reserved(self, searcher_setup):
        """The reload loop's own index is excluded from the candidates —
        training it would corrupt every measurement."""
        machine, attacker, shared, fr = searcher_setup
        victim = FakeVictim(machine, attacker, shared, 0x99_0011)
        searcher = make_searcher(machine, attacker, shared, fr, victim)
        searcher.search()
        reserved = fr.reload_ip & 0xFF
        for group, _positive in searcher._history:
            assert reserved not in group
